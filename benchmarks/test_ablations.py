"""Ablations of the framework's design choices (no paper counterpart).

Each test isolates one design decision the paper argues for in prose:
the greedy write-lock shuffle schedule, Algorithm 2's tabu list, the
join-unit granularity, and the Coarse ILP's bin budget.
"""

from benchmarks.conftest import run_once
from repro.bench.ablations import (
    run_ablation_bucket_count,
    run_ablation_coarse_bins,
    run_ablation_join_order,
    run_ablation_shuffle_policy,
    run_ablation_tabu_list,
)


def test_ablation_shuffle_policy(benchmark):
    result = run_once(benchmark, run_ablation_shuffle_policy)
    greedy = result.value("align_s", policy="greedy_lock")
    head_of_line = result.value("align_s", policy="head_of_line")
    uncoordinated = result.value("align_s", policy="uncoordinated")
    # The greedy skip rule beats head-of-line blocking and congested
    # fan-in; all policies move identical data.
    assert greedy <= head_of_line * 1.02
    assert greedy <= uncoordinated * 1.02
    moved = [row.values["cells_moved"] for row in result.rows]
    assert len(set(moved)) == 1


def test_ablation_tabu_list(benchmark):
    result = run_once(benchmark, run_ablation_tabu_list)
    with_list = result.select(variant="with_list")[0].values
    without = result.select(variant="without_list")[0].values
    # Negative result, documented: strict-improvement acceptance already
    # precludes cycling, so both variants reach the same plan quality.
    assert with_list["plan_cost_s"] <= without["plan_cost_s"] * 1.05
    # The list never *increases* the search effort.
    assert with_list["evaluations"] <= without["evaluations"] * 1.05


def test_ablation_bucket_count(benchmark):
    result = run_once(benchmark, run_ablation_bucket_count)
    execute = {
        int(row.labels["n_buckets"]): row.values["execute_s"]
        for row in result.rows
    }
    plan = {
        int(row.labels["n_buckets"]): row.values["plan_s"]
        for row in result.rows
    }
    # Finer units let the planner balance comparison better than the
    # coarsest setting...
    assert execute[1024] < execute[64]
    # ...but planning effort grows with the unit count.
    assert plan[4096] > plan[64]


def test_ablation_join_order(benchmark):
    result = run_once(benchmark, run_ablation_join_order)
    chosen = result.select(variant="dp_chosen")[0].values
    worst = result.select(variant="worst_order")[0].values
    # Both orders compute the same join...
    assert chosen["output_cells"] == worst["output_cells"]
    # ...but the DP-chosen order keeps the intermediate small and wins
    # decisively on execution time.
    assert chosen["intermediate_cells"] < 0.1 * worst["intermediate_cells"]
    assert chosen["execute_s"] < 0.5 * worst["execute_s"]
    assert chosen["model_cost"] <= worst["model_cost"]


def test_ablation_coarse_bins(benchmark):
    result = run_once(benchmark, run_ablation_coarse_bins)
    execute = {
        int(row.labels["n_bins"]): row.values["execute_s"]
        for row in result.rows
    }
    # The paper's 75-bin budget beats planning in 12 huge segments.
    assert execute[75] <= execute[12] * 1.05
