"""Shared benchmark plumbing.

Every benchmark runs its experiment exactly once (the experiments are
deterministic end-to-end sweeps, not microbenchmarks), prints the
paper-style table, and asserts the reproduction's *shape* criteria —
who wins, by roughly what factor, where the crossovers fall.
"""

from __future__ import annotations


def run_once(benchmark, runner, **kwargs):
    """Execute one experiment under pytest-benchmark and print its table."""
    result = benchmark.pedantic(
        lambda: runner(**kwargs), rounds=1, iterations=1, warmup_rounds=0
    )
    print()
    print(result.table())
    if result.summary:
        print("summary:", result.summary)
    return result
