"""Table 2: analytical cost model vs. measured hash-join time (§6.2).

Paper's finding: across the cost-based planners (ILP, Coarse ILP, Tabu)
under moderate-to-high skew, a linear model relates the analytic plan
cost to the observed execution time with r² ≈ 0.9 — the planners can
trust the model to rank competing plans. Small inversions between plans
of near-equal cost (the paper's α = 2 outlier) are acceptable variance.
"""

from benchmarks.conftest import run_once
from repro.bench import run_tab2_model_verification


def test_tab2_model_verification(benchmark):
    result = run_once(benchmark, run_tab2_model_verification, ilp_budget_s=3.0)

    # Strong linear correlation between model cost and measured time.
    assert result.summary["linear_r2"] >= 0.75

    # The model never *under*-estimates grossly: measured time exceeds
    # the analytic cost (the simulator adds the secondary effects the
    # model deliberately ignores), but by a bounded factor.
    for row in result.rows:
        model_cost = row.values["model_cost_s"]
        measured = row.values["measured_s"]
        assert measured >= model_cost * 0.8
        assert measured <= model_cost * 3.0
