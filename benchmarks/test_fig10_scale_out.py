"""Figure 10: merge join scale-out, 2-12 nodes at α = 1.0 (§6.4).

Paper's findings: the skew-aware planners on just two nodes execute
faster than the baseline plan on twelve; at two nodes the join is
network-bound (most time in data alignment over the single pair of
links); the ILPs converge quickly at small scale but burn their whole
budget as the decision space grows; the simple MBH performs best overall
at scale.
"""

from benchmarks.conftest import run_once
from repro.bench import run_fig10_scale_out


def test_fig10_scale_out(benchmark):
    result = run_once(benchmark, run_fig10_scale_out, ilp_budget_s=2.0)

    def execute(planner, nodes):
        return result.value("execute_s", planner=planner, nodes=nodes)

    # Headline: skew-aware execution on 2 nodes beats baseline on 12.
    assert execute("mbh", 2) < execute("baseline", 12)
    assert execute("tabu", 2) < execute("baseline", 12)

    # At 2 nodes the join is network-bound: alignment dominates.
    assert result.value("align_s", planner="mbh", nodes=2) > result.value(
        "compare_s", planner="mbh", nodes=2
    )

    # Execution improves with cluster size for the skew-aware planners.
    assert execute("mbh", 12) < execute("mbh", 2)

    # MBH is the best end-to-end planner at full scale (planning is free).
    totals_12 = {
        p: result.value("total_s", planner=p, nodes=12)
        for p in ("baseline", "ilp", "ilp_coarse", "mbh", "tabu")
    }
    assert totals_12["mbh"] == min(totals_12.values())

    # The ILP's planning time exceeds its execution time at scale —
    # "their plans are not high-quality enough to justify this wait".
    assert result.value("plan_s", planner="ilp", nodes=12) > execute("ilp", 12)
