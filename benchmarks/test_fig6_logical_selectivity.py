"""Figure 6: logical plan performance across selectivities (Section 6.1).

Paper's findings: the hash join is fastest at low selectivity (its
expensive sort runs on the small output); the merge join narrowly edges
it out at selectivity 1 and wins decisively as output cardinality grows
(35× at the largest output), because it front-loads the reordering.
"""

from benchmarks.conftest import run_once
from repro.bench import run_fig5_fig6


def test_fig6_selectivity_crossover(benchmark):
    result = run_once(benchmark, run_fig5_fig6)

    def time_of(algo, selectivity):
        return result.value("execute_s", algo=algo, selectivity=selectivity)

    # Hash wins at low selectivity.
    for selectivity in (0.01, 0.1):
        assert time_of("hash", selectivity) < time_of("merge", selectivity)

    # Merge edges out hash from selectivity 1 upward.
    for selectivity in (1.0, 10.0, 100.0):
        assert time_of("merge", selectivity) <= time_of("hash", selectivity)

    # The gap at the largest output cardinality is an order of magnitude+
    # (the paper reports 35x).
    assert time_of("hash", 100.0) / time_of("merge", 100.0) >= 10.0

    # All plans see latency rise with output cardinality.
    for algo in ("hash", "merge", "nested_loop"):
        assert time_of(algo, 100.0) > time_of(algo, 0.01)
