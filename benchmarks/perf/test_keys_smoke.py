"""Smoke test for the packed-vs-structured key benchmark.

Runs both skew workloads at a fraction of benchmark scale, exercising
the full ``--keys`` harness path: per-arm prepare, warm-up, timed
serial executions, and JSON serialisation. Unlike the parallel smoke
test, this one DOES guard performance: packed keys replace structured
dtype comparisons with primitive ``uint64`` comparisons in the very
kernels the arms share, so packed execution being materially slower
than structured is a genuine regression, not scheduling noise. The
guard allows generous tolerance for timer jitter at smoke scale.
"""

import json

import pytest

from repro.bench.wallclock import WORKLOADS, run_keys_bench, write_results

#: Packed may be at most this much slower than structured before the
#: smoke test fails; at benchmark scale packed is expected to *win*.
SLOWDOWN_TOLERANCE = 1.25


@pytest.mark.parametrize("workload", WORKLOADS)
def test_keys_smoke(workload, tmp_path):
    result = run_keys_bench(
        workload=workload,
        planner="baseline",
        cells_per_array=8_000,
        n_nodes=4,
        repeats=3,
        seed=3,
    )
    assert result.outputs_identical
    assert result.output_cells > 0
    # Both skew workloads join on narrow-range keys: the codec must
    # actually engage, not silently fall back to structured keys.
    assert result.key_width is not None
    assert 0 < result.key_width <= 64
    assert result.structured_seconds > 0 and result.packed_seconds > 0
    assert (
        result.packed_seconds
        <= result.structured_seconds * SLOWDOWN_TOLERANCE
    ), (
        f"packed keys slower than structured on {workload}: "
        f"{result.packed_seconds:.3f}s vs {result.structured_seconds:.3f}s"
    )

    out = tmp_path / "bench.json"
    write_results([], str(out), keys_results=[result])
    payload = json.loads(out.read_text())
    (entry,) = payload["keys"]
    assert entry["workload"] == workload
    assert entry["key_width"] == result.key_width
