"""Smoke test for the wall-clock serial-vs-parallel harness.

Runs both skew workloads at a fraction of benchmark scale, so the
full harness path — workload construction, prepare, warm-up, timed
serial and parallel executions, JSON serialisation — is exercised on
every CI run.  No speedup is asserted: at this scale (and on one CPU)
the pool overhead can dominate; the load-bearing checks are the
correctness flags the harness itself computes.
"""

import json

import pytest

from repro.bench.wallclock import WORKLOADS, run_wallclock, write_results


@pytest.mark.parametrize("workload", WORKLOADS)
def test_wallclock_smoke(workload, tmp_path):
    result = run_wallclock(
        workload=workload,
        planner="baseline",
        n_workers=2,
        cells_per_array=8_000,
        n_nodes=4,
        repeats=1,
        seed=3,
    )
    assert result.outputs_identical
    assert result.parallel_deterministic
    assert result.output_cells > 0
    assert result.serial_seconds > 0 and result.parallel_seconds > 0

    out = tmp_path / "bench.json"
    write_results([result], str(out))
    payload = json.loads(out.read_text())
    (entry,) = payload["results"]
    assert entry["workload"] == workload
    assert entry["n_workers"] == 2
