"""Smoke test for the repeated-query serving benchmark.

Runs the serving harness at a fraction of benchmark scale on every CI
run, asserting the properties the full BENCH_PR3 artifact certifies:
the first execution is a cold miss, every repeat is a warm hit, warm
and cache-disabled outputs are byte-identical to cold, the assignment
is the very same plan, and the warm planning portion (one cache
lookup) undercuts the cold planning portion by a wide margin.  The
end-to-end speedup is *not* asserted — at smoke scale the compare
phase can dominate — but the planning-time gap is scale-independent.
"""

import json

import pytest

from repro.bench.wallclock import run_serving_bench, write_results


@pytest.fixture(scope="module")
def serving_result():
    return run_serving_bench(
        workload="fig8_hash_skew",
        planner="tabu",
        cells_per_array=20_000,
        n_nodes=6,
        repeats=3,
        seed=3,
        cache_capacity=8,
    )


def test_serving_correctness(serving_result):
    assert serving_result.warm_identical
    assert serving_result.nocache_identical
    assert serving_result.assignments_identical
    assert serving_result.cache["misses"] == 1
    assert serving_result.cache["hits"] == serving_result.repeats
    assert serving_result.cache["entries"] == 1


def test_warm_planning_beats_cold_planning(serving_result):
    # cold planning runs stats + logical + physical + schedule; warm
    # planning is one dict lookup.  Even on a noisy CI box the gap is
    # orders of magnitude — 5x is a deliberately generous floor.
    assert serving_result.cold_plan_seconds > 0
    assert serving_result.warm_plan_seconds < (
        serving_result.cold_plan_seconds / 5
    )


def test_serving_json_roundtrip(serving_result, tmp_path):
    out = tmp_path / "bench.json"
    write_results([], str(out), serving_results=[serving_result])
    payload = json.loads(out.read_text())
    # skipped sections are omitted entirely, not written as empty lists
    assert "results" not in payload
    assert "prepare" not in payload
    assert "planner_stress" not in payload
    (entry,) = payload["serving"]
    assert entry["workload"] == "fig8_hash_skew"
    assert entry["speedup"] > 0
    assert entry["cache"]["hits"] == serving_result.repeats
