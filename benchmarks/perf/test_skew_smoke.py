"""Smoke test for the skew (alpha x split_units) benchmark.

Runs one high-skew row of the ``--skew`` sweep at reduced scale: the
fig8 hash workload at α=1.8 through split off / static / adaptive on
the shared-memory process path. High α concentrates the join in a
single hot hash bucket — the exact straggler the adaptive re-splitter
exists for — so this smoke guards the PR's point: splitting must never
change the output, and adaptive must not be materially slower than the
unsplit dispatch even at smoke scale.
"""

import json

from repro.bench.wallclock import run_skew_bench, write_results
from repro.engine.parallel import available_cpus

#: Adaptive splitting may be at most this much slower than the unsplit
#: baseline before the smoke fails; with real cores it is expected to
#: *win* on the hot-bucket straggler.
SLOWDOWN_TOLERANCE = 1.25

#: Absolute slack for the per-task dispatch round trips the dynamic
#: path adds. On a 1-CPU CI box the whole smoke run finishes in a few
#: milliseconds, so those fixed pipe latencies dominate the relative
#: comparison; the slack keeps the guard about architectural slowdowns,
#: not scheduler noise.
DISPATCH_SLACK_SECONDS = 0.05


def test_skew_smoke(tmp_path):
    result = run_skew_bench(
        workload="fig8_hash_skew",
        planner="baseline",
        alphas=(1.8,),
        n_workers=4,
        cells_per_array=100_000,
        n_nodes=8,
        repeats=3,
        seed=3,
    )
    assert result.cpu_count >= 1
    assert len(result.rows) == 3, "expected one row per split mode"

    by_mode = {row["split_units"]: row for row in result.rows}
    assert set(by_mode) == {"off", "static", "adaptive"}
    for row in result.rows:
        # Splitting is a performance knob: byte-identical outputs always.
        assert row["outputs_identical"], row
        assert row["seconds"] > 0

    # At high alpha the heavy bucket is one hot key, so the run-time
    # re-splitter must have engaged on the adaptive row — unless the
    # host grants a single effective slot, where adaptive dispatch
    # gates itself back to the static split by design.
    adaptive = by_mode["adaptive"]
    if min(4, available_cpus()) > 1:
        assert adaptive["runtime_resplits"] >= 1
    else:
        assert adaptive["runtime_resplits"] == 0
    unsplit = by_mode["off"]
    bound = unsplit["seconds"] * SLOWDOWN_TOLERANCE + DISPATCH_SLACK_SECONDS
    assert adaptive["seconds"] <= bound, (
        f"adaptive splitting slower than unsplit: "
        f"{adaptive['seconds']:.3f}s vs {unsplit['seconds']:.3f}s"
    )

    out = tmp_path / "bench.json"
    write_results([], str(out), skew_results=[result])
    payload = json.loads(out.read_text())
    (entry,) = payload["skew"]
    assert entry["workload"] == "fig8_hash_skew"
    row_keys = set(entry["rows"][0])
    assert {
        "alpha", "split_units", "seconds", "speedup_vs_unsplit",
        "outputs_identical", "units_split", "subunits_created",
        "runtime_resplits", "steal_count",
    } <= row_keys
