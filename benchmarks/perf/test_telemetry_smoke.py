"""Smoke test for the telemetry-plane overhead benchmark.

Runs the telemetry bench (bare vs fully instrumented closed-loop sweep
against one warmed executor) at a fraction of benchmark scale on every
CI run, asserting the properties the full BENCH_PR10 artifact
certifies: one query-log record landed per served request, every
mid-run ``/metrics`` scrape parsed as valid exposition, trace sampling
fired at the configured 1-in-N rate, and all instrumented outputs stay
byte-identical to the bare run.  The <=5% overhead bound is asserted
only with a generous smoke-scale tolerance — at 20k cells per array the
queries are so fast that fixed per-request logging costs are a much
larger fraction of latency than at benchmark scale, and a loaded
single-CPU CI box adds noise on top.
"""

import json

import pytest

from repro.bench.wallclock import run_telemetry_bench, write_results

# At full benchmark scale the acceptance bound is 5%; smoke scale keeps
# the machinery honest without flaking on scheduler noise.
SMOKE_OVERHEAD_TOLERANCE_PCT = 40.0


@pytest.fixture(scope="module")
def telemetry_result(tmp_path_factory):
    return run_telemetry_bench(
        workload="fig8_hash_skew",
        planner="tabu",
        clients=2,
        requests_per_client=8,
        repeats=2,
        n_tenants=3,
        cells_per_array=20_000,
        n_nodes=6,
        seed=3,
        cache_capacity=16,
        queue_depth=8,
        trace_sample=4,
        telemetry_dir=str(tmp_path_factory.mktemp("telemetry")),
    )


def test_telemetry_accounting_is_exact(telemetry_result):
    result = telemetry_result
    assert result.requests_served == 2 * 2 * 8  # repeats x clients x requests
    assert result.requests_logged == result.requests_served
    assert result.query_log_complete
    assert result.scrapes >= 1
    assert result.scrape_errors == []
    assert result.exposition_valid
    # 1-in-4 head sampling: sequence numbers cover every request, but
    # coalesced followers skip the sampler (the leader's trace covers
    # them), so the count is bounded, not exact.
    assert 0 < result.traces_sampled <= result.requests_served // 4
    assert result.all_outputs_identical


def test_telemetry_overhead_within_smoke_tolerance(telemetry_result):
    result = telemetry_result
    assert result.bare_qps > 0
    assert result.telemetry_qps > 0
    assert result.overhead_pct <= SMOKE_OVERHEAD_TOLERANCE_PCT


def test_telemetry_json_roundtrip(telemetry_result, tmp_path):
    out = tmp_path / "bench.json"
    write_results([], str(out), telemetry_results=[telemetry_result])
    payload = json.loads(out.read_text())
    assert "results" not in payload
    (entry,) = payload["telemetry"]
    assert entry["workload"] == "fig8_hash_skew"
    assert {"bare_qps", "telemetry_qps", "overhead_pct", "requests_logged",
            "requests_served", "query_log_complete", "exposition_valid",
            "traces_sampled", "all_outputs_identical"} <= set(entry)
    for side in ("bare", "telemetry"):
        assert entry[side]["mode"] == "closed"
        assert entry[side]["completed"] == 2 * 8
        assert entry[side]["errors"] == 0
    assert entry["telemetry"]["query_log"]["records"] == entry[
        "requests_served"
    ]
    assert entry["telemetry"]["metrics_path"].endswith(".prom")
