"""Wall-clock performance benchmarks for the parallel join engine.

Unlike the paper-figure benchmarks one directory up — which report
*simulated* phase durations — these time the engine's real execution:
serial per-unit matching vs the batched worker-pool path (see
:mod:`repro.bench.wallclock`).  ``test_wallclock_smoke.py`` runs a
tiny configuration for CI; the full-scale numbers live in
``BENCH_PR1.json`` at the repo root, regenerated with::

    PYTHONPATH=src python -m repro bench --repeats 5 --out BENCH_PR1.json
"""
