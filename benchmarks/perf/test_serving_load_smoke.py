"""Smoke test for the concurrent serving-load benchmark.

Runs the serving-load harness at a fraction of benchmark scale on every
CI run, asserting the properties the full BENCH_PR8 artifact certifies:
sustained throughput is positive and latency quantiles finite for every
closed-loop client count, the open-loop run accounts for every request
(completed + shed + errors), every served result is byte-identical to
serial execution, and per-tenant cache hit rates are present for every
tenant in the mix.  The >=3x multi-client speedup is *not* asserted —
on a single-CPU CI box the achievable ratio depends on how much
coalescing the draw happens to produce at smoke scale — but the
machinery that produces it (coalescing counters, admission accounting)
is checked.
"""

import json
import math

import pytest

from repro.bench.wallclock import run_serving_load_bench, write_results


@pytest.fixture(scope="module")
def load_result():
    return run_serving_load_bench(
        workload="fig8_hash_skew",
        planner="tabu",
        clients=(1, 4),
        requests_per_client=8,
        n_tenants=3,
        tenant_alpha=1.2,
        cells_per_array=20_000,
        n_nodes=6,
        seed=3,
        cache_capacity=16,
        queue_depth=8,
        open_requests=10,
    )


def test_serving_load_correctness(load_result):
    assert load_result.all_outputs_identical
    assert load_result.cold_pass["requests"] == 3 * 3  # tenants x statements
    assert load_result.baseline_qps > 0
    assert len(load_result.rows) == 2
    for row in load_result.rows:
        assert row["mode"] == "closed"
        assert row["completed"] == row["clients"] * 8
        assert row["errors"] == 0
        assert row["qps"] > 0
        assert row["outputs_identical"]
        for quantile in ("latency_p50", "latency_p95", "latency_p99"):
            assert math.isfinite(row[quantile]) and row[quantile] > 0
        assert row["latency_p50"] <= row["latency_p99"]
        assert row["speedup_vs_single_client"] > 0


def test_serving_load_open_loop_accounts_for_everything(load_result):
    row = load_result.open_loop
    assert row is not None
    assert row["mode"] == "open"
    assert row["rate_qps"] > 0
    assert row["completed"] + row["shed"] + row["errors"] == 10
    assert row["errors"] == 0
    assert row["outputs_identical"]
    assert math.isfinite(row["latency_p99"])


def test_serving_load_tenant_stats(load_result):
    assert set(load_result.tenant_cache) == {"tenant0", "tenant1", "tenant2"}
    for entry in load_result.tenant_cache.values():
        # The cold pass guarantees every tenant at least one miss per
        # statement; the timed runs then hit.
        assert entry["misses"] >= 3
        assert 0.0 <= entry["hit_rate"] <= 1.0
    assert load_result.plan_cache["entries"] <= load_result.cache_capacity


def test_serving_load_json_roundtrip(load_result, tmp_path):
    out = tmp_path / "bench.json"
    write_results([], str(out), serving_load_results=[load_result])
    payload = json.loads(out.read_text())
    assert "results" not in payload
    (entry,) = payload["serving_load"]
    assert entry["workload"] == "fig8_hash_skew"
    assert entry["n_tenants"] == 3
    assert {"baseline_qps", "rows", "open_loop", "tenant_cache",
            "cold_pass", "all_outputs_identical"} <= set(entry)
    row_keys = set(entry["rows"][0])
    assert {"clients", "qps", "latency_p50", "latency_p95", "latency_p99",
            "latency_max", "coalesced", "speedup_vs_single_client",
            "outputs_identical"} <= row_keys
