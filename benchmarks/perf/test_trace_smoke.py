"""Smoke test for the tracing-overhead benchmark.

Runs the trace harness at a fraction of benchmark scale on every CI
run, asserting the properties the full BENCH_PR5 artifact certifies:
the traced arm produces a structurally valid Chrome trace containing
the full span vocabulary (plan phases, simulated transfers, worker
batches), and both arms really executed. The <5% overhead bound is
*not* asserted here — at smoke scale a single scheduler hiccup swamps
the signal — but the recorded overhead is checked to be finite and the
JSON artifact round-trips.
"""

import json
import os

import pytest

from repro.bench.wallclock import run_trace_bench, write_results
from repro.obs.trace import validate_chrome_trace


@pytest.fixture(scope="module")
def trace_result(tmp_path_factory):
    trace_dir = str(tmp_path_factory.mktemp("trace-artifacts"))
    return run_trace_bench(
        workload="fig8_hash_skew",
        planner="baseline",
        n_workers=2,
        cells_per_array=20_000,
        n_nodes=6,
        repeats=2,
        seed=3,
        trace_dir=trace_dir,
    )


def test_trace_file_is_valid_chrome_json(trace_result):
    assert trace_result.trace_valid
    assert os.path.exists(trace_result.trace_path)
    payload = json.loads(open(trace_result.trace_path).read())
    assert validate_chrome_trace(payload) == []


def test_trace_covers_the_pipeline(trace_result):
    payload = json.loads(open(trace_result.trace_path).read())
    names = {
        e["name"] for e in payload["traceEvents"] if e["ph"] == "X"
    }
    for expected in (
        "physical_assign",
        "data_alignment",
        "cell_comparison",
    ):
        assert expected in names, f"missing span {expected}"
    assert any(name.startswith("xfer ") for name in names)
    assert any(name.startswith("batch n") for name in names)
    lanes = {
        e["args"]["name"]
        for e in payload["traceEvents"]
        if e["ph"] == "M"
    }
    assert any(lane.startswith("net:recv n") for lane in lanes)
    assert any(lane.startswith("worker:n") for lane in lanes)


def test_both_arms_executed(trace_result):
    assert trace_result.untraced_seconds > 0
    assert trace_result.traced_seconds > 0
    assert trace_result.n_spans > 0
    assert trace_result.overhead_pct == pytest.approx(
        100.0
        * (trace_result.traced_seconds - trace_result.untraced_seconds)
        / trace_result.untraced_seconds
    )


def test_trace_json_roundtrip(trace_result, tmp_path):
    out = tmp_path / "bench.json"
    write_results([], str(out), trace_results=[trace_result])
    payload = json.loads(out.read_text())
    assert "results" not in payload
    (entry,) = payload["tracing"]
    assert entry["workload"] == "fig8_hash_skew"
    assert entry["trace_valid"] is True
    assert entry["n_spans"] == trace_result.n_spans
