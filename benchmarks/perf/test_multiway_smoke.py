"""Smoke test for the multiway pipeline benchmark.

Runs the ``--multiway`` harness at a fraction of benchmark scale on
every CI run, asserting the properties the full BENCH_PR9 artifact
certifies: the parallel-stage and warm outputs are byte-identical to
serial, the first pipeline execution is a cold miss, every repeat is a
warm hit that replays only the final cached stage, and warm execution
beats cold by the no-slower floor (>= 5x on the chain workload — the
warm path skips the ordering DP, per-stage planning, simulation, and
all but the last stage's execution, a gap that is CPU-count
independent).
"""

import json

import pytest

from repro.bench.wallclock import run_multiway_bench, write_results
from repro.engine.parallel import shutdown_pools


@pytest.fixture(scope="module")
def multiway_result():
    result = run_multiway_bench(
        shape="chain",
        planner="tabu",
        n_arrays=4,
        alpha=1.0,
        n_workers=2,
        cells_per_array=1_500,
        n_nodes=4,
        repeats=3,
        seed=3,
        cache_capacity=8,
    )
    shutdown_pools()
    return result


def test_multiway_correctness(multiway_result):
    assert multiway_result.parallel_identical
    assert multiway_result.warm_identical
    assert multiway_result.nocache_identical
    assert multiway_result.n_stages == 3
    assert multiway_result.stages_cached == 3
    assert multiway_result.cache["misses"] == 1
    assert multiway_result.cache["hits"] == multiway_result.repeats
    assert multiway_result.cache["entries"] == 1


def test_warm_pipeline_at_least_5x_cold(multiway_result):
    assert multiway_result.cold_seconds > 0
    assert multiway_result.warm_speedup >= 5.0


def test_warm_planning_beats_cold_planning(multiway_result):
    # Cold planning runs the ordering DP plus per-stage logical +
    # physical planning and the shuffle simulation; warm planning is one
    # fingerprint lookup.
    assert multiway_result.cold_plan_seconds > 0
    assert multiway_result.warm_plan_seconds < (
        multiway_result.cold_plan_seconds / 5
    )


def test_multiway_json_roundtrip(multiway_result, tmp_path):
    out = tmp_path / "bench.json"
    write_results([], str(out), multiway_results=[multiway_result])
    payload = json.loads(out.read_text())
    assert "results" not in payload
    (entry,) = payload["multiway"]
    assert entry["shape"] == "chain"
    assert entry["parallel_identical"] is True
    assert entry["warm_identical"] is True
    assert entry["warm_speedup"] >= 5.0
