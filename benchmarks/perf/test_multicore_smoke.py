"""Smoke test for the multicore (worker x mode x kernel) benchmark.

Runs the fig8 hash workload through the full ``--multicore`` harness
path at reduced scale: one prepared join, a serial baseline, then the
thread pool and the shared-memory process backend at 4 workers. The
scale is chosen large enough (~200k key rows) that the shm path splits
into multiple chunks and genuinely exercises the fork pool, not just
the in-process fallback.

This smoke DOES guard performance: the shared-memory path exists to be
faster than the serial per-unit oracle, and its batched slice-matching
wins even on one CPU, so process-mode being materially slower than
serial is a genuine regression. The tolerance absorbs timer jitter
and box noise, not architectural slowdowns.
"""

import json

from repro.bench.wallclock import run_multicore_bench, write_results

#: Process-mode shm at 4 workers may be at most this much slower than
#: serial before the smoke fails; at benchmark scale it is expected to
#: *win* by a wide margin.
SLOWDOWN_TOLERANCE = 1.25


def test_multicore_smoke(tmp_path):
    result = run_multicore_bench(
        workload="fig8_hash_skew",
        planner="baseline",
        workers=(4,),
        cells_per_array=100_000,
        n_nodes=8,
        repeats=3,
        seed=3,
    )
    assert result.serial_seconds > 0
    assert result.cpu_count >= 1
    assert result.rows, "sweep produced no configurations"

    # Every configuration must reproduce the serial output exactly.
    for row in result.rows:
        assert row["outputs_identical"], row
        assert row["seconds"] > 0
        assert row["reported_kernel"] in ("numpy", "numba")

    shm_row = next(
        row for row in result.rows
        if row["mode"] == "process" and row["shm"] and row["n_workers"] == 4
    )
    # The backend the report claims must be the backend that ran.
    assert shm_row["reported_mode"] == "process"
    assert shm_row["reported_shm"] is True
    assert shm_row["seconds"] <= result.serial_seconds * SLOWDOWN_TOLERANCE, (
        f"process-mode shm slower than serial: "
        f"{shm_row['seconds']:.3f}s vs {result.serial_seconds:.3f}s"
    )

    out = tmp_path / "bench.json"
    write_results([], str(out), multicore_results=[result])
    payload = json.loads(out.read_text())
    (entry,) = payload["multicore"]
    assert entry["workload"] == "fig8_hash_skew"
    assert entry["serial_seconds"] == result.serial_seconds
    row_keys = set(entry["rows"][0])
    assert {
        "mode", "shm", "kernel", "n_workers", "seconds", "speedup",
        "outputs_identical",
    } <= row_keys
