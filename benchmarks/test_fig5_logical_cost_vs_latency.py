"""Figure 5: logical plan cost vs. query latency (Section 6.1).

Paper's findings: a strong power-law correlation between a plan's
projected cost and its measured duration (r² ≈ 0.9), and — for every one
of the five selectivities — the minimum-cost plan is also the fastest.
The nested loop join is never a profitable plan.
"""

from benchmarks.conftest import run_once
from repro.bench import run_fig5_fig6


def test_fig5_logical_cost_vs_latency(benchmark):
    result = run_once(benchmark, run_fig5_fig6)

    # Power-law correlation between plan cost and latency.
    assert result.summary["power_law_r2"] >= 0.75

    # The min-cost plan is the fastest at every selectivity.
    assert result.summary["min_cost_is_fastest"] == result.summary[
        "n_selectivities"
    ]

    # The nested loop join is never profitable.
    for selectivity in (0.01, 0.1, 1.0, 10.0, 100.0):
        nl = result.value("execute_s", algo="nested_loop", selectivity=selectivity)
        hash_time = result.value("execute_s", algo="hash", selectivity=selectivity)
        merge_time = result.value("execute_s", algo="merge", selectivity=selectivity)
        assert nl > hash_time
        assert nl > merge_time
