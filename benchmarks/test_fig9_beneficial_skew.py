"""Figure 9: merge join on real-world beneficial skew (§6.3.1).

MODIS satellite reflectance joined with AIS ship broadcasts on the
geospatial dimensions alone. Paper's findings: the shuffle join planners
achieve nearly 2.5× end-to-end speedup over the skew-agnostic baseline;
data alignment drops by an order of magnitude or more (the planners move
sparse satellite slices to the AIS hotspots instead of shipping the
hotspots) and cell comparison improves because the per-node load stays
even.
"""

from benchmarks.conftest import run_once
from repro.bench import run_fig9_beneficial_skew


def test_fig9_beneficial_skew(benchmark):
    result = run_once(benchmark, run_fig9_beneficial_skew, ilp_budget_s=2.0)

    baseline_exec = result.value("execute_s", planner="baseline")
    mbh_exec = result.value("execute_s", planner="mbh")
    tabu_exec = result.value("execute_s", planner="tabu")
    best_exec = min(mbh_exec, tabu_exec)

    # Headline: ~2.5x end-to-end execution speedup (we require >= 2x).
    assert baseline_exec / best_exec >= 2.0

    # Data alignment collapses (paper: ~20x; we require >= 5x).
    baseline_align = result.value("align_s", planner="baseline")
    mbh_align = result.value("align_s", planner="mbh")
    assert baseline_align / mbh_align >= 5.0

    # Cell comparison also improves (paper: halved; we require >= 1.3x).
    baseline_compare = result.value("compare_s", planner="baseline")
    mbh_compare = result.value("compare_s", planner="mbh")
    assert baseline_compare / mbh_compare >= 1.3

    # The baseline moves the skewed AIS data; skew-aware planners move a
    # small fraction of that.
    assert result.value("cells_moved", planner="mbh") < 0.4 * result.value(
        "cells_moved", planner="baseline"
    )
