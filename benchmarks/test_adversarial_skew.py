"""Section 6.3.2: merge join under adversarial skew (no figure number).

The NDVI band join: two MODIS bands from the same sensor, so
corresponding chunks are nearly equal in size and there is no cheap side
to move. Paper's finding: all planners produce comparable execution
times — the skew-aware machinery achieves its speedups *without* a
commensurate loss on uniform/adversarial distributions.
"""

from benchmarks.conftest import run_once
from repro.bench import run_adversarial_skew


def test_adversarial_skew(benchmark):
    result = run_once(benchmark, run_adversarial_skew, ilp_budget_s=2.0)

    # Comparable execution across all five planners.
    assert result.summary["max_over_min_execute"] <= 1.3

    # Every planner must move roughly half the data — adversarial skew
    # offers no shortcut — so no planner "wins" on cells moved either.
    moved = [row.values["cells_moved"] for row in result.rows]
    assert max(moved) / min(moved) <= 1.5
