"""Figure 8: hash join with varying skew and physical planners (§6.2.2).

Paper's findings: hash buckets spread every join unit over all nodes,
creating a harder search space. At uniform data MBH is the most
cost-effective; under *slight* skew (α = 0.5) MBH performs exceptionally
poorly — its single-pass center-of-gravity choice piles expensive hash
builds onto the hot nodes; as skew grows the builds shrink (the smaller
side becomes the build side) and the effect fades. Tabu, which seeds
with MBH and then rebalances the comparison load, performs best overall.
"""

from benchmarks.conftest import run_once
from repro.bench import run_fig8_hash_skew


def test_fig8_hash_skew(benchmark):
    result = run_once(benchmark, run_fig8_hash_skew, ilp_budget_s=2.0)

    def execute(planner, alpha):
        return result.value("execute_s", planner=planner, alpha=alpha)

    # Uniform data: MBH among the best; every planner comparable.
    uniform = {
        p: execute(p, 0.0)
        for p in ("baseline", "ilp", "ilp_coarse", "mbh", "tabu")
    }
    assert uniform["mbh"] <= min(uniform.values()) * 1.25

    # Slight skew: MBH degrades sharply versus the baseline and Tabu...
    assert execute("mbh", 0.5) > 1.5 * execute("baseline", 0.5)
    assert execute("mbh", 0.5) > 1.5 * execute("tabu", 0.5)
    # ...dominated by its comparison-phase imbalance.
    mbh_compare = result.value("compare_s", planner="mbh", alpha=0.5)
    tabu_compare = result.value("compare_s", planner="tabu", alpha=0.5)
    assert mbh_compare > 2.0 * tabu_compare

    # The effect fades with skew: by α = 2 MBH is much closer to Tabu
    # than its 2x+ deficit at α = 0.5 (the paper has them equal).
    assert execute("mbh", 2.0) <= 1.5 * execute("tabu", 2.0)
    assert (execute("mbh", 2.0) / execute("tabu", 2.0)) < (
        execute("mbh", 0.5) / execute("tabu", 0.5)
    )

    # High skew: the baseline has the worst execution time.
    for planner in ("mbh", "tabu", "ilp", "ilp_coarse"):
        assert execute("baseline", 2.0) >= execute(planner, 2.0)

    # Tabu beats MBH end-to-end wherever skew exists (α ≥ 0.5), and its
    # execution times decline as skew deepens.
    for alpha in (0.5, 1.0, 1.5):
        assert execute("tabu", alpha) < execute("mbh", alpha)
    assert execute("tabu", 2.0) < execute("tabu", 0.5)
