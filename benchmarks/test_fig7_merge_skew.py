"""Figure 7: merge join with varying skew and physical planners (§6.2.1).

Paper's findings: at α = 0 all optimizers produce plans of similar
quality (with the ILP wasting its time budget); as skew increases the
skew-aware planners exploit it while the baseline degrades; the simple
Minimum Bandwidth Heuristic performs best — chunk-grained plans leave at
most two sensible homes per join unit, so bringing sparse chunks to
their denser counterparts is all it takes.
"""

from benchmarks.conftest import run_once
from repro.bench import run_fig7_merge_skew


def test_fig7_merge_skew(benchmark):
    result = run_once(benchmark, run_fig7_merge_skew, ilp_budget_s=2.0)

    def execute(planner, alpha):
        return result.value("execute_s", planner=planner, alpha=alpha)

    # Uniform data: every planner's execution is comparable (within 40%).
    uniform = [execute(p, 0.0) for p in ("baseline", "mbh", "tabu", "ilp")]
    assert max(uniform) / min(uniform) < 1.4

    # Under skew the baseline loses big to every skew-aware planner.
    for alpha in (1.5, 2.0):
        for planner in ("mbh", "tabu", "ilp", "ilp_coarse"):
            assert execute("baseline", alpha) > 1.5 * execute(planner, alpha)

    # MBH is the best (or tied-best) end-to-end choice at every skew level:
    # near-zero planning time on top of competitive execution.
    for alpha in (0.0, 0.5, 1.0, 1.5, 2.0):
        totals = {
            p: result.value("total_s", planner=p, alpha=alpha)
            for p in ("baseline", "ilp", "ilp_coarse", "mbh", "tabu")
        }
        assert totals["mbh"] <= min(totals.values()) * 1.1

    # The ILP solvers' planning time dominates their end-to-end latency.
    for alpha in (0.0, 1.0, 2.0):
        plan_time = result.value("plan_s", planner="ilp", alpha=alpha)
        assert plan_time > execute("ilp", alpha)

    # Skew-aware planners move an order of magnitude fewer cells under
    # high skew than under uniform data.
    assert result.value("cells_moved", planner="mbh", alpha=2.0) < (
        0.1 * result.value("cells_moved", planner="mbh", alpha=0.0)
    )
