"""Setuptools shim: enables legacy editable installs on offline hosts
(no `wheel` package available), where PEP 660 editable builds fail.
"""

from setuptools import setup

setup()
