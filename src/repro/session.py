"""The high-level session facade: statements in, arrays and results out.

A :class:`Session` bundles a cluster and an executor behind one
SciDB-flavoured entry point::

    session = Session(n_nodes=4)
    session.execute("CREATE ARRAY A<v:int64>[i=1,64,8, j=1,64,8]")
    session.load("A", cells)
    result = session.execute(
        "SELECT A.v, B.w FROM A JOIN B ON A.i = B.i AND A.j = B.j",
        planner="tabu",
    )
    session.afl("filter(A, v > 5)")         # AFL surface
    print(session.explain("SELECT ...").describe())
"""

from __future__ import annotations

from repro.adm.array import LocalArray
from repro.adm.cells import CellSet
from repro.adm.schema import ArraySchema
from repro.cluster.cluster import Cluster, PlacementPolicy
from repro.cluster.network import NetworkParams
from repro.engine.afl_runner import AflRunner
from repro.engine.executor import ExplainReport, JoinResult, ShuffleJoinExecutor
from repro.errors import ExecutionError
from repro.query.aql import FilterQuery, JoinQuery, MultiJoinQuery
from repro.query.ddl import (
    AnalyzeArray,
    CreateArray,
    DropArray,
    parse_statement,
)

#: Options Session.execute accepts for join queries — everything else is
#: rejected loudly instead of being silently dropped.
JOIN_QUERY_OPTIONS = frozenset(
    {
        "planner", "join_algo", "store_result", "n_workers", "use_cache",
        "analyze", "trace", "tenant",
    }
)


class Session:
    """One user's connection to a (simulated) array database cluster."""

    def __init__(
        self,
        n_nodes: int = 4,
        network: NetworkParams | None = None,
        n_workers: int | None = None,
        **executor_options,
    ):
        """``n_workers`` > 1 runs the cell-comparison phase on a worker
        pool (one logical worker per cluster node, batched vectorised
        matching); None/0/1 keep the serial reference path. Sessions
        serve repeated queries from a plan cache by default
        (``plan_cache_size=64``); pass ``plan_cache_size=0`` to disable
        it. Further ``executor_options`` pass straight to the executor —
        e.g. ``packed_keys=False`` keeps structured composite keys
        instead of the packed 64-bit codec, and
        ``split_units="static"``/``"adaptive"`` turns on skew splitting
        of heavy join units (plan-time key-range cuts; ``adaptive``
        additionally re-splits straggler ranges at run time on the
        shared-memory process path)."""
        executor_options.setdefault("plan_cache_size", 64)
        self.cluster = Cluster(n_nodes=n_nodes, network=network)
        self.executor = ShuffleJoinExecutor(
            self.cluster, n_workers=n_workers, **executor_options
        )
        self._afl = AflRunner(self.executor)

    @property
    def plan_cache(self):
        """The executor's plan cache (None when disabled)."""
        return self.executor.plan_cache

    # ------------------------------------------------------------ statements

    def execute(self, statement: str, **query_options):
        """Run any statement: DDL, a join query, or a filter query.

        Returns the created :class:`ArraySchema` for CREATE ARRAY, None
        for DROP ARRAY, a :class:`JoinResult` (or
        :class:`~repro.engine.multijoin.MultiJoinResult` for N-way
        ``FROM A, B, C`` pipelines) for join queries, and a
        :class:`LocalArray` for single-array queries. ``query_options``
        (``planner``, ``join_algo``, ``store_result``, ``n_workers``,
        ``use_cache``, ``analyze``, ``trace``, ``tenant``) apply to both
        2-way and multiway join queries — multiway pipelines thread
        ``n_workers`` through every stage, cache the whole pipeline
        behind one fingerprint, and honour ``tenant`` namespaces
        (``join_algo`` alone stays 2-way-only: pipeline stages pick
        their own algorithms) —``trace="out.json"`` records execution spans onto
        ``result.trace`` and writes Chrome trace JSON, ``analyze=True``
        captures the per-node profile, ``tenant="name"`` namespaces the
        plan-cache entry per tenant (shared LRU budget, per-tenant
        hit/miss counters in ``session.metrics``); unknown option names
        — and any option on a statement that cannot honour it — raise
        :class:`~repro.errors.ExecutionError` instead of being silently
        dropped.
        """
        parsed = parse_statement(statement)
        if isinstance(parsed, (JoinQuery, MultiJoinQuery)):
            unknown = sorted(set(query_options) - JOIN_QUERY_OPTIONS)
            if unknown:
                raise ExecutionError(
                    f"unknown query option(s) {unknown}; join queries "
                    f"accept {sorted(JOIN_QUERY_OPTIONS)}"
                )
            return self.executor.execute(parsed, **query_options)
        if query_options:
            kind = type(parsed).__name__
            raise ExecutionError(
                f"query options {sorted(query_options)} do not apply to "
                f"{kind} statements; they are accepted for join queries only"
            )
        if isinstance(parsed, CreateArray):
            return self.cluster.create_empty_array(parsed.schema)
        if isinstance(parsed, DropArray):
            self.executor.invalidate_cached_plans(parsed.name)
            self.cluster.drop_array(parsed.name)
            return None
        if isinstance(parsed, AnalyzeArray):
            return self.cluster.analyze(parsed.name)
        if isinstance(parsed, FilterQuery):
            return self.executor.execute_filter(parsed)
        raise AssertionError(f"unhandled statement {parsed!r}")

    def afl(self, expression: str) -> LocalArray:
        """Evaluate an AFL operator expression."""
        return self._afl.run(expression)

    def explain(self, query: str, **options) -> ExplainReport:
        """Plan a join query without executing it."""
        return self.executor.explain(query, **options)

    def explain_analyze(self, query: str, **options):
        """Execute a join and report per-node predicted-vs-actual costs.

        Accepts the executor's options (``planner``, ``join_algo``,
        ``n_workers``, ``use_cache``, ``trace``); returns a
        :class:`repro.obs.explain_analyze.ExplainAnalyzeReport` with the
        underlying :class:`JoinResult` attached as ``report.result``.
        Multiway ``FROM A, B, C`` statements return a
        :class:`~repro.obs.explain_analyze.MultiJoinExplainAnalyzeReport`
        with one per-stage section per executed stage (a warm pipeline
        cache hit executes — and therefore profiles — only the final
        stage, and says so).
        """
        return self.executor.explain_analyze(query, **options)

    @property
    def metrics(self):
        """The executor's always-on metrics registry."""
        return self.executor.metrics

    # ------------------------------------------------------------------ data

    def load(
        self,
        name: str,
        cells: CellSet,
        placement: PlacementPolicy = "round_robin",
    ) -> int:
        """Insert cells into a declared array; returns cells loaded."""
        return self.cluster.insert_cells(name, cells, placement=placement)

    def create_and_load(
        self,
        schema: ArraySchema | str,
        cells: CellSet,
        placement: PlacementPolicy = "round_robin",
    ) -> ArraySchema:
        """CREATE ARRAY + load in one step."""
        return self.cluster.create_array(schema, cells, placement=placement)

    def array(self, name: str) -> LocalArray:
        """Materialise a stored array (gathered from all nodes)."""
        return self.cluster.gather_array(name)

    def arrays(self) -> list[str]:
        return self.cluster.catalog.array_names()

    def rebalance(self, name: str):
        """Re-level one array's storage; returns the simulated schedule."""
        return self.cluster.rebalance(name)

    def validate(self, name: str) -> list[str]:
        """Catalog ↔ storage integrity check; empty list means healthy."""
        return self.cluster.validate_integrity(name)

    def data_version(self, name: str) -> tuple[int, int, int]:
        """One array's (incarnation uid, data version, storage epoch).

        The triple changes whenever a cached plan over the array could
        be stale — it is exactly what plan fingerprints embed.
        """
        uid, version = self.cluster.array_version(name)
        return (uid, version, self.cluster.storage_epoch(name))

    def describe(self, name: str) -> str:
        """Human-readable summary of one array: schema, layout, skew."""
        schema = self.cluster.schema(name)
        stats = self.cluster.statistics(name)
        counts = self.cluster.node_cell_counts(name)
        lines = [
            schema.to_literal(),
            f"  cells:        {stats.cell_count}",
            f"  chunks:       {self.cluster.catalog.entry(name).n_chunks} "
            f"stored / {schema.n_chunks} logical",
            f"  per node:     {counts.tolist()}",
            f"  top-5% share: {stats.top_share:.1%} "
            f"(max chunk {stats.max_chunk_cells} cells)",
        ]
        for attr_name, histogram in sorted(stats.histograms.items()):
            lines.append(
                f"  {attr_name}: range [{histogram.low}, {histogram.high}]"
            )
        return "\n".join(lines)

    # ------------------------------------------------------------ persistence

    def save(self, name: str, path) -> int:
        """Export a stored array to an ADM file; returns bytes written."""
        from repro.adm.persist import save_array

        return save_array(self.array(name), path)

    def restore(
        self,
        path,
        name: str | None = None,
        placement: PlacementPolicy = "round_robin",
    ) -> str:
        """Import an ADM file as a (possibly renamed) cluster array."""
        from repro.adm.persist import load_array

        array = load_array(path)
        if name is not None:
            array = LocalArray(
                array.schema.with_name(name), dict(array.chunks)
            )
        self.cluster.load_array(array, placement=placement)
        return array.schema.name


__all__ = ["Session", "JoinResult"]
