"""EXPLAIN ANALYZE: the cost model's per-node predictions vs actuals.

The physical planners place join units by minimising Equation 8,
``c = max(send, recv) × t + compare``, built from the per-node terms of
Equations 5-7 (cells a node must send, cells it must receive, seconds it
spends comparing). This module lines those *predictions* up against what
one real execution *observed* — per-node cells actually shipped over the
simulated write-lock schedule, per-node busy seconds in the alignment
and comparison phases, cells emitted — and prints the per-node deltas,
plus the skew statistics (:func:`repro.obs.metrics.skew_summary`) of the
observed load vectors. Where the model misestimates under skew shows up
as a large delta on exactly the overloaded node.

The raw per-node vectors are captured by the executor during an
``analyze`` execution (``ExecutionReport.node_profile``);
:meth:`ExplainAnalyzeReport.from_result` does the delta arithmetic and
rendering. Predicted and actual alignment numbers are both per-node
*busy* views: the model ignores lock waiting by design (Section 5.1),
so the observed phase duration can exceed every node's busy time — the
report surfaces that residual as the schedule's ``wait`` share.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ExecutionError
from repro.obs.metrics import skew_summary


def _pct(delta: float, predicted: float) -> float:
    """Delta as a percentage of the prediction (0 when nothing was
    predicted and nothing happened; ±inf when the model said zero)."""
    if predicted:
        return 100.0 * delta / predicted
    return 0.0 if delta == 0 else float("inf") if delta > 0 else float("-inf")


@dataclass(frozen=True)
class NodeDelta:
    """One node's predicted-vs-observed execution profile."""

    node: int
    pred_send_cells: int
    pred_recv_cells: int
    pred_align_seconds: float
    pred_compare_seconds: float
    actual_sent_cells: int
    actual_recv_cells: int
    actual_align_seconds: float
    actual_compare_seconds: float
    output_cells: int

    @property
    def align_delta_seconds(self) -> float:
        return self.actual_align_seconds - self.pred_align_seconds

    @property
    def compare_delta_seconds(self) -> float:
        return self.actual_compare_seconds - self.pred_compare_seconds

    @property
    def align_error_pct(self) -> float:
        return _pct(self.align_delta_seconds, self.pred_align_seconds)

    @property
    def compare_error_pct(self) -> float:
        return _pct(self.compare_delta_seconds, self.pred_compare_seconds)


@dataclass
class ExplainAnalyzeReport:
    """Per-node model-vs-actual cost deltas for one executed join."""

    query: str
    planner: str
    join_algo: str
    n_units: int
    n_nodes: int
    nodes: list[NodeDelta]
    #: Equation-8 prediction for the whole plan and the observed
    #: execute-phase duration (alignment + comparison).
    predicted_total_seconds: float
    actual_total_seconds: float
    #: Observed phase durations (the actual includes lock waiting the
    #: per-node busy views deliberately exclude).
    actual_align_seconds: float
    actual_compare_seconds: float
    compare_skew: dict = field(default_factory=dict)
    shuffle_skew: dict = field(default_factory=dict)
    #: Skew-splitting decisions (``split_units`` knob): how many heavy
    #: units the plan-time splitter subdivided, into how many sub-units,
    #: and how many run-time re-splits / work steals the adaptive
    #: dispatcher performed. Empty when splitting is off.
    split_stats: dict = field(default_factory=dict)
    #: The underlying execution, for callers that want the output too.
    result: object | None = None

    @classmethod
    def from_result(cls, result, query: str | None = None):
        """Build the report from an ``analyze=True`` execution."""
        report = result.report
        profile = report.node_profile
        if profile is None:
            raise ExecutionError(
                "no node profile captured; run the query with analyze=True "
                "(executor.explain_analyze / Session.explain_analyze)"
            )
        n_nodes = len(profile["pred_send_cells"])
        nodes = [
            NodeDelta(
                node=node,
                pred_send_cells=int(profile["pred_send_cells"][node]),
                pred_recv_cells=int(profile["pred_recv_cells"][node]),
                pred_align_seconds=float(profile["pred_align_seconds"][node]),
                pred_compare_seconds=float(
                    profile["pred_compare_seconds"][node]
                ),
                actual_sent_cells=int(profile["actual_sent_cells"][node]),
                actual_recv_cells=int(profile["actual_recv_cells"][node]),
                actual_align_seconds=float(
                    profile["actual_align_seconds"][node]
                ),
                actual_compare_seconds=float(
                    profile["actual_compare_seconds"][node]
                ),
                output_cells=int(profile["output_cells"][node]),
            )
            for node in range(n_nodes)
        ]
        predicted_total = (
            report.analytic_cost.total_seconds
            if report.analytic_cost is not None
            else max(
                (
                    n.pred_align_seconds + n.pred_compare_seconds
                    for n in nodes
                ),
                default=0.0,
            )
        )
        return cls(
            query=query if query is not None else str(result.report.logical_afl),
            planner=report.planner,
            join_algo=report.join_algo,
            n_units=report.n_units,
            n_nodes=n_nodes,
            nodes=nodes,
            predicted_total_seconds=float(predicted_total),
            actual_total_seconds=float(
                report.align_seconds + report.compare_seconds
            ),
            actual_align_seconds=float(report.align_seconds),
            actual_compare_seconds=float(report.compare_seconds),
            compare_skew=skew_summary(
                [n.actual_compare_seconds for n in nodes]
            ),
            shuffle_skew=skew_summary([n.actual_recv_cells for n in nodes]),
            split_stats={
                key: getattr(report, "meta", {}).get(key)
                for key in (
                    "split_units",
                    "units_split",
                    "subunits_created",
                    "runtime_resplits",
                    "steal_count",
                )
                if key in getattr(report, "meta", {})
            },
            result=result,
        )

    @property
    def total_error_pct(self) -> float:
        return _pct(
            self.actual_total_seconds - self.predicted_total_seconds,
            self.predicted_total_seconds,
        )

    def describe(self) -> str:
        """Render the per-node model-vs-actual table."""
        header = (
            f"EXPLAIN ANALYZE [{self.planner}/{self.join_algo}] "
            f"{self.n_units} units over {self.n_nodes} nodes"
        )
        lines = [
            header,
            f"query: {self.query}",
            "per-node predicted (Eqs 5-8) vs actual:",
            "  node  send pred/act      recv pred/act      "
            "align pred/act (Δ%)       compare pred/act (Δ%)      out",
        ]
        for n in self.nodes:
            lines.append(
                f"  {n.node:>4}"
                f"  {n.pred_send_cells:>7}/{n.actual_sent_cells:<7}"
                f"  {n.pred_recv_cells:>7}/{n.actual_recv_cells:<7}"
                f"  {n.pred_align_seconds * 1000:>8.2f}/"
                f"{n.actual_align_seconds * 1000:<8.2f}ms "
                f"({n.align_error_pct:+6.1f}%)"
                f"  {n.pred_compare_seconds * 1000:>8.2f}/"
                f"{n.actual_compare_seconds * 1000:<8.2f}ms "
                f"({n.compare_error_pct:+6.1f}%)"
                f"  {n.output_cells:>7}"
            )
        lines.append(
            "observed skew: compare imbalance="
            f"{self.compare_skew.get('imbalance', 1.0):.2f} "
            f"gini={self.compare_skew.get('gini', 0.0):.3f} | "
            "shuffle-recv imbalance="
            f"{self.shuffle_skew.get('imbalance', 1.0):.2f} "
            f"gini={self.shuffle_skew.get('gini', 0.0):.3f}"
        )
        if self.split_stats:
            line = (
                f"skew splitting [{self.split_stats.get('split_units')}]: "
                f"{self.split_stats.get('units_split', 0)} heavy units -> "
                f"{self.split_stats.get('subunits_created', 0)} sub-units "
                "at plan time"
            )
            if "runtime_resplits" in self.split_stats:
                line += (
                    f"; {self.split_stats['runtime_resplits']} run-time "
                    f"re-splits, {self.split_stats['steal_count']} stolen "
                    "halves"
                )
            lines.append(line)
        wait = self.actual_align_seconds - max(
            (n.actual_align_seconds for n in self.nodes), default=0.0
        )
        lines.append(
            f"totals: predicted={self.predicted_total_seconds:.4f}s "
            f"observed={self.actual_total_seconds:.4f}s "
            f"(error {self.total_error_pct:+.1f}%; "
            f"align {self.actual_align_seconds:.4f}s of which "
            f"~{max(wait, 0.0):.4f}s schedule wait/residual, "
            f"compare {self.actual_compare_seconds:.4f}s)"
        )
        return "\n".join(lines)


@dataclass
class MultiJoinExplainAnalyzeReport:
    """EXPLAIN ANALYZE for a multi-join pipeline.

    The DP's join order with each step's *estimated* output lined up
    against the stage's *observed* output cells, plus the full per-node
    Eq 5-8 report for every executed stage. On a warm (pipeline-cached)
    run only the final stage executes; the skipped count is recorded in
    ``stages_cached`` and the per-stage list covers the executed tail.
    """

    query: str
    plan: object  # MultiJoinPlan
    stages: list[ExplainAnalyzeReport]
    stages_cached: int
    result: object | None = None

    @classmethod
    def from_result(cls, result, query: str | None = None):
        """Build the report from an ``analyze=True`` multi-join run."""
        steps = _executed_steps(result)
        offset = len(result.plan.steps) - len(steps)
        stages = [
            ExplainAnalyzeReport.from_result(
                stage,
                query=f"stage {offset + index}: "
                f"({' ⋈ '.join(step.placed)}) ⋈ {step.array}",
            )
            for index, (step, stage) in enumerate(
                zip(steps, result.stage_results)
            )
        ]
        meta = result.report.meta if result.report is not None else {}
        return cls(
            query=query if query is not None else result.plan.describe(),
            plan=result.plan,
            stages=stages,
            stages_cached=int(meta.get("stages_cached", 0)),
            result=result,
        )

    def describe(self) -> str:
        steps = _executed_steps(self.result)
        lines = [
            f"EXPLAIN ANALYZE [multi-join, {len(self.plan.steps)} stages]",
            f"query: {self.query}",
            self.plan.describe(),
        ]
        if self.stages_cached:
            lines.append(
                f"pipeline cache hit: {self.stages_cached} stages served "
                f"from the cached plan; only the final stage re-executed"
            )
        offset = len(self.plan.steps) - len(steps)
        for index, (step, stage) in enumerate(zip(steps, self.stages)):
            observed = stage.result.report.output_cells
            error = _pct(
                observed - step.estimated_output, step.estimated_output
            )
            lines.append(
                f"stage {offset + index}: "
                f"estimated ~{step.estimated_output:.3g} "
                f"output cells, observed {observed} ({error:+.1f}%)"
            )
            lines.append(stage.describe())
        return "\n".join(lines)


def _executed_steps(result) -> list:
    """The plan steps matching ``result.stage_results`` (warm runs only
    execute the pipeline's tail)."""
    if result is None:
        return []
    return result.plan.steps[-len(result.stage_results):]


__all__ = [
    "NodeDelta",
    "ExplainAnalyzeReport",
    "MultiJoinExplainAnalyzeReport",
]
