"""Nestable phase timers for the prepare pipeline.

A :class:`PhaseProfiler` accumulates wall-clock time per named phase on a
monotonic clock. Phases nest: entering ``stats`` inside ``prepare`` records
under the path ``prepare/stats``. The profiler is deliberately tiny — the
executor enters a handful of coarse phases per query, so enabled overhead
is nanoseconds against milliseconds of work — and the disabled path is a
single attribute check returning a shared no-op context manager, so wiring
it through hot call sites costs <1% even in tight loops.
"""

from __future__ import annotations

import threading
import time


class _NoopTimer:
    """Context manager that does nothing; shared by disabled profilers."""

    __slots__ = ()

    def __enter__(self) -> "_NoopTimer":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NOOP = _NoopTimer()


class _PhaseTimer:
    """One active span: records elapsed monotonic time on exit."""

    __slots__ = ("_profiler", "_name", "_stack", "_started")

    def __init__(self, profiler: "PhaseProfiler", name: str):
        self._profiler = profiler
        self._name = name

    def __enter__(self) -> "_PhaseTimer":
        stack = self._profiler._thread_stack()
        stack.append(self._name)
        self._stack = stack
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        elapsed = time.perf_counter() - self._started
        profiler = self._profiler
        path = "/".join(self._stack)
        self._stack.pop()
        with profiler._mutex:
            profiler.totals[path] = profiler.totals.get(path, 0.0) + elapsed
            profiler.counts[path] = profiler.counts.get(path, 0) + 1


class PhaseProfiler:
    """Accumulates per-phase wall-clock totals keyed by nested path.

    >>> profiler = PhaseProfiler()
    >>> with profiler.phase("prepare"):
    ...     with profiler.phase("stats"):
    ...         pass
    >>> sorted(profiler.totals)
    ['prepare', 'prepare/stats']
    """

    __slots__ = ("enabled", "totals", "counts", "_local", "_mutex")

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.totals: dict[str, float] = {}
        self.counts: dict[str, int] = {}
        # Phases nest *per thread*: each thread carries its own stack, so
        # phases entered from parallel workers never interleave into one
        # another's paths, and totals are folded in under a mutex.
        self._local = threading.local()
        self._mutex = threading.Lock()

    def _thread_stack(self) -> list[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def phase(self, name: str):
        """Context manager timing one phase (no-op when disabled)."""
        if not self.enabled:
            return _NOOP
        return _PhaseTimer(self, name)

    def snapshot(self) -> dict[str, float]:
        """Copy of the accumulated totals, for later :meth:`since` deltas."""
        return dict(self.totals)

    def since(self, snapshot: dict[str, float]) -> dict[str, float]:
        """Per-phase seconds accumulated after ``snapshot`` was taken."""
        return {
            path: total - snapshot.get(path, 0.0)
            for path, total in self.totals.items()
            if total - snapshot.get(path, 0.0) > 0.0
        }

    def reset(self) -> None:
        self.totals.clear()
        self.counts.clear()

    def describe(self) -> str:
        """Human-readable breakdown, longest phases first."""
        if not self.totals:
            return "(no phases recorded)"
        width = max(len(path) for path in self.totals)
        lines = [
            f"{path.ljust(width)}  {total * 1000:9.3f} ms  ×{self.counts[path]}"
            for path, total in sorted(
                self.totals.items(), key=lambda item: -item[1]
            )
        ]
        return "\n".join(lines)


#: Shared always-off profiler for call sites that want a safe default.
DISABLED_PROFILER = PhaseProfiler(enabled=False)
