"""Observability helpers: phase profiling for the prepare pipeline."""

from repro.obs.timers import DISABLED_PROFILER, PhaseProfiler

__all__ = ["PhaseProfiler", "DISABLED_PROFILER"]
