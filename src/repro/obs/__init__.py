"""Observability helpers: phase profiling and serving-path counters."""

from repro.obs.counters import CounterSet
from repro.obs.timers import DISABLED_PROFILER, PhaseProfiler

__all__ = ["PhaseProfiler", "DISABLED_PROFILER", "CounterSet"]
