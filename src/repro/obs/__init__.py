"""Observability: phase profiling, counters, spans, metrics, explain-analyze."""

from repro.obs.counters import CounterSet
from repro.obs.explain_analyze import (
    ExplainAnalyzeReport,
    MultiJoinExplainAnalyzeReport,
    NodeDelta,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    gini,
    record_execution,
    skew_summary,
)
from repro.obs.timers import DISABLED_PROFILER, PhaseProfiler
from repro.obs.trace import NULL_TRACER, Span, Tracer, validate_chrome_trace

__all__ = [
    "PhaseProfiler",
    "DISABLED_PROFILER",
    "CounterSet",
    "Tracer",
    "Span",
    "NULL_TRACER",
    "validate_chrome_trace",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "gini",
    "skew_summary",
    "record_execution",
    "ExplainAnalyzeReport",
    "MultiJoinExplainAnalyzeReport",
    "NodeDelta",
]
