"""Observability: profiling, counters, spans, metrics, telemetry export."""

from repro.obs.counters import CounterSet
from repro.obs.explain_analyze import (
    ExplainAnalyzeReport,
    MultiJoinExplainAnalyzeReport,
    NodeDelta,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    RollingHistogram,
    gini,
    record_execution,
    skew_summary,
)
from repro.obs.telemetry import (
    QueryLog,
    parse_exposition,
    render_prometheus,
    validate_exposition,
)
from repro.obs.timers import DISABLED_PROFILER, PhaseProfiler
from repro.obs.trace import NULL_TRACER, Span, Tracer, validate_chrome_trace

__all__ = [
    "PhaseProfiler",
    "DISABLED_PROFILER",
    "CounterSet",
    "Tracer",
    "Span",
    "NULL_TRACER",
    "validate_chrome_trace",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RollingHistogram",
    "QueryLog",
    "render_prometheus",
    "parse_exposition",
    "validate_exposition",
    "gini",
    "skew_summary",
    "record_execution",
    "ExplainAnalyzeReport",
    "MultiJoinExplainAnalyzeReport",
    "NodeDelta",
]
