"""Named monotonic counters for serving-path observability.

A :class:`CounterSet` is the counting sibling of
:class:`repro.obs.timers.PhaseProfiler`: where the profiler accumulates
wall-clock seconds per phase, a counter set accumulates event counts per
name (cache hits, misses, evictions, invalidations). Like the profiler
it is deliberately tiny — a dict of ints behind increment/snapshot — so
it can sit on the warm query path at negligible cost.

Counter sets are thread-safe: the serving front end
(:mod:`repro.serve.server`) drives one executor's caches and metrics
from many dispatch threads, so every read-modify-write here holds a
lock. Instances still pickle cleanly (the lock is dropped and re-created
on unpickle) because per-worker counter sets cross process boundaries in
``BatchResult``/``ShmBatchResult``.
"""

from __future__ import annotations

import threading


class CounterSet:
    """Accumulates named event counts.

    >>> counters = CounterSet()
    >>> counters.increment("hits")
    >>> counters.increment("misses", 2)
    >>> counters.snapshot()
    {'hits': 1, 'misses': 2}
    """

    __slots__ = ("_counts", "_lock")

    def __init__(self) -> None:
        self._counts: dict[str, int] = {}
        self._lock = threading.Lock()

    def increment(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counts[name] = self._counts.get(name, 0) + amount

    def add(self, name: str, amount: int = 1) -> None:
        """Alias of :meth:`increment` — reads better at call sites that
        accumulate measured quantities (``counters.add("rows", n)``)."""
        self.increment(name, amount)

    def merge(self, other: "CounterSet") -> "CounterSet":
        """Fold another counter set in (summing shared names).

        The combinator for per-worker counter sets: each worker counts
        into its own set, the coordinator merges them at join.
        """
        for name, count in other.snapshot().items():
            self.increment(name, count)
        return self

    def value(self, name: str) -> int:
        with self._lock:
            return self._counts.get(name, 0)

    def snapshot(self) -> dict[str, int]:
        """Copy of the current counts (stable key order: first increment)."""
        with self._lock:
            return dict(self._counts)

    def reset(self) -> None:
        with self._lock:
            self._counts.clear()

    def describe(self) -> str:
        """Human-readable one-liner: ``hits=3 misses=1 evictions=0``."""
        counts = self.snapshot()
        if not counts:
            return "(no events recorded)"
        return " ".join(
            f"{name}={count}" for name, count in sorted(counts.items())
        )

    # Locks do not pickle; per-worker counter sets ride home through
    # multiprocessing pipes, so strip the lock and rebuild it.
    def __getstate__(self) -> dict[str, int]:
        return self.snapshot()

    def __setstate__(self, counts: dict[str, int]) -> None:
        self._counts = dict(counts)
        self._lock = threading.Lock()


__all__ = ["CounterSet"]
