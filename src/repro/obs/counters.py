"""Named monotonic counters for serving-path observability.

A :class:`CounterSet` is the counting sibling of
:class:`repro.obs.timers.PhaseProfiler`: where the profiler accumulates
wall-clock seconds per phase, a counter set accumulates event counts per
name (cache hits, misses, evictions, invalidations). Like the profiler
it is deliberately tiny — a dict of ints behind increment/snapshot — so
it can sit on the warm query path at negligible cost.
"""

from __future__ import annotations


class CounterSet:
    """Accumulates named event counts.

    >>> counters = CounterSet()
    >>> counters.increment("hits")
    >>> counters.increment("misses", 2)
    >>> counters.snapshot()
    {'hits': 1, 'misses': 2}
    """

    __slots__ = ("_counts",)

    def __init__(self) -> None:
        self._counts: dict[str, int] = {}

    def increment(self, name: str, amount: int = 1) -> None:
        self._counts[name] = self._counts.get(name, 0) + amount

    #: ``add`` reads better at call sites that accumulate measured
    #: quantities (``counters.add("rows", n)``) — same operation.
    add = increment

    def merge(self, other: "CounterSet") -> "CounterSet":
        """Fold another counter set in (summing shared names).

        The combinator for per-worker counter sets: each worker counts
        into its own set, the coordinator merges them at join.
        """
        for name, count in other._counts.items():
            self.increment(name, count)
        return self

    def value(self, name: str) -> int:
        return self._counts.get(name, 0)

    def snapshot(self) -> dict[str, int]:
        """Copy of the current counts (stable key order: first increment)."""
        return dict(self._counts)

    def reset(self) -> None:
        self._counts.clear()

    def describe(self) -> str:
        """Human-readable one-liner: ``hits=3 misses=1 evictions=0``."""
        if not self._counts:
            return "(no events recorded)"
        return " ".join(
            f"{name}={count}" for name, count in sorted(self._counts.items())
        )


__all__ = ["CounterSet"]
