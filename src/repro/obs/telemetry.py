"""Telemetry exposition: Prometheus text rendering and the query log.

This module turns the in-process instruments of
:class:`repro.obs.metrics.MetricsRegistry` into the two artifacts a
production monitoring loop consumes:

- :func:`render_prometheus` — the Prometheus text exposition format
  (version 0.0.4) over a registry snapshot: counters (``_total``),
  gauges, histograms (cumulative ``_bucket``/``_sum``/``_count``), and
  rolling windows as summaries with ``quantile`` labels. Dotted-suffix
  names the executor mints per tenant (``tenant_cache_hits.<t>``) map
  to label pairs (``tenant_cache_hits_total{tenant="<t>"}``) via
  :data:`DEFAULT_LABEL_RULES`; metric names are sanitised to the
  exposition charset, label values escaped, and a cardinality guard
  caps per-family series — the long tail beyond ``max_series``
  aggregates into one ``_overflow`` series so a tenant explosion can
  never balloon the scrape.
- :class:`QueryLog` — a structured JSONL log, one record per served
  request, with size-based rotation (``query.log`` → ``query.log.1`` →
  …) so a long-running server's disk use stays bounded.

A deliberately small exposition parser (:func:`parse_exposition` /
:func:`validate_exposition`) closes the loop: CI scrapes a live
``/metrics`` endpoint and validates the grammar — TYPE declarations,
sample syntax, label quoting, histogram bucket monotonicity — with the
same code tests use. ``python -m repro.obs.telemetry FILE`` validates a
scraped exposition file, mirroring ``python -m repro.obs.trace``.

Rendering reads one consistent registry snapshot, so scraping a server
under load is safe — the instruments themselves are individually
atomic (PR 8) and the snapshot sorts every section, making consecutive
scrapes of a quiesced server byte-identical.
"""

from __future__ import annotations

import json
import math
import os
import re
import threading

from repro.obs.metrics import Histogram, MetricsRegistry

#: Dotted-suffix metric names mapped to (label name) — the renderer
#: splits ``<family>.<value>`` at the first dot and emits the tail as a
#: label. Families not listed here keep their dots sanitised to ``_``.
DEFAULT_LABEL_RULES: dict[str, str] = {
    "tenant_cache_hits": "tenant",
    "tenant_cache_misses": "tenant",
    "serve_latency_window": "tenant",
}

#: Window quantiles exposed for rolling histograms (summary families).
SUMMARY_QUANTILES = (0.5, 0.95, 0.99)

#: Label value the cardinality guard aggregates the long tail into.
OVERFLOW_LABEL = "_overflow"

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_SANITIZE_RE = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_metric_name(name: str) -> str:
    """Coerce an internal metric name into the exposition charset.

    Invalid characters become ``_``; a leading digit gains a ``_``
    prefix. Idempotent, and the identity on names that are already
    valid.
    """
    cleaned = _SANITIZE_RE.sub("_", str(name))
    if not cleaned:
        return "_"
    if cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format rules."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def split_labeled_name(
    name: str, label_rules: dict[str, str] | None = None
) -> tuple[str, dict[str, str]]:
    """Resolve one internal metric name to (family, labels).

    ``tenant_cache_hits.t0`` splits at the first dot when the head has a
    label rule; anything else keeps the whole (sanitised) name and no
    labels.
    """
    rules = DEFAULT_LABEL_RULES if label_rules is None else label_rules
    head, dot, tail = str(name).partition(".")
    if dot and head in rules and tail:
        return sanitize_metric_name(head), {rules[head]: tail}
    return sanitize_metric_name(name), {}


def _format_value(value) -> str:
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _labels_text(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{escape_label_value(value)}"'
        for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _window_quantile(payload: dict, q: float) -> float:
    """Quantile of a histogram/rolling snapshot payload."""
    histogram = Histogram(payload["bounds"])
    histogram.counts = list(payload["counts"])
    histogram.count = int(payload["count"])
    histogram.total = float(payload["sum"])
    return histogram.quantile(q)


class _Family:
    """One exposition family being assembled: type + labelled samples."""

    __slots__ = ("name", "kind", "samples")

    def __init__(self, name: str, kind: str):
        self.name = name
        self.kind = kind
        #: list of (labels, payload) — payload is a float for
        #: counter/gauge, a histogram snapshot dict otherwise.
        self.samples: list[tuple[dict, object]] = []

    def _weight(self, payload) -> float:
        if isinstance(payload, dict):
            return float(payload["count"])
        return float(payload)

    def capped(self, max_series: int) -> list[tuple[dict, object]]:
        """The samples after the cardinality guard.

        Unlabelled families pass through. Labelled families keep the
        ``max_series`` heaviest series (weight = value for counters and
        gauges, observation count for histograms/summaries; name breaks
        ties, so the cut is deterministic) and aggregate the remainder
        into one ``_overflow`` series per label name.
        """
        labelled = [sample for sample in self.samples if sample[0]]
        unlabelled = [sample for sample in self.samples if not sample[0]]
        if len(labelled) <= max_series:
            return sorted(self.samples, key=lambda s: sorted(s[0].items()))
        ranked = sorted(
            labelled,
            key=lambda s: (-self._weight(s[1]), sorted(s[0].items())),
        )
        kept, spilled = ranked[:max_series], ranked[max_series:]
        label_name = next(iter(spilled[0][0]))
        overflow_labels = {label_name: OVERFLOW_LABEL}
        first = spilled[0][1]
        if isinstance(first, dict):
            merged = {
                "bounds": list(first["bounds"]),
                "counts": [0] * len(first["counts"]),
                "count": 0,
                "sum": 0.0,
            }
            for _, payload in spilled:
                for index, count in enumerate(payload["counts"]):
                    merged["counts"][index] += count
                merged["count"] += payload["count"]
                merged["sum"] += payload["sum"]
            overflow: object = merged
        else:
            overflow = sum(float(payload) for _, payload in spilled)
        capped = unlabelled + kept + [(overflow_labels, overflow)]
        return sorted(capped, key=lambda s: sorted(s[0].items()))


def _assemble_families(
    snapshot: dict,
    label_rules: dict[str, str] | None,
    namespace: str,
) -> dict[str, _Family]:
    prefix = f"{sanitize_metric_name(namespace)}_" if namespace else ""
    families: dict[str, _Family] = {}

    def family(raw_name: str, kind: str, suffix: str = "") -> tuple[_Family, dict]:
        base, labels = split_labeled_name(raw_name, label_rules)
        name = prefix + base + suffix
        entry = families.get(name)
        if entry is None:
            entry = families[name] = _Family(name, kind)
        return entry, labels

    for name, value in snapshot.get("counters", {}).items():
        entry, labels = family(name, "counter", "_total")
        entry.samples.append((labels, float(value)))
    for name, value in snapshot.get("gauges", {}).items():
        entry, labels = family(name, "gauge")
        entry.samples.append((labels, float(value)))
    for name, payload in snapshot.get("histograms", {}).items():
        entry, labels = family(name, "histogram")
        entry.samples.append((labels, payload))
    for name, payload in snapshot.get("rolling", {}).items():
        entry, labels = family(name, "summary")
        entry.samples.append((labels, payload))
    return families


def render_prometheus(
    registry_or_snapshot,
    namespace: str = "repro",
    label_rules: dict[str, str] | None = None,
    max_series: int = 64,
) -> str:
    """Render a registry (or its snapshot) as Prometheus text exposition.

    Families are emitted in sorted name order with one ``# TYPE`` line
    each; sample order within a family is sorted by labels, so the
    output is deterministic for a given snapshot. ``max_series`` is the
    per-family cardinality cap (see :meth:`_Family.capped`).
    """
    if isinstance(registry_or_snapshot, MetricsRegistry):
        snapshot = registry_or_snapshot.snapshot()
    else:
        snapshot = registry_or_snapshot
    if max_series < 1:
        raise ValueError(f"max_series must be at least 1, got {max_series}")
    families = _assemble_families(snapshot, label_rules, namespace)
    lines: list[str] = []
    for name in sorted(families):
        entry = families[name]
        lines.append(f"# TYPE {name} {entry.kind}")
        for labels, payload in entry.capped(max_series):
            if entry.kind in ("counter", "gauge"):
                lines.append(
                    f"{name}{_labels_text(labels)} {_format_value(payload)}"
                )
                continue
            if entry.kind == "histogram":
                cumulative = 0
                for edge, count in zip(
                    payload["bounds"], payload["counts"]
                ):
                    cumulative += count
                    bucket_labels = {**labels, "le": _format_value(edge)}
                    lines.append(
                        f"{name}_bucket{_labels_text(bucket_labels)} "
                        f"{cumulative}"
                    )
                cumulative += payload["counts"][-1]
                bucket_labels = {**labels, "le": "+Inf"}
                lines.append(
                    f"{name}_bucket{_labels_text(bucket_labels)} {cumulative}"
                )
            else:  # summary (rolling window)
                for q in SUMMARY_QUANTILES:
                    q_labels = {**labels, "quantile": _format_value(q)}
                    lines.append(
                        f"{name}{_labels_text(q_labels)} "
                        f"{_format_value(_window_quantile(payload, q))}"
                    )
            lines.append(
                f"{name}_sum{_labels_text(labels)} "
                f"{_format_value(payload['sum'])}"
            )
            lines.append(
                f"{name}_count{_labels_text(labels)} {int(payload['count'])}"
            )
    return "\n".join(lines) + "\n" if lines else ""


# ----------------------------------------------------------------- parsing

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+(?P<timestamp>-?\d+))?$"
)


def _parse_labels(text: str) -> dict[str, str]:
    """Parse the inside of a ``{...}`` label set; raises ValueError."""
    labels: dict[str, str] = {}
    position = 0
    while position < len(text):
        match = re.match(r'([a-zA-Z_][a-zA-Z0-9_]*)="', text[position:])
        if match is None:
            raise ValueError(f"bad label syntax at {text[position:]!r}")
        name = match.group(1)
        position += match.end()
        value_chars: list[str] = []
        while position < len(text):
            char = text[position]
            if char == "\\":
                if position + 1 >= len(text):
                    raise ValueError("dangling escape in label value")
                escape = text[position + 1]
                if escape not in ('"', "\\", "n"):
                    raise ValueError(f"bad escape \\{escape} in label value")
                value_chars.append("\n" if escape == "n" else escape)
                position += 2
                continue
            if char == '"':
                position += 1
                break
            value_chars.append(char)
            position += 1
        else:
            raise ValueError("unterminated label value")
        if name in labels:
            raise ValueError(f"duplicate label {name!r}")
        labels[name] = "".join(value_chars)
        if position < len(text):
            if text[position] != ",":
                raise ValueError(f"expected ',' at {text[position:]!r}")
            position += 1
    return labels


def _parse_value(text: str) -> float:
    if text in ("+Inf", "Inf"):
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    return float(text)


def parse_exposition(text: str) -> tuple[dict, list[str]]:
    """Parse Prometheus text exposition; returns (families, errors).

    ``families`` maps family name → ``{"type": str, "samples": [(name,
    labels, value), ...]}``. The checks cover what a real scraper
    enforces: TYPE syntax and uniqueness, sample grammar, label quoting
    and escapes, float-parsable values, samples belonging to a declared
    family, no duplicate (name, labels) series, and — for histograms —
    an ``le`` label on every bucket, cumulative non-decreasing bucket
    counts, a terminal ``+Inf`` bucket agreeing with ``_count``.
    """
    families: dict[str, dict] = {}
    errors: list[str] = []

    def family_of(sample_name: str) -> str | None:
        if sample_name in families:
            return sample_name
        for suffix in ("_bucket", "_sum", "_count"):
            if sample_name.endswith(suffix):
                base = sample_name[: -len(suffix)]
                if base in families and families[base]["type"] in (
                    "histogram", "summary",
                ):
                    return base
        return None

    for index, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.rstrip()
        if not line:
            continue
        where = f"line {index}"
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) != 4:
                    errors.append(f"{where}: malformed TYPE comment")
                    continue
                _, _, name, kind = parts
                if not _NAME_RE.match(name):
                    errors.append(f"{where}: invalid metric name {name!r}")
                    continue
                if kind not in (
                    "counter", "gauge", "histogram", "summary", "untyped",
                ):
                    errors.append(f"{where}: unknown TYPE {kind!r}")
                    continue
                if name in families:
                    errors.append(f"{where}: duplicate TYPE for {name!r}")
                    continue
                families[name] = {"type": kind, "samples": []}
            # HELP and free comments are legal and carry no structure.
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            errors.append(f"{where}: unparsable sample {line!r}")
            continue
        sample_name = match.group("name")
        try:
            labels = (
                _parse_labels(match.group("labels"))
                if match.group("labels") is not None
                else {}
            )
        except ValueError as exc:
            errors.append(f"{where}: {exc}")
            continue
        for label_name in labels:
            if not _LABEL_NAME_RE.match(label_name):
                errors.append(f"{where}: invalid label name {label_name!r}")
        try:
            value = _parse_value(match.group("value"))
        except ValueError:
            errors.append(
                f"{where}: unparsable value {match.group('value')!r}"
            )
            continue
        base = family_of(sample_name)
        if base is None:
            errors.append(
                f"{where}: sample {sample_name!r} has no TYPE declaration"
            )
            continue
        series_key = (sample_name, tuple(sorted(labels.items())))
        seen = families[base].setdefault("_series", set())
        if series_key in seen:
            errors.append(
                f"{where}: duplicate series {sample_name}{labels!r}"
            )
            continue
        seen.add(series_key)
        families[base]["samples"].append((sample_name, labels, value))

    for name, entry in families.items():
        entry.pop("_series", None)
        if entry["type"] != "histogram":
            continue
        buckets: dict[tuple, list[tuple[float, float]]] = {}
        counts: dict[tuple, float] = {}
        for sample_name, labels, value in entry["samples"]:
            if sample_name == f"{name}_bucket":
                if "le" not in labels:
                    errors.append(
                        f"{name}: bucket sample missing 'le' label"
                    )
                    continue
                try:
                    edge = _parse_value(labels["le"])
                except ValueError:
                    errors.append(
                        f"{name}: unparsable le {labels['le']!r}"
                    )
                    continue
                key = tuple(
                    sorted((k, v) for k, v in labels.items() if k != "le")
                )
                buckets.setdefault(key, []).append((edge, value))
            elif sample_name == f"{name}_count":
                counts[tuple(sorted(labels.items()))] = value
        for key, series in buckets.items():
            ordered = sorted(series)
            cumulative = [count for _, count in ordered]
            if cumulative != sorted(cumulative):
                errors.append(
                    f"{name}: bucket counts not cumulative for {dict(key)}"
                )
            if not ordered or not math.isinf(ordered[-1][0]):
                errors.append(
                    f"{name}: missing +Inf bucket for {dict(key)}"
                )
            elif key in counts and counts[key] != ordered[-1][1]:
                errors.append(
                    f"{name}: +Inf bucket != _count for {dict(key)}"
                )
    return families, errors


def validate_exposition(text: str) -> list[str]:
    """Grammar-check exposition text; an empty list means it scrapes."""
    if not text.strip():
        return []
    return parse_exposition(text)[1]


# ---------------------------------------------------------------- query log


class QueryLog:
    """Structured JSONL request log with size-based rotation.

    One :meth:`log` call appends one JSON object per line (sorted keys,
    so records diff cleanly) and flushes — a crash loses at most the
    OS buffer. When the active file would exceed ``max_bytes`` the log
    rotates: ``path`` → ``path.1`` → … → ``path.<max_files-1>``, the
    oldest falling off the end, so total disk use stays bounded at
    roughly ``max_bytes * max_files``.
    """

    def __init__(
        self,
        path,
        max_bytes: int = 16 * 1024 * 1024,
        max_files: int = 4,
    ):
        if max_bytes < 1:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        if max_files < 1:
            raise ValueError(f"max_files must be positive, got {max_files}")
        self.path = str(path)
        self.max_bytes = int(max_bytes)
        self.max_files = int(max_files)
        self.records = 0
        self.rotations = 0
        self._lock = threading.Lock()
        self._handle = open(self.path, "a", encoding="utf-8")
        self._size = os.path.getsize(self.path)

    def log(self, record: dict) -> None:
        line = json.dumps(record, sort_keys=True, default=float) + "\n"
        encoded = len(line.encode("utf-8"))
        with self._lock:
            if self._handle is None:
                raise ValueError("query log is closed")
            if self._size and self._size + encoded > self.max_bytes:
                self._rotate()
            self._handle.write(line)
            self._handle.flush()
            self._size += encoded
            self.records += 1

    def _rotate(self) -> None:
        self._handle.close()
        for index in range(self.max_files - 1, 0, -1):
            older = f"{self.path}.{index}"
            newer = f"{self.path}.{index + 1}"
            if os.path.exists(older):
                if index == self.max_files - 1:
                    os.remove(older)
                else:
                    os.replace(older, newer)
        if self.max_files > 1:
            os.replace(self.path, f"{self.path}.1")
        else:
            os.remove(self.path)
        self._handle = open(self.path, "a", encoding="utf-8")
        self._size = 0
        self.rotations += 1

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "QueryLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.obs.telemetry FILE`` — validate an exposition."""
    import argparse

    parser = argparse.ArgumentParser(
        description="validate a Prometheus text exposition file"
    )
    parser.add_argument("path", help="scraped /metrics output to check")
    args = parser.parse_args(argv)
    with open(args.path, "r", encoding="utf-8") as handle:
        text = handle.read()
    families, errors = parse_exposition(text)
    if errors:
        for error in errors:
            print(f"{args.path}: {error}")
        return 1
    n_samples = sum(len(entry["samples"]) for entry in families.values())
    print(f"{args.path}: ok ({len(families)} families, {n_samples} samples)")
    return 0


__all__ = [
    "DEFAULT_LABEL_RULES",
    "SUMMARY_QUANTILES",
    "OVERFLOW_LABEL",
    "QueryLog",
    "escape_label_value",
    "parse_exposition",
    "render_prometheus",
    "sanitize_metric_name",
    "split_labeled_name",
    "validate_exposition",
]


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
