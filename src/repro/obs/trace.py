"""Thread-safe span tracing with Chrome trace-event export.

A :class:`Tracer` records nested *spans* — named intervals with start/end
timestamps and free-form attributes — from any number of threads at
once. Nesting is tracked per thread (each thread owns its own span
stack), finished spans are appended to one shared list under a lock, and
per-worker tracers created with :meth:`Tracer.worker` share the parent's
epoch so their spans merge onto one timeline (:meth:`Tracer.extend`),
which is how the process-pool execution path returns spans across
pickling boundaries.

Two export formats:

- :meth:`Tracer.chrome_trace` — the Chrome trace-event JSON object
  (``{"traceEvents": [...]}``, complete ``"X"`` events plus
  ``thread_name`` metadata), loadable in Perfetto / ``chrome://tracing``;
- :meth:`Tracer.jsonl_lines` — one JSON object per span, for grepping
  and programmatic diffing.

Spans land on *lanes* (Chrome "threads"): by default the recording
thread's name, overridable per tracer (worker tracers label themselves
``worker:nK``) and per raw span (the simulated network schedule exports
its transfer events onto per-destination ``net:*`` lanes).

Disabled tracers (the default everywhere) hand out one shared no-op
context manager, so instrumented call sites cost a single attribute
check — the same pattern as :class:`repro.obs.timers.PhaseProfiler`.

``python -m repro.obs.trace FILE`` validates an exported Chrome trace
file structurally (used by CI on the benchmark's traced run).
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field


@dataclass
class Span:
    """One finished span, on the owning tracer's timeline.

    ``start``/``end`` are seconds since the tracer's epoch; ``path`` is
    the slash-joined nesting path within the recording thread (raw spans
    inserted with :meth:`Tracer.add_span` use their own name).
    """

    name: str
    start: float
    end: float
    path: str
    lane: str
    attrs: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


class _NullSpan:
    """Shared no-op span for disabled tracers."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None

    def set(self, **attrs) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class _ActiveSpan:
    """A span being recorded; finishes (and publishes) on ``__exit__``."""

    __slots__ = ("_tracer", "_stack", "name", "attrs", "_start", "_path")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs

    def set(self, **attrs) -> "_ActiveSpan":
        """Attach attributes to the span while it is open."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "_ActiveSpan":
        stack = self._tracer._thread_stack()
        stack.append(self.name)
        self._stack = stack
        self._path = "/".join(stack)
        self._start = self._tracer.now()
        return self

    def __exit__(self, *exc) -> None:
        end = self._tracer.now()
        self._stack.pop()
        self._tracer._publish(
            Span(
                name=self.name,
                start=self._start,
                end=end,
                path=self._path,
                lane=self._tracer._lane(),
                attrs=self.attrs,
            )
        )


class Tracer:
    """Collects spans from any number of threads onto one timeline."""

    def __init__(
        self,
        enabled: bool = True,
        epoch: float | None = None,
        default_lane: str | None = None,
    ):
        self.enabled = enabled
        #: perf_counter value all span timestamps are relative to;
        #: worker tracers inherit it so merged spans stay aligned.
        self.epoch = time.perf_counter() if epoch is None else epoch
        self.default_lane = default_lane
        self._spans: list[Span] = []
        #: Deferred span groups: (shared span list, timeline offset).
        #: Materialised lazily on read — see :meth:`extend_rebased`.
        self._rebased: list[tuple[list[Span], float]] = []
        self._mutex = threading.Lock()
        self._local = threading.local()

    # ------------------------------------------------------------- recording

    def now(self) -> float:
        """Seconds since the tracer's epoch (monotonic)."""
        return time.perf_counter() - self.epoch

    def span(self, name: str, **attrs):
        """Context manager recording one nested span (no-op if disabled)."""
        if not self.enabled:
            return _NULL_SPAN
        return _ActiveSpan(self, name, attrs)

    def add_span(
        self,
        name: str,
        start: float,
        end: float,
        lane: str | None = None,
        **attrs,
    ) -> None:
        """Insert one raw span with explicit epoch-relative timestamps.

        Used for events whose timing is known rather than measured — the
        simulated shuffle schedule's transfer events, for example.
        """
        if not self.enabled:
            return
        self._publish(
            Span(
                name=name,
                start=start,
                end=end,
                path=name,
                lane=lane if lane is not None else self._lane(),
                attrs=attrs,
            )
        )

    def worker(self, lane: str) -> "Tracer":
        """A fresh tracer sharing this one's epoch, for one pool worker.

        The worker records into its own span list (safe to pickle back
        from a process-pool task); the coordinator merges the finished
        spans with :meth:`extend`.
        """
        return Tracer(enabled=self.enabled, epoch=self.epoch, default_lane=lane)

    def extend(self, spans: list[Span]) -> None:
        """Merge finished spans (from a worker tracer) onto the timeline."""
        if not self.enabled or not spans:
            return
        with self._mutex:
            self._spans.extend(spans)

    def extend_rebased(self, spans: list[Span], offset: float) -> None:
        """Merge a *shared* span list, shifted by ``offset``, lazily.

        Recording is O(1): the reference and offset are stored and the
        shifted copies are only materialised when the timeline is read.
        This is how the simulated shuffle schedule exports its (cached,
        per-schedule) transfer spans without paying thousands of object
        constructions on every traced execution. Callers must not mutate
        ``spans`` afterwards.
        """
        if not self.enabled or not spans:
            return
        with self._mutex:
            self._rebased.append((spans, offset))

    def _publish(self, span: Span) -> None:
        with self._mutex:
            self._spans.append(span)

    def _thread_stack(self) -> list[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _lane(self) -> str:
        if self.default_lane is not None:
            return self.default_lane
        name = threading.current_thread().name
        return "main" if name == "MainThread" else name

    # --------------------------------------------------------------- reading

    @property
    def spans(self) -> list[Span]:
        """Snapshot of the finished spans, in start-time order.

        Deferred (:meth:`extend_rebased`) groups are materialised here —
        shifted copies, leaving the shared originals untouched.
        """
        with self._mutex:
            snapshot = list(self._spans)
            for group, offset in self._rebased:
                snapshot.extend(
                    Span(
                        name=span.name,
                        start=span.start + offset,
                        end=span.end + offset,
                        path=span.path,
                        lane=span.lane,
                        attrs=span.attrs,
                    )
                    for span in group
                )
        return sorted(snapshot, key=lambda s: (s.start, s.end))

    def __len__(self) -> int:
        with self._mutex:
            return len(self._spans) + sum(
                len(group) for group, _ in self._rebased
            )

    def clear(self) -> None:
        with self._mutex:
            self._spans.clear()
            self._rebased.clear()

    # --------------------------------------------------------------- exports

    def chrome_trace(self) -> dict:
        """The Chrome trace-event JSON object for this timeline.

        One complete (``"X"``) event per span — timestamps in
        microseconds, as the format requires — plus one ``thread_name``
        metadata event per lane so Perfetto labels the tracks.
        """
        spans = self.spans
        lanes: dict[str, int] = {}
        for span in spans:
            lanes.setdefault(span.lane, len(lanes))
        events: list[dict] = [
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": lane},
            }
            for lane, tid in lanes.items()
        ]
        for span in spans:
            events.append(
                {
                    "name": span.name,
                    "cat": "repro",
                    "ph": "X",
                    "ts": span.start * 1e6,
                    "dur": span.duration * 1e6,
                    "pid": 1,
                    "tid": lanes[span.lane],
                    "args": {"path": span.path, **span.attrs},
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome(self, path) -> int:
        """Write the Chrome trace JSON to ``path``; returns span count."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.chrome_trace(), handle)
            handle.write("\n")
        return len(self)

    def jsonl_lines(self) -> list[str]:
        """One JSON object per span (start/dur in seconds)."""
        return [
            json.dumps(
                {
                    "name": span.name,
                    "path": span.path,
                    "lane": span.lane,
                    "start": span.start,
                    "dur": span.duration,
                    "attrs": span.attrs,
                },
                sort_keys=True,
            )
            for span in self.spans
        ]

    def write_jsonl(self, path) -> int:
        with open(path, "w", encoding="utf-8") as handle:
            for line in self.jsonl_lines():
                handle.write(line + "\n")
        return len(self)


#: Shared always-off tracer for call sites that want a safe default.
#: Disabled tracers record nothing, so sharing one instance is safe.
NULL_TRACER = Tracer(enabled=False)


def validate_chrome_trace(payload) -> list[str]:
    """Structural check of a Chrome trace-event object; returns errors.

    Verifies the shape Perfetto and ``chrome://tracing`` require:
    a ``traceEvents`` list of dict events, every event carrying a string
    ``name``, a known phase, integer ``pid``/``tid``, and — for complete
    events — non-negative numeric ``ts``/``dur``. An empty error list
    means the trace loads.
    """
    errors: list[str] = []
    if not isinstance(payload, dict):
        return [f"trace must be a JSON object, got {type(payload).__name__}"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    n_complete = 0
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: event must be an object")
            continue
        if not isinstance(event.get("name"), str) or not event["name"]:
            errors.append(f"{where}: missing string name")
        phase = event.get("ph")
        if phase not in ("X", "M"):
            errors.append(f"{where}: unsupported phase {phase!r}")
            continue
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                errors.append(f"{where}: {key} must be an integer")
        if phase == "X":
            n_complete += 1
            for key in ("ts", "dur"):
                value = event.get(key)
                if not isinstance(value, (int, float)) or value < 0:
                    errors.append(f"{where}: {key} must be a number >= 0")
    if not errors and n_complete == 0:
        errors.append("trace contains no complete (ph=X) events")
    return errors


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.obs.trace FILE`` — validate an exported trace."""
    import argparse

    parser = argparse.ArgumentParser(
        description="validate a Chrome trace-event JSON file"
    )
    parser.add_argument("path", help="trace file to check")
    args = parser.parse_args(argv)
    with open(args.path, "r", encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as exc:
            print(f"{args.path}: not valid JSON: {exc}")
            return 1
    errors = validate_chrome_trace(payload)
    if errors:
        for error in errors:
            print(f"{args.path}: {error}")
        return 1
    n_events = len(payload["traceEvents"])
    print(f"{args.path}: ok ({n_events} events)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
