"""Metrics registry: counters, gauges, histograms, and skew statistics.

Where :mod:`repro.obs.timers` answers "where did the time go" and
:mod:`repro.obs.trace` answers "what happened when", this module answers
"how much": a :class:`MetricsRegistry` aggregates named counters
(monotonic totals — cells shuffled, matches emitted), gauges (last
observed values — the latest query's imbalance), and fixed-bucket
histograms (distributions — per-node busy seconds). Per-worker
registries merge with :meth:`MetricsRegistry.merge`, mirroring
:meth:`repro.obs.counters.CounterSet.merge`.

The skew statistics the physical planners are judged by live here too:
:func:`gini` and :func:`skew_summary` condense a per-node load vector
into the imbalance numbers (max/mean ratio, Gini coefficient,
coefficient of variation) that SharesSkew-style evaluations report, and
that :class:`repro.obs.explain_analyze.ExplainAnalyzeReport` prints
next to the cost model's per-node predictions.
"""

from __future__ import annotations

import math
import threading
import time

import numpy as np


class Counter:
    """A monotonically increasing named total.

    Increments are atomic (lock-guarded): the serving front end updates
    one registry from many dispatch threads concurrently.
    """

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only increase, got {amount}")
        with self._lock:
            self.value += amount

    def __getstate__(self) -> int:
        return self.value

    def __setstate__(self, value: int) -> None:
        self.value = value
        self._lock = threading.Lock()


class Gauge:
    """A current observed value: set outright or moved up and down.

    ``inc``/``dec`` make a gauge usable as a live occupancy count (the
    serving front end's in-flight and queue depth), which many dispatch
    threads adjust concurrently — hence the same lock discipline (and
    the same lock-dropping pickling) as :class:`Counter`.
    """

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += float(amount)

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def __getstate__(self) -> float:
        return self.value

    def __setstate__(self, value: float) -> None:
        self.value = float(value)
        self._lock = threading.Lock()


#: Default histogram bucket upper bounds: decade-spaced from 1ms up,
#: suitable for per-node busy seconds and phase durations.
DEFAULT_BUCKETS = (0.001, 0.01, 0.1, 1.0, 10.0, 100.0)

#: Finer-grained bounds for serving latencies (seconds): roughly
#: 1.6x-geometric from 0.5 ms to ~60 s, so p99 interpolation from the
#: bucket counts stays within a fraction of a bucket width.
LATENCY_BUCKETS = (
    0.0005, 0.0008, 0.00128, 0.002048, 0.003277, 0.005243, 0.008389,
    0.013422, 0.021475, 0.03436, 0.054976, 0.087961, 0.140737, 0.22518,
    0.360288, 0.57646, 0.922337, 1.475739, 2.361183, 3.777893, 6.044629,
    9.671407, 15.474251, 24.758801, 39.614081, 63.38253,
)


class Histogram:
    """Fixed-bucket histogram of observed values.

    ``bounds`` are the inclusive upper edges of the finite buckets; one
    implicit overflow bucket catches everything above the last edge.
    An observation lands in the first bucket whose edge is >= the value
    (the Prometheus ``le`` convention).
    """

    __slots__ = ("bounds", "counts", "total", "count", "_lock")

    def __init__(self, bounds=DEFAULT_BUCKETS):
        edges = [float(b) for b in bounds]
        if not edges or sorted(edges) != edges or len(set(edges)) != len(edges):
            raise ValueError(
                f"histogram bounds must be strictly increasing, got {bounds}"
            )
        self.bounds = tuple(edges)
        self.counts = [0] * (len(edges) + 1)
        self.total = 0.0
        self.count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        index = 0
        for edge in self.bounds:
            if value <= edge:
                break
            index += 1
        with self._lock:
            self.counts[index] += 1
            self.total += value
            self.count += 1

    def observe_many(self, values) -> None:
        for value in np.asarray(values, dtype=np.float64).ravel():
            self.observe(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (0..1) from the bucket counts.

        Linear interpolation inside the covering bucket, the Prometheus
        ``histogram_quantile`` convention: the answer is exact at bucket
        edges and off by at most one bucket width inside. Observations
        in the overflow bucket clamp to the last finite edge; an empty
        histogram reports 0.0.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            counts = list(self.counts)
            count = self.count
        if count == 0:
            return 0.0
        rank = q * count
        cumulative = 0.0
        for index, bucket_count in enumerate(counts):
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= rank:
                if index >= len(self.bounds):
                    return self.bounds[-1]
                low = 0.0 if index == 0 else self.bounds[index - 1]
                high = self.bounds[index]
                if bucket_count == 0:
                    return high
                return low + (high - low) * (rank - previous) / bucket_count
        return self.bounds[-1]

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "bounds": list(self.bounds),
                "counts": list(self.counts),
                "count": self.count,
                "sum": self.total,
            }

    def __getstate__(self) -> dict:
        return self.snapshot()

    def __setstate__(self, state: dict) -> None:
        self.bounds = tuple(state["bounds"])
        self.counts = list(state["counts"])
        self.total = float(state["sum"])
        self.count = int(state["count"])
        self._lock = threading.Lock()


class RollingHistogram:
    """A fixed-bucket histogram over the last ``window_seconds`` only.

    A ring of ``slots`` epoch-bucketed sub-histograms: each slot covers
    ``window_seconds / slots`` of wall time, an observation lands in the
    slot owning the current epoch (recycling it in place if its epoch
    has expired), and every read merges the slots still inside the
    window. Quantiles therefore describe *recent* traffic — the rolling
    p99 an SLO dashboard wants — instead of the lifetime distribution a
    plain :class:`Histogram` accumulates.

    ``clock`` is injectable (defaults to ``time.monotonic``) so tests
    can march time forward deterministically.
    """

    __slots__ = (
        "bounds", "window_seconds", "slots", "_slot_seconds",
        "_epochs", "_counts", "_totals", "_ns", "_clock", "_lock",
    )

    def __init__(
        self,
        bounds=LATENCY_BUCKETS,
        window_seconds: float = 60.0,
        slots: int = 6,
        clock=time.monotonic,
    ):
        if window_seconds <= 0:
            raise ValueError(
                f"window_seconds must be positive, got {window_seconds}"
            )
        if slots < 1:
            raise ValueError(f"need at least one slot, got {slots}")
        # Borrow Histogram's bounds validation.
        self.bounds = Histogram(bounds).bounds
        self.window_seconds = float(window_seconds)
        self.slots = int(slots)
        self._slot_seconds = self.window_seconds / self.slots
        self._epochs = [-1] * self.slots
        self._counts = [[0] * (len(self.bounds) + 1) for _ in range(self.slots)]
        self._totals = [0.0] * self.slots
        self._ns = [0] * self.slots
        self._clock = clock
        self._lock = threading.Lock()

    def _epoch(self) -> int:
        return int(self._clock() / self._slot_seconds)

    def observe(self, value: float) -> None:
        value = float(value)
        index = 0
        for edge in self.bounds:
            if value <= edge:
                break
            index += 1
        epoch = self._epoch()
        slot = epoch % self.slots
        with self._lock:
            if self._epochs[slot] != epoch:
                self._counts[slot] = [0] * (len(self.bounds) + 1)
                self._totals[slot] = 0.0
                self._ns[slot] = 0
                self._epochs[slot] = epoch
            self._counts[slot][index] += 1
            self._totals[slot] += value
            self._ns[slot] += 1

    def extend(self, window: Histogram) -> None:
        """Fold a plain histogram's counts into the current slot.

        Used when merging registries: the other ring was bucketed
        against a different clock, so slot-by-slot alignment is
        meaningless — its live window arrives here as "just seen".
        """
        if window.bounds != self.bounds:
            raise ValueError(
                f"bucket bounds differ: {self.bounds} vs {window.bounds}"
            )
        if not window.count:
            return
        epoch = self._epoch()
        slot = epoch % self.slots
        with self._lock:
            if self._epochs[slot] != epoch:
                self._counts[slot] = [0] * (len(self.bounds) + 1)
                self._totals[slot] = 0.0
                self._ns[slot] = 0
                self._epochs[slot] = epoch
            for index, count in enumerate(window.counts):
                self._counts[slot][index] += count
            self._totals[slot] += window.total
            self._ns[slot] += window.count

    def merged(self) -> Histogram:
        """The live window folded into one plain :class:`Histogram`."""
        horizon = self._epoch() - self.slots + 1
        merged = Histogram(self.bounds)
        with self._lock:
            for slot in range(self.slots):
                if self._epochs[slot] < horizon:
                    continue
                for index, count in enumerate(self._counts[slot]):
                    merged.counts[index] += count
                merged.total += self._totals[slot]
                merged.count += self._ns[slot]
        return merged

    def quantile(self, q: float) -> float:
        return self.merged().quantile(q)

    @property
    def count(self) -> int:
        return self.merged().count

    def snapshot(self) -> dict:
        merged = self.merged()
        return {
            "bounds": list(self.bounds),
            "counts": list(merged.counts),
            "count": merged.count,
            "sum": merged.total,
            "window_seconds": self.window_seconds,
        }

    def __getstate__(self) -> dict:
        with self._lock:
            return {
                "bounds": list(self.bounds),
                "window_seconds": self.window_seconds,
                "slots": self.slots,
                "epochs": list(self._epochs),
                "slot_counts": [list(counts) for counts in self._counts],
                "totals": list(self._totals),
                "ns": list(self._ns),
            }

    def __setstate__(self, state: dict) -> None:
        self.bounds = tuple(state["bounds"])
        self.window_seconds = float(state["window_seconds"])
        self.slots = int(state["slots"])
        self._slot_seconds = self.window_seconds / self.slots
        self._epochs = list(state["epochs"])
        self._counts = [list(counts) for counts in state["slot_counts"]]
        self._totals = list(state["totals"])
        self._ns = list(state["ns"])
        self._clock = time.monotonic
        self._lock = threading.Lock()


class MetricsRegistry:
    """Named counters, gauges, and histograms behind get-or-create.

    Get-or-create is lock-guarded so two threads asking for the same
    name always share one instrument (the instruments themselves are
    individually atomic); without it, concurrent first touches of a name
    could each create an instrument and drop the other's counts.
    """

    __slots__ = ("_counters", "_gauges", "_histograms", "_rolling", "_lock")

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._rolling: dict[str, RollingHistogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        with self._lock:
            counter = self._counters.get(name)
            if counter is None:
                counter = self._counters[name] = Counter()
            return counter

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            gauge = self._gauges.get(name)
            if gauge is None:
                gauge = self._gauges[name] = Gauge()
            return gauge

    def histogram(self, name: str, bounds=DEFAULT_BUCKETS) -> Histogram:
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram(bounds)
            return histogram

    def rolling_histogram(
        self,
        name: str,
        bounds=LATENCY_BUCKETS,
        window_seconds: float = 60.0,
        slots: int = 6,
    ) -> RollingHistogram:
        with self._lock:
            rolling = self._rolling.get(name)
            if rolling is None:
                rolling = self._rolling[name] = RollingHistogram(
                    bounds, window_seconds=window_seconds, slots=slots
                )
            return rolling

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold another registry in: counters/histograms add, gauges win
        by last write (the merged-in registry's value)."""
        for name, counter in other._counters.items():
            self.counter(name).inc(counter.value)
        for name, gauge in other._gauges.items():
            self.gauge(name).set(gauge.value)
        for name, histogram in other._histograms.items():
            mine = self.histogram(name, histogram.bounds)
            if mine.bounds != histogram.bounds:
                raise ValueError(
                    f"histogram {name!r} bucket bounds differ: "
                    f"{mine.bounds} vs {histogram.bounds}"
                )
            for index, count in enumerate(histogram.counts):
                mine.counts[index] += count
            mine.total += histogram.total
            mine.count += histogram.count
        for name, rolling in other._rolling.items():
            mine = self.rolling_histogram(
                name, rolling.bounds,
                window_seconds=rolling.window_seconds, slots=rolling.slots,
            )
            mine.extend(rolling.merged())
        return self

    def snapshot(self) -> dict:
        """Plain-dict view of everything recorded so far.

        Every section is sorted by metric name, so two registries that
        recorded the same facts in any order serialise byte-identically
        — CI artifacts containing snapshots diff cleanly.
        """
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
            rolling = dict(self._rolling)
        return {
            "counters": {
                name: counter.value
                for name, counter in sorted(counters.items())
            },
            "gauges": {
                name: gauge.value for name, gauge in sorted(gauges.items())
            },
            "histograms": {
                name: histogram.snapshot()
                for name, histogram in sorted(histograms.items())
            },
            "rolling": {
                name: window.snapshot()
                for name, window in sorted(rolling.items())
            },
        }

    def __getstate__(self) -> dict:
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": dict(self._histograms),
                "rolling": dict(self._rolling),
            }

    def __setstate__(self, state: dict) -> None:
        self._counters = dict(state["counters"])
        self._gauges = dict(state["gauges"])
        self._histograms = dict(state["histograms"])
        # Registries pickled before rolling windows existed restore
        # without them.
        self._rolling = dict(state.get("rolling", {}))
        self._lock = threading.Lock()

    def describe(self) -> str:
        snapshot = self.snapshot()
        lines = [
            f"{name}={value}" for name, value in snapshot["counters"].items()
        ]
        lines += [
            f"{name}={value:.6g}" for name, value in snapshot["gauges"].items()
        ]
        lines += [
            f"{name}: n={h['count']} mean="
            f"{(h['sum'] / h['count']) if h['count'] else 0.0:.6g}"
            for name, h in snapshot["histograms"].items()
        ]
        lines += [
            f"{name}[{h['window_seconds']:g}s]: n={h['count']} mean="
            f"{(h['sum'] / h['count']) if h['count'] else 0.0:.6g}"
            for name, h in snapshot["rolling"].items()
        ]
        return "\n".join(lines) if lines else "(no metrics recorded)"


# ------------------------------------------------------------- skew statistics


def gini(loads) -> float:
    """Gini coefficient of a non-negative load vector (0 = perfectly
    balanced, → 1 as one node carries everything).

    Uses the sorted-rank identity
    ``G = (2 Σ_i i·x_(i)) / (n Σ x) − (n + 1)/n`` with 1-based ranks
    over the ascending-sorted loads.
    """
    values = np.sort(np.asarray(loads, dtype=np.float64).ravel())
    if values.size == 0:
        return 0.0
    if np.any(values < 0):
        raise ValueError("gini expects non-negative loads")
    total = float(values.sum())
    if total == 0.0:
        return 0.0
    n = values.size
    ranks = np.arange(1, n + 1, dtype=np.float64)
    return float(2.0 * (ranks * values).sum() / (n * total) - (n + 1) / n)


def skew_summary(loads) -> dict:
    """The load-distribution numbers skew-aware planners are judged by.

    ``imbalance`` is max/mean (1.0 = perfectly balanced — the quantity
    Equations 4-8 minimise the max of), ``gini`` the Gini coefficient,
    ``cv`` the coefficient of variation. All are 0/1-neutral on an
    all-zero vector so empty phases don't read as pathological.
    """
    values = np.asarray(loads, dtype=np.float64).ravel()
    if values.size == 0:
        return {"max": 0.0, "mean": 0.0, "imbalance": 1.0, "gini": 0.0, "cv": 0.0}
    mean = float(values.mean())
    peak = float(values.max())
    if mean == 0.0:
        return {"max": peak, "mean": 0.0, "imbalance": 1.0, "gini": 0.0, "cv": 0.0}
    return {
        "max": peak,
        "mean": mean,
        "imbalance": peak / mean,
        "gini": gini(values),
        "cv": float(values.std()) / mean if not math.isnan(mean) else 0.0,
    }


def record_execution(registry: MetricsRegistry, report) -> None:
    """Fold one :class:`~repro.engine.executor.ExecutionReport` into the
    registry: traffic and output counters, per-node busy-time histogram,
    and the latest execution's skew gauges."""
    registry.counter("queries_executed").inc()
    registry.counter("cells_shuffled").inc(int(report.cells_moved))
    registry.counter("bytes_on_wire").inc(int(report.bytes_moved))
    registry.counter("network_transfers").inc(int(report.n_transfers))
    registry.counter("matches_emitted").inc(int(report.output_cells))
    registry.counter("join_units_planned").inc(int(report.n_units))
    if report.per_node_compare is not None:
        busy = np.asarray(report.per_node_compare, dtype=np.float64)
        registry.histogram("node_busy_seconds").observe_many(busy)
        summary = skew_summary(busy)
        registry.gauge("last_compare_imbalance").set(summary["imbalance"])
        registry.gauge("last_compare_gini").set(summary["gini"])
    if report.cells_received:
        received = np.asarray(list(report.cells_received.values()), np.float64)
        summary = skew_summary(received)
        registry.gauge("last_shuffle_imbalance").set(summary["imbalance"])
        registry.gauge("last_shuffle_gini").set(summary["gini"])


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "RollingHistogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "LATENCY_BUCKETS",
    "gini",
    "skew_summary",
    "record_execution",
]
