"""Metrics registry: counters, gauges, histograms, and skew statistics.

Where :mod:`repro.obs.timers` answers "where did the time go" and
:mod:`repro.obs.trace` answers "what happened when", this module answers
"how much": a :class:`MetricsRegistry` aggregates named counters
(monotonic totals — cells shuffled, matches emitted), gauges (last
observed values — the latest query's imbalance), and fixed-bucket
histograms (distributions — per-node busy seconds). Per-worker
registries merge with :meth:`MetricsRegistry.merge`, mirroring
:meth:`repro.obs.counters.CounterSet.merge`.

The skew statistics the physical planners are judged by live here too:
:func:`gini` and :func:`skew_summary` condense a per-node load vector
into the imbalance numbers (max/mean ratio, Gini coefficient,
coefficient of variation) that SharesSkew-style evaluations report, and
that :class:`repro.obs.explain_analyze.ExplainAnalyzeReport` prints
next to the cost model's per-node predictions.
"""

from __future__ import annotations

import math
import threading

import numpy as np


class Counter:
    """A monotonically increasing named total.

    Increments are atomic (lock-guarded): the serving front end updates
    one registry from many dispatch threads concurrently.
    """

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only increase, got {amount}")
        with self._lock:
            self.value += amount

    def __getstate__(self) -> int:
        return self.value

    def __setstate__(self, value: int) -> None:
        self.value = value
        self._lock = threading.Lock()


class Gauge:
    """A last-write-wins observed value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


#: Default histogram bucket upper bounds: decade-spaced from 1ms up,
#: suitable for per-node busy seconds and phase durations.
DEFAULT_BUCKETS = (0.001, 0.01, 0.1, 1.0, 10.0, 100.0)

#: Finer-grained bounds for serving latencies (seconds): roughly
#: 1.6x-geometric from 0.5 ms to ~60 s, so p99 interpolation from the
#: bucket counts stays within a fraction of a bucket width.
LATENCY_BUCKETS = (
    0.0005, 0.0008, 0.00128, 0.002048, 0.003277, 0.005243, 0.008389,
    0.013422, 0.021475, 0.03436, 0.054976, 0.087961, 0.140737, 0.22518,
    0.360288, 0.57646, 0.922337, 1.475739, 2.361183, 3.777893, 6.044629,
    9.671407, 15.474251, 24.758801, 39.614081, 63.38253,
)


class Histogram:
    """Fixed-bucket histogram of observed values.

    ``bounds`` are the inclusive upper edges of the finite buckets; one
    implicit overflow bucket catches everything above the last edge.
    An observation lands in the first bucket whose edge is >= the value
    (the Prometheus ``le`` convention).
    """

    __slots__ = ("bounds", "counts", "total", "count", "_lock")

    def __init__(self, bounds=DEFAULT_BUCKETS):
        edges = [float(b) for b in bounds]
        if not edges or sorted(edges) != edges or len(set(edges)) != len(edges):
            raise ValueError(
                f"histogram bounds must be strictly increasing, got {bounds}"
            )
        self.bounds = tuple(edges)
        self.counts = [0] * (len(edges) + 1)
        self.total = 0.0
        self.count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        index = 0
        for edge in self.bounds:
            if value <= edge:
                break
            index += 1
        with self._lock:
            self.counts[index] += 1
            self.total += value
            self.count += 1

    def observe_many(self, values) -> None:
        for value in np.asarray(values, dtype=np.float64).ravel():
            self.observe(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (0..1) from the bucket counts.

        Linear interpolation inside the covering bucket, the Prometheus
        ``histogram_quantile`` convention: the answer is exact at bucket
        edges and off by at most one bucket width inside. Observations
        in the overflow bucket clamp to the last finite edge; an empty
        histogram reports 0.0.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            counts = list(self.counts)
            count = self.count
        if count == 0:
            return 0.0
        rank = q * count
        cumulative = 0.0
        for index, bucket_count in enumerate(counts):
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= rank:
                if index >= len(self.bounds):
                    return self.bounds[-1]
                low = 0.0 if index == 0 else self.bounds[index - 1]
                high = self.bounds[index]
                if bucket_count == 0:
                    return high
                return low + (high - low) * (rank - previous) / bucket_count
        return self.bounds[-1]

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "bounds": list(self.bounds),
                "counts": list(self.counts),
                "count": self.count,
                "sum": self.total,
            }

    def __getstate__(self) -> dict:
        return self.snapshot()

    def __setstate__(self, state: dict) -> None:
        self.bounds = tuple(state["bounds"])
        self.counts = list(state["counts"])
        self.total = float(state["sum"])
        self.count = int(state["count"])
        self._lock = threading.Lock()


class MetricsRegistry:
    """Named counters, gauges, and histograms behind get-or-create.

    Get-or-create is lock-guarded so two threads asking for the same
    name always share one instrument (the instruments themselves are
    individually atomic); without it, concurrent first touches of a name
    could each create an instrument and drop the other's counts.
    """

    __slots__ = ("_counters", "_gauges", "_histograms", "_lock")

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        with self._lock:
            counter = self._counters.get(name)
            if counter is None:
                counter = self._counters[name] = Counter()
            return counter

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            gauge = self._gauges.get(name)
            if gauge is None:
                gauge = self._gauges[name] = Gauge()
            return gauge

    def histogram(self, name: str, bounds=DEFAULT_BUCKETS) -> Histogram:
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram(bounds)
            return histogram

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold another registry in: counters/histograms add, gauges win
        by last write (the merged-in registry's value)."""
        for name, counter in other._counters.items():
            self.counter(name).inc(counter.value)
        for name, gauge in other._gauges.items():
            self.gauge(name).set(gauge.value)
        for name, histogram in other._histograms.items():
            mine = self.histogram(name, histogram.bounds)
            if mine.bounds != histogram.bounds:
                raise ValueError(
                    f"histogram {name!r} bucket bounds differ: "
                    f"{mine.bounds} vs {histogram.bounds}"
                )
            for index, count in enumerate(histogram.counts):
                mine.counts[index] += count
            mine.total += histogram.total
            mine.count += histogram.count
        return self

    def snapshot(self) -> dict:
        """Plain-dict view of everything recorded so far."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {
                name: counter.value
                for name, counter in sorted(counters.items())
            },
            "gauges": {
                name: gauge.value for name, gauge in sorted(gauges.items())
            },
            "histograms": {
                name: histogram.snapshot()
                for name, histogram in sorted(histograms.items())
            },
        }

    def __getstate__(self) -> dict:
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": dict(self._histograms),
            }

    def __setstate__(self, state: dict) -> None:
        self._counters = dict(state["counters"])
        self._gauges = dict(state["gauges"])
        self._histograms = dict(state["histograms"])
        self._lock = threading.Lock()

    def describe(self) -> str:
        snapshot = self.snapshot()
        lines = [
            f"{name}={value}" for name, value in snapshot["counters"].items()
        ]
        lines += [
            f"{name}={value:.6g}" for name, value in snapshot["gauges"].items()
        ]
        lines += [
            f"{name}: n={h['count']} mean="
            f"{(h['sum'] / h['count']) if h['count'] else 0.0:.6g}"
            for name, h in snapshot["histograms"].items()
        ]
        return "\n".join(lines) if lines else "(no metrics recorded)"


# ------------------------------------------------------------- skew statistics


def gini(loads) -> float:
    """Gini coefficient of a non-negative load vector (0 = perfectly
    balanced, → 1 as one node carries everything).

    Uses the sorted-rank identity
    ``G = (2 Σ_i i·x_(i)) / (n Σ x) − (n + 1)/n`` with 1-based ranks
    over the ascending-sorted loads.
    """
    values = np.sort(np.asarray(loads, dtype=np.float64).ravel())
    if values.size == 0:
        return 0.0
    if np.any(values < 0):
        raise ValueError("gini expects non-negative loads")
    total = float(values.sum())
    if total == 0.0:
        return 0.0
    n = values.size
    ranks = np.arange(1, n + 1, dtype=np.float64)
    return float(2.0 * (ranks * values).sum() / (n * total) - (n + 1) / n)


def skew_summary(loads) -> dict:
    """The load-distribution numbers skew-aware planners are judged by.

    ``imbalance`` is max/mean (1.0 = perfectly balanced — the quantity
    Equations 4-8 minimise the max of), ``gini`` the Gini coefficient,
    ``cv`` the coefficient of variation. All are 0/1-neutral on an
    all-zero vector so empty phases don't read as pathological.
    """
    values = np.asarray(loads, dtype=np.float64).ravel()
    if values.size == 0:
        return {"max": 0.0, "mean": 0.0, "imbalance": 1.0, "gini": 0.0, "cv": 0.0}
    mean = float(values.mean())
    peak = float(values.max())
    if mean == 0.0:
        return {"max": peak, "mean": 0.0, "imbalance": 1.0, "gini": 0.0, "cv": 0.0}
    return {
        "max": peak,
        "mean": mean,
        "imbalance": peak / mean,
        "gini": gini(values),
        "cv": float(values.std()) / mean if not math.isnan(mean) else 0.0,
    }


def record_execution(registry: MetricsRegistry, report) -> None:
    """Fold one :class:`~repro.engine.executor.ExecutionReport` into the
    registry: traffic and output counters, per-node busy-time histogram,
    and the latest execution's skew gauges."""
    registry.counter("queries_executed").inc()
    registry.counter("cells_shuffled").inc(int(report.cells_moved))
    registry.counter("bytes_on_wire").inc(int(report.bytes_moved))
    registry.counter("network_transfers").inc(int(report.n_transfers))
    registry.counter("matches_emitted").inc(int(report.output_cells))
    registry.counter("join_units_planned").inc(int(report.n_units))
    if report.per_node_compare is not None:
        busy = np.asarray(report.per_node_compare, dtype=np.float64)
        registry.histogram("node_busy_seconds").observe_many(busy)
        summary = skew_summary(busy)
        registry.gauge("last_compare_imbalance").set(summary["imbalance"])
        registry.gauge("last_compare_gini").set(summary["gini"])
    if report.cells_received:
        received = np.asarray(list(report.cells_received.values()), np.float64)
        summary = skew_summary(received)
        registry.gauge("last_shuffle_imbalance").set(summary["imbalance"])
        registry.gauge("last_shuffle_gini").set(summary["gini"])


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "LATENCY_BUCKETS",
    "gini",
    "skew_summary",
    "record_execution",
]
