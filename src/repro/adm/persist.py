"""Whole-array persistence on top of the chunk codec.

File format::

    magic u32 | version u16
    | schema_len u32 | schema literal (utf-8)
    | n_chunks u32
    | (block_len u32 | chunk block) per stored chunk

Chunk blocks are the :mod:`repro.adm.storage` format, so attributes stay
vertically partitioned and RLE-compressed on disk.
"""

from __future__ import annotations

import struct
from pathlib import Path

from repro.adm.array import LocalArray
from repro.adm.parser import parse_schema
from repro.adm.storage import deserialize_chunk, serialize_chunk
from repro.errors import SchemaError

_MAGIC = 0x41444D46  # "ADMF"
_VERSION = 1


def save_array(array: LocalArray, path: str | Path) -> int:
    """Write an array to ``path``; returns the bytes written."""
    path = Path(path)
    blocks = [
        serialize_chunk(array.chunks[chunk_id].sort())
        for chunk_id in sorted(array.chunks)
    ]
    schema_bytes = array.schema.to_literal().encode("utf-8")
    with path.open("wb") as handle:
        handle.write(struct.pack("<IH", _MAGIC, _VERSION))
        handle.write(struct.pack("<I", len(schema_bytes)))
        handle.write(schema_bytes)
        handle.write(struct.pack("<I", len(blocks)))
        for block in blocks:
            handle.write(struct.pack("<I", len(block)))
            handle.write(block)
    return path.stat().st_size


def load_array(path: str | Path) -> LocalArray:
    """Read an array previously written by :func:`save_array`."""
    path = Path(path)
    data = path.read_bytes()
    if len(data) < 10:
        raise SchemaError(f"{path} is not an ADM array file (truncated)")
    magic, version = struct.unpack_from("<IH", data)
    if magic != _MAGIC:
        raise SchemaError(f"{path} is not an ADM array file (bad magic)")
    if version != _VERSION:
        raise SchemaError(
            f"{path} uses format version {version}; this build reads "
            f"{_VERSION}"
        )
    offset = struct.calcsize("<IH")
    (schema_len,) = struct.unpack_from("<I", data, offset)
    offset += 4
    schema = parse_schema(data[offset : offset + schema_len].decode("utf-8"))
    offset += schema_len
    (n_chunks,) = struct.unpack_from("<I", data, offset)
    offset += 4

    chunks = {}
    for _ in range(n_chunks):
        (block_len,) = struct.unpack_from("<I", data, offset)
        offset += 4
        chunk = deserialize_chunk(data[offset : offset + block_len], schema)
        chunk.sorted_cells = True  # written sorted by save_array
        chunks[chunk.chunk_id] = chunk
        offset += block_len
    return LocalArray(schema, chunks)
