"""Packed 64-bit composite join keys (exact, order-preserving).

The join kernels compare composite keys for every sort, searchsorted,
run-detection, and sortedness check they perform. Numpy's structured
dtypes make those comparisons correct but slow: structured arrays fall
off the primitive fast paths and compare field by field through generic
code. This module collapses a multi-field composite key into a single
primitive ``uint64`` column so every key consumer runs at primitive
speed, without giving up exactness:

- each field is **offset-encoded**: its int64 key bits (float fields via
  :func:`repro.adm.cells.float_key_bits`, so ``-0.0 == +0.0``) are
  biased by the field's minimum, yielding an unsigned value strictly
  smaller than ``2**width`` where ``width`` covers the field's observed
  min–max span, widened by the schema dimension bounds when the field is
  a join dimension;
- fields are concatenated most-significant-first into one ``uint64``.

Because the per-field encoding is monotone in the int64 key bits and
each field occupies a fixed bit slice, unsigned comparison of the packed
keys equals lexicographic comparison of the structured key fields — the
exact order ``np.sort``/``np.lexsort`` impose on the structured
representation. Equality is likewise exact (the encoding is injective on
the covered range), so hash joins need no collision verification.

When the total width exceeds 64 bits, :func:`plan_codec` declines
(returns ``None``) and callers fall back to structured keys — the
correctness oracle kept behind the executor's ``packed_keys=False``
knob.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.adm.cells import float_key_bits
from repro.adm.schema import Dimension
from repro.errors import SchemaError

#: A packed key must fit one primitive lane; wider keys fall back to
#: structured dtypes.
MAX_PACKED_BITS = 64

_U64_MASK = (1 << 64) - 1


def key_bits(column: np.ndarray, is_float: bool) -> np.ndarray:
    """One key column as contiguous int64 bits (the structured-field view)."""
    if is_float:
        return float_key_bits(column)
    return np.ascontiguousarray(column, dtype=np.int64)


@dataclass(frozen=True)
class KeyCodec:
    """An order-preserving bit layout for one join's composite key.

    ``offsets[f]`` is the int64 bias subtracted from field ``f``'s key
    bits and ``widths[f]`` the bit width of its slice; field 0 is the
    most significant, matching the lexicographic significance order of
    :func:`repro.adm.cells.composite_key`.
    """

    offsets: tuple[int, ...]
    widths: tuple[int, ...]
    is_float: tuple[bool, ...]

    @property
    def n_fields(self) -> int:
        return len(self.widths)

    @property
    def total_width(self) -> int:
        return sum(self.widths)

    def pack(self, columns: Sequence[np.ndarray]) -> np.ndarray:
        """Collapse row-aligned key columns into one ``uint64`` column."""
        if len(columns) != self.n_fields:
            raise SchemaError(
                f"codec packs {self.n_fields} fields, got {len(columns)} columns"
            )
        packed = np.zeros(len(columns[0]), dtype=np.uint64)
        with np.errstate(over="ignore"):
            for column, offset, width, floaty in zip(
                columns, self.offsets, self.widths, self.is_float
            ):
                bits = key_bits(column, floaty).view(np.uint64)
                # Modular subtraction is exact: bits - offset < 2**width.
                encoded = bits - np.uint64(offset & _U64_MASK)
                packed = (packed << np.uint64(width)) | encoded
        return packed

    def unpack(self, packed: np.ndarray) -> list[np.ndarray]:
        """Recover the original key columns from packed keys (roundtrip)."""
        packed = np.asarray(packed, dtype=np.uint64)
        columns: list[np.ndarray] = []
        shift = self.total_width
        with np.errstate(over="ignore"):
            for offset, width, floaty in zip(
                self.offsets, self.widths, self.is_float
            ):
                shift -= width
                mask = np.uint64((1 << width) - 1)
                encoded = (packed >> np.uint64(shift)) & mask
                bits = (encoded + np.uint64(offset & _U64_MASK)).view(np.int64)
                columns.append(bits.view(np.float64) if floaty else bits)
        return columns

    def describe(self) -> str:  # pragma: no cover - cosmetic
        fields = ", ".join(
            f"{'f' if floaty else 'i'}{width}b" for width, floaty in zip(
                self.widths, self.is_float
            )
        )
        return f"KeyCodec({self.total_width}b: {fields})"


def plan_codec(
    column_sets: Sequence[Sequence[np.ndarray]],
    dims: Sequence[Dimension | None] | None = None,
) -> KeyCodec | None:
    """Derive a packed layout covering every given key-column set.

    ``column_sets`` holds one row-aligned list of field columns per
    source (typically each node-local chunk of both join sides); the
    layout must cover their union so equal values pack equal across the
    whole join. ``dims`` optionally supplies the join schema's dimension
    per field — integer ranges are widened to the schema bounds, so the
    layout stays valid for any in-range value, not just observed ones.

    Returns ``None`` when the total width exceeds
    :data:`MAX_PACKED_BITS` — the caller keeps structured keys.
    """
    if not column_sets:
        raise SchemaError("codec planning needs at least one column set")
    n_fields = len(column_sets[0])
    if n_fields == 0:
        raise SchemaError("codec planning needs at least one key field")
    for columns in column_sets:
        if len(columns) != n_fields:
            raise SchemaError(
                f"column sets disagree on field count: {n_fields} vs "
                f"{len(columns)}"
            )

    offsets: list[int] = []
    widths: list[int] = []
    is_float: list[bool] = []
    total = 0
    for field in range(n_fields):
        floaty = any(
            np.asarray(columns[field]).dtype.kind == "f"
            for columns in column_sets
        )
        lows: list[int] = []
        highs: list[int] = []
        for columns in column_sets:
            column = np.asarray(columns[field])
            if not len(column):
                continue
            bits = key_bits(column, floaty)
            lows.append(int(bits.min()))
            highs.append(int(bits.max()))
        if dims is not None and dims[field] is not None and not floaty:
            lows.append(int(dims[field].start))
            highs.append(int(dims[field].end))
        low = min(lows, default=0)
        high = max(highs, default=low)
        width = (high - low).bit_length()
        total += width
        if total > MAX_PACKED_BITS:
            return None
        offsets.append(low)
        widths.append(width)
        is_float.append(floaty)
    return KeyCodec(
        offsets=tuple(offsets), widths=tuple(widths), is_float=tuple(is_float)
    )


__all__ = ["KeyCodec", "MAX_PACKED_BITS", "key_bits", "plan_codec"]
