"""Logical array schemas: dimensions, attributes, and chunking.

An array schema follows the SciDB convention used throughout the paper::

    A<v1:int64, v2:float64>[i=1,6,3, j=1,6,3]

Dimensions are ranges of contiguous integers with a chunk interval; the
chunk grid they induce is the unit of storage, I/O, and network transfer.
Attributes are typed scalar values stored in each occupied cell.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Sequence

import numpy as np

from repro.errors import SchemaError

#: Canonical attribute types and their numpy dtypes.
ATTRIBUTE_DTYPES = {
    "int64": np.dtype(np.int64),
    "float64": np.dtype(np.float64),
}

#: Accepted aliases in schema literals, normalised to canonical names.
TYPE_ALIASES = {
    "int": "int64",
    "int32": "int64",
    "int64": "int64",
    "long": "int64",
    "float": "float64",
    "double": "float64",
    "float32": "float64",
    "float64": "float64",
}


@dataclass(frozen=True)
class Dimension:
    """One named dimension: a contiguous integer range plus chunk interval.

    ``start`` and ``end`` are inclusive, matching the paper's
    ``i=1,6,3`` notation (values 1..6, chunk interval 3).
    """

    name: str
    start: int
    end: int
    chunk_interval: int

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise SchemaError(
                f"dimension {self.name!r}: end {self.end} < start {self.start}"
            )
        if self.chunk_interval <= 0:
            raise SchemaError(
                f"dimension {self.name!r}: chunk interval must be positive, "
                f"got {self.chunk_interval}"
            )

    @property
    def extent(self) -> int:
        """Number of potential values along this dimension."""
        return self.end - self.start + 1

    @property
    def chunk_count(self) -> int:
        """Number of logical chunks along this dimension."""
        return -(-self.extent // self.chunk_interval)

    def chunk_index_of(self, values: np.ndarray) -> np.ndarray:
        """Map dimension values to per-dimension chunk indices (vectorised)."""
        return (np.asarray(values, dtype=np.int64) - self.start) // self.chunk_interval

    def chunk_start(self, index: int) -> int:
        """Lowest dimension value covered by chunk ``index``."""
        return self.start + index * self.chunk_interval

    def contains(self, values: np.ndarray) -> np.ndarray:
        """Boolean mask of which values fall inside this dimension's range."""
        values = np.asarray(values)
        return (values >= self.start) & (values <= self.end)

    def same_shape(self, other: "Dimension") -> bool:
        """True if ranges and chunk intervals match (names may differ)."""
        return (
            self.start == other.start
            and self.end == other.end
            and self.chunk_interval == other.chunk_interval
        )

    def to_literal(self) -> str:
        """Render as it appears inside a schema literal."""
        return f"{self.name}={self.start},{self.end},{self.chunk_interval}"


@dataclass(frozen=True)
class Attribute:
    """One named, typed attribute stored in occupied cells."""

    name: str
    type_name: str

    def __post_init__(self) -> None:
        if self.type_name not in ATTRIBUTE_DTYPES:
            raise SchemaError(
                f"attribute {self.name!r}: unknown type {self.type_name!r}; "
                f"expected one of {sorted(ATTRIBUTE_DTYPES)}"
            )

    @property
    def dtype(self) -> np.dtype:
        return ATTRIBUTE_DTYPES[self.type_name]

    def to_literal(self) -> str:
        return f"{self.name}:{self.type_name}"


@dataclass(frozen=True)
class ArraySchema:
    """A named array schema: ordered dimensions plus typed attributes.

    A schema with no dimensions (``dims == ()``) describes an *unordered*
    collection of cells; the paper uses these as A:A join outputs
    (``INTO T<i:int64, j:int64>[]``).
    """

    name: str
    dims: tuple[Dimension, ...]
    attrs: tuple[Attribute, ...]

    def __post_init__(self) -> None:
        names = [d.name for d in self.dims] + [a.name for a in self.attrs]
        dupes = {n for n in names if names.count(n) > 1}
        if dupes:
            raise SchemaError(
                f"schema {self.name!r}: duplicate field names {sorted(dupes)}"
            )

    # ------------------------------------------------------------------ shape

    @property
    def ndims(self) -> int:
        return len(self.dims)

    @property
    def dim_names(self) -> tuple[str, ...]:
        return tuple(d.name for d in self.dims)

    @property
    def attr_names(self) -> tuple[str, ...]:
        return tuple(a.name for a in self.attrs)

    @property
    def field_names(self) -> tuple[str, ...]:
        return self.dim_names + self.attr_names

    @property
    def chunk_grid(self) -> tuple[int, ...]:
        """Per-dimension chunk counts."""
        return tuple(d.chunk_count for d in self.dims)

    @property
    def n_chunks(self) -> int:
        """Total number of logical chunks (1 for dimensionless schemas)."""
        return int(np.prod(self.chunk_grid, dtype=np.int64)) if self.dims else 1

    @property
    def logical_cells(self) -> int:
        """Total number of potential cell positions."""
        return int(np.prod([d.extent for d in self.dims], dtype=np.int64)) if self.dims else 0

    def is_dimensionless(self) -> bool:
        return not self.dims

    # ---------------------------------------------------------------- lookups

    def dim(self, name: str) -> Dimension:
        for d in self.dims:
            if d.name == name:
                return d
        raise SchemaError(f"schema {self.name!r} has no dimension {name!r}")

    def attr(self, name: str) -> Attribute:
        for a in self.attrs:
            if a.name == name:
                return a
        raise SchemaError(f"schema {self.name!r} has no attribute {name!r}")

    def has_dim(self, name: str) -> bool:
        return name in self.dim_names

    def has_attr(self, name: str) -> bool:
        return name in self.attr_names

    def field_kind(self, name: str) -> str:
        """Return ``"dimension"`` or ``"attribute"`` for a field name."""
        if self.has_dim(name):
            return "dimension"
        if self.has_attr(name):
            return "attribute"
        raise SchemaError(f"schema {self.name!r} has no field {name!r}")

    # --------------------------------------------------------------- chunking

    def chunk_ids(self, coords: np.ndarray) -> np.ndarray:
        """Map an ``(n, ndims)`` coordinate matrix to flat chunk ids.

        Flat ids follow C-style (row-major) order over the chunk grid, the
        same order in which the executor iterates the array space.
        """
        coords = np.asarray(coords, dtype=np.int64)
        if self.is_dimensionless():
            return np.zeros(len(coords), dtype=np.int64)
        if coords.ndim != 2 or coords.shape[1] != self.ndims:
            raise SchemaError(
                f"expected (n, {self.ndims}) coordinates, got shape {coords.shape}"
            )
        flat = np.zeros(len(coords), dtype=np.int64)
        for axis, dim in enumerate(self.dims):
            flat = flat * dim.chunk_count + dim.chunk_index_of(coords[:, axis])
        return flat

    def chunk_corner(self, chunk_id: int) -> tuple[int, ...]:
        """Lowest coordinate covered by chunk ``chunk_id``."""
        if self.is_dimensionless():
            return ()
        if not 0 <= chunk_id < self.n_chunks:
            raise SchemaError(
                f"chunk id {chunk_id} out of range [0, {self.n_chunks})"
            )
        corner = []
        remaining = int(chunk_id)
        for count in reversed(self.chunk_grid):
            corner.append(remaining % count)
            remaining //= count
        corner.reverse()
        return tuple(
            d.chunk_start(idx) for d, idx in zip(self.dims, corner)
        )

    def validate_coords(self, coords: np.ndarray) -> None:
        """Raise :class:`SchemaError` if any coordinate is out of range."""
        coords = np.asarray(coords, dtype=np.int64)
        if self.is_dimensionless():
            return
        for axis, dim in enumerate(self.dims):
            inside = dim.contains(coords[:, axis])
            if not inside.all():
                bad = coords[~inside][0]
                raise SchemaError(
                    f"coordinate {tuple(int(v) for v in bad)} outside schema "
                    f"{self.name!r} along dimension {dim.name!r}"
                )

    # ------------------------------------------------------------ comparisons

    def same_shape(self, other: "ArraySchema") -> bool:
        """True if dimension ranges and chunk intervals match positionally.

        This is the merge-join compatibility test from Section 2.3.1: same
        dimension count, extents, and chunk intervals (names may differ).
        """
        if self.ndims != other.ndims:
            return False
        return all(a.same_shape(b) for a, b in zip(self.dims, other.dims))

    # ------------------------------------------------------------- derivation

    def with_name(self, name: str) -> "ArraySchema":
        return replace(self, name=name)

    def with_attrs(self, attrs: Iterable[Attribute]) -> "ArraySchema":
        return replace(self, attrs=tuple(attrs))

    def with_dims(self, dims: Iterable[Dimension]) -> "ArraySchema":
        return replace(self, dims=tuple(dims))

    def to_literal(self) -> str:
        """Render the SciDB-style schema literal."""
        attrs = ", ".join(a.to_literal() for a in self.attrs)
        dims = ", ".join(d.to_literal() for d in self.dims)
        return f"{self.name}<{attrs}>[{dims}]"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.to_literal()


def schema_from_fields(
    name: str,
    dims: Sequence[Dimension],
    attrs: Sequence[Attribute],
) -> ArraySchema:
    """Convenience constructor used by planners when deriving schemas."""
    return ArraySchema(name=name, dims=tuple(dims), attrs=tuple(attrs))
