"""Array Data Model (ADM) substrate.

This subpackage implements the storage model of Section 2.1 of the paper:
schemas with integer dimensions and typed attributes, sparse cells clustered
into C-ordered multidimensional chunks, and vertically partitioned attribute
storage.
"""

from repro.adm.cells import CellSet
from repro.adm.chunk import Chunk
from repro.adm.array import LocalArray
from repro.adm.parser import parse_schema
from repro.adm.schema import ArraySchema, Attribute, Dimension
from repro.adm.stats import Histogram, infer_dimension

__all__ = [
    "ArraySchema",
    "Attribute",
    "CellSet",
    "Chunk",
    "Dimension",
    "Histogram",
    "LocalArray",
    "infer_dimension",
    "parse_schema",
]
