"""Parser for SciDB-style schema literals.

Grammar (whitespace-insensitive)::

    schema  := NAME '<' attrs '>' '[' dims? ']'
    attrs   := attr (',' attr)*
    attr    := NAME ':' TYPE
    dims    := dim (',' dim)*
    dim     := NAME '=' INT ',' INT ',' INT

Examples::

    A<v1:int64, v2:float64>[i=1,6,3, j=1,6,3]
    T<i:int64, j:int64>[]            # dimensionless (unordered) output
"""

from __future__ import annotations

import re

from repro.adm.schema import ArraySchema, Attribute, Dimension, TYPE_ALIASES
from repro.errors import ParseError

_NAME = r"[A-Za-z_][A-Za-z0-9_.]*"
_SCHEMA_RE = re.compile(
    rf"^\s*(?P<name>{_NAME})\s*<(?P<attrs>[^>]*)>\s*\[(?P<dims>[^\]]*)\]\s*;?\s*$"
)
_ATTR_RE = re.compile(rf"^\s*(?P<name>{_NAME})\s*:\s*(?P<type>[A-Za-z0-9_]+)\s*$")
_DIM_RE = re.compile(
    rf"^\s*(?P<name>{_NAME})\s*=\s*(?P<start>-?\d+)\s*,\s*(?P<end>-?\d+)"
    r"\s*,\s*(?P<interval>\d+)\s*$"
)


def _split_top_level(text: str) -> list[str]:
    """Split a comma-separated field list, ignoring empty parts."""
    return [part for part in (p.strip() for p in text.split(",")) if part]


def parse_attribute(text: str) -> Attribute:
    """Parse a single ``name:type`` attribute declaration."""
    match = _ATTR_RE.match(text)
    if not match:
        raise ParseError(f"malformed attribute declaration: {text!r}")
    type_name = match.group("type").lower()
    if type_name not in TYPE_ALIASES:
        raise ParseError(
            f"unknown attribute type {type_name!r} in {text!r}; "
            f"expected one of {sorted(set(TYPE_ALIASES))}"
        )
    return Attribute(name=match.group("name"), type_name=TYPE_ALIASES[type_name])


def parse_dimension(text: str) -> Dimension:
    """Parse a single ``name=start,end,interval`` dimension declaration."""
    match = _DIM_RE.match(text)
    if not match:
        raise ParseError(f"malformed dimension declaration: {text!r}")
    return Dimension(
        name=match.group("name"),
        start=int(match.group("start")),
        end=int(match.group("end")),
        chunk_interval=int(match.group("interval")),
    )


def parse_schema(literal: str) -> ArraySchema:
    """Parse a full schema literal into an :class:`ArraySchema`.

    >>> parse_schema("A<v:int64>[i=1,6,3]").dim_names
    ('i',)
    """
    match = _SCHEMA_RE.match(literal)
    if not match:
        raise ParseError(f"malformed schema literal: {literal!r}")
    attrs_text = match.group("attrs").strip()
    if not attrs_text:
        raise ParseError(f"schema {match.group('name')!r} declares no attributes")
    attrs = tuple(parse_attribute(part) for part in _split_top_level(attrs_text))

    # Dimension lists must be split on the commas that *separate* dimensions,
    # not the ones inside each dimension's start,end,interval triple.
    dims_text = match.group("dims").strip()
    dims: tuple[Dimension, ...] = ()
    if dims_text:
        dim_parts = re.split(rf"\s*,\s*(?={_NAME}\s*=)", dims_text)
        dims = tuple(parse_dimension(part) for part in dim_parts)

    return ArraySchema(name=match.group("name"), dims=dims, attrs=attrs)
