"""Sparse cell sets: the in-memory unit of array data.

A :class:`CellSet` is a structure-of-arrays: an ``(n, ndims)`` int64
coordinate matrix plus one numpy column per attribute (the vertical
partitioning of Section 2.1). All engine operators — slicing, shuffling,
redimensioning, and the join algorithms — work on cell sets.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.errors import SchemaError


class CellSet:
    """An immutable-by-convention collection of occupied array cells."""

    __slots__ = ("coords", "attrs")

    def __init__(self, coords: np.ndarray, attrs: Mapping[str, np.ndarray]):
        coords = np.asarray(coords, dtype=np.int64)
        if coords.ndim == 1:
            coords = coords.reshape(-1, 1)
        if coords.ndim != 2:
            raise SchemaError(f"coords must be 2-D, got shape {coords.shape}")
        self.coords = coords
        self.attrs: dict[str, np.ndarray] = {}
        for name, column in attrs.items():
            column = np.asarray(column)
            if len(column) != len(coords):
                raise SchemaError(
                    f"attribute {name!r} has {len(column)} values for "
                    f"{len(coords)} cells"
                )
            self.attrs[name] = column

    # ---------------------------------------------------------- constructors

    @classmethod
    def _from_validated(
        cls, coords: np.ndarray, attrs: dict[str, np.ndarray]
    ) -> "CellSet":
        """Wrap already-validated arrays without re-checking them.

        Hot-path constructor for code that slices or reindexes an
        existing cell set: the coordinate matrix is already 2-D int64 and
        every attribute column is row-aligned by construction, so the
        per-instance validation of ``__init__`` (tens of thousands of
        pieces per slice mapping) would be pure overhead.
        """
        cells = cls.__new__(cls)
        cells.coords = coords
        cells.attrs = attrs
        return cells

    @classmethod
    def empty(cls, ndims: int, attr_dtypes: Mapping[str, np.dtype]) -> "CellSet":
        """An empty cell set with the given shape."""
        return cls(
            np.empty((0, ndims), dtype=np.int64),
            {name: np.empty(0, dtype=dtype) for name, dtype in attr_dtypes.items()},
        )

    @classmethod
    def concat(cls, parts: Sequence["CellSet"]) -> "CellSet":
        """Concatenate cell sets that share shape and attribute columns."""
        parts = [p for p in parts if p is not None]
        if not parts:
            raise SchemaError("cannot concatenate zero cell sets")
        if len(parts) == 1:
            return parts[0]
        first = parts[0]
        for other in parts[1:]:
            if other.ndims != first.ndims:
                raise SchemaError(
                    f"cannot concatenate cell sets of {first.ndims} and "
                    f"{other.ndims} dimensions"
                )
            if set(other.attrs) != set(first.attrs):
                raise SchemaError(
                    f"cannot concatenate cell sets with attribute columns "
                    f"{sorted(first.attrs)} and {sorted(other.attrs)}"
                )
        coords = np.concatenate([p.coords for p in parts])
        attrs = {
            name: np.concatenate([p.attrs[name] for p in parts])
            for name in first.attrs
        }
        return cls._from_validated(coords, attrs)

    # -------------------------------------------------------------- protocol

    @property
    def ndims(self) -> int:
        return self.coords.shape[1]

    @property
    def attr_names(self) -> tuple[str, ...]:
        return tuple(self.attrs)

    def __len__(self) -> int:
        return len(self.coords)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CellSet(n={len(self)}, ndims={self.ndims}, "
            f"attrs={list(self.attrs)})"
        )

    @property
    def nbytes(self) -> int:
        """Approximate stored size (coordinates plus attribute columns)."""
        return self.coords.nbytes + sum(col.nbytes for col in self.attrs.values())

    # --------------------------------------------------------------- columns

    def column(self, name: str) -> np.ndarray:
        """Fetch a field column: a named attribute or a coordinate axis.

        Coordinate axes are addressed by position via :meth:`dim_column`;
        this method resolves attribute names only.
        """
        try:
            return self.attrs[name]
        except KeyError:
            raise SchemaError(f"cell set has no attribute {name!r}") from None

    def dim_column(self, axis: int) -> np.ndarray:
        """Fetch one coordinate axis as a column."""
        if not 0 <= axis < self.ndims:
            raise SchemaError(f"axis {axis} out of range for {self.ndims}-D cells")
        return self.coords[:, axis]

    def with_attrs(self, names: Iterable[str]) -> "CellSet":
        """Project to a subset of attribute columns (vertical partitioning)."""
        names = list(names)
        missing = [n for n in names if n not in self.attrs]
        if missing:
            raise SchemaError(f"cell set has no attributes {missing}")
        return CellSet(self.coords, {n: self.attrs[n] for n in names})

    def rename_attrs(self, mapping: Mapping[str, str]) -> "CellSet":
        """Rename attribute columns; names absent from ``mapping`` are kept."""
        return CellSet(
            self.coords,
            {mapping.get(name, name): col for name, col in self.attrs.items()},
        )

    # ------------------------------------------------------------- selection

    def take(self, index: np.ndarray) -> "CellSet":
        """Select cells by integer index or boolean mask."""
        index = np.asarray(index)
        return CellSet._from_validated(
            self.coords[index],
            {name: col[index] for name, col in self.attrs.items()},
        )

    def partition(self, keys: np.ndarray, n_parts: int) -> list["CellSet"]:
        """Split into ``n_parts`` cell sets grouped by an integer key column.

        ``keys[i]`` in ``[0, n_parts)`` names the part receiving cell ``i``.
        Empty parts are returned as empty cell sets with matching columns.
        """
        keys = np.asarray(keys, dtype=np.int64)
        if len(keys) != len(self):
            raise SchemaError(
                f"partition keys ({len(keys)}) do not match cell count ({len(self)})"
            )
        order, boundaries = partition_order(keys, n_parts)
        return self.take(order).split_sorted(boundaries)

    def split_sorted(self, boundaries: np.ndarray) -> list["CellSet"]:
        """Slice an already part-sorted cell set along run boundaries.

        ``boundaries`` has ``n_parts + 1`` entries; part ``p`` spans rows
        ``[boundaries[p], boundaries[p + 1])``. Parts are contiguous runs
        of the key-sorted copy, so plain slice views suffice — no per-part
        fancy-index copies. Cell sets are immutable by convention, which
        makes sharing the buffer safe.
        """
        coords = self.coords
        attrs = self.attrs
        return [
            CellSet._from_validated(
                coords[boundaries[p]:boundaries[p + 1]],
                {
                    name: column[boundaries[p]:boundaries[p + 1]]
                    for name, column in attrs.items()
                },
            )
            for p in range(len(boundaries) - 1)
        ]

    # --------------------------------------------------------------- sorting

    def c_order(self) -> np.ndarray:
        """Stable argsort in C-style order: outermost dimension first."""
        if self.ndims == 0:
            return np.arange(len(self))
        # np.lexsort sorts by the *last* key first, so feed axes reversed.
        keys = tuple(self.coords[:, axis] for axis in range(self.ndims - 1, -1, -1))
        return np.lexsort(keys)

    def sorted_c_order(self) -> "CellSet":
        """Return a copy sorted in C-style dimension order (Section 2.1)."""
        return self.take(self.c_order())

    def is_c_ordered(self) -> bool:
        """True when cells are already in C-style dimension order."""
        if len(self) <= 1 or self.ndims == 0:
            return True
        prev, cur = self.coords[:-1], self.coords[1:]
        # Vectorised lexicographic check: find first axis where rows differ.
        diff = prev != cur
        first_diff = np.where(diff.any(axis=1), diff.argmax(axis=1), -1)
        rows = np.arange(len(prev))
        differing = first_diff >= 0
        if not differing.any():
            return True
        axis_vals_prev = prev[rows[differing], first_diff[differing]]
        axis_vals_cur = cur[rows[differing], first_diff[differing]]
        return bool((axis_vals_prev <= axis_vals_cur).all())

    # ------------------------------------------------------------ comparison

    def to_structured(self, fields: Sequence[str] | None = None) -> np.ndarray:
        """Pack coordinates and attributes into one structured array.

        Used for multiset comparison in tests and for hashing composite keys.
        ``fields`` may select a subset of attribute names; coordinates are
        always included, as ``__dim0``, ``__dim1``, ...
        """
        names = list(fields) if fields is not None else list(self.attrs)
        dtype = [(f"__dim{i}", np.int64) for i in range(self.ndims)]
        dtype += [(name, self.attrs[name].dtype) for name in names]
        out = np.empty(len(self), dtype=dtype)
        for i in range(self.ndims):
            out[f"__dim{i}"] = self.coords[:, i]
        for name in names:
            out[name] = self.attrs[name]
        return out

    def same_cells(self, other: "CellSet") -> bool:
        """Multiset equality on coordinates plus all attribute columns."""
        if len(self) != len(other) or self.ndims != other.ndims:
            return False
        if set(self.attrs) != set(other.attrs):
            return False
        mine = np.sort(self.to_structured(sorted(self.attrs)))
        theirs = np.sort(other.to_structured(sorted(other.attrs)))
        return bool(np.array_equal(mine, theirs))


def partition_order(keys: np.ndarray, n_parts: int) -> tuple[np.ndarray, np.ndarray]:
    """One stable sort for a whole partitioning pass.

    Returns ``(order, boundaries)``: a stable argsort of ``keys`` and the
    ``n_parts + 1`` run boundaries of the sorted copy. The order array can
    be applied to *any* row-aligned companion arrays (key columns,
    composite keys) so every per-node structure is partitioned by the same
    single sort instead of one sort per structure.
    """
    keys = np.asarray(keys, dtype=np.int64)
    if len(keys) and (keys.min() < 0 or keys.max() >= n_parts):
        raise SchemaError(
            f"partition keys outside [0, {n_parts}): "
            f"min={keys.min()}, max={keys.max()}"
        )
    order = np.argsort(keys, kind="stable")
    boundaries = np.searchsorted(keys[order], np.arange(n_parts + 1))
    return order, boundaries


def float_key_bits(column: np.ndarray) -> np.ndarray:
    """View a float column as comparable int64 key bits.

    Negative zeros are normalised to ``+0.0`` first: ``-0.0 == +0.0``
    numerically, but their IEEE bit patterns differ, so a raw
    ``.view(np.int64)`` would silently split them into different key
    values (and different hash buckets) and drop equi-join matches.
    NaNs keep their bit patterns — ``NaN != NaN`` under every key
    representation this library uses.
    """
    column = np.asarray(column)
    if column.dtype != np.float64:
        column = column.astype(np.float64)
    column = np.where(column == 0.0, np.float64(0.0), column)
    return column.view(np.int64)


def composite_key(columns: Sequence[np.ndarray]) -> np.ndarray:
    """Collapse several columns into a single comparable key column.

    Float columns participate via their bit patterns (negative zeros
    normalised, see :func:`float_key_bits`), which preserves equality for
    the equi-join predicates this library supports. Returns a 1-D
    structured array usable with ``np.unique`` and ``np.searchsorted``.
    """
    if not columns:
        raise SchemaError("composite key needs at least one column")
    dtype = []
    converted = []
    for i, col in enumerate(columns):
        col = np.asarray(col)
        if col.dtype.kind == "f":
            col = float_key_bits(col)
        dtype.append((f"k{i}", col.dtype))
        converted.append(col)
    out = np.empty(len(converted[0]), dtype=dtype)
    for i, col in enumerate(converted):
        out[f"k{i}"] = col
    return out
