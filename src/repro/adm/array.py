"""Local (single-instance) chunked arrays.

A :class:`LocalArray` pairs a schema with the chunks this instance stores.
In the distributed setting each cluster node holds a ``LocalArray`` per
array name — its local data partition — while the system catalog records
which node owns which chunk.
"""

from __future__ import annotations

from typing import Iterator, Mapping

import numpy as np

from repro.adm.cells import CellSet
from repro.adm.chunk import Chunk, build_chunks
from repro.adm.schema import ArraySchema
from repro.errors import SchemaError


class LocalArray:
    """A schema plus the chunks stored by one database instance."""

    def __init__(self, schema: ArraySchema, chunks: Mapping[int, Chunk] | None = None):
        self.schema = schema
        self.chunks: dict[int, Chunk] = dict(chunks or {})
        #: storage-level write counter: bumped on every chunk insertion,
        #: so higher layers (plan fingerprints, integrity checks) can
        #: detect writes that bypass the catalog's version bookkeeping
        self.mutation_count = 0
        for chunk in self.chunks.values():
            chunk.validate_against(schema)

    # ---------------------------------------------------------- constructors

    @classmethod
    def from_cells(
        cls,
        schema: ArraySchema,
        cells: CellSet,
        sort: bool = True,
    ) -> "LocalArray":
        """Build an array by chunking a flat cell set."""
        expected = set(schema.attr_names)
        got = set(cells.attr_names)
        if expected != got:
            raise SchemaError(
                f"cells have attributes {sorted(got)} but schema "
                f"{schema.name!r} declares {sorted(expected)}"
            )
        if cells.ndims != schema.ndims:
            raise SchemaError(
                f"cells are {cells.ndims}-D but schema {schema.name!r} "
                f"has {schema.ndims} dimensions"
            )
        return cls(schema, build_chunks(schema, cells, sort=sort))

    @classmethod
    def empty(cls, schema: ArraySchema) -> "LocalArray":
        return cls(schema, {})

    # -------------------------------------------------------------- contents

    @property
    def n_cells(self) -> int:
        return sum(chunk.n_cells for chunk in self.chunks.values())

    @property
    def n_chunks(self) -> int:
        """Number of *stored* (occupied) chunks."""
        return len(self.chunks)

    @property
    def nbytes(self) -> int:
        return sum(chunk.nbytes for chunk in self.chunks.values())

    def chunk_sizes(self) -> dict[int, int]:
        """Occupied-cell count per stored chunk."""
        return {cid: chunk.n_cells for cid, chunk in self.chunks.items()}

    def cells(self) -> CellSet:
        """All cells, concatenated in chunk-id order."""
        if not self.chunks:
            return CellSet.empty(
                self.schema.ndims,
                {a.name: a.dtype for a in self.schema.attrs},
            )
        ordered = [self.chunks[cid].cells for cid in sorted(self.chunks)]
        return CellSet.concat(ordered)

    def __iter__(self) -> Iterator[Chunk]:
        for cid in sorted(self.chunks):
            yield self.chunks[cid]

    def __len__(self) -> int:
        return self.n_chunks

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LocalArray({self.schema.to_literal()}, chunks={self.n_chunks}, "
            f"cells={self.n_cells})"
        )

    # ------------------------------------------------------------- mutation

    def put_chunk(self, chunk: Chunk) -> None:
        """Insert or merge a chunk into this instance's store."""
        chunk.validate_against(self.schema)
        self.mutation_count += 1
        existing = self.chunks.get(chunk.chunk_id)
        if existing is None:
            self.chunks[chunk.chunk_id] = chunk
            return
        merged = CellSet.concat([existing.cells, chunk.cells])
        self.chunks[chunk.chunk_id] = Chunk(
            chunk_id=chunk.chunk_id,
            corner=chunk.corner,
            cells=merged,
            sorted_cells=False,
        )

    # -------------------------------------------------------------- density

    def to_dense(
        self,
        attribute: str,
        fill_value: float = 0.0,
        low: tuple[int, ...] | None = None,
        high: tuple[int, ...] | None = None,
    ) -> np.ndarray:
        """Materialise one attribute as a dense numpy window.

        Empty positions take ``fill_value``. By default the window covers
        the full dimension space; explicit corners carve out a region
        (useful for handing array data to numpy/scipy analytics).
        """
        self.schema.attr(attribute)  # validates the name
        if self.schema.is_dimensionless():
            raise SchemaError(
                "dimensionless arrays have no dense representation"
            )
        low = tuple(low) if low is not None else tuple(
            d.start for d in self.schema.dims
        )
        high = tuple(high) if high is not None else tuple(
            d.end for d in self.schema.dims
        )
        if len(low) != self.schema.ndims or len(high) != self.schema.ndims:
            raise SchemaError(
                f"window corners need {self.schema.ndims} coordinates"
            )
        shape = tuple(h - l + 1 for l, h in zip(low, high))
        if any(extent <= 0 for extent in shape):
            raise SchemaError(f"empty window {low}..{high}")
        dtype = self.schema.attr(attribute).dtype
        dense = np.full(shape, fill_value, dtype=np.result_type(dtype, type(fill_value)))
        cells = self.cells()
        if not len(cells):
            return dense
        mask = np.ones(len(cells), dtype=bool)
        for axis, (lo, hi) in enumerate(zip(low, high)):
            column = cells.dim_column(axis)
            mask &= (column >= lo) & (column <= hi)
        kept = cells.take(mask)
        index = tuple(
            kept.dim_column(axis) - low[axis]
            for axis in range(self.schema.ndims)
        )
        dense[index] = kept.column(attribute)
        return dense

    def rows(self):
        """Iterate cells as dicts: dimension and attribute name → value."""
        cells = self.cells()
        dim_names = self.schema.dim_names
        attr_names = self.schema.attr_names
        for position in range(len(cells)):
            row = {
                name: int(cells.coords[position, axis])
                for axis, name in enumerate(dim_names)
            }
            for name in attr_names:
                value = cells.attrs[name][position]
                row[name] = value.item() if hasattr(value, "item") else value
            yield row

    def density(self) -> float:
        """Fraction of logical cell positions that are occupied."""
        logical = self.schema.logical_cells
        return self.n_cells / logical if logical else float("nan")

    def skew_summary(self, top_fraction: float = 0.05) -> dict[str, float]:
        """Storage-skew statistics used throughout Section 6.3.

        Returns the share of cells held by the densest ``top_fraction`` of
        *stored* chunks, plus mean/max chunk sizes.
        """
        sizes = np.array(sorted(self.chunk_sizes().values(), reverse=True))
        if not len(sizes):
            return {"top_share": 0.0, "mean": 0.0, "max": 0.0}
        top_n = max(1, int(round(top_fraction * len(sizes))))
        total = sizes.sum()
        return {
            "top_share": float(sizes[:top_n].sum() / total) if total else 0.0,
            "mean": float(sizes.mean()),
            "max": float(sizes.max()),
        }
