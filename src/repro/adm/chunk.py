"""Chunks: the unit of storage, memory, I/O, and network transmission.

Each chunk covers a fixed rectangle of the array's dimension space
(Section 2.1). Only occupied cells are stored, so a chunk's physical size
is proportional to its occupied-cell count; with storage skew this varies
widely between chunks of the same array.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.adm.cells import CellSet
from repro.adm.schema import ArraySchema
from repro.errors import SchemaError


@dataclass
class Chunk:
    """One stored chunk: its grid position plus its occupied cells.

    ``chunk_id`` is the flat C-order index into the schema's chunk grid and
    ``corner`` is the lowest coordinate the chunk covers. ``sorted_cells``
    records whether ``cells`` are in C-style dimension order; the merge join
    requires sorted chunks, while rechunked or hashed data is unordered.
    """

    chunk_id: int
    corner: tuple[int, ...]
    cells: CellSet
    sorted_cells: bool = field(default=True)

    @property
    def n_cells(self) -> int:
        return len(self.cells)

    @property
    def nbytes(self) -> int:
        return self.cells.nbytes

    def sort(self) -> "Chunk":
        """Return this chunk with cells in C-style order."""
        if self.sorted_cells:
            return self
        return Chunk(
            chunk_id=self.chunk_id,
            corner=self.corner,
            cells=self.cells.sorted_c_order(),
            sorted_cells=True,
        )

    def validate_against(self, schema: ArraySchema) -> None:
        """Check that every cell falls inside this chunk's rectangle."""
        if schema.is_dimensionless():
            return
        ids = schema.chunk_ids(self.cells.coords)
        if len(ids) and not (ids == self.chunk_id).all():
            stray = self.cells.coords[ids != self.chunk_id][0]
            raise SchemaError(
                f"cell {tuple(int(v) for v in stray)} does not belong to "
                f"chunk {self.chunk_id} of schema {schema.name!r}"
            )


def build_chunks(
    schema: ArraySchema,
    cells: CellSet,
    sort: bool = True,
) -> dict[int, Chunk]:
    """Partition a cell set into the schema's chunk grid.

    Empty chunks are not materialised (the engine only stores occupied
    cells). With ``sort=True`` each chunk's cells are placed in C-style
    order, matching the on-disk layout of Figure 1.
    """
    schema.validate_coords(cells.coords)
    if schema.is_dimensionless():
        chunk = Chunk(chunk_id=0, corner=(), cells=cells, sorted_cells=True)
        return {0: chunk} if len(cells) else {}
    if not len(cells):
        return {}

    ids = schema.chunk_ids(cells.coords)
    chunks: dict[int, Chunk] = {}
    order = np.argsort(ids, kind="stable")
    sorted_ids = ids[order]
    boundaries = np.flatnonzero(np.r_[True, sorted_ids[1:] != sorted_ids[:-1], True])
    for lo, hi in zip(boundaries[:-1], boundaries[1:]):
        chunk_id = int(sorted_ids[lo])
        part = cells.take(order[lo:hi])
        if sort:
            part = part.sorted_c_order()
        chunks[chunk_id] = Chunk(
            chunk_id=chunk_id,
            corner=schema.chunk_corner(chunk_id),
            cells=part,
            sorted_cells=sort,
        )
    return chunks
