"""On-disk chunk serialization (Figure 1's physical layout).

Chunks are the unit of I/O; each attribute is stored *separately* (the
vertical partitioning of Section 2.1, "costly data alignment is
accelerated by moving only the necessary attributes"), so a reader can
fetch exactly the columns a query touches. Integer columns — including
the delta-encoded coordinate axes — are run-length encoded when that
pays, which is what makes sorted, spatially clustered chunks compact.

Format (little-endian):

    chunk block   := header | coord column per axis | attribute column*
    header        := magic u32 | chunk_id i64 | n_cells u32 | ndims u16
                     | n_attrs u16 | corner i64 * ndims
                     | (name_len u16 | name bytes) per attribute
    coord column  := encoded int64 column of the axis deltas
    int column    := tag u8 (0=raw, 1=RLE) | payload
    float column  := tag u8 (2) | raw float64 bytes
    RLE payload   := n_runs u32 | values i64 * n_runs | counts u32 * n_runs
"""

from __future__ import annotations

import struct

import numpy as np

from repro.adm.cells import CellSet
from repro.adm.chunk import Chunk
from repro.adm.schema import ArraySchema
from repro.errors import SchemaError

_MAGIC = 0x41444D31  # "ADM1"
_TAG_RAW_INT = 0
_TAG_RLE_INT = 1
_TAG_RAW_FLOAT = 2


# ------------------------------------------------------------ int columns


def _rle_runs(column: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Run values and lengths of an int64 column."""
    if len(column) == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.uint32)
    boundaries = np.flatnonzero(np.r_[True, column[1:] != column[:-1]])
    values = column[boundaries]
    counts = np.diff(np.r_[boundaries, len(column)]).astype(np.uint32)
    return values, counts


def encode_int_column(column: np.ndarray) -> bytes:
    """Encode an int64 column, choosing RLE when it is smaller."""
    column = np.ascontiguousarray(column, dtype=np.int64)
    raw = column.tobytes()
    values, counts = _rle_runs(column)
    rle_size = 4 + len(values) * 12
    if rle_size < len(raw):
        return (
            struct.pack("<BI", _TAG_RLE_INT, len(values))
            + values.tobytes()
            + counts.tobytes()
        )
    return struct.pack("<B", _TAG_RAW_INT) + raw


def decode_int_column(data: bytes, offset: int, n_cells: int) -> tuple[np.ndarray, int]:
    """Decode one int column; returns (column, next offset)."""
    (tag,) = struct.unpack_from("<B", data, offset)
    offset += 1
    if tag == _TAG_RAW_INT:
        end = offset + n_cells * 8
        return np.frombuffer(data[offset:end], dtype=np.int64).copy(), end
    if tag != _TAG_RLE_INT:
        raise SchemaError(f"unexpected integer column tag {tag}")
    (n_runs,) = struct.unpack_from("<I", data, offset)
    offset += 4
    values = np.frombuffer(data[offset : offset + n_runs * 8], dtype=np.int64)
    offset += n_runs * 8
    counts = np.frombuffer(data[offset : offset + n_runs * 4], dtype=np.uint32)
    offset += n_runs * 4
    column = np.repeat(values, counts.astype(np.int64))
    if len(column) != n_cells:
        raise SchemaError(
            f"RLE column decodes to {len(column)} cells, expected {n_cells}"
        )
    return column, offset


def encode_float_column(column: np.ndarray) -> bytes:
    column = np.ascontiguousarray(column, dtype=np.float64)
    return struct.pack("<B", _TAG_RAW_FLOAT) + column.tobytes()


def decode_float_column(
    data: bytes, offset: int, n_cells: int
) -> tuple[np.ndarray, int]:
    (tag,) = struct.unpack_from("<B", data, offset)
    if tag != _TAG_RAW_FLOAT:
        raise SchemaError(f"unexpected float column tag {tag}")
    offset += 1
    end = offset + n_cells * 8
    return np.frombuffer(data[offset:end], dtype=np.float64).copy(), end


# --------------------------------------------------------------- chunks


def serialize_attribute(chunk: Chunk, name: str) -> bytes:
    """One attribute's column alone — the vertical-partition read unit."""
    column = chunk.cells.column(name)
    if np.issubdtype(column.dtype, np.floating):
        return encode_float_column(column)
    return encode_int_column(column)


def serialize_chunk(
    chunk: Chunk,
    attributes: list[str] | None = None,
) -> bytes:
    """Serialise a chunk, optionally projecting to a subset of attributes.

    Coordinates are delta-encoded per axis before integer encoding; for
    C-ordered chunks the deltas are tiny and mostly repeated, so the RLE
    branch usually wins.
    """
    cells = chunk.cells
    names = list(attributes) if attributes is not None else list(cells.attr_names)
    for name in names:
        if name not in cells.attrs:
            raise SchemaError(f"chunk has no attribute {name!r}")

    header = struct.pack(
        "<IqIHH",
        _MAGIC,
        chunk.chunk_id,
        len(cells),
        cells.ndims,
        len(names),
    )
    header += struct.pack(f"<{cells.ndims}q", *chunk.corner)
    for name in names:
        encoded = name.encode("utf-8")
        header += struct.pack("<H", len(encoded)) + encoded

    body = b""
    for axis in range(cells.ndims):
        column = cells.dim_column(axis)
        deltas = np.diff(column, prepend=np.int64(0))
        body += encode_int_column(deltas)
    for name in names:
        column = cells.column(name)
        if np.issubdtype(column.dtype, np.floating):
            body += encode_float_column(column)
        else:
            body += encode_int_column(column)
    return header + body


def deserialize_chunk(data: bytes, schema: ArraySchema | None = None) -> Chunk:
    """Reconstruct a chunk from its serialised form.

    When ``schema`` is given, attribute dtypes are validated against it
    and the chunk is checked to lie within its declared grid cell.
    """
    magic, chunk_id, n_cells, ndims, n_attrs = struct.unpack_from("<IqIHH", data)
    if magic != _MAGIC:
        raise SchemaError("not an ADM chunk block (bad magic)")
    offset = struct.calcsize("<IqIHH")
    corner = struct.unpack_from(f"<{ndims}q", data, offset)
    offset += ndims * 8
    names = []
    for _ in range(n_attrs):
        (name_len,) = struct.unpack_from("<H", data, offset)
        offset += 2
        names.append(data[offset : offset + name_len].decode("utf-8"))
        offset += name_len

    coords = np.empty((n_cells, ndims), dtype=np.int64)
    for axis in range(ndims):
        deltas, offset = decode_int_column(data, offset, n_cells)
        coords[:, axis] = np.cumsum(deltas)

    attrs: dict[str, np.ndarray] = {}
    for name in names:
        is_float = False
        if schema is not None and schema.has_attr(name):
            is_float = schema.attr(name).type_name == "float64"
        else:
            (tag,) = struct.unpack_from("<B", data, offset)
            is_float = tag == _TAG_RAW_FLOAT
        if is_float:
            attrs[name], offset = decode_float_column(data, offset, n_cells)
        else:
            attrs[name], offset = decode_int_column(data, offset, n_cells)

    chunk = Chunk(
        chunk_id=int(chunk_id),
        corner=tuple(int(c) for c in corner),
        cells=CellSet(coords, attrs),
        sorted_cells=False,
    )
    if schema is not None:
        chunk.validate_against(schema)
    return chunk


def chunk_nbytes_serialized(chunk: Chunk) -> int:
    """Stored size of a chunk under this format (for size accounting)."""
    return len(serialize_chunk(chunk))
