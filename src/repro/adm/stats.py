"""Array statistics for schema inference.

When an A:A or A:D predicate forces an attribute to become a dimension of
the join schema, the logical planner "infers the dimension shape by
referencing statistics in the database engine about the source data"
(Section 4). This module provides those statistics: simple equi-width
histograms over attribute values, plus the dimension-inference rule that
translates them into a range and chunking interval.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.adm.schema import Dimension
from repro.errors import SchemaError


@dataclass(frozen=True)
class Histogram:
    """An equi-width histogram over integer-valued attribute data."""

    low: int
    high: int
    counts: tuple[int, ...]

    @classmethod
    def from_values(cls, values: np.ndarray, bins: int = 64) -> "Histogram":
        values = np.asarray(values)
        if len(values) == 0:
            raise SchemaError("cannot build a histogram over zero values")
        low = int(np.floor(values.min()))
        high = int(np.ceil(values.max()))
        counts, _ = np.histogram(values, bins=bins, range=(low, max(high, low + 1)))
        return cls(low=low, high=high, counts=tuple(int(c) for c in counts))

    @property
    def total(self) -> int:
        return sum(self.counts)

    @property
    def n_bins(self) -> int:
        return len(self.counts)

    def merge(self, other: "Histogram") -> "Histogram":
        """Combine value ranges of two histograms (bin detail is rebuilt).

        Only the range matters for dimension inference, so the merged
        histogram keeps the union range and sums totals into a single bin
        layout proportional to the wider input.
        """
        low = min(self.low, other.low)
        high = max(self.high, other.high)
        bins = max(self.n_bins, other.n_bins)
        counts = [0] * bins
        for hist in (self, other):
            span = max(hist.high - hist.low, 1)
            for i, c in enumerate(hist.counts):
                center = hist.low + (i + 0.5) * span / hist.n_bins
                target = int((center - low) / max(high - low, 1) * bins)
                counts[min(target, bins - 1)] += c
        return Histogram(low=low, high=high, counts=tuple(counts))


def infer_dimension(
    name: str,
    histogram: Histogram,
    target_chunks: int = 32,
) -> Dimension:
    """Translate a value histogram into a dimension declaration.

    The inferred dimension covers the observed value range and divides it
    into roughly ``target_chunks`` chunks, mirroring how the paper turns "a
    histogram of the source data's value distribution into a set of ranges
    and chunking intervals".
    """
    if target_chunks <= 0:
        raise SchemaError(f"target_chunks must be positive, got {target_chunks}")
    extent = histogram.high - histogram.low + 1
    interval = max(1, -(-extent // target_chunks))
    return Dimension(
        name=name,
        start=histogram.low,
        end=histogram.high,
        chunk_interval=interval,
    )
