"""Benchmark harness: experiment runners for every table and figure.

Each ``run_*`` function in :mod:`repro.bench.experiments` regenerates one
evaluation artifact from Section 6 of the paper — the same workload
shape, parameter sweep, planner set, and reported rows/series — at
laptop scale. :mod:`repro.bench.harness` provides the shared plumbing
(regression fits, table formatting, experiment records).
"""

from repro.bench.harness import (
    ExperimentRow,
    fit_linear_r2,
    fit_power_law,
    format_table,
)
from repro.bench.experiments import (
    run_adversarial_skew,
    run_fig5_fig6,
    run_fig7_merge_skew,
    run_fig8_hash_skew,
    run_fig9_beneficial_skew,
    run_fig10_scale_out,
    run_tab2_model_verification,
)
from repro.bench.wallclock import run_wallclock

__all__ = [
    "ExperimentRow",
    "fit_linear_r2",
    "fit_power_law",
    "format_table",
    "run_adversarial_skew",
    "run_fig10_scale_out",
    "run_fig5_fig6",
    "run_fig7_merge_skew",
    "run_fig8_hash_skew",
    "run_fig9_beneficial_skew",
    "run_tab2_model_verification",
    "run_wallclock",
]
