"""Experiment runners: one per table/figure of the paper's Section 6.

Every runner builds the experiment's workload at laptop scale, executes
the same sweep the paper reports, and returns an
:class:`ExperimentResult` whose rows mirror the paper's series. Absolute
numbers differ (the substrate is a simulator); the *shapes* — who wins,
by what factor, where crossovers fall — are the reproduction target and
are asserted by the benchmark suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.adm.array import LocalArray
from repro.bench.harness import ExperimentRow, fit_linear_r2, fit_power_law, format_table
from repro.cluster.cluster import Cluster
from repro.cluster.network import NetworkParams
from repro.engine.executor import ShuffleJoinExecutor
from repro.workloads.ais import ais_tracks
from repro.workloads.modis import modis_pair
from repro.workloads.synthetic import (
    selectivity_pair,
    skewed_hash_pair,
    skewed_merge_pair,
)

#: Planner order used throughout the paper's figures.
PAPER_PLANNERS = ("baseline", "ilp", "ilp_coarse", "mbh", "tabu")

#: The Figure 7/8 Zipfian skew sweep.
SKEW_SWEEP = (0.0, 0.5, 1.0, 1.5, 2.0)

#: The Figure 5/6 selectivity sweep.
SELECTIVITY_SWEEP = (0.01, 0.1, 1.0, 10.0, 100.0)


@dataclass
class ExperimentResult:
    """Rows plus derived summary statistics for one experiment."""

    name: str
    rows: list[ExperimentRow]
    summary: dict = field(default_factory=dict)
    label_keys: list[str] = field(default_factory=list)
    value_keys: list[str] = field(default_factory=list)

    def table(self) -> str:
        return format_table(
            self.rows, self.label_keys, self.value_keys, title=self.name
        )

    def select(self, **labels) -> list[ExperimentRow]:
        return [
            row
            for row in self.rows
            if all(row.labels.get(key) == value for key, value in labels.items())
        ]

    def value(self, key: str, **labels) -> float:
        matches = self.select(**labels)
        if len(matches) != 1:
            raise KeyError(f"{len(matches)} rows match {labels} in {self.name}")
        return matches[0].values[key]


def random_placement(seed: int):
    """A seeded random chunk placement (SciDB-style hashed distribution)."""

    def place(chunk_ids, n_nodes):
        rng = np.random.default_rng(seed)
        return rng.integers(0, n_nodes, size=len(chunk_ids)).tolist()

    return place


def make_cluster(
    arrays: list[LocalArray],
    n_nodes: int,
    seed: int = 0,
    placement: str | list[str] | tuple[str, ...] = "random",
    network: NetworkParams | None = None,
) -> Cluster:
    """A cluster with the experiment's storage layout.

    ``"random"`` scatters each array with an independent random placement
    (SciDB-style hashed distribution), so corresponding chunks of the two
    join sides generally live on different nodes. ``"block"`` assigns
    contiguous chunk ranges to nodes — paired with the hash workload's
    Zipf-ordered home chunks this yields the paper's Zipfian per-node
    slice-size skew (Section 6.2.2). ``"balanced"`` levels storage by
    cell count (largest chunk to the least-loaded node). A list applies
    one policy per array.
    """
    cluster = Cluster(n_nodes=n_nodes, network=network)
    policies = placement if isinstance(placement, (list, tuple)) else [
        placement
    ] * len(arrays)
    for index, (array, policy) in enumerate(zip(arrays, policies)):
        if policy in ("block", "balanced"):
            cluster.load_array(array, placement=policy)
        else:
            cluster.load_array(array, placement=random_placement(seed + 17 * index))
    return cluster


def _report_row(labels: dict, result) -> ExperimentRow:
    report = result.report
    return ExperimentRow(
        labels=labels,
        values={
            "plan_s": report.plan_seconds,
            "align_s": report.align_seconds,
            "compare_s": report.compare_seconds,
            "total_s": report.total_seconds,
            "execute_s": report.execute_seconds,
            "cells_moved": float(report.cells_moved),
            "output_cells": float(report.output_cells),
            "model_cost_s": (
                report.analytic_cost.total_seconds
                if report.analytic_cost is not None
                else float("nan")
            ),
        },
        meta={"afl": report.logical_afl, **report.meta},
    )


# ----------------------------------------------------------- Figures 5 & 6


def run_fig5_fig6(
    n_cells: int = 50_000,
    selectivities: tuple[float, ...] = SELECTIVITY_SWEEP,
    seed: int = 0,
) -> ExperimentResult:
    """Logical planning evaluation (Section 6.1, Figures 5 and 6).

    Single node, two 1-D arrays, the A:A query
    ``SELECT * INTO C<i,j>[v] FROM A, B WHERE A.v = B.w``; for each
    selectivity all three join algorithms run and both the logical plan
    cost and the (simulated) latency are recorded.
    """
    rows: list[ExperimentRow] = []
    query_template = (
        "SELECT * INTO C<i:int64, j:int64>[v=1,{extent},{interval}] "
        "FROM A, B WHERE A.v = B.w"
    )
    for sel_index, selectivity in enumerate(selectivities):
        array_a, array_b = selectivity_pair(
            selectivity, n_cells=n_cells, seed=seed + sel_index
        )
        interval = array_a.schema.dims[0].chunk_interval
        query = query_template.format(extent=n_cells, interval=interval)
        for algo in ("hash", "merge", "nested_loop"):
            cluster = make_cluster([array_a, array_b], n_nodes=1, seed=seed)
            executor = ShuffleJoinExecutor(cluster, selectivity_hint=selectivity)
            result = executor.execute(query, join_algo=algo)
            row = _report_row(
                {"algo": algo, "selectivity": selectivity}, result
            )
            row.values["logical_cost"] = result.logical_plan.cost
            rows.append(row)

    costs = np.array([row.values["logical_cost"] for row in rows])
    durations = np.array([row.values["execute_s"] for row in rows])
    _, exponent, r2 = fit_power_law(costs, durations)

    # Does the min-cost plan also have the min duration, per selectivity?
    # Also fit the power law over just those chosen plans — the points the
    # optimizer actually acts on.
    agreement = 0
    chosen: list[ExperimentRow] = []
    for selectivity in selectivities:
        subset = [row for row in rows if row.labels["selectivity"] == selectivity]
        by_cost = min(subset, key=lambda r: r.values["logical_cost"])
        by_time = min(subset, key=lambda r: r.values["execute_s"])
        agreement += by_cost.labels["algo"] == by_time.labels["algo"]
        chosen.append(by_cost)
    _, _, chosen_r2 = fit_power_law(
        np.array([row.values["logical_cost"] for row in chosen]),
        np.array([row.values["execute_s"] for row in chosen]),
    )

    return ExperimentResult(
        name="Figure 5/6: logical plan cost vs latency",
        rows=rows,
        summary={
            "power_law_r2": r2,
            "power_law_exponent": exponent,
            "chosen_plan_r2": chosen_r2,
            "min_cost_is_fastest": agreement,
            "n_selectivities": len(selectivities),
        },
        label_keys=["algo", "selectivity"],
        value_keys=["logical_cost", "execute_s", "compare_s", "output_cells"],
    )


# ----------------------------------------------------------------- Figure 7


MERGE_QUERY = (
    "SELECT A.v1 - B.v1 AS d1, A.v2 - B.v2 AS d2 "
    "FROM A, B WHERE A.i = B.i AND A.j = B.j"
)


def run_fig7_merge_skew(
    cells_per_array: int = 150_000,
    n_nodes: int = 12,
    alphas: tuple[float, ...] = SKEW_SWEEP,
    planners: tuple[str, ...] = PAPER_PLANNERS,
    ilp_budget_s: float = 4.0,
    seed: int = 0,
) -> ExperimentResult:
    """Merge join under varying skew (Section 6.2.1, Figure 7).

    D:D query over two 32×32-chunk arrays (1024 join units); whole chunks
    are the slices. Expected shape: MBH best or tied, ILP planning time
    wasted at α = 0, every skew-aware planner beating baseline at α ≥ 1.
    """
    rows: list[ExperimentRow] = []
    for alpha_index, alpha in enumerate(alphas):
        array_a, array_b = skewed_merge_pair(
            alpha, cells_per_array=cells_per_array, seed=seed + alpha_index
        )
        for planner in planners:
            cluster = make_cluster([array_a, array_b], n_nodes, seed=seed)
            executor = ShuffleJoinExecutor(
                cluster, selectivity_hint=0.25, ilp_time_budget_s=ilp_budget_s
            )
            result = executor.execute(MERGE_QUERY, planner=planner)
            rows.append(_report_row({"planner": planner, "alpha": alpha}, result))
    return ExperimentResult(
        name="Figure 7: merge join, physical planners vs skew",
        rows=rows,
        label_keys=["planner", "alpha"],
        value_keys=["plan_s", "align_s", "compare_s", "total_s", "cells_moved"],
    )


# ----------------------------------------------------------------- Figure 8


HASH_QUERY = (
    "SELECT A.i, A.j, B.i, B.j "
    "INTO T<ai:int64, aj:int64, bi:int64, bj:int64>[] "
    "FROM A, B WHERE A.v1 = B.v1 AND A.v2 = B.v2"
)


def run_fig8_hash_skew(
    cells_per_array: int = 150_000,
    n_nodes: int = 12,
    alphas: tuple[float, ...] = SKEW_SWEEP,
    planners: tuple[str, ...] = PAPER_PLANNERS,
    n_buckets: int = 1024,
    ilp_budget_s: float = 4.0,
    seed: int = 0,
) -> ExperimentResult:
    """Hash join under varying skew (Section 6.2.2, Figure 8).

    A:A query with 1024 hash buckets as join units; every unit is spread
    over all nodes. Expected shape: Tabu best overall; MBH poor at slight
    skew (α = 0.5); ILP struggling within its budget.
    """
    rows: list[ExperimentRow] = []
    for alpha_index, alpha in enumerate(alphas):
        array_a, array_b = skewed_hash_pair(
            alpha, cells_per_array=cells_per_array, seed=seed + alpha_index
        )
        for planner in planners:
            cluster = make_cluster(
                [array_a, array_b], n_nodes, seed=seed, placement="block"
            )
            executor = ShuffleJoinExecutor(
                cluster,
                selectivity_hint=0.0001,
                n_buckets=n_buckets,
                ilp_time_budget_s=ilp_budget_s,
            )
            result = executor.execute(HASH_QUERY, planner=planner, join_algo="hash")
            rows.append(_report_row({"planner": planner, "alpha": alpha}, result))
    return ExperimentResult(
        name="Figure 8: hash join, physical planners vs skew",
        rows=rows,
        label_keys=["planner", "alpha"],
        value_keys=["plan_s", "align_s", "compare_s", "total_s", "cells_moved"],
    )


# ------------------------------------------------------------------ Table 2


def run_tab2_model_verification(
    cells_per_array: int = 150_000,
    n_nodes: int = 12,
    alphas: tuple[float, ...] = (1.0, 1.5, 2.0),
    planners: tuple[str, ...] = ("ilp", "ilp_coarse", "tabu"),
    ilp_budget_s: float = 4.0,
    seed: int = 0,
) -> ExperimentResult:
    """Analytical model verification (Section 6.2, Table 2).

    Hash joins under moderate-to-high skew: for each cost-based planner,
    compare the model's plan cost against the measured (simulated)
    alignment + comparison time. The paper reports a linear fit with
    r² ≈ 0.9.
    """
    base = run_fig8_hash_skew(
        cells_per_array=cells_per_array,
        n_nodes=n_nodes,
        alphas=alphas,
        planners=planners,
        ilp_budget_s=ilp_budget_s,
        seed=seed,
    )
    rows = []
    for row in base.rows:
        rows.append(
            ExperimentRow(
                labels=dict(row.labels),
                values={
                    "model_cost_s": row.values["model_cost_s"],
                    "measured_s": row.values["execute_s"],
                },
                meta=row.meta,
            )
        )
    costs = np.array([row.values["model_cost_s"] for row in rows])
    times = np.array([row.values["measured_s"] for row in rows])
    return ExperimentResult(
        name="Table 2: analytical cost model vs hash join time",
        rows=rows,
        summary={"linear_r2": fit_linear_r2(costs, times)},
        label_keys=["planner", "alpha"],
        value_keys=["model_cost_s", "measured_s"],
    )


# ----------------------------------------------------------------- Figure 9


AIS_MODIS_QUERY = (
    "SELECT Band1.reflectance, Broadcast.ship_id "
    "FROM Band1, Broadcast "
    "WHERE Band1.lon = Broadcast.lon AND Band1.lat = Broadcast.lat"
)


def run_fig9_beneficial_skew(
    modis_cells: int = 200_000,
    ais_cells: int = 130_000,
    n_nodes: int = 4,
    planners: tuple[str, ...] = PAPER_PLANNERS,
    ilp_budget_s: float = 4.0,
    seed: int = 0,
) -> ExperimentResult:
    """Real-world beneficial skew (Section 6.3.1, Figure 9).

    MODIS reflectance ⋈ AIS broadcasts on the geospatial dimensions
    alone — near-uniform satellite data against heavily port-clustered
    ship tracks. Expected shape: skew-aware planners ≈ 2.5× faster end to
    end than the baseline, with data alignment cut by an order of
    magnitude and comparison roughly halved.
    """
    band1, _ = modis_pair(cells=modis_cells, seed=seed)
    broadcasts = ais_tracks(cells=ais_cells, seed=seed + 1)
    rows: list[ExperimentRow] = []
    for planner in planners:
        # MODIS arrives hashed (random); the loader levels the heavily
        # skewed AIS array across instances ("balanced"), so AIS hotspots
        # start the query evenly spread — the layout the baseline then
        # destroys by shipping them all to the MODIS side.
        # The 4-node real-data cluster pushes an order of magnitude more
        # bytes per cell (wide AIS attributes) over the same links, so the
        # per-cell link throughput is lower than in the synthetic runs.
        cluster = make_cluster(
            [band1, broadcasts], n_nodes, seed=seed,
            placement=["random", "balanced"],
            network=NetworkParams(bandwidth_cells_per_s=50_000.0),
        )
        executor = ShuffleJoinExecutor(
            cluster, selectivity_hint=1.0, ilp_time_budget_s=ilp_budget_s
        )
        result = executor.execute(
            AIS_MODIS_QUERY, planner=planner, join_algo="merge"
        )
        rows.append(_report_row({"planner": planner}, result))
    return ExperimentResult(
        name="Figure 9: merge join on real-world beneficial skew (AIS x MODIS)",
        rows=rows,
        label_keys=["planner"],
        value_keys=["plan_s", "align_s", "compare_s", "total_s", "cells_moved"],
    )


# --------------------------------------------------- Section 6.3.2 (no fig.)


NDVI_QUERY = (
    "SELECT (Band2.reflectance - Band1.reflectance) / "
    "(Band2.reflectance + Band1.reflectance) AS ndvi "
    "FROM Band1, Band2 "
    "WHERE Band1.time = Band2.time AND Band1.lon = Band2.lon "
    "AND Band1.lat = Band2.lat"
)


def run_adversarial_skew(
    modis_cells: int = 150_000,
    n_nodes: int = 4,
    planners: tuple[str, ...] = PAPER_PLANNERS,
    ilp_budget_s: float = 4.0,
    seed: int = 0,
) -> ExperimentResult:
    """Real-world adversarial skew (Section 6.3.2).

    The NDVI join of two MODIS bands: corresponding chunks are nearly
    equal in size, so there is little skew to exploit. Expected shape:
    all planners produce comparable execution times (the skew-aware
    machinery costs nothing when there is no skew to win on).
    """
    band1, band2 = modis_pair(cells=modis_cells, seed=seed)
    rows: list[ExperimentRow] = []
    for planner in planners:
        cluster = make_cluster([band1, band2], n_nodes, seed=seed)
        executor = ShuffleJoinExecutor(
            cluster, selectivity_hint=0.5, ilp_time_budget_s=ilp_budget_s
        )
        result = executor.execute(NDVI_QUERY, planner=planner, join_algo="merge")
        rows.append(_report_row({"planner": planner}, result))
    times = [row.values["execute_s"] for row in rows]
    return ExperimentResult(
        name="Section 6.3.2: merge join on adversarial skew (NDVI band join)",
        rows=rows,
        summary={"max_over_min_execute": max(times) / min(times)},
        label_keys=["planner"],
        value_keys=["plan_s", "align_s", "compare_s", "total_s", "cells_moved"],
    )


# ---------------------------------------------------------------- Figure 10


def run_fig10_scale_out(
    cells_per_array: int = 100_000,
    node_counts: tuple[int, ...] = (2, 4, 6, 8, 10, 12),
    alpha: float = 1.0,
    planners: tuple[str, ...] = PAPER_PLANNERS,
    ilp_budget_s: float = 4.0,
    seed: int = 0,
) -> ExperimentResult:
    """Scale-out test (Section 6.4, Figure 10).

    The Figure-7 merge join at fixed skew (α = 1.0) across cluster sizes
    2-12. Expected shape: skew-aware planners on 2 nodes beat the
    baseline on 12; the ILPs' planning overhead stops paying off as the
    decision space grows; MBH best at scale.
    """
    array_a, array_b = skewed_merge_pair(
        alpha, cells_per_array=cells_per_array, seed=seed
    )
    rows: list[ExperimentRow] = []
    for n_nodes in node_counts:
        for planner in planners:
            # The scale-out study probes the network-bound regime ("the
            # join spends most of its time aligning data", ~80 % of the
            # two-node trial): per-cell link throughput low enough that
            # alignment dominates comparison at every cluster size.
            cluster = make_cluster(
                [array_a, array_b], n_nodes, seed=seed,
                network=NetworkParams(bandwidth_cells_per_s=15_000.0),
            )
            executor = ShuffleJoinExecutor(
                cluster, selectivity_hint=0.25, ilp_time_budget_s=ilp_budget_s
            )
            result = executor.execute(MERGE_QUERY, planner=planner)
            rows.append(
                _report_row({"planner": planner, "nodes": n_nodes}, result)
            )
    return ExperimentResult(
        name="Figure 10: merge join scale-out (alpha=1.0)",
        rows=rows,
        label_keys=["planner", "nodes"],
        value_keys=["plan_s", "align_s", "compare_s", "total_s", "cells_moved"],
    )


def main() -> None:  # pragma: no cover - manual entry point
    """Run every experiment and print its table (slow)."""
    for runner in (
        run_fig5_fig6,
        run_fig7_merge_skew,
        run_fig8_hash_skew,
        run_tab2_model_verification,
        run_fig9_beneficial_skew,
        run_adversarial_skew,
        run_fig10_scale_out,
    ):
        result = runner()
        print(result.table())
        if result.summary:
            print("summary:", result.summary)
        print()


if __name__ == "__main__":  # pragma: no cover
    main()
