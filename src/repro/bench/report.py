"""Markdown results-report generation.

Regenerates an EXPERIMENTS-style results file from live runs, so a
reproduction on new hardware (or after a code change) can diff its
numbers against the committed record::

    python -m repro report --out results.md --experiments fig7 fig9
"""

from __future__ import annotations

import io
import time

from repro.bench import ablations, experiments

#: Experiment registry: id -> (runner, kwargs) at bench-default scale.
EXPERIMENT_RUNNERS = {
    "fig5": (experiments.run_fig5_fig6, {}),
    "fig7": (experiments.run_fig7_merge_skew, {"ilp_budget_s": 2.0}),
    "fig8": (experiments.run_fig8_hash_skew, {"ilp_budget_s": 2.0}),
    "tab2": (experiments.run_tab2_model_verification, {"ilp_budget_s": 3.0}),
    "fig9": (experiments.run_fig9_beneficial_skew, {"ilp_budget_s": 2.0}),
    "adv": (experiments.run_adversarial_skew, {"ilp_budget_s": 2.0}),
    "fig10": (experiments.run_fig10_scale_out, {"ilp_budget_s": 2.0}),
    "abl-shuffle": (ablations.run_ablation_shuffle_policy, {}),
    "abl-tabu": (ablations.run_ablation_tabu_list, {}),
    "abl-buckets": (ablations.run_ablation_bucket_count, {}),
    "abl-bins": (ablations.run_ablation_coarse_bins, {}),
    "abl-order": (ablations.run_ablation_join_order, {}),
}


def _markdown_table(result) -> str:
    """Render an ExperimentResult's rows as a GitHub-flavoured table."""
    headers = result.label_keys + result.value_keys
    lines = ["| " + " | ".join(headers) + " |",
             "|" + "---|" * len(headers)]
    for row in result.rows:
        cells = [str(row.labels.get(key, "")) for key in result.label_keys]
        for key in result.value_keys:
            value = row.values.get(key)
            cells.append("" if value is None else f"{value:.4g}")
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def generate_report(
    names: list[str] | None = None,
    stream: io.TextIOBase | None = None,
) -> str:
    """Run the selected experiments and return the markdown report."""
    selected = names or list(EXPERIMENT_RUNNERS)
    unknown = [name for name in selected if name not in EXPERIMENT_RUNNERS]
    if unknown:
        raise KeyError(
            f"unknown experiments {unknown}; choose from "
            f"{sorted(EXPERIMENT_RUNNERS)}"
        )
    sections = ["# Reproduction results", ""]
    for name in selected:
        runner, kwargs = EXPERIMENT_RUNNERS[name]
        started = time.perf_counter()
        result = runner(**kwargs)
        elapsed = time.perf_counter() - started
        sections.append(f"## {name}: {result.name}")
        sections.append("")
        sections.append(_markdown_table(result))
        if result.summary:
            sections.append("")
            summary = ", ".join(
                f"{key} = {value:.4g}" if isinstance(value, float)
                else f"{key} = {value}"
                for key, value in result.summary.items()
            )
            sections.append(f"summary: {summary}")
        sections.append("")
        sections.append(f"_(generated in {elapsed:.1f} s)_")
        sections.append("")
        if stream is not None:
            stream.write(f"{name} done in {elapsed:.1f}s\n")
    return "\n".join(sections)
