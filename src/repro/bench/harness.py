"""Shared benchmark plumbing: records, fits, and table rendering."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class ExperimentRow:
    """One measured configuration of an experiment."""

    labels: dict[str, object]
    values: dict[str, float]
    meta: dict = field(default_factory=dict)

    def get(self, key: str):
        if key in self.labels:
            return self.labels[key]
        return self.values[key]


def fit_power_law(x: np.ndarray, y: np.ndarray) -> tuple[float, float, float]:
    """Least-squares power-law fit ``y = a·x^b`` via log-log regression.

    Returns (a, b, r²). Used for the Figure-5 plan-cost-vs-latency
    correlation, which the paper reports as a strong power law (r² ≈ 0.9).
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    keep = (x > 0) & (y > 0)
    log_x, log_y = np.log(x[keep]), np.log(y[keep])
    slope, intercept = np.polyfit(log_x, log_y, 1)
    predicted = slope * log_x + intercept
    residual = np.sum((log_y - predicted) ** 2)
    total = np.sum((log_y - log_y.mean()) ** 2)
    r2 = 1.0 - residual / total if total > 0 else 1.0
    return float(np.exp(intercept)), float(slope), float(r2)


def fit_linear_r2(x: np.ndarray, y: np.ndarray) -> float:
    """r² of a linear fit, for the Table-2 model-vs-time verification."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    slope, intercept = np.polyfit(x, y, 1)
    predicted = slope * x + intercept
    residual = np.sum((y - predicted) ** 2)
    total = np.sum((y - y.mean()) ** 2)
    return float(1.0 - residual / total) if total > 0 else 1.0


def format_table(
    rows: list[ExperimentRow],
    label_keys: list[str],
    value_keys: list[str],
    title: str = "",
) -> str:
    """Render rows as a fixed-width text table (the bench output format)."""
    headers = label_keys + value_keys
    table: list[list[str]] = [headers]
    for row in rows:
        rendered = [str(row.labels.get(key, "")) for key in label_keys]
        for key in value_keys:
            value = row.values.get(key)
            rendered.append("" if value is None else f"{value:.4g}")
        table.append(rendered)
    widths = [max(len(line[col]) for line in table) for col in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    for index, line in enumerate(table):
        lines.append(
            "  ".join(cell.ljust(width) for cell, width in zip(line, widths))
        )
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)
