"""Wall-clock benchmark of the parallel join-unit engine.

Unlike :mod:`repro.bench.experiments` — which reports *simulated* phase
durations — this harness times the engine's **real** execution:
the same prepared join is executed serially (the per-unit reference
path) and with a worker pool (batched vectorised matching), and the
measured wall-clock seconds are compared.

Methodology:

- the join is prepared once; an untimed warm-up execution fills the
  slice table's assembly/key/alignment caches so both modes measure the
  matching work, not one-time cache construction;
- each mode runs ``repeats`` times and reports the best (the standard
  wall-clock idiom: minimum is the least noise-contaminated sample);
- the serial and parallel outputs are checked for byte-identical
  *sorted* cell sets — parallelism reorders rows within the output, it
  must never change the cells.

``python -m repro bench`` (or ``python -m repro.bench.wallclock``)
writes the result as JSON, the artifact checked in as BENCH_PR1.json.
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import dataclass

import numpy as np

from repro.bench.experiments import (
    HASH_QUERY,
    MERGE_QUERY,
    make_cluster,
    skewed_hash_pair,
    skewed_merge_pair,
)
from repro.engine.executor import PreparedJoin, ShuffleJoinExecutor

#: Skew-workload builders, keyed by the figure whose data they reuse.
#: Each returns (executor, query, join_algo) for the default paper-scale
#: configuration of that figure.
WORKLOADS = ("fig8_hash_skew", "fig7_merge_skew")


def build_workload(
    name: str,
    cells_per_array: int = 150_000,
    n_nodes: int = 12,
    alpha: float = 1.0,
    seed: int = 0,
) -> tuple[ShuffleJoinExecutor, str, str]:
    """Construct one skew workload's executor and pinned query."""
    if name == "fig8_hash_skew":
        array_a, array_b = skewed_hash_pair(
            alpha, cells_per_array=cells_per_array, seed=seed
        )
        cluster = make_cluster(
            [array_a, array_b], n_nodes, seed=seed, placement="block"
        )
        executor = ShuffleJoinExecutor(
            cluster, selectivity_hint=0.0001, n_buckets=1024
        )
        return executor, HASH_QUERY, "hash"
    if name == "fig7_merge_skew":
        array_a, array_b = skewed_merge_pair(
            alpha, cells_per_array=cells_per_array, seed=seed
        )
        cluster = make_cluster([array_a, array_b], n_nodes, seed=seed)
        executor = ShuffleJoinExecutor(cluster, selectivity_hint=0.25)
        return executor, MERGE_QUERY, "merge"
    raise ValueError(f"unknown workload {name!r}; choose from {WORKLOADS}")


def sorted_cell_bytes(result) -> bytes:
    """Canonical byte representation of a join output: sorted cells."""
    packed = result.cells.to_structured(sorted(result.cells.attrs))
    return np.sort(packed).tobytes()


def time_execute(
    prepared: PreparedJoin,
    planner: str,
    n_workers: int | None,
    repeats: int,
) -> tuple[list[float], object]:
    """Time repeated executions; returns (seconds per run, last result)."""
    samples: list[float] = []
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = prepared.execute(planner, n_workers=n_workers)
        samples.append(time.perf_counter() - started)
    return samples, result


@dataclass
class WallclockResult:
    """One serial-vs-parallel comparison, JSON-serialisable via vars()."""

    workload: str
    planner: str
    join_algo: str
    n_workers: int
    cells_per_array: int
    n_nodes: int
    n_units: int
    alpha: float
    repeats: int
    cpu_count: int
    platform: str
    prepare_seconds: float
    serial_seconds: float
    parallel_seconds: float
    serial_samples: list[float]
    parallel_samples: list[float]
    speedup: float
    output_cells: int
    outputs_identical: bool
    parallel_deterministic: bool


def run_wallclock(
    workload: str = "fig8_hash_skew",
    planner: str = "baseline",
    n_workers: int = 4,
    cells_per_array: int = 150_000,
    n_nodes: int = 12,
    alpha: float = 1.0,
    repeats: int = 5,
    seed: int = 0,
) -> WallclockResult:
    """Benchmark serial vs parallel execution of one prepared join."""
    executor, query, join_algo = build_workload(
        workload,
        cells_per_array=cells_per_array,
        n_nodes=n_nodes,
        alpha=alpha,
        seed=seed,
    )
    started = time.perf_counter()
    prepared = executor.prepare(query, join_algo=join_algo)
    prepare_seconds = time.perf_counter() - started

    # Warm the assembly/key/alignment caches (shared by both modes).
    warm = prepared.execute(planner)

    serial_samples, serial_result = time_execute(
        prepared, planner, None, repeats
    )
    parallel_samples, parallel_result = time_execute(
        prepared, planner, n_workers, repeats
    )
    parallel_again = prepared.execute(planner, n_workers=n_workers)

    serial_bytes = sorted_cell_bytes(serial_result)
    parallel_bytes = sorted_cell_bytes(parallel_result)
    serial_best = min(serial_samples)
    parallel_best = min(parallel_samples)
    return WallclockResult(
        workload=workload,
        planner=planner,
        join_algo=join_algo,
        n_workers=n_workers,
        cells_per_array=cells_per_array,
        n_nodes=n_nodes,
        n_units=prepared.n_units,
        alpha=alpha,
        repeats=repeats,
        cpu_count=os.cpu_count() or 1,
        platform=platform.platform(),
        prepare_seconds=prepare_seconds,
        serial_seconds=serial_best,
        parallel_seconds=parallel_best,
        serial_samples=serial_samples,
        parallel_samples=parallel_samples,
        speedup=serial_best / parallel_best if parallel_best else float("inf"),
        output_cells=warm.report.output_cells,
        outputs_identical=serial_bytes == parallel_bytes,
        parallel_deterministic=(
            parallel_bytes == sorted_cell_bytes(parallel_again)
        ),
    )


def write_results(results: list[WallclockResult], path: str) -> None:
    payload = {
        "benchmark": "parallel join-unit engine, serial vs worker pool",
        "results": [vars(result) for result in results],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="time serial vs parallel join execution"
    )
    parser.add_argument(
        "--workload", choices=WORKLOADS, action="append", default=None,
        help="workload(s) to run (default: both)",
    )
    parser.add_argument("--planner", default="baseline")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--cells", type=int, default=150_000)
    parser.add_argument("--nodes", type=int, default=12)
    parser.add_argument("--alpha", type=float, default=1.0)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default=None, help="write JSON here")
    args = parser.parse_args(argv)

    results = []
    for workload in args.workload or list(WORKLOADS):
        result = run_wallclock(
            workload=workload,
            planner=args.planner,
            n_workers=args.workers,
            cells_per_array=args.cells,
            n_nodes=args.nodes,
            alpha=args.alpha,
            repeats=args.repeats,
            seed=args.seed,
        )
        results.append(result)
        print(
            f"{result.workload} [{result.planner}/{result.join_algo}] "
            f"serial {result.serial_seconds:.3f}s vs "
            f"{result.n_workers}-worker {result.parallel_seconds:.3f}s "
            f"-> {result.speedup:.2f}x; identical={result.outputs_identical} "
            f"deterministic={result.parallel_deterministic}"
        )
    if args.out:
        write_results(results, args.out)
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
