"""Wall-clock benchmark of the parallel join-unit engine.

Unlike :mod:`repro.bench.experiments` — which reports *simulated* phase
durations — this harness times the engine's **real** execution:
the same prepared join is executed serially (the per-unit reference
path) and with a worker pool (batched vectorised matching), and the
measured wall-clock seconds are compared.

Methodology:

- the join is prepared once; an untimed warm-up execution fills the
  slice table's assembly/key/alignment caches so both modes measure the
  matching work, not one-time cache construction;
- each mode runs ``repeats`` times and reports the best (the standard
  wall-clock idiom: minimum is the least noise-contaminated sample);
- the serial and parallel outputs are checked for byte-identical
  *sorted* cell sets — parallelism reorders rows within the output, it
  must never change the cells.

``python -m repro bench`` (or ``python -m repro.bench.wallclock``)
writes the result as JSON, the artifact checked in as BENCH_PR1.json.
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import dataclass, field as dataclass_field

import numpy as np

from repro.bench.experiments import (
    HASH_QUERY,
    MERGE_QUERY,
    make_cluster,
    skewed_hash_pair,
    skewed_merge_pair,
)
from repro.core.cost_model import AnalyticalCostModel, CostParams
from repro.core.planners.tabu import TabuPlanner
from repro.core.slices import SliceStats
from repro.engine.executor import PreparedJoin, ShuffleJoinExecutor
from repro.engine.kernels import HAVE_NUMBA, resolve_kernel
from repro.engine.parallel import available_cpus, shutdown_pools
from repro.obs.trace import Tracer, validate_chrome_trace
from repro.serve import (
    JoinServer,
    QueryMix,
    run_closed_loop,
    run_open_loop,
    serial_references,
    tenant_cache_stats,
)
from repro.workloads.synthetic import (
    chain_arrays,
    chain_query,
    star_arrays,
    star_query,
)

#: Skew-workload builders, keyed by the figure whose data they reuse.
#: Each returns (executor, query, join_algo) for the default paper-scale
#: configuration of that figure.
WORKLOADS = ("fig8_hash_skew", "fig7_merge_skew")


def build_workload(
    name: str,
    cells_per_array: int = 150_000,
    n_nodes: int = 12,
    alpha: float = 1.0,
    seed: int = 0,
    plan_cache_size: int = 0,
    **executor_options,
) -> tuple[ShuffleJoinExecutor, str, str]:
    """Construct one skew workload's executor and pinned query.

    ``plan_cache_size`` > 0 equips the executor with a warm-path plan
    cache (used by the ``--serving`` repeated-query mode); the default
    keeps it off so the planning-cost benchmarks measure planning.
    Extra keyword arguments pass straight to the executor (the ``--skew``
    sweep sets ``split_units``/``parallel_mode`` per configuration).
    """
    if name == "fig8_hash_skew":
        array_a, array_b = skewed_hash_pair(
            alpha, cells_per_array=cells_per_array, seed=seed
        )
        cluster = make_cluster(
            [array_a, array_b], n_nodes, seed=seed, placement="block"
        )
        executor = ShuffleJoinExecutor(
            cluster, selectivity_hint=0.0001, n_buckets=1024,
            plan_cache_size=plan_cache_size, **executor_options,
        )
        return executor, HASH_QUERY, "hash"
    if name == "fig7_merge_skew":
        array_a, array_b = skewed_merge_pair(
            alpha, cells_per_array=cells_per_array, seed=seed
        )
        cluster = make_cluster([array_a, array_b], n_nodes, seed=seed)
        executor = ShuffleJoinExecutor(
            cluster, selectivity_hint=0.25,
            plan_cache_size=plan_cache_size, **executor_options,
        )
        return executor, MERGE_QUERY, "merge"
    raise ValueError(f"unknown workload {name!r}; choose from {WORKLOADS}")


def sorted_cell_bytes(result) -> bytes:
    """Canonical byte representation of a join output: sorted cells."""
    packed = result.cells.to_structured(sorted(result.cells.attrs))
    return np.sort(packed).tobytes()


def time_execute(
    prepared: PreparedJoin,
    planner: str,
    n_workers: int | None,
    repeats: int,
) -> tuple[list[float], object]:
    """Time repeated executions; returns (seconds per run, last result)."""
    samples: list[float] = []
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = prepared.execute(planner, n_workers=n_workers)
        samples.append(time.perf_counter() - started)
    return samples, result


@dataclass
class WallclockResult:
    """One serial-vs-parallel comparison, JSON-serialisable via vars()."""

    workload: str
    planner: str
    join_algo: str
    n_workers: int
    cells_per_array: int
    n_nodes: int
    n_units: int
    alpha: float
    repeats: int
    cpu_count: int
    worker_mode: str
    platform: str
    prepare_seconds: float
    serial_seconds: float
    parallel_seconds: float
    serial_samples: list[float]
    parallel_samples: list[float]
    speedup: float
    output_cells: int
    outputs_identical: bool
    parallel_deterministic: bool
    #: Wall-clock seconds per prepare stage (logical_plan / stats /
    #: physical_assign / alignment / schedule) from the phase profiler.
    prepare_breakdown: dict[str, float] = dataclass_field(default_factory=dict)


def run_wallclock(
    workload: str = "fig8_hash_skew",
    planner: str = "baseline",
    n_workers: int = 4,
    cells_per_array: int = 150_000,
    n_nodes: int = 12,
    alpha: float = 1.0,
    repeats: int = 5,
    seed: int = 0,
) -> WallclockResult:
    """Benchmark serial vs parallel execution of one prepared join."""
    executor, query, join_algo = build_workload(
        workload,
        cells_per_array=cells_per_array,
        n_nodes=n_nodes,
        alpha=alpha,
        seed=seed,
    )
    started = time.perf_counter()
    prepared = executor.prepare(query, join_algo=join_algo)
    prepare_seconds = time.perf_counter() - started

    # Warm the assembly/key/alignment caches (shared by both modes).
    warm = prepared.execute(planner)

    serial_samples, serial_result = time_execute(
        prepared, planner, None, repeats
    )
    parallel_samples, parallel_result = time_execute(
        prepared, planner, n_workers, repeats
    )
    parallel_again = prepared.execute(planner, n_workers=n_workers)

    serial_bytes = sorted_cell_bytes(serial_result)
    parallel_bytes = sorted_cell_bytes(parallel_result)
    serial_best = min(serial_samples)
    parallel_best = min(parallel_samples)
    return WallclockResult(
        workload=workload,
        planner=planner,
        join_algo=join_algo,
        n_workers=n_workers,
        cells_per_array=cells_per_array,
        n_nodes=n_nodes,
        n_units=prepared.n_units,
        alpha=alpha,
        repeats=repeats,
        cpu_count=available_cpus(),
        worker_mode=executor.parallel_mode,
        platform=platform.platform(),
        prepare_seconds=prepare_seconds,
        serial_seconds=serial_best,
        parallel_seconds=parallel_best,
        serial_samples=serial_samples,
        parallel_samples=parallel_samples,
        speedup=serial_best / parallel_best if parallel_best else float("inf"),
        output_cells=warm.report.output_cells,
        outputs_identical=serial_bytes == parallel_bytes,
        parallel_deterministic=(
            parallel_bytes == sorted_cell_bytes(parallel_again)
        ),
        prepare_breakdown=dict(warm.report.prepare_breakdown),
    )


@dataclass
class PrepareResult:
    """Prepare-pipeline timing, vectorized vs reference, one workload.

    "Reference" replays the pre-vectorization prepare pipeline on the
    same data: the scalar Tabu inner loop and per-unit key re-derivation
    (the slice table's fallback path when no key pieces were captured).
    "Vectorized" is the shipped pipeline: batched Tabu move evaluation
    and key material sliced out of the slice mapping's single sort.
    """

    workload: str
    join_algo: str
    cells_per_array: int
    n_nodes: int
    n_units: int
    alpha: float
    repeats: int
    reference_seconds: float
    vectorized_seconds: float
    speedup: float
    assignments_identical: bool
    costs_identical: bool
    prepare_breakdown: dict[str, float] = dataclass_field(default_factory=dict)


def _derive_all_unit_keys(prepared: PreparedJoin) -> None:
    """Touch every non-empty unit side's key material (prepare's tail)."""
    table = prepared.slice_table
    stats = table.stats
    left_totals = stats.left_unit_totals
    right_totals = stats.right_unit_totals
    for unit in range(stats.n_units):
        if left_totals[unit]:
            table.unit_keys("left", unit, prepared.join_schema)
        if right_totals[unit]:
            table.unit_keys("right", unit, prepared.join_schema)


def run_prepare_bench(
    workload: str = "fig8_hash_skew",
    cells_per_array: int = 150_000,
    n_nodes: int = 12,
    alpha: float = 1.0,
    repeats: int = 3,
    seed: int = 0,
) -> PrepareResult:
    """Time the full prepare pipeline, vectorized vs reference.

    One pass = logical plan + slice mapping + Tabu physical assignment +
    alignment simulation + per-unit key derivation — everything a join
    needs before the first cell comparison can start.
    """
    executor, query, join_algo = build_workload(
        workload,
        cells_per_array=cells_per_array,
        n_nodes=n_nodes,
        alpha=alpha,
        seed=seed,
    )

    def one_pass(vectorized: bool):
        # The reference arm replays the pre-vectorization pipeline end to
        # end: per-structure partition sorts in the slice mapping, no
        # captured key pieces (unit_keys re-derives key_columns +
        # composite_key per assembled unit), and the scalar Tabu loop.
        executor.single_sort = vectorized
        started = time.perf_counter()
        prepared = executor.prepare(query, join_algo=join_algo)
        planner = TabuPlanner(
            max_rounds=executor.tabu_max_rounds, vectorized=vectorized
        )
        model = AnalyticalCostModel(prepared.stats, join_algo, executor.cost)
        with executor.profiler.phase("physical_assign"):
            plan = planner.plan(model)
        executor._data_alignment(
            prepared.query, prepared.slice_table, plan.assignment
        )
        _derive_all_unit_keys(prepared)
        elapsed = time.perf_counter() - started
        return elapsed, prepared, plan

    samples = {True: [], False: []}
    plans = {}
    prepared = None
    breakdown: dict[str, float] = {}
    breakdown_snapshot = executor.profiler.snapshot()
    for _ in range(repeats):
        for vectorized in (True, False):
            elapsed, prepared_pass, plan = one_pass(vectorized)
            samples[vectorized].append(elapsed)
            plans[vectorized] = plan
            if vectorized:
                prepared = prepared_pass
                breakdown = executor.profiler.since(breakdown_snapshot)
            breakdown_snapshot = executor.profiler.snapshot()

    reference_best = min(samples[False])
    vectorized_best = min(samples[True])
    return PrepareResult(
        workload=workload,
        join_algo=join_algo,
        cells_per_array=cells_per_array,
        n_nodes=n_nodes,
        n_units=prepared.n_units,
        alpha=alpha,
        repeats=repeats,
        reference_seconds=reference_best,
        vectorized_seconds=vectorized_best,
        speedup=(
            reference_best / vectorized_best if vectorized_best else float("inf")
        ),
        assignments_identical=bool(
            np.array_equal(plans[True].assignment, plans[False].assignment)
        ),
        costs_identical=bool(
            plans[True].cost.total_seconds == plans[False].cost.total_seconds
        ),
        prepare_breakdown=breakdown,
    )


@dataclass
class KeysResult:
    """Packed-vs-structured composite keys, one workload, serial path.

    Both arms execute the identical prepared join end to end on the
    serial per-unit path; the only difference is the key representation
    the slice mapping derived (packed ``uint64`` via the key codec vs
    structured dtype). The outputs must be byte-identical sorted cell
    sets — the codec is a representation change, never a result change.
    """

    workload: str
    planner: str
    join_algo: str
    cells_per_array: int
    n_nodes: int
    n_units: int
    alpha: float
    repeats: int
    cpu_count: int
    worker_mode: str
    platform: str
    #: Total packed bit width, or None when the codec declined and the
    #: packed arm silently fell back to structured keys.
    key_width: int | None
    structured_seconds: float
    packed_seconds: float
    structured_samples: list[float]
    packed_samples: list[float]
    speedup: float
    structured_prepare_seconds: float
    packed_prepare_seconds: float
    output_cells: int
    outputs_identical: bool


def run_keys_bench(
    workload: str = "fig7_merge_skew",
    planner: str = "baseline",
    cells_per_array: int = 150_000,
    n_nodes: int = 12,
    alpha: float = 1.0,
    repeats: int = 5,
    seed: int = 0,
) -> KeysResult:
    """Benchmark packed vs structured keys on one workload's native algo.

    Each arm re-prepares (the key representation is fixed at slice
    mapping), warms the caches with one untimed execution, then times
    ``repeats`` serial executions — the per-unit path, where every sort,
    searchsorted, and sortedness check runs on the arm's keys.
    """
    executor, query, join_algo = build_workload(
        workload,
        cells_per_array=cells_per_array,
        n_nodes=n_nodes,
        alpha=alpha,
        seed=seed,
    )
    arms: dict[bool, dict] = {}
    for packed in (False, True):
        executor.packed_keys = packed
        started = time.perf_counter()
        prepared = executor.prepare(query, join_algo=join_algo)
        prepare_seconds = time.perf_counter() - started
        warm = prepared.execute(planner)
        samples, result = time_execute(prepared, planner, None, repeats)
        arms[packed] = {
            "prepared": prepared,
            "prepare_seconds": prepare_seconds,
            "warm": warm,
            "samples": samples,
            "bytes": sorted_cell_bytes(result),
        }
    codec = arms[True]["prepared"].slice_table.codec
    structured_best = min(arms[False]["samples"])
    packed_best = min(arms[True]["samples"])
    return KeysResult(
        workload=workload,
        planner=planner,
        join_algo=join_algo,
        cells_per_array=cells_per_array,
        n_nodes=n_nodes,
        n_units=arms[True]["prepared"].n_units,
        alpha=alpha,
        repeats=repeats,
        cpu_count=available_cpus(),
        worker_mode="serial",
        platform=platform.platform(),
        key_width=codec.total_width if codec is not None else None,
        structured_seconds=structured_best,
        packed_seconds=packed_best,
        structured_samples=arms[False]["samples"],
        packed_samples=arms[True]["samples"],
        speedup=structured_best / packed_best if packed_best else float("inf"),
        structured_prepare_seconds=arms[False]["prepare_seconds"],
        packed_prepare_seconds=arms[True]["prepare_seconds"],
        output_cells=arms[True]["warm"].report.output_cells,
        outputs_identical=arms[True]["bytes"] == arms[False]["bytes"],
    )


@dataclass
class StressResult:
    """Vectorized-vs-reference Tabu on a large synthetic instance."""

    n_units: int
    n_nodes: int
    alpha: float
    seed: int
    scale: int
    repeats: int
    reference_seconds: float
    vectorized_seconds: float
    speedup: float
    assignments_identical: bool
    costs_identical: bool
    moves: int
    evaluations: int
    final_cost: float


def synthetic_slice_stats(
    n_units: int, n_nodes: int, alpha: float, seed: int, scale: int = 200_000
) -> SliceStats:
    """Zipf-flavoured random slice statistics for planner stress tests.

    Unit weights are Dirichlet(α) — small α concentrates mass in few
    units (heavy skew) — and each unit's cells are spread over the nodes
    by an independent Dirichlet split, so no node starts balanced.
    """
    rng = np.random.default_rng(seed)
    weights = rng.dirichlet(np.full(n_units, alpha))
    totals = rng.multinomial(scale, weights)
    split = rng.dirichlet(np.full(n_nodes, 1.0), size=n_units)
    s_left = np.floor(totals[:, None] * split).astype(np.int64)
    right_totals = rng.multinomial(
        scale // 4, rng.dirichlet(np.full(n_units, alpha))
    )
    right_split = rng.dirichlet(np.full(n_nodes, 1.0), size=n_units)
    s_right = np.floor(right_totals[:, None] * right_split).astype(np.int64)
    return SliceStats(s_left, s_right)


def run_planner_stress(
    n_units: int = 8192,
    n_nodes: int = 16,
    alpha: float = 1.1,
    seed: int = 7,
    scale: int = 200_000,
    repeats: int = 3,
) -> StressResult:
    """Race the vectorized Tabu planner against its reference oracle.

    The reference loop is O(overloaded-units × n_nodes) Python-level
    work per round; at thousands of units it dominates, so it is timed
    with a single warm repeat while the vectorized path gets ``repeats``.
    Assignments and final costs are asserted identical first.
    """
    stats = synthetic_slice_stats(n_units, n_nodes, alpha, seed, scale=scale)
    model = AnalyticalCostModel(
        stats, "hash", CostParams(m=1e-6, b=4e-6, p=1e-6, t=5e-6)
    )
    reference = TabuPlanner(vectorized=False)
    vectorized = TabuPlanner(vectorized=True)

    ref_assign, ref_meta = reference.assign(model)
    vec_assign, vec_meta = vectorized.assign(model)
    identical = bool(np.array_equal(ref_assign, vec_assign))
    costs_identical = bool(ref_meta["final_cost"] == vec_meta["final_cost"])

    started = time.perf_counter()
    reference.assign(model)
    reference_seconds = time.perf_counter() - started

    vec_samples = []
    for _ in range(repeats):
        started = time.perf_counter()
        vectorized.assign(model)
        vec_samples.append(time.perf_counter() - started)
    vectorized_seconds = min(vec_samples)

    return StressResult(
        n_units=n_units,
        n_nodes=n_nodes,
        alpha=alpha,
        seed=seed,
        scale=scale,
        repeats=repeats,
        reference_seconds=reference_seconds,
        vectorized_seconds=vectorized_seconds,
        speedup=(
            reference_seconds / vectorized_seconds
            if vectorized_seconds
            else float("inf")
        ),
        assignments_identical=identical,
        costs_identical=costs_identical,
        moves=int(vec_meta["moves"]),
        evaluations=int(vec_meta["evaluations"]),
        final_cost=float(vec_meta["final_cost"]),
    )


@dataclass
class TraceResult:
    """Instrumentation-overhead measurement of one traced workload.

    The same prepared join runs ``repeats`` times untraced (the default
    disabled-tracer path: every span site is one attribute check) and
    ``repeats`` times with a live tracer collecting the full span set,
    including per-worker and simulated-network spans. ``overhead_pct``
    compares the best samples; the acceptance bar is < 5%. The last
    traced run's Chrome trace JSON is written to ``trace_path`` and
    structurally validated (``trace_valid``).
    """

    workload: str
    planner: str
    join_algo: str
    n_workers: int
    cells_per_array: int
    n_nodes: int
    n_units: int
    alpha: float
    repeats: int
    untraced_seconds: float
    traced_seconds: float
    untraced_samples: list[float]
    traced_samples: list[float]
    overhead_pct: float
    n_spans: int
    trace_path: str
    trace_valid: bool


def run_trace_bench(
    workload: str = "fig8_hash_skew",
    planner: str = "baseline",
    n_workers: int = 4,
    cells_per_array: int = 150_000,
    n_nodes: int = 12,
    alpha: float = 1.0,
    repeats: int = 5,
    seed: int = 0,
    trace_dir: str = "trace-artifacts",
) -> TraceResult:
    """Measure span-tracing overhead and export one workload's trace.

    Both arms execute the identical warmed prepared join; only the
    executor's tracer differs (disabled vs collecting). The traced arm
    clears the tracer between repeats so the exported file holds exactly
    one execution's spans.
    """
    os.makedirs(trace_dir, exist_ok=True)
    executor, query, join_algo = build_workload(
        workload,
        cells_per_array=cells_per_array,
        n_nodes=n_nodes,
        alpha=alpha,
        seed=seed,
    )
    prepared = executor.prepare(query, join_algo=join_algo)
    prepared.execute(planner, n_workers=n_workers)  # warm the caches

    untraced_samples, _ = time_execute(prepared, planner, n_workers, repeats)

    tracer = Tracer()
    saved_tracer = executor.tracer
    executor.tracer = tracer
    traced_samples: list[float] = []
    try:
        for _ in range(repeats):
            tracer.clear()
            started = time.perf_counter()
            prepared.execute(planner, n_workers=n_workers)
            traced_samples.append(time.perf_counter() - started)
    finally:
        executor.tracer = saved_tracer

    trace_path = os.path.join(trace_dir, f"{workload}.trace.json")
    n_spans = tracer.write_chrome(trace_path)
    with open(trace_path, "r", encoding="utf-8") as handle:
        errors = validate_chrome_trace(json.load(handle))

    untraced_best = min(untraced_samples)
    traced_best = min(traced_samples)
    overhead = (
        100.0 * (traced_best - untraced_best) / untraced_best
        if untraced_best
        else 0.0
    )
    return TraceResult(
        workload=workload,
        planner=planner,
        join_algo=join_algo,
        n_workers=n_workers,
        cells_per_array=cells_per_array,
        n_nodes=n_nodes,
        n_units=prepared.n_units,
        alpha=alpha,
        repeats=repeats,
        untraced_seconds=untraced_best,
        traced_seconds=traced_best,
        untraced_samples=untraced_samples,
        traced_samples=traced_samples,
        overhead_pct=overhead,
        n_spans=n_spans,
        trace_path=trace_path,
        trace_valid=not errors,
    )


@dataclass
class ServingResult:
    """Cold-vs-warm latency of one repeated-query serving workload.

    "Cold" is the first ``execute`` of the query — plan-cache miss, so
    it pays logical planning, slice mapping, physical assignment, and
    the shuffle-schedule simulation before any cell is compared.
    "Warm" executions hit the fingerprinted plan cache and skip straight
    from lookup to cell comparison. Both are full wall-clock latencies
    of the same query returning the same (byte-identical) result.
    """

    workload: str
    planner: str
    join_algo: str
    n_nodes: int
    cells_per_array: int
    n_units: int
    alpha: float
    n_workers: int | None
    repeats: int
    cache_capacity: int
    cpu_count: int
    worker_mode: str
    platform: str
    #: prepare-inclusive latencies (seconds)
    cold_seconds: float
    warm_seconds: float
    warm_mean_seconds: float
    warm_samples: list[float]
    speedup: float
    #: warm repeated-query throughput
    queries_per_second: float
    #: planning-only portions (cold: logical+physical; warm: cache lookup)
    cold_plan_seconds: float
    warm_plan_seconds: float
    #: hit/miss/eviction counters after the run
    cache: dict
    warm_identical: bool
    nocache_identical: bool
    assignments_identical: bool


def run_serving_bench(
    workload: str = "fig8_hash_skew",
    planner: str = "tabu",
    n_workers: int | None = None,
    cells_per_array: int = 150_000,
    n_nodes: int = 12,
    alpha: float = 1.0,
    repeats: int = 15,
    seed: int = 0,
    cache_capacity: int = 32,
) -> ServingResult:
    """Measure cold-vs-warm latency of one repeatedly issued query.

    Every execution goes through the public ``execute`` entry point —
    the serving path a deployment would take — so the cold sample is a
    genuine first-query latency and the warm samples are genuine
    repeat-query latencies, correctness included: the warm outputs and
    a cache-disabled rerun must be byte-identical to the cold output,
    and the join-unit assignment must be the very same plan.
    """
    executor, query, join_algo = build_workload(
        workload,
        cells_per_array=cells_per_array,
        n_nodes=n_nodes,
        alpha=alpha,
        seed=seed,
        plan_cache_size=cache_capacity,
    )

    started = time.perf_counter()
    cold = executor.execute(
        query, planner=planner, join_algo=join_algo, n_workers=n_workers
    )
    cold_seconds = time.perf_counter() - started
    if cold.report.cache.get("status") != "miss":
        raise RuntimeError("first serving execution must be a cache miss")

    warm_samples: list[float] = []
    warm = cold
    for _ in range(repeats):
        started = time.perf_counter()
        warm = executor.execute(
            query, planner=planner, join_algo=join_algo, n_workers=n_workers
        )
        warm_samples.append(time.perf_counter() - started)
        if warm.report.cache.get("status") != "hit":
            raise RuntimeError("repeated serving execution must be a cache hit")

    nocache = executor.execute(
        query, planner=planner, join_algo=join_algo, n_workers=n_workers,
        use_cache=False,
    )

    cold_bytes = sorted_cell_bytes(cold)
    warm_best = min(warm_samples)
    warm_mean = sum(warm_samples) / len(warm_samples)
    return ServingResult(
        workload=workload,
        planner=planner,
        join_algo=join_algo,
        n_nodes=n_nodes,
        cells_per_array=cells_per_array,
        n_units=cold.report.n_units,
        alpha=alpha,
        n_workers=n_workers,
        repeats=repeats,
        cache_capacity=cache_capacity,
        cpu_count=available_cpus(),
        worker_mode=(
            "serial" if n_workers is None or n_workers <= 1
            else executor.parallel_mode
        ),
        platform=platform.platform(),
        cold_seconds=cold_seconds,
        warm_seconds=warm_best,
        warm_mean_seconds=warm_mean,
        warm_samples=warm_samples,
        speedup=cold_seconds / warm_best if warm_best else float("inf"),
        queries_per_second=len(warm_samples) / sum(warm_samples),
        cold_plan_seconds=cold.report.plan_seconds,
        warm_plan_seconds=warm.report.plan_seconds,
        cache=dict(executor.plan_cache.stats()),
        warm_identical=sorted_cell_bytes(warm) == cold_bytes,
        nocache_identical=sorted_cell_bytes(nocache) == cold_bytes,
        assignments_identical=bool(
            np.array_equal(
                cold.physical_plan.assignment, warm.physical_plan.assignment
            )
            and np.array_equal(
                cold.physical_plan.assignment, nocache.physical_plan.assignment
            )
        ),
    )


#: Query mixes for the serving-load harness: the pinned figure query
#: plus variants that reorder or project the select list. Same join
#: structure and planning cost, distinct content fingerprints — so a
#: tenant's working set is several cache entries, not one.
SERVING_MIXES: dict[str, tuple[str, ...]] = {
    "fig8_hash_skew": (
        HASH_QUERY,
        "SELECT B.i, B.j, A.i, A.j INTO T<bi:int64, bj:int64, ai:int64, "
        "aj:int64>[] FROM A, B WHERE A.v1 = B.v1 AND A.v2 = B.v2",
        "SELECT A.i, B.j INTO T<ai:int64, bj:int64>[] FROM A, B "
        "WHERE A.v1 = B.v1 AND A.v2 = B.v2",
    ),
    "fig7_merge_skew": (
        MERGE_QUERY,
        "SELECT A.v2 - B.v2 AS d2, A.v1 - B.v1 AS d1 FROM A, B "
        "WHERE A.i = B.i AND A.j = B.j",
        "SELECT B.v1 - A.v1 AS r1 FROM A, B WHERE A.i = B.i AND A.j = B.j",
    ),
}


@dataclass
class ServingLoadResult:
    """One workload's concurrent serving-load sweep.

    ``rows`` holds one closed-loop entry per client count (sustained
    q/s, latency quantiles, admission/coalescing counters, byte-identity
    verdict, speedup vs the single-client row); ``open_loop`` the
    fixed-rate run against a shedding server. The cold pass (one
    execution per tenant × statement, pre-clock) warms every cache
    namespace so the timed rows measure sustained *warm* throughput —
    the cold side of the blend is reported on its own.
    """

    workload: str
    planner: str
    join_algo: str
    cells_per_array: int
    n_nodes: int
    alpha: float
    seed: int
    n_statements: int
    n_tenants: int
    tenant_alpha: float
    statement_alpha: float
    cache_capacity: int
    max_in_flight: int
    queue_depth: int
    coalesce: bool
    requests_per_client: int
    cpu_count: int
    platform: str
    cold_pass: dict
    baseline_qps: float
    rows: list[dict]
    open_loop: dict | None
    tenant_cache: dict
    plan_cache: dict
    all_outputs_identical: bool


def run_serving_load_bench(
    workload: str = "fig8_hash_skew",
    planner: str = "tabu",
    clients: tuple[int, ...] = (1, 2, 4, 8),
    requests_per_client: int = 25,
    n_tenants: int = 4,
    tenant_alpha: float = 1.2,
    statement_alpha: float = 2.5,
    cells_per_array: int = 150_000,
    n_nodes: int = 12,
    alpha: float = 1.0,
    seed: int = 0,
    cache_capacity: int = 32,
    max_in_flight: int | None = None,
    queue_depth: int = 8,
    coalesce: bool = True,
    open_rate_qps: float = 0.0,
    open_requests: int = 40,
) -> ServingLoadResult:
    """Drive one workload's query mix through a :class:`JoinServer`.

    Closed-loop client counts run in sequence against one server (block
    policy: closed-loop clients self-pace); each row's throughput is
    compared to the single-client (lowest-client-count) row measured in
    the same process. The open-loop run uses a fresh shedding server
    over the same session at ``open_rate_qps`` (default: 1.5x the best
    closed-loop q/s, deliberately past capacity so admission control
    fires). Every distinct served result is byte-checked against a
    serial cache-bypassing reference.
    """
    if not clients:
        raise ValueError("need at least one client count")
    executor, query, join_algo = build_workload(
        workload,
        cells_per_array=cells_per_array,
        n_nodes=n_nodes,
        alpha=alpha,
        seed=seed,
        plan_cache_size=cache_capacity,
    )
    statements = list(SERVING_MIXES[workload])
    assert statements[0] == query
    options = {"planner": planner, "join_algo": join_algo}
    references = serial_references(executor, statements, **options)
    tenants = [f"tenant{index}" for index in range(n_tenants)]
    # Statement popularity is Zipf-skewed by default: serving traffic
    # repeats its hot queries, which is what makes the server's
    # single-flight coalescing (and hence multi-client throughput on a
    # CPU-bound box) representative rather than a lucky collision.
    mix = QueryMix(
        statements=statements, tenants=tenants,
        tenant_alpha=tenant_alpha, statement_alpha=statement_alpha,
        seed=seed, options=options,
    )

    rows: list[dict] = []
    all_identical = True
    with JoinServer(
        executor, max_in_flight=max_in_flight, queue_depth=queue_depth,
        overload="block", coalesce=coalesce,
    ) as server:
        # Cold pass: touch every (tenant, statement) fingerprint once so
        # the timed rows below measure sustained warm throughput.
        cold_started = time.perf_counter()
        cold_latencies = []
        for tenant in tenants:
            for statement in statements:
                one_started = time.perf_counter()
                cold = server.execute(statement, tenant=tenant, **options)
                cold_latencies.append(time.perf_counter() - one_started)
                all_identical = all_identical and (
                    sorted_cell_bytes(cold) == references[statement]
                )
        cold_pass = {
            "requests": len(cold_latencies),
            "seconds": time.perf_counter() - cold_started,
            "mean_latency": sum(cold_latencies) / len(cold_latencies),
            "max_latency": max(cold_latencies),
        }

        baseline_qps = 0.0
        for count in clients:
            report = run_closed_loop(
                server, mix, clients=count,
                requests_per_client=requests_per_client,
                references=references, seed=seed + count,
            )
            if not baseline_qps:
                baseline_qps = report.qps
            row = report.row()
            row["speedup_vs_single_client"] = (
                report.qps / baseline_qps if baseline_qps else 0.0
            )
            rows.append(row)
            all_identical = all_identical and report.outputs_identical
        resolved_in_flight = server.max_in_flight

    open_row = None
    if open_requests > 0:
        rate = (
            open_rate_qps if open_rate_qps > 0
            else 1.5 * max(row["qps"] for row in rows)
        )
        with JoinServer(
            executor, max_in_flight=resolved_in_flight,
            queue_depth=queue_depth, overload="shed", coalesce=coalesce,
        ) as open_server:
            report = run_open_loop(
                open_server, mix, rate_qps=rate,
                total_requests=open_requests,
                references=references, seed=seed + 991,
            )
        open_row = {**report.row(), "rate_qps": rate}
        all_identical = all_identical and report.outputs_identical

    return ServingLoadResult(
        workload=workload,
        planner=planner,
        join_algo=join_algo,
        cells_per_array=cells_per_array,
        n_nodes=n_nodes,
        alpha=alpha,
        seed=seed,
        n_statements=len(statements),
        n_tenants=n_tenants,
        tenant_alpha=tenant_alpha,
        statement_alpha=statement_alpha,
        cache_capacity=cache_capacity,
        max_in_flight=resolved_in_flight,
        queue_depth=queue_depth,
        coalesce=coalesce,
        requests_per_client=requests_per_client,
        cpu_count=available_cpus(),
        platform=platform.platform(),
        cold_pass=cold_pass,
        baseline_qps=baseline_qps,
        rows=rows,
        open_loop=open_row,
        tenant_cache=tenant_cache_stats(
            executor.metrics.snapshot()["counters"]
        ),
        plan_cache=dict(executor.plan_cache.stats()),
        all_outputs_identical=all_identical,
    )


@dataclass
class TelemetryResult:
    """Telemetry-plane overhead on the warm serving workload.

    The same closed-loop client sweep runs twice against one warmed
    executor: bare (no telemetry) and fully instrumented (monitor
    thread scraped under load, JSONL query log, 1-in-``trace_sample``
    trace sampling). ``overhead_pct`` is the throughput cost of the
    instrumented run against the bare one, best-of-``repeats`` on both
    sides; the accounting fields certify that one log record landed per
    request and that every mid-run exposition parsed cleanly.
    """

    workload: str
    planner: str
    join_algo: str
    cells_per_array: int
    n_nodes: int
    alpha: float
    seed: int
    n_tenants: int
    clients: int
    requests_per_client: int
    repeats: int
    trace_sample: int
    cpu_count: int
    platform: str
    bare: dict
    telemetry: dict
    bare_qps: float
    telemetry_qps: float
    overhead_pct: float
    requests_logged: int
    requests_served: int
    query_log_complete: bool
    scrapes: int
    scrape_errors: list
    exposition_valid: bool
    traces_sampled: int
    all_outputs_identical: bool


def run_telemetry_bench(
    workload: str = "fig8_hash_skew",
    planner: str = "tabu",
    clients: int = 4,
    requests_per_client: int = 25,
    repeats: int = 3,
    n_tenants: int = 4,
    tenant_alpha: float = 1.2,
    statement_alpha: float = 2.5,
    cells_per_array: int = 150_000,
    n_nodes: int = 12,
    alpha: float = 1.0,
    seed: int = 0,
    cache_capacity: int = 32,
    max_in_flight: int | None = None,
    queue_depth: int = 8,
    trace_sample: int = 100,
    telemetry_dir: str | None = None,
) -> TelemetryResult:
    """Measure the cost of the full telemetry plane on warm serving.

    ``telemetry_dir`` (default: a fresh temp directory) receives the
    JSONL query log and the final scraped ``/metrics`` exposition
    (``metrics.prom``) so CI can re-validate both out of process.
    """
    import tempfile

    from repro.obs.telemetry import validate_exposition
    from repro.serve.monitor import scrape

    executor, query, join_algo = build_workload(
        workload,
        cells_per_array=cells_per_array,
        n_nodes=n_nodes,
        alpha=alpha,
        seed=seed,
        plan_cache_size=cache_capacity,
    )
    statements = list(SERVING_MIXES[workload])
    options = {"planner": planner, "join_algo": join_algo}
    references = serial_references(executor, statements, **options)
    tenants = [f"tenant{index}" for index in range(n_tenants)]
    mix = QueryMix(
        statements=statements, tenants=tenants,
        tenant_alpha=tenant_alpha, statement_alpha=statement_alpha,
        seed=seed, options=options,
    )
    # Warm every (tenant, statement) cache namespace outside the clock:
    # both configurations then measure sustained warm throughput, which
    # is where a telemetry tax would actually hurt.
    for tenant in tenants:
        for statement in statements:
            executor.execute(statement, tenant=tenant, **options)

    def timed_sweep(server, monitor=None):
        best = None
        identical = True
        for repeat in range(repeats):
            report = run_closed_loop(
                server, mix, clients=clients,
                requests_per_client=requests_per_client,
                references=references, seed=seed + repeat,
                monitor=monitor,
            )
            identical = identical and report.outputs_identical
            if best is None or report.qps > best.qps:
                best = report
        return best, identical

    with JoinServer(
        executor, max_in_flight=max_in_flight, queue_depth=queue_depth,
        overload="block",
    ) as bare_server:
        bare, bare_identical = timed_sweep(bare_server)
        resolved_in_flight = bare_server.max_in_flight

    if telemetry_dir is None:
        telemetry_dir = tempfile.mkdtemp(prefix="repro-telemetry-")
    os.makedirs(telemetry_dir, exist_ok=True)
    log_path = os.path.join(telemetry_dir, f"{workload}-queries.jsonl")
    scrapes = 0
    scrape_errors: list[str] = []
    with JoinServer(
        executor, max_in_flight=resolved_in_flight,
        queue_depth=queue_depth, overload="block",
        query_log=log_path, trace_sample=trace_sample,
    ) as telemetry_server:
        with telemetry_server.monitor() as monitor:
            telem, telem_identical = timed_sweep(telemetry_server, monitor)
            metrics_text = scrape(monitor.url)
            telemetry_stats = telemetry_server.stats()["telemetry"]
        scrapes = telem.scrapes
        scrape_errors = list(telem.scrape_errors)
    metrics_path = os.path.join(telemetry_dir, f"{workload}-metrics.prom")
    with open(metrics_path, "w", encoding="utf-8") as handle:
        handle.write(metrics_text)

    with open(log_path, encoding="utf-8") as handle:
        requests_logged = sum(1 for line in handle if line.strip())
    requests_served = repeats * clients * requests_per_client
    overhead_pct = (
        (bare.qps - telem.qps) / bare.qps * 100.0 if bare.qps else 0.0
    )
    return TelemetryResult(
        workload=workload,
        planner=planner,
        join_algo=join_algo,
        cells_per_array=cells_per_array,
        n_nodes=n_nodes,
        alpha=alpha,
        seed=seed,
        n_tenants=n_tenants,
        clients=clients,
        requests_per_client=requests_per_client,
        repeats=repeats,
        trace_sample=trace_sample,
        cpu_count=available_cpus(),
        platform=platform.platform(),
        bare=bare.row(),
        telemetry={
            **telem.row(),
            "query_log_path": log_path,
            "metrics_path": metrics_path,
            "query_log": telemetry_stats["query_log"],
        },
        bare_qps=bare.qps,
        telemetry_qps=telem.qps,
        overhead_pct=overhead_pct,
        requests_logged=requests_logged,
        requests_served=requests_served,
        query_log_complete=requests_logged == requests_served,
        scrapes=scrapes,
        scrape_errors=scrape_errors,
        exposition_valid=not validate_exposition(metrics_text),
        traces_sampled=telemetry_stats["sampled"],
        all_outputs_identical=bare_identical and telem_identical,
    )


@dataclass
class MulticoreResult:
    """One workload's workers × mode × kernel execution sweep.

    ``rows`` holds one entry per (mode, shm, kernel, n_workers)
    configuration: best/means of the timed executions, the speedup
    against the serial baseline measured in the same process, the
    kernel and mode the execution actually reported, and a
    byte-identical check of the sorted output cells against serial.
    """

    workload: str
    planner: str
    join_algo: str
    cells_per_array: int
    n_nodes: int
    n_units: int
    alpha: float
    repeats: int
    cpu_count: int
    platform: str
    serial_seconds: float
    serial_samples: list[float]
    rows: list[dict] = dataclass_field(default_factory=list)


def run_multicore_bench(
    workload: str = "fig8_hash_skew",
    planner: str = "tabu",
    workers: tuple[int, ...] = (1, 2, 4, 8),
    cells_per_array: int = 150_000,
    n_nodes: int = 12,
    alpha: float = 1.0,
    repeats: int = 5,
    seed: int = 0,
) -> MulticoreResult:
    """Sweep worker counts × parallel modes × kernels on one workload.

    The join is prepared once and warmed; the serial baseline and every
    configuration then time the identical prepared join, so the sweep
    isolates the execution backend. Modes: ``thread`` (shared-address
    pool) and ``process`` with the shared-memory arena (zero-copy
    workers returning match indices). Kernels: numpy always, numba when
    the optional extra is installed. Every row's sorted output cells
    are checked byte-identical against serial.
    """
    executor, query, join_algo = build_workload(
        workload,
        cells_per_array=cells_per_array,
        n_nodes=n_nodes,
        alpha=alpha,
        seed=seed,
    )
    prepared = executor.prepare(query, join_algo=join_algo)
    prepared.execute(planner)  # warm assembly/key/alignment caches

    serial_samples, serial_result = time_execute(
        prepared, planner, None, repeats
    )
    serial_best = min(serial_samples)
    serial_bytes = sorted_cell_bytes(serial_result)

    kernels = ("numpy", "numba") if HAVE_NUMBA else ("numpy",)
    rows: list[dict] = []
    for kernel in kernels:
        for mode, shm in (("thread", False), ("process", True)):
            for n_workers in workers:
                executor.parallel_mode = mode
                executor.shm = shm
                executor.kernel = resolve_kernel(kernel)
                # Warm this configuration once (pool fork, arena
                # attach, JIT compile) before the timed repeats.
                prepared.execute(planner, n_workers=n_workers)
                samples, result = time_execute(
                    prepared, planner, n_workers, repeats
                )
                best = min(samples)
                meta = result.report.meta
                rows.append(
                    {
                        "mode": mode,
                        "shm": shm,
                        "kernel": kernel,
                        "n_workers": n_workers,
                        "seconds": best,
                        "samples": samples,
                        "speedup": (
                            serial_best / best if best else float("inf")
                        ),
                        "outputs_identical": (
                            sorted_cell_bytes(result) == serial_bytes
                        ),
                        "reported_kernel": meta.get("kernel"),
                        "reported_mode": meta.get("parallel_mode"),
                        "reported_shm": bool(meta.get("shm", False)),
                    }
                )
    shutdown_pools()
    return MulticoreResult(
        workload=workload,
        planner=planner,
        join_algo=join_algo,
        cells_per_array=cells_per_array,
        n_nodes=n_nodes,
        n_units=prepared.n_units,
        alpha=alpha,
        repeats=repeats,
        cpu_count=available_cpus(),
        platform=platform.platform(),
        serial_seconds=serial_best,
        serial_samples=serial_samples,
        rows=rows,
    )


@dataclass
class SkewResult:
    """α sweep × ``split_units`` mode on one skewed workload.

    Every (α, mode) cell executes the identical query on the process +
    shared-memory path; within one α the three modes must produce
    byte-identical sorted outputs (splitting is a performance knob,
    never a result change), and each mode's speedup is measured against
    the *unsplit* run at the same α — so the sweep shows exactly where
    skew starts hurting and how much each splitting level claws back.
    """

    workload: str
    planner: str
    join_algo: str
    n_workers: int
    cells_per_array: int
    n_nodes: int
    repeats: int
    cpu_count: int
    platform: str
    #: One entry per (alpha, split_units) configuration.
    rows: list[dict] = dataclass_field(default_factory=list)


def run_skew_bench(
    workload: str = "fig8_hash_skew",
    planner: str = "tabu",
    alphas: tuple[float, ...] = (0.5, 1.0, 1.5, 2.0),
    modes: tuple[str, ...] = ("off", "static", "adaptive"),
    n_workers: int = 8,
    cells_per_array: int = 150_000,
    n_nodes: int = 12,
    repeats: int = 5,
    seed: int = 0,
) -> SkewResult:
    """Sweep skew levels × splitting modes on the shared-memory path.

    The workload is rebuilt per α (skew changes the data, not just the
    plan) and re-prepared per mode (``split_units`` is a plan-time knob,
    fingerprinted into the plan cache); each configuration is warmed
    once, timed ``repeats`` times, and byte-compared against the
    unsplit run at the same α.
    """
    rows: list[dict] = []
    join_algo = ""
    for alpha in alphas:
        baseline_best: float | None = None
        baseline_bytes: bytes | None = None
        for mode in modes:
            executor, query, join_algo = build_workload(
                workload,
                cells_per_array=cells_per_array,
                n_nodes=n_nodes,
                alpha=alpha,
                seed=seed,
                parallel_mode="process",
                split_units=mode,
            )
            prepared = executor.prepare(query, join_algo=join_algo)
            # Warm pools, arena, and assembly caches before timing.
            prepared.execute(planner, n_workers=n_workers)
            samples, result = time_execute(
                prepared, planner, n_workers, repeats
            )
            best = min(samples)
            out_bytes = sorted_cell_bytes(result)
            if baseline_best is None:
                baseline_best, baseline_bytes = best, out_bytes
            meta = result.report.meta
            rows.append(
                {
                    "alpha": alpha,
                    "split_units": mode,
                    "n_units": result.report.n_units,
                    "seconds": best,
                    "samples": samples,
                    "speedup_vs_unsplit": (
                        baseline_best / best if best else float("inf")
                    ),
                    "outputs_identical": out_bytes == baseline_bytes,
                    "units_split": meta.get("units_split", 0),
                    "subunits_created": meta.get("subunits_created", 0),
                    "runtime_resplits": meta.get("runtime_resplits", 0),
                    "steal_count": meta.get("steal_count", 0),
                }
            )
    shutdown_pools()
    return SkewResult(
        workload=workload,
        planner=planner,
        join_algo=join_algo,
        n_workers=n_workers,
        cells_per_array=cells_per_array,
        n_nodes=n_nodes,
        repeats=repeats,
        cpu_count=available_cpus(),
        platform=platform.platform(),
        rows=rows,
    )


# ---------------------------------------------------- multiway pipeline mode


@dataclass
class MultiwayResult:
    """Parallel-stage and pipeline-cache gains for one N-way pipeline.

    Two comparisons on the same generated workload, each on a fresh
    cluster: (1) *parallel stages* — the full pipeline with the plan
    cache disabled, serial vs shared-memory process workers, outputs
    byte-compared; (2) *pipeline caching* — cold (whole-pipeline
    fingerprint miss: ordering DP, per-stage planning, simulation) vs
    warm (fingerprint hit: only the final cached stage replays), again
    byte-compared, plus a cache-disabled rerun as the control.
    """

    shape: str
    planner: str
    n_arrays: int
    n_stages: int
    alpha: float
    cells_per_array: int
    n_nodes: int
    n_workers: int
    repeats: int
    cache_capacity: int
    cpu_count: int
    worker_mode: str
    platform: str
    output_cells: int
    #: serial vs parallel stages (plan cache disabled on both sides)
    serial_seconds: float
    parallel_seconds: float
    parallel_speedup: float
    parallel_identical: bool
    #: cold vs warm through the whole-pipeline plan cache
    cold_seconds: float
    warm_seconds: float
    warm_mean_seconds: float
    warm_samples: list[float]
    warm_speedup: float
    cold_plan_seconds: float
    warm_plan_seconds: float
    stages_cached: int
    cache: dict
    warm_identical: bool
    nocache_identical: bool


def _multiway_workload(
    shape: str, n_arrays: int, alpha: float, cells_per_array: int, seed: int
) -> tuple[list, str]:
    """Generated arrays plus the matching multi-join statement."""
    if shape == "chain":
        arrays = chain_arrays(
            n_arrays, alpha, cells_per_array=cells_per_array, rng=seed
        )
        return arrays, chain_query(n_arrays)
    if shape == "star":
        n_dims = n_arrays - 1
        arrays = star_arrays(
            n_dims,
            alpha,
            fact_cells=cells_per_array,
            dim_cells=max(cells_per_array // 4, 64),
            rng=seed,
        )
        return arrays, star_query(n_dims)
    raise ValueError(
        f"unknown multiway shape {shape!r}; choose 'chain' or 'star'"
    )


def run_multiway_bench(
    shape: str = "chain",
    planner: str = "tabu",
    n_arrays: int = 4,
    alpha: float = 1.0,
    n_workers: int = 4,
    cells_per_array: int = 4_000,
    n_nodes: int = 4,
    repeats: int = 5,
    seed: int = 0,
    cache_capacity: int = 32,
) -> MultiwayResult:
    """Measure one N-way pipeline's parallel-stage and warm-cache gains.

    Every execution goes through the public ``execute`` entry point.
    The cold sample is a genuine first-pipeline latency (ordering DP +
    per-stage planning + simulation + execution); the warm samples must
    be fingerprint hits, and every variant's sorted output must be
    byte-identical to the serial reference.
    """

    def fresh_executor(**options) -> tuple[ShuffleJoinExecutor, str]:
        arrays, query = _multiway_workload(
            shape, n_arrays, alpha, cells_per_array, seed
        )
        cluster = make_cluster(arrays, n_nodes, seed=seed, placement="block")
        return ShuffleJoinExecutor(cluster, **options), query

    # -- parallel stages: serial vs shm process workers, cache off -------
    executor, query = fresh_executor(parallel_mode="process", shm=True)
    serial_samples: list[float] = []
    serial_result = None
    for _ in range(repeats):
        started = time.perf_counter()
        serial_result = executor.execute(query, planner=planner, use_cache=False)
        serial_samples.append(time.perf_counter() - started)
    parallel_samples: list[float] = []
    parallel_result = None
    for _ in range(repeats):
        started = time.perf_counter()
        parallel_result = executor.execute(
            query, planner=planner, n_workers=n_workers, use_cache=False
        )
        parallel_samples.append(time.perf_counter() - started)
    serial_bytes = sorted_cell_bytes(serial_result)
    serial_best = min(serial_samples)
    parallel_best = min(parallel_samples)

    # -- pipeline cache: cold vs warm on a fresh cluster -----------------
    executor, query = fresh_executor(plan_cache_size=cache_capacity)
    started = time.perf_counter()
    cold = executor.execute(query, planner=planner)
    cold_seconds = time.perf_counter() - started
    if cold.report.cache.get("status") != "miss":
        raise RuntimeError("first pipeline execution must be a cache miss")
    warm_samples: list[float] = []
    warm = cold
    for _ in range(repeats):
        started = time.perf_counter()
        warm = executor.execute(query, planner=planner)
        warm_samples.append(time.perf_counter() - started)
        if warm.report.cache.get("status") != "hit":
            raise RuntimeError(
                "repeated pipeline execution must be a cache hit"
            )
    nocache = executor.execute(query, planner=planner, use_cache=False)
    warm_best = min(warm_samples)

    return MultiwayResult(
        shape=shape,
        planner=planner,
        n_arrays=n_arrays,
        n_stages=cold.plan.n_stages,
        alpha=alpha,
        cells_per_array=cells_per_array,
        n_nodes=n_nodes,
        n_workers=n_workers,
        repeats=repeats,
        cache_capacity=cache_capacity,
        cpu_count=available_cpus(),
        worker_mode="process+shm",
        platform=platform.platform(),
        output_cells=int(cold.array.n_cells),
        serial_seconds=serial_best,
        parallel_seconds=parallel_best,
        parallel_speedup=(
            serial_best / parallel_best if parallel_best else float("inf")
        ),
        parallel_identical=sorted_cell_bytes(parallel_result) == serial_bytes,
        cold_seconds=cold_seconds,
        warm_seconds=warm_best,
        warm_mean_seconds=sum(warm_samples) / len(warm_samples),
        warm_samples=warm_samples,
        warm_speedup=cold_seconds / warm_best if warm_best else float("inf"),
        cold_plan_seconds=cold.report.plan_seconds,
        warm_plan_seconds=warm.report.plan_seconds,
        stages_cached=int(warm.report.meta.get("stages_cached", 0)),
        cache=dict(executor.plan_cache.stats()),
        warm_identical=sorted_cell_bytes(warm) == serial_bytes,
        nocache_identical=sorted_cell_bytes(nocache) == serial_bytes,
    )


def write_results(
    results: list[WallclockResult],
    path: str,
    prepare_results: list[PrepareResult] | None = None,
    stress_result: StressResult | None = None,
    serving_results: "list[ServingResult] | None" = None,
    keys_results: "list[KeysResult] | None" = None,
    trace_results: "list[TraceResult] | None" = None,
    multicore_results: "list[MulticoreResult] | None" = None,
    skew_results: "list[SkewResult] | None" = None,
    serving_load_results: "list[ServingLoadResult] | None" = None,
    multiway_results: "list[MultiwayResult] | None" = None,
    telemetry_results: "list[TelemetryResult] | None" = None,
) -> None:
    """Serialise whatever sections actually ran.

    Sections that were skipped (``--skip-exec``, no ``--prepare``, ...)
    are omitted entirely rather than serialised as empty placeholders,
    so a reader of the JSON can distinguish "not run" from "ran and
    found nothing".
    """
    payload: dict = {
        "benchmark": "wall-clock join engine benchmarks",
    }
    if results:
        payload["results"] = [vars(result) for result in results]
    if prepare_results:
        payload["prepare"] = [vars(result) for result in prepare_results]
    if stress_result is not None:
        payload["planner_stress"] = vars(stress_result)
    if serving_results:
        payload["serving"] = [vars(result) for result in serving_results]
    if keys_results:
        payload["keys"] = [vars(result) for result in keys_results]
    if trace_results:
        payload["tracing"] = [vars(result) for result in trace_results]
    if multicore_results:
        payload["multicore"] = [vars(result) for result in multicore_results]
    if skew_results:
        payload["skew"] = [vars(result) for result in skew_results]
    if serving_load_results:
        payload["serving_load"] = [
            vars(result) for result in serving_load_results
        ]
    if multiway_results:
        payload["multiway"] = [vars(result) for result in multiway_results]
    if telemetry_results:
        payload["telemetry"] = [vars(result) for result in telemetry_results]
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="time serial vs parallel join execution"
    )
    parser.add_argument(
        "--workload", choices=WORKLOADS, action="append", default=None,
        help="workload(s) to run (default: both)",
    )
    parser.add_argument("--planner", default="baseline")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--cells", type=int, default=150_000)
    parser.add_argument("--nodes", type=int, default=12)
    parser.add_argument("--alpha", type=float, default=1.0)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default=None, help="write JSON here")
    parser.add_argument(
        "--skip-exec", action="store_true",
        help="skip the serial-vs-parallel execution comparison",
    )
    parser.add_argument(
        "--prepare", action="store_true",
        help="also time the prepare pipeline, vectorized vs reference",
    )
    parser.add_argument(
        "--stress", action="store_true",
        help="also race vectorized vs reference Tabu on a large instance",
    )
    parser.add_argument("--stress-units", type=int, default=8192)
    parser.add_argument("--stress-nodes", type=int, default=16)
    parser.add_argument("--stress-alpha", type=float, default=1.1)
    parser.add_argument(
        "--keys", action="store_true",
        help="compare packed vs structured composite keys per workload",
    )
    parser.add_argument(
        "--serving", action="store_true",
        help="repeated-query serving mode: cold vs warm (plan-cached) latency",
    )
    parser.add_argument(
        "--serving-repeats", type=int, default=15,
        help="warm executions per serving workload",
    )
    parser.add_argument(
        "--serving-planner", default="tabu",
        help="physical planner for the serving workloads",
    )
    parser.add_argument(
        "--cache-capacity", type=int, default=32,
        help="plan-cache LRU capacity for the serving mode",
    )
    parser.add_argument(
        "--multicore", action="store_true",
        help="sweep worker counts x parallel modes x kernels per workload "
        "(thread pool vs shared-memory process workers)",
    )
    parser.add_argument(
        "--multicore-workers", type=int, nargs="+", default=[1, 2, 4, 8],
        help="worker counts for the --multicore sweep",
    )
    parser.add_argument(
        "--multicore-planner", default="tabu",
        help="physical planner for the --multicore sweep",
    )
    parser.add_argument(
        "--skew", action="store_true",
        help="alpha sweep x split_units modes (off/static/adaptive) on the "
        "shared-memory process path",
    )
    parser.add_argument(
        "--skew-alphas", type=float, nargs="+", default=[0.5, 1.0, 1.5, 2.0],
        help="Zipf alpha levels for the --skew sweep",
    )
    parser.add_argument(
        "--skew-workers", type=int, default=8,
        help="worker count for the --skew sweep",
    )
    parser.add_argument(
        "--serving-load", action="store_true",
        help="concurrent serving-load harness: closed-loop client sweep "
        "plus a fixed-rate open-loop run through a JoinServer",
    )
    parser.add_argument(
        "--load-clients", type=int, nargs="+", default=[1, 2, 4, 8],
        help="closed-loop client counts for the --serving-load sweep",
    )
    parser.add_argument(
        "--load-requests", type=int, default=25,
        help="requests per closed-loop client",
    )
    parser.add_argument(
        "--load-tenants", type=int, default=4,
        help="tenant count for the --serving-load mix",
    )
    parser.add_argument(
        "--load-tenant-alpha", type=float, default=1.2,
        help="Zipf skew of tenant popularity in the --serving-load mix",
    )
    parser.add_argument(
        "--load-statement-alpha", type=float, default=2.5,
        help="Zipf skew of statement popularity (0 = uniform)",
    )
    parser.add_argument(
        "--load-inflight", type=int, default=0,
        help="JoinServer max_in_flight (0 = auto from cpu count)",
    )
    parser.add_argument(
        "--load-queue-depth", type=int, default=8,
        help="admitted-but-unstarted queue bound for the JoinServer",
    )
    parser.add_argument(
        "--load-no-coalesce", action="store_true",
        help="disable single-flight request coalescing in the JoinServer",
    )
    parser.add_argument(
        "--load-open-rate", type=float, default=0.0,
        help="open-loop arrival rate in q/s (0 = 1.5x best closed-loop q/s)",
    )
    parser.add_argument(
        "--load-open-requests", type=int, default=40,
        help="open-loop request count (0 skips the open-loop run)",
    )
    parser.add_argument(
        "--telemetry", action="store_true",
        help="telemetry-overhead mode: warm serving throughput bare vs "
        "fully instrumented (monitor scraped under load + query log + "
        "sampled tracing)",
    )
    parser.add_argument(
        "--telemetry-clients", type=int, default=4,
        help="closed-loop client count for the --telemetry comparison",
    )
    parser.add_argument(
        "--telemetry-requests", type=int, default=25,
        help="requests per client per repeat in the --telemetry comparison",
    )
    parser.add_argument(
        "--telemetry-repeats", type=int, default=3,
        help="timed sweeps per configuration (best q/s wins)",
    )
    parser.add_argument(
        "--telemetry-sample", type=int, default=100,
        help="head-based trace sampling rate (1 in N) for --telemetry",
    )
    parser.add_argument(
        "--telemetry-dir", default=None, metavar="DIR",
        help="write the --telemetry query log and scraped exposition here "
        "(default: a temp directory)",
    )
    parser.add_argument(
        "--multiway", action="store_true",
        help="N-way pipeline mode: parallel stages vs serial and warm "
        "(pipeline-cached) vs cold, per shape x stage count x alpha",
    )
    parser.add_argument(
        "--multiway-shapes", choices=("chain", "star"), nargs="+",
        default=["chain"], help="pipeline shapes for the --multiway sweep",
    )
    parser.add_argument(
        "--multiway-arrays", type=int, nargs="+", default=[4],
        help="array counts (stage counts + 1) for the --multiway sweep",
    )
    parser.add_argument(
        "--multiway-alphas", type=float, nargs="+", default=[0.0, 1.0],
        help="Zipf alpha levels of the foreign-key skew for --multiway",
    )
    parser.add_argument(
        "--multiway-workers", type=int, default=4,
        help="worker count for the --multiway parallel-stage comparison",
    )
    parser.add_argument(
        "--multiway-cells", type=int, default=4_000,
        help="cells per generated array for the --multiway sweep",
    )
    parser.add_argument(
        "--multiway-planner", default="tabu",
        help="physical planner for the --multiway pipeline stages",
    )
    parser.add_argument(
        "--trace-dir", default=None, metavar="DIR",
        help="also run each workload traced: write Chrome trace JSON per "
        "workload into DIR and record the instrumentation overhead",
    )
    args = parser.parse_args(argv)

    def _print_breakdown(breakdown: dict[str, float]) -> None:
        if breakdown:
            stages = ", ".join(
                f"{stage}={seconds * 1000:.1f}ms"
                for stage, seconds in breakdown.items()
            )
            print(f"  prepare breakdown: {stages}")

    results = []
    if not args.skip_exec:
        for workload in args.workload or list(WORKLOADS):
            result = run_wallclock(
                workload=workload,
                planner=args.planner,
                n_workers=args.workers,
                cells_per_array=args.cells,
                n_nodes=args.nodes,
                alpha=args.alpha,
                repeats=args.repeats,
                seed=args.seed,
            )
            results.append(result)
            print(
                f"{result.workload} [{result.planner}/{result.join_algo}] "
                f"serial {result.serial_seconds:.3f}s vs "
                f"{result.n_workers}-worker {result.parallel_seconds:.3f}s "
                f"-> {result.speedup:.2f}x; identical={result.outputs_identical} "
                f"deterministic={result.parallel_deterministic}"
            )
            _print_breakdown(result.prepare_breakdown)

    prepare_results = []
    if args.prepare:
        for workload in args.workload or list(WORKLOADS):
            prep = run_prepare_bench(
                workload=workload,
                cells_per_array=args.cells,
                n_nodes=args.nodes,
                alpha=args.alpha,
                repeats=max(args.repeats // 2, 2),
                seed=args.seed,
            )
            prepare_results.append(prep)
            print(
                f"{prep.workload} prepare [{prep.join_algo}] reference "
                f"{prep.reference_seconds:.3f}s vs vectorized "
                f"{prep.vectorized_seconds:.3f}s -> {prep.speedup:.2f}x; "
                f"identical={prep.assignments_identical}"
            )
            _print_breakdown(prep.prepare_breakdown)

    stress_result = None
    if args.stress:
        stress_result = run_planner_stress(
            n_units=args.stress_units,
            n_nodes=args.stress_nodes,
            alpha=args.stress_alpha,
            seed=args.seed,
            repeats=max(args.repeats // 2, 2),
        )
        print(
            f"planner stress ({stress_result.n_units} units, "
            f"{stress_result.n_nodes} nodes) reference "
            f"{stress_result.reference_seconds:.3f}s vs vectorized "
            f"{stress_result.vectorized_seconds:.3f}s -> "
            f"{stress_result.speedup:.2f}x; "
            f"identical={stress_result.assignments_identical}"
        )

    keys_results = []
    if args.keys:
        for workload in args.workload or list(WORKLOADS):
            keys = run_keys_bench(
                workload=workload,
                planner=args.planner,
                cells_per_array=args.cells,
                n_nodes=args.nodes,
                alpha=args.alpha,
                repeats=args.repeats,
                seed=args.seed,
            )
            keys_results.append(keys)
            width = (
                f"{keys.key_width}b" if keys.key_width is not None
                else "fallback"
            )
            print(
                f"{keys.workload} keys [{keys.planner}/{keys.join_algo}, "
                f"{width}] structured {keys.structured_seconds:.3f}s vs "
                f"packed {keys.packed_seconds:.3f}s -> {keys.speedup:.2f}x; "
                f"identical={keys.outputs_identical}"
            )

    serving_results = []
    if args.serving:
        for workload in args.workload or list(WORKLOADS):
            serving = run_serving_bench(
                workload=workload,
                planner=args.serving_planner,
                n_workers=args.workers if args.workers > 1 else None,
                cells_per_array=args.cells,
                n_nodes=args.nodes,
                alpha=args.alpha,
                repeats=args.serving_repeats,
                seed=args.seed,
                cache_capacity=args.cache_capacity,
            )
            serving_results.append(serving)
            print(
                f"{serving.workload} serving [{serving.planner}/"
                f"{serving.join_algo}] cold {serving.cold_seconds:.3f}s vs "
                f"warm {serving.warm_seconds:.3f}s -> "
                f"{serving.speedup:.2f}x, {serving.queries_per_second:.1f} q/s; "
                f"identical={serving.warm_identical and serving.nocache_identical} "
                f"cache={serving.cache}"
            )

    multicore_results = []
    if args.multicore:
        for workload in args.workload or list(WORKLOADS):
            multi = run_multicore_bench(
                workload=workload,
                planner=args.multicore_planner,
                workers=tuple(args.multicore_workers),
                cells_per_array=args.cells,
                n_nodes=args.nodes,
                alpha=args.alpha,
                repeats=args.repeats,
                seed=args.seed,
            )
            multicore_results.append(multi)
            print(
                f"{multi.workload} multicore [{multi.planner}/"
                f"{multi.join_algo}] serial {multi.serial_seconds:.3f}s "
                f"({multi.cpu_count} cpus)"
            )
            for row in multi.rows:
                shm_tag = "+shm" if row["shm"] else ""
                print(
                    f"  {row['mode']}{shm_tag}/{row['kernel']} "
                    f"x{row['n_workers']}: {row['seconds']:.3f}s "
                    f"-> {row['speedup']:.2f}x; "
                    f"identical={row['outputs_identical']}"
                )

    skew_results = []
    if args.skew:
        for workload in args.workload or ["fig8_hash_skew"]:
            skew = run_skew_bench(
                workload=workload,
                planner=args.multicore_planner,
                alphas=tuple(args.skew_alphas),
                n_workers=args.skew_workers,
                cells_per_array=args.cells,
                n_nodes=args.nodes,
                repeats=args.repeats,
                seed=args.seed,
            )
            skew_results.append(skew)
            print(
                f"{skew.workload} skew sweep [{skew.planner}/"
                f"{skew.join_algo}] x{skew.n_workers} workers "
                f"({skew.cpu_count} cpus)"
            )
            for row in skew.rows:
                print(
                    f"  alpha={row['alpha']:<4} {row['split_units']:<8} "
                    f"{row['seconds']:.3f}s -> "
                    f"{row['speedup_vs_unsplit']:.2f}x vs unsplit; "
                    f"{row['units_split']} units split into "
                    f"{row['subunits_created']}, "
                    f"{row['runtime_resplits']} re-splits "
                    f"({row['steal_count']} stolen); "
                    f"identical={row['outputs_identical']}"
                )

    serving_load_results = []
    if args.serving_load:
        for workload in args.workload or ["fig8_hash_skew"]:
            load = run_serving_load_bench(
                workload=workload,
                planner=args.serving_planner,
                clients=tuple(args.load_clients),
                requests_per_client=args.load_requests,
                n_tenants=args.load_tenants,
                tenant_alpha=args.load_tenant_alpha,
                statement_alpha=args.load_statement_alpha,
                cells_per_array=args.cells,
                n_nodes=args.nodes,
                alpha=args.alpha,
                seed=args.seed,
                cache_capacity=args.cache_capacity,
                max_in_flight=args.load_inflight or None,
                queue_depth=args.load_queue_depth,
                coalesce=not args.load_no_coalesce,
                open_rate_qps=args.load_open_rate,
                open_requests=args.load_open_requests,
            )
            serving_load_results.append(load)
            print(
                f"{load.workload} serving-load [{load.planner}/"
                f"{load.join_algo}] {load.n_tenants} tenants "
                f"(alpha={load.tenant_alpha}), in-flight "
                f"{load.max_in_flight}+{load.queue_depth} queued "
                f"({load.cpu_count} cpus); cold pass "
                f"{load.cold_pass['requests']} queries in "
                f"{load.cold_pass['seconds']:.3f}s"
            )
            for row in load.rows:
                print(
                    f"  closed x{row['clients']}: {row['qps']:.1f} q/s "
                    f"-> {row['speedup_vs_single_client']:.2f}x vs 1 client; "
                    f"p50={row['latency_p50'] * 1000:.1f}ms "
                    f"p95={row['latency_p95'] * 1000:.1f}ms "
                    f"p99={row['latency_p99'] * 1000:.1f}ms "
                    f"max={row['latency_max'] * 1000:.1f}ms; "
                    f"{row['coalesced']} coalesced; "
                    f"identical={row['outputs_identical']}"
                )
            if load.open_loop is not None:
                row = load.open_loop
                print(
                    f"  open @{row['rate_qps']:.1f} q/s offered: "
                    f"{row['qps']:.1f} q/s served, {row['shed']} shed; "
                    f"p99={row['latency_p99'] * 1000:.1f}ms "
                    f"max={row['latency_max'] * 1000:.1f}ms; "
                    f"identical={row['outputs_identical']}"
                )
            for tenant in sorted(load.tenant_cache):
                entry = load.tenant_cache[tenant]
                print(
                    f"  {tenant}: {entry['hits']} hits / "
                    f"{entry['misses']} misses "
                    f"(rate={entry['hit_rate']:.2f})"
                )

    telemetry_results = []
    if args.telemetry:
        for workload in args.workload or ["fig8_hash_skew"]:
            telem = run_telemetry_bench(
                workload=workload,
                planner=args.serving_planner,
                clients=args.telemetry_clients,
                requests_per_client=args.telemetry_requests,
                repeats=args.telemetry_repeats,
                n_tenants=args.load_tenants,
                tenant_alpha=args.load_tenant_alpha,
                statement_alpha=args.load_statement_alpha,
                cells_per_array=args.cells,
                n_nodes=args.nodes,
                alpha=args.alpha,
                seed=args.seed,
                cache_capacity=args.cache_capacity,
                max_in_flight=args.load_inflight or None,
                queue_depth=args.load_queue_depth,
                trace_sample=args.telemetry_sample,
                telemetry_dir=args.telemetry_dir,
            )
            telemetry_results.append(telem)
            print(
                f"{telem.workload} telemetry [{telem.planner}/"
                f"{telem.join_algo}] x{telem.clients} clients "
                f"({telem.cpu_count} cpus): bare {telem.bare_qps:.1f} q/s "
                f"vs instrumented {telem.telemetry_qps:.1f} q/s -> "
                f"{telem.overhead_pct:+.1f}% overhead; "
                f"{telem.requests_logged}/{telem.requests_served} requests "
                f"logged, {telem.scrapes} scrapes "
                f"(valid={telem.exposition_valid}), "
                f"{telem.traces_sampled} traces sampled; "
                f"identical={telem.all_outputs_identical}"
            )
            if telem.scrape_errors:
                print(f"  scrape errors: {telem.scrape_errors[:5]}")

    multiway_results = []
    if args.multiway:
        for shape in args.multiway_shapes:
            for n_arrays in args.multiway_arrays:
                for alpha in args.multiway_alphas:
                    row = run_multiway_bench(
                        shape=shape,
                        planner=args.multiway_planner,
                        n_arrays=n_arrays,
                        alpha=alpha,
                        n_workers=args.multiway_workers,
                        cells_per_array=args.multiway_cells,
                        n_nodes=args.nodes,
                        repeats=args.repeats,
                        seed=args.seed,
                        cache_capacity=args.cache_capacity,
                    )
                    multiway_results.append(row)
                    print(
                        f"{row.shape} x{row.n_arrays} multiway "
                        f"[{row.planner}] alpha={row.alpha} "
                        f"({row.n_stages} stages, {row.output_cells} cells, "
                        f"{row.cpu_count} cpus): serial "
                        f"{row.serial_seconds:.3f}s vs "
                        f"{row.n_workers}-worker "
                        f"{row.parallel_seconds:.3f}s -> "
                        f"{row.parallel_speedup:.2f}x "
                        f"(identical={row.parallel_identical}); cold "
                        f"{row.cold_seconds:.3f}s vs warm "
                        f"{row.warm_seconds:.3f}s -> "
                        f"{row.warm_speedup:.2f}x "
                        f"({row.stages_cached} stages cached, identical="
                        f"{row.warm_identical and row.nocache_identical})"
                    )
        shutdown_pools()

    trace_results = []
    if args.trace_dir:
        for workload in args.workload or list(WORKLOADS):
            traced = run_trace_bench(
                workload=workload,
                planner=args.planner,
                n_workers=args.workers,
                cells_per_array=args.cells,
                n_nodes=args.nodes,
                alpha=args.alpha,
                repeats=args.repeats,
                seed=args.seed,
                trace_dir=args.trace_dir,
            )
            trace_results.append(traced)
            print(
                f"{traced.workload} tracing [{traced.planner}/"
                f"{traced.join_algo}] untraced {traced.untraced_seconds:.3f}s "
                f"vs traced {traced.traced_seconds:.3f}s -> "
                f"{traced.overhead_pct:+.1f}% overhead; "
                f"{traced.n_spans} spans -> {traced.trace_path} "
                f"(valid={traced.trace_valid})"
            )

    if args.out:
        write_results(
            results, args.out,
            prepare_results=prepare_results or None,
            stress_result=stress_result,
            serving_results=serving_results or None,
            keys_results=keys_results or None,
            trace_results=trace_results or None,
            multicore_results=multicore_results or None,
            skew_results=skew_results or None,
            serving_load_results=serving_load_results or None,
            multiway_results=multiway_results or None,
            telemetry_results=telemetry_results or None,
        )
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
