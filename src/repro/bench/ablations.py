"""Ablation studies for the framework's design choices.

The paper argues for several design decisions without dedicated
experiments; these runners isolate each one:

- :func:`run_ablation_shuffle_policy` — the greedy write-lock schedule
  (Section 3.4) against head-of-line blocking and uncoordinated fan-in;
- :func:`run_ablation_tabu_list` — Algorithm 2's assignment-level tabu
  list against an unrestricted local search;
- :func:`run_ablation_bucket_count` — join-unit granularity ("join units
  are designed to be of moderate size ... without overwhelming the
  physical planner", Section 3.3);
- :func:`run_ablation_coarse_bins` — the Coarse ILP's bin budget
  (75 in the paper, Section 5.2).
"""

from __future__ import annotations

import time

import numpy as np

from repro.bench.experiments import (
    ExperimentResult,
    HASH_QUERY,
    MERGE_QUERY,
    make_cluster,
)
from repro.bench.harness import ExperimentRow
from repro.core.cost_model import AnalyticalCostModel, CostParams
from repro.core.planners.tabu import TabuPlanner
from repro.cluster.cluster import Cluster
from repro.core.slices import SliceStats
from repro.engine.executor import ShuffleJoinExecutor
from repro.workloads.synthetic import skewed_hash_pair, skewed_merge_pair


def run_ablation_shuffle_policy(
    cells_per_array: int = 120_000,
    n_nodes: int = 12,
    alpha: float = 1.0,
    seed: int = 0,
) -> ExperimentResult:
    """Data-alignment time under the three shuffle scheduling policies.

    Expected shape: the greedy write-lock schedule at least matches
    head-of-line blocking (skipping locked destinations keeps senders
    busy) and avoids the fan-in congestion of the uncoordinated policy.
    """
    array_a, array_b = skewed_merge_pair(
        alpha, cells_per_array=cells_per_array, seed=seed
    )
    rows = []
    for policy in ("greedy_lock", "head_of_line", "uncoordinated"):
        cluster = make_cluster([array_a, array_b], n_nodes, seed=seed)
        executor = ShuffleJoinExecutor(
            cluster, selectivity_hint=0.25, shuffle_policy=policy
        )
        report = executor.execute(MERGE_QUERY, planner="mbh").report
        rows.append(
            ExperimentRow(
                {"policy": policy},
                {
                    "align_s": report.align_seconds,
                    "cells_moved": float(report.cells_moved),
                    "n_transfers": float(report.n_transfers),
                },
            )
        )
    return ExperimentResult(
        name="Ablation: shuffle scheduling policy (Section 3.4)",
        rows=rows,
        label_keys=["policy"],
        value_keys=["align_s", "cells_moved", "n_transfers"],
    )


def _tabu_stats(n_units: int, n_nodes: int, seed: int) -> SliceStats:
    """A comparison-imbalanced instance where the search has real work."""
    gen = np.random.default_rng(seed)
    sizes = (400_000 / np.arange(1, n_units + 1) ** 0.8).astype(np.int64) + 1
    left = np.zeros((n_units, n_nodes), dtype=np.int64)
    right = np.zeros((n_units, n_nodes), dtype=np.int64)
    hot = gen.integers(0, max(n_nodes // 3, 1), size=n_units)
    for i in range(n_units):
        spread = gen.dirichlet(np.ones(n_nodes) * 0.3)
        spread[hot[i]] += 1.0
        spread /= spread.sum()
        left[i] = gen.multinomial(sizes[i], spread)
        right[i] = gen.multinomial(max(sizes[i] // 2, 1), spread)
    return SliceStats(left, right)


def run_ablation_tabu_list(
    n_units: int = 512,
    n_nodes: int = 12,
    seed: int = 0,
) -> ExperimentResult:
    """Tabu search with and without its assignment-level tabu list.

    Expected shape — a negative result worth recording: under Algorithm
    2's *strict-improvement* acceptance the search cannot cycle even
    without the list, so both variants converge to the same plan with
    nearly identical effort. The list is cheap insurance (it would
    matter under plateau moves or noisy cost models) rather than a
    measurable win here; the paper's tractability argument concerns the
    search-space bound, which the acceptance rule already enforces.
    """
    stats = _tabu_stats(n_units, n_nodes, seed)
    model = AnalyticalCostModel(stats, "hash", CostParams())
    rows = []
    for label, use_list in (("with_list", True), ("without_list", False)):
        planner = TabuPlanner(use_tabu_list=use_list)
        started = time.perf_counter()
        assignment, meta = planner.assign(model)
        elapsed = time.perf_counter() - started
        cost = model.plan_cost(assignment)
        rows.append(
            ExperimentRow(
                {"variant": label},
                {
                    "plan_cost_s": cost.total_seconds,
                    "plan_time_s": elapsed,
                    "moves": float(meta["moves"]),
                    "evaluations": float(meta["evaluations"]),
                },
            )
        )
    return ExperimentResult(
        name="Ablation: Algorithm 2's tabu list",
        rows=rows,
        label_keys=["variant"],
        value_keys=["plan_cost_s", "plan_time_s", "moves", "evaluations"],
    )


def run_ablation_bucket_count(
    cells_per_array: int = 120_000,
    n_nodes: int = 12,
    alpha: float = 1.0,
    bucket_counts: tuple[int, ...] = (64, 256, 1024, 4096),
    seed: int = 0,
) -> ExperimentResult:
    """Hash-join performance across join-unit granularities.

    Expected shape: very coarse units limit the planner's ability to
    balance (worse compare max); very fine units pay per-unit overheads
    and per-transfer latency; the paper's moderate sizing sits in the
    sweet spot.
    """
    array_a, array_b = skewed_hash_pair(
        alpha, cells_per_array=cells_per_array, seed=seed
    )
    rows = []
    for n_buckets in bucket_counts:
        cluster = make_cluster(
            [array_a, array_b], n_nodes, seed=seed, placement="block"
        )
        executor = ShuffleJoinExecutor(
            cluster, selectivity_hint=0.0001, n_buckets=n_buckets
        )
        report = executor.execute(
            HASH_QUERY, planner="tabu", join_algo="hash"
        ).report
        rows.append(
            ExperimentRow(
                {"n_buckets": n_buckets},
                {
                    "plan_s": report.plan_seconds,
                    "align_s": report.align_seconds,
                    "compare_s": report.compare_seconds,
                    "execute_s": report.execute_seconds,
                },
            )
        )
    return ExperimentResult(
        name="Ablation: join-unit granularity (hash bucket count)",
        rows=rows,
        label_keys=["n_buckets"],
        value_keys=["plan_s", "align_s", "compare_s", "execute_s"],
    )


def run_ablation_coarse_bins(
    cells_per_array: int = 120_000,
    n_nodes: int = 12,
    alpha: float = 1.5,
    bin_counts: tuple[int, ...] = (12, 75, 300),
    time_budget_s: float = 2.0,
    seed: int = 0,
) -> ExperimentResult:
    """The Coarse ILP's bin budget: solver tractability vs plan quality.

    Expected shape: fewer bins solve faster but plan in larger segments;
    more bins approach the full ILP's decision space (and its budget
    problems). The paper packs 1024 join units into 75 bins.
    """
    array_a, array_b = skewed_hash_pair(
        alpha, cells_per_array=cells_per_array, seed=seed
    )
    rows = []
    for n_bins in bin_counts:
        cluster = make_cluster(
            [array_a, array_b], n_nodes, seed=seed, placement="block"
        )
        executor = ShuffleJoinExecutor(
            cluster,
            selectivity_hint=0.0001,
            n_buckets=1024,
            ilp_time_budget_s=time_budget_s,
        )
        executor._make_planner = (  # pin the bin count for this run
            lambda name, bins=n_bins, ex=executor: _coarse_with_bins(ex, bins)
        )
        report = executor.execute(
            HASH_QUERY, planner="ilp_coarse", join_algo="hash"
        ).report
        rows.append(
            ExperimentRow(
                {"n_bins": n_bins},
                {
                    "plan_s": report.plan_seconds,
                    "execute_s": report.execute_seconds,
                    "model_cost_s": report.analytic_cost.total_seconds,
                },
            )
        )
    return ExperimentResult(
        name="Ablation: Coarse ILP bin budget",
        rows=rows,
        label_keys=["n_bins"],
        value_keys=["plan_s", "execute_s", "model_cost_s"],
    )


def _coarse_with_bins(executor: ShuffleJoinExecutor, n_bins: int):
    from repro.core.planners.coarse import CoarseIlpPlanner

    return CoarseIlpPlanner(
        n_bins=n_bins, time_budget_s=executor.ilp_time_budget_s
    )


def run_ablation_join_order(
    n_nodes: int = 8,
    seed: int = 0,
) -> ExperimentResult:
    """Multi-join ordering: the DP-chosen order vs the worst valid order.

    A 3-array chain where the middle array is tiny and selective: joining
    through it first keeps the intermediate small. (The paper lists
    multi-join ordering as future work; this extension implements the
    Selinger-style DP of :mod:`repro.core.multijoin`.)
    Expected shape: the chosen order's total execution time beats the
    worst order's, tracking its smaller intermediate.
    """
    from repro.adm.cells import CellSet
    from repro.core.multijoin import MultiJoinPlanner
    from repro.engine.multijoin import (
        estimate_pair_selectivities,
        execute_multi_join,
    )
    from repro.query.aql import parse_aql

    rng = np.random.default_rng(seed)
    cluster = Cluster(n_nodes=n_nodes)

    def load(name: str, n: int, k1_range: int, k2_range: int):
        coords = np.unique(rng.integers(1, 129, size=(n, 2)), axis=0)
        cluster.create_array(
            f"{name}<k1:int64, k2:int64>[i=1,128,16, j=1,128,16]",
            CellSet(
                coords,
                {
                    "k1": rng.integers(0, k1_range, len(coords)),
                    "k2": rng.integers(0, k2_range, len(coords)),
                },
            ),
        )

    # A-B matches on k1 are rare (sparse key domain); B-C matches on k2
    # fan out heavily (tiny key domain): joining A ⋈ B first keeps the
    # intermediate tiny, while B ⋈ C first materialises a huge one.
    load("A", 25_000, 500_000, 25)
    load("B", 400, 500_000, 25)
    load("C", 25_000, 500_000, 25)
    query = parse_aql(
        "SELECT A.k1, C.k2 FROM A, B, C WHERE A.k1 = B.k1 AND B.k2 = C.k2"
    )
    executor = ShuffleJoinExecutor(cluster)
    sizes = {n: cluster.array_cell_count(n) for n in query.arrays}
    selectivities = estimate_pair_selectivities(executor, query)
    planner = MultiJoinPlanner(sizes, selectivities)

    chosen = planner.plan(query)
    candidates = [
        ["A", "B", "C"], ["B", "A", "C"], ["B", "C", "A"], ["C", "B", "A"],
    ]
    worst = max(
        (planner.plan_fixed_order(query, order) for order in candidates),
        key=lambda p: p.total_cost,
    )

    rows = []
    for label, plan in (("dp_chosen", chosen), ("worst_order", worst)):
        result = execute_multi_join(
            executor, query, planner="mbh", plan=plan
        )
        rows.append(
            ExperimentRow(
                {"variant": label, "order": ">> ".join(plan.order)},
                {
                    "model_cost": plan.total_cost,
                    "execute_s": sum(
                        r.report.execute_seconds for r in result.stage_results
                    ),
                    "intermediate_cells": float(
                        result.stage_results[0].report.output_cells
                    ),
                    "output_cells": float(result.array.n_cells),
                },
            )
        )
    return ExperimentResult(
        name="Ablation: multi-join ordering (future-work extension)",
        rows=rows,
        label_keys=["variant", "order"],
        value_keys=[
            "model_cost", "execute_s", "intermediate_cells", "output_cells",
        ],
    )


def main() -> None:  # pragma: no cover - manual entry point
    for runner in (
        run_ablation_shuffle_policy,
        run_ablation_tabu_list,
        run_ablation_bucket_count,
        run_ablation_coarse_bins,
        run_ablation_join_order,
    ):
        result = runner()
        print(result.table())
        print()


if __name__ == "__main__":  # pragma: no cover
    main()
