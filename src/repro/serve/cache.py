"""A bounded-LRU cache of prepared join plans for warm-path serving.

The planners of Sections 4-5 derive everything they produce — slice
statistics, the chosen logical plan, the join-unit assignment, the
shuffle schedule — purely from the data distribution and the query, so
those artifacts stay valid until the data changes. A :class:`PlanCache`
keeps the most recently used ones behind content fingerprints
(:mod:`repro.serve.fingerprint`): a warm ``Session.execute`` skips
straight from the fingerprint lookup to cell comparison.

Invalidation is by construction: the fingerprint embeds every input
array's ``uid.version.epoch`` token, so any load, rebalance, restore, or
drop/recreate produces a key that no stale entry matches. Stale entries
then age out through the LRU bound; DROP additionally purges eagerly via
:meth:`PlanCache.invalidate_array`. Hit/miss/eviction/invalidation
counts accumulate in a :class:`repro.obs.CounterSet` and surface in
``ExecutionReport.describe()`` and ``explain``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.obs.counters import CounterSet
from repro.serve.fingerprint import Fingerprint


@dataclass
class CachedPlan:
    """Everything one cold prepare+plan produced, ready for re-execution.

    ``slice_table`` carries the assignment-independent artifacts (slice
    statistics, unit-major side assemblies, memoised unit keys) *and*
    the assignment-dependent ones (its internal alignment cache holds
    the shuffle schedule keyed by assignment bytes); ``assignment`` and
    ``physical_plan`` pin the planner's join-unit placement so a warm
    run skips physical planning entirely.
    """

    join_schema: Any
    logical_plan: Any
    n_units: int
    slice_table: Any
    assignment: np.ndarray
    physical_plan: Any
    #: input array names, for eager invalidation on DROP
    arrays: tuple[str, ...]
    fingerprint: Fingerprint
    #: the cold run's prepare-stage seconds, kept for inspection
    prepare_breakdown: dict[str, float] = field(default_factory=dict)


@dataclass
class CachedStage:
    """One pipeline stage's prepared state, cached inside a pipeline entry.

    ``query`` is the stage's rewritten two-array :class:`JoinQuery` (over
    the ephemeral intermediate name for stages past the first), and the
    rest mirrors :class:`CachedPlan` minus the cache-bookkeeping fields —
    stages are cached only as members of a :class:`CachedPipeline`, never
    under their own fingerprints.
    """

    query: Any
    join_schema: Any
    logical_plan: Any
    n_units: int
    slice_table: Any
    assignment: np.ndarray
    physical_plan: Any


@dataclass
class CachedPipeline:
    """A whole multi-join pipeline's plan + per-stage prepared state.

    Shares the :class:`PlanCache` LRU with binary :class:`CachedPlan`
    entries: the cache only touches ``fingerprint`` and ``arrays``, so
    both entry kinds coexist behind one budget and one invalidation
    path. ``arrays`` lists the *base* arrays (intermediates are
    ephemeral and cannot be dropped), so DROP of any input purges the
    pipeline eagerly; version/epoch bumps invalidate by fingerprint
    mismatch as usual.
    """

    plan: Any
    stages: list[CachedStage]
    arrays: tuple[str, ...]
    fingerprint: Fingerprint
    prepare_breakdown: dict[str, float] = field(default_factory=dict)


class PlanCache:
    """Bounded LRU mapping plan fingerprints to cached plans.

    Values are :class:`CachedPlan` (binary joins) or
    :class:`CachedPipeline` (multi-join pipelines) — the cache itself is
    agnostic, keying on ``entry.fingerprint`` and purging on
    ``entry.arrays``.

    Thread-safe: one lock serialises every lookup/insert/evict/purge so
    concurrent ``Session.execute`` calls (the serving front end drives
    one executor from many dispatch threads) cannot corrupt the LRU
    order or race a move-to-end against an eviction. Counter updates go
    through :class:`CounterSet`, which is atomic on its own; lookups
    count the hit/miss while still holding the cache lock so
    ``hits + misses`` always equals the number of completed lookups.
    """

    def __init__(self, capacity: int = 64, counters: CounterSet | None = None):
        if capacity <= 0:
            raise ValueError(f"plan cache capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.counters = counters if counters is not None else CounterSet()
        self._entries: OrderedDict[str, CachedPlan | CachedPipeline] = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, fingerprint: Fingerprint) -> CachedPlan | CachedPipeline | None:
        """Look one fingerprint up; counts a hit or a miss."""
        with self._lock:
            entry = self._entries.get(fingerprint.key)
            if entry is None:
                self.counters.increment("misses")
                return None
            self._entries.move_to_end(fingerprint.key)
            self.counters.increment("hits")
            return entry

    def put(self, entry: CachedPlan | CachedPipeline) -> None:
        """Insert one prepared plan, evicting the LRU entry when full."""
        key = entry.fingerprint.key
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = entry
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.counters.increment("evictions")

    def invalidate_array(self, name: str) -> int:
        """Eagerly drop every entry that reads ``name``; returns count."""
        with self._lock:
            stale = [
                key
                for key, entry in self._entries.items()
                if name in entry.arrays
            ]
            for key in stale:
                del self._entries[key]
            if stale:
                self.counters.increment("invalidations", len(stale))
            return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict[str, int]:
        """Counter snapshot plus the current entry count."""
        snapshot = self.counters.snapshot()
        with self._lock:
            snapshot["entries"] = len(self._entries)
        return snapshot


__all__ = ["CachedPlan", "CachedStage", "CachedPipeline", "PlanCache"]
