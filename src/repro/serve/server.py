"""Concurrent query front end: admission control over one Session.

A :class:`JoinServer` turns the single-caller :class:`repro.session.Session`
into a serving endpoint: many clients submit join statements
concurrently, a bounded thread pool dispatches them against the shared
session, and admission control keeps the outstanding work finite — the
difference between a system that degrades gracefully under load and one
that queues without bound.

The moving parts:

- **Dispatch**: a ``ThreadPoolExecutor`` of ``max_in_flight`` threads.
  Each request runs ``session.execute`` on a pool thread; the plan
  cache, counters, and metrics registry underneath are all
  individually thread-safe (PR 8), and process-mode shared-memory
  joins stay per-query — concurrent queries serialise at the fork
  pool's pipes, never interleave on them.
- **Admission control**: a semaphore of ``max_in_flight + queue_depth``
  permits bounds running + waiting requests. When permits run out the
  ``overload`` policy decides: ``"block"`` makes ``submit`` wait
  (closed-loop clients self-pace), ``"shed"`` raises the typed
  :class:`repro.errors.Overloaded` immediately (open-loop traffic gets
  back-pressure instead of unbounded queues).
- **Coalescing** (on by default): concurrent requests for the same
  ``(statement, options)`` share one in-flight execution's future —
  the classic single-flight pattern. The key deliberately excludes the
  tenant: a join result is a pure function of the statement, the
  stored data, and the plan-affecting options, while ``tenant`` is
  accounting metadata (cache namespace + counters), so handing the
  same immutable result to waiters from different tenants is
  semantically identical to running each of them. Under a hot query
  mix this is where most of the multi-client throughput comes from.
  Per-tenant cache counters move only for requests that actually
  consult the cache — a coalesced follower performed no lookup, and
  its tenant's namespace statistics honestly say so.
- **Tenants**: ``tenant=`` flows through to the executor, which folds
  the token into the plan-cache fingerprint — per-tenant cache
  namespaces over one shared LRU budget, with per-tenant hit/miss
  counters in the metrics registry.
- **Lifecycle**: ``drain()`` stops admissions and waits for in-flight
  work; ``shutdown()`` additionally tears the pool down. The server is
  a context manager.

Serving metrics accumulate in the backend's registry:
``serve_latency_seconds`` (histogram over
:data:`repro.obs.metrics.LATENCY_BUCKETS`), the
``serve_queries_{admitted,completed,failed,shed,coalesced}`` counters,
and the ``serve_in_flight`` gauge.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import wait as futures_wait

from repro.engine.parallel import available_cpus
from repro.errors import ExecutionError, Overloaded
from repro.obs.metrics import LATENCY_BUCKETS, MetricsRegistry

#: Options JoinServer.submit refuses. ``trace`` swaps the executor's
#: tracer for the query's duration — a per-executor mutation that would
#: cross-attribute spans between concurrent queries; ``store_result``
#: mutates the cluster catalog, which the serving path keeps read-only.
REJECTED_OPTIONS = frozenset({"trace", "store_result"})


class JoinServer:
    """Bounded concurrent dispatch of join statements over one backend.

    ``backend`` is typically a :class:`repro.session.Session`; anything
    exposing ``execute(statement, **options)`` works (the bench harness
    passes a bare executor). ``max_in_flight`` bounds concurrently
    executing queries (and sizes the dispatch pool), ``queue_depth`` how
    many more may wait admitted-but-unstarted; beyond that the
    ``overload`` policy applies. ``coalesce=False`` disables
    single-flight request sharing (every request then executes).
    """

    def __init__(
        self,
        backend,
        max_in_flight: int | None = None,
        queue_depth: int = 0,
        overload: str = "block",
        coalesce: bool = True,
        metrics: MetricsRegistry | None = None,
    ):
        if overload not in ("block", "shed"):
            raise ExecutionError(
                f"unknown overload policy {overload!r}; expected 'block' "
                "or 'shed'"
            )
        if max_in_flight is None:
            max_in_flight = max(2, available_cpus())
        if max_in_flight < 1:
            raise ExecutionError(
                f"max_in_flight must be at least 1, got {max_in_flight}"
            )
        if queue_depth < 0:
            raise ExecutionError(
                f"queue_depth must be non-negative, got {queue_depth}"
            )
        self.backend = backend
        self.max_in_flight = int(max_in_flight)
        self.queue_depth = int(queue_depth)
        self.overload = overload
        self.coalesce = bool(coalesce)
        if metrics is not None:
            self.metrics = metrics
        else:
            backend_metrics = getattr(backend, "metrics", None)
            self.metrics = (
                backend_metrics
                if isinstance(backend_metrics, MetricsRegistry)
                else MetricsRegistry()
            )
        self._pool = ThreadPoolExecutor(
            max_workers=self.max_in_flight, thread_name_prefix="join-serve"
        )
        self._admission = threading.BoundedSemaphore(
            self.max_in_flight + self.queue_depth
        )
        # Reentrant: submit registers done-callbacks while holding the
        # lock, and a future that finished already runs its callback
        # synchronously on the registering thread.
        self._lock = threading.RLock()
        self._singleflight: dict[tuple, Future] = {}
        self._outstanding: set[Future] = set()
        self._in_flight = 0
        self._closed = False

    # ------------------------------------------------------------- submission

    def submit(self, statement: str, tenant: str | None = None, **options) -> Future:
        """Admit one join statement; returns a future of its JoinResult.

        Honours the admission bound and overload policy; raises
        :class:`Overloaded` when shed or when the server is closed.
        Coalesced requests (identical statement + options already in
        flight, any tenant) share the leader's future without consuming
        an admission permit.
        """
        rejected = sorted(REJECTED_OPTIONS & set(options))
        if rejected:
            raise ExecutionError(
                f"option(s) {rejected} are not servable: trace swaps the "
                "executor's tracer and store_result mutates the catalog; "
                "run them through Session.execute directly"
            )
        arrival = time.perf_counter()
        if self._closed:
            raise Overloaded("server is closed to new queries")
        key = self._coalesce_key(statement, options)
        if key is not None:
            with self._lock:
                leader = self._singleflight.get(key)
                if leader is not None:
                    self.metrics.counter("serve_queries_coalesced").inc()
                    self._record_on_done(leader, arrival)
                    return leader
        if not self._admission.acquire(blocking=self.overload == "block"):
            self.metrics.counter("serve_queries_shed").inc()
            raise Overloaded(
                f"admission bound reached ({self.max_in_flight} in flight "
                f"+ {self.queue_depth} queued); query shed"
            )
        if self._closed:
            self._admission.release()
            raise Overloaded("server is closed to new queries")
        with self._lock:
            if key is not None:
                # Re-check under the lock: an identical request may have
                # become leader while this one waited on admission.
                leader = self._singleflight.get(key)
                if leader is not None:
                    self._admission.release()
                    self.metrics.counter("serve_queries_coalesced").inc()
                    self._record_on_done(leader, arrival)
                    return leader
            try:
                future = self._pool.submit(
                    self._run, statement, tenant, options
                )
            except RuntimeError as exc:  # pool already shut down
                self._admission.release()
                raise Overloaded("server is closed to new queries") from exc
            self.metrics.counter("serve_queries_admitted").inc()
            self._in_flight += 1
            self.metrics.gauge("serve_in_flight").set(self._in_flight)
            self._outstanding.add(future)
            if key is not None:
                self._singleflight[key] = future
            future.add_done_callback(
                lambda done, key=key: self._release(key, done)
            )
        self._record_on_done(future, arrival)
        return future

    def execute(self, statement: str, tenant: str | None = None, **options):
        """Blocking submit: returns the JoinResult (or raises)."""
        return self.submit(statement, tenant=tenant, **options).result()

    def _run(self, statement: str, tenant: str | None, options: dict):
        if tenant is not None:
            options = {**options, "tenant": tenant}
        return self.backend.execute(statement, **options)

    def _coalesce_key(self, statement: str, options: dict) -> tuple | None:
        if not self.coalesce:
            return None
        try:
            # tenant is deliberately absent: it namespaces cache entries
            # and counters but never changes the result, so identical
            # statements from different tenants share one execution.
            return (str(statement), tuple(sorted(options.items())))
        except TypeError:
            # Unhashable/unorderable option values: skip coalescing for
            # this request rather than refusing it.
            return None

    def _release(self, key: tuple | None, future: Future) -> None:
        with self._lock:
            if key is not None and self._singleflight.get(key) is future:
                del self._singleflight[key]
            self._outstanding.discard(future)
            self._in_flight -= 1
            self.metrics.gauge("serve_in_flight").set(self._in_flight)
        self._admission.release()

    def _record_on_done(self, future: Future, arrival: float) -> None:
        def record(done: Future) -> None:
            latency = time.perf_counter() - arrival
            self.metrics.histogram(
                "serve_latency_seconds", LATENCY_BUCKETS
            ).observe(latency)
            failed = done.cancelled() or done.exception() is not None
            name = "serve_queries_failed" if failed else "serve_queries_completed"
            self.metrics.counter(name).inc()

        future.add_done_callback(record)

    # -------------------------------------------------------------- lifecycle

    def drain(self, timeout: float | None = None) -> bool:
        """Stop admitting queries and wait for in-flight ones to finish.

        Returns True when everything outstanding completed within the
        timeout. Idempotent; the dispatch pool stays usable for nothing
        — drained servers refuse new submissions with ``Overloaded``.
        """
        self._closed = True
        with self._lock:
            pending = list(self._outstanding)
        done, not_done = futures_wait(pending, timeout=timeout)
        return not not_done

    def shutdown(self, wait: bool = True) -> None:
        """Drain (when ``wait``) and tear the dispatch pool down."""
        self._closed = True
        if wait:
            self.drain()
        self._pool.shutdown(wait=wait)

    def __enter__(self) -> "JoinServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(wait=exc_type is None)

    # ------------------------------------------------------------ observation

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def in_flight(self) -> int:
        """Currently admitted-and-unfinished queries (running + queued)."""
        with self._lock:
            return self._in_flight

    def stats(self) -> dict:
        """Serving counters, latency quantiles, and per-tenant cache rates."""
        counters = self.metrics.snapshot()["counters"]
        histogram = self.metrics.histogram(
            "serve_latency_seconds", LATENCY_BUCKETS
        )
        stats = {
            "in_flight": self.in_flight,
            "closed": self._closed,
            "max_in_flight": self.max_in_flight,
            "queue_depth": self.queue_depth,
            "overload": self.overload,
            "coalesce": self.coalesce,
            "admitted": counters.get("serve_queries_admitted", 0),
            "completed": counters.get("serve_queries_completed", 0),
            "failed": counters.get("serve_queries_failed", 0),
            "shed": counters.get("serve_queries_shed", 0),
            "coalesced": counters.get("serve_queries_coalesced", 0),
            "latency_p50": histogram.quantile(0.50),
            "latency_p95": histogram.quantile(0.95),
            "latency_p99": histogram.quantile(0.99),
            "latency_mean": histogram.mean,
            "tenants": tenant_cache_stats(counters),
        }
        plan_cache = getattr(self.backend, "plan_cache", None)
        if plan_cache is not None:
            stats["plan_cache"] = plan_cache.stats()
        return stats


def tenant_cache_stats(counters: dict) -> dict:
    """Per-tenant hit/miss/hit-rate table from a counter snapshot.

    Reads the ``tenant_cache_hits.<t>`` / ``tenant_cache_misses.<t>``
    counters the executor maintains for tenant-scoped queries.
    """
    tenants: dict[str, dict] = {}
    for prefix, field in (
        ("tenant_cache_hits.", "hits"),
        ("tenant_cache_misses.", "misses"),
    ):
        for name, value in counters.items():
            if name.startswith(prefix):
                entry = tenants.setdefault(
                    name[len(prefix):], {"hits": 0, "misses": 0}
                )
                entry[field] = value
    for entry in tenants.values():
        lookups = entry["hits"] + entry["misses"]
        entry["hit_rate"] = entry["hits"] / lookups if lookups else 0.0
    return tenants


__all__ = ["JoinServer", "REJECTED_OPTIONS", "tenant_cache_stats"]
