"""Concurrent query front end: admission control over one Session.

A :class:`JoinServer` turns the single-caller :class:`repro.session.Session`
into a serving endpoint: many clients submit join statements
concurrently, a bounded thread pool dispatches them against the shared
session, and admission control keeps the outstanding work finite — the
difference between a system that degrades gracefully under load and one
that queues without bound.

The moving parts:

- **Dispatch**: a ``ThreadPoolExecutor`` of ``max_in_flight`` threads.
  Each request runs ``session.execute`` on a pool thread; the plan
  cache, counters, and metrics registry underneath are all
  individually thread-safe (PR 8), and process-mode shared-memory
  joins stay per-query — concurrent queries serialise at the fork
  pool's pipes, never interleave on them.
- **Admission control**: a semaphore of ``max_in_flight + queue_depth``
  permits bounds running + waiting requests. When permits run out the
  ``overload`` policy decides: ``"block"`` makes ``submit`` wait
  (closed-loop clients self-pace), ``"shed"`` raises the typed
  :class:`repro.errors.Overloaded` immediately (open-loop traffic gets
  back-pressure instead of unbounded queues).
- **Coalescing** (on by default): concurrent requests for the same
  ``(statement, options)`` share one in-flight execution's future —
  the classic single-flight pattern. The key deliberately excludes the
  tenant: a join result is a pure function of the statement, the
  stored data, and the plan-affecting options, while ``tenant`` is
  accounting metadata (cache namespace + counters), so handing the
  same immutable result to waiters from different tenants is
  semantically identical to running each of them. Under a hot query
  mix this is where most of the multi-client throughput comes from.
  Per-tenant cache counters move only for requests that actually
  consult the cache — a coalesced follower performed no lookup, and
  its tenant's namespace statistics honestly say so.
- **Tenants**: ``tenant=`` flows through to the executor, which folds
  the token into the plan-cache fingerprint — per-tenant cache
  namespaces over one shared LRU budget, with per-tenant hit/miss
  counters in the metrics registry.
- **Lifecycle**: ``drain()`` stops admissions and waits for in-flight
  work; ``shutdown()`` additionally tears the pool down. The server is
  a context manager.

Serving metrics accumulate in the backend's registry:
``serve_latency_seconds`` (histogram over
:data:`repro.obs.metrics.LATENCY_BUCKETS`), the
``serve_queries_{admitted,completed,failed,shed,coalesced}`` counters,
the ``serve_in_flight``/``serve_queued``/``serve_running`` occupancy
gauges (maintained with :meth:`~repro.obs.metrics.Gauge.inc`/``dec`` as
requests move, so ``stats()`` reads them instead of recomputing), and
rolling-window latency (``serve_latency_window`` plus cardinality-capped
``serve_latency_window.<tenant>``) so ``/statz`` reports p50/p95/p99
over the last ``window_seconds``, not lifetime.

The telemetry plane (PR 10) rides on the same per-request path:
``query_log=`` appends one structured JSONL record per request
(:class:`repro.obs.telemetry.QueryLog`, size-rotated),
``trace_sample=N`` samples every Nth executed request's serve-plane
spans as a Chrome trace, and ``slow_query_seconds=`` +
``capture_dir=`` dump trace + explain-analyze evidence for any request
over the threshold (:class:`repro.serve.monitor.SlowQueryCapture`).
:meth:`JoinServer.monitor` starts the HTTP monitor thread exposing
``/metrics``, ``/healthz``, and ``/statz``.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import wait as futures_wait

from repro.engine.parallel import available_cpus
from repro.errors import ExecutionError, Overloaded
from repro.obs.metrics import (
    LATENCY_BUCKETS,
    MetricsRegistry,
    RollingHistogram,
)
from repro.obs.telemetry import QueryLog
from repro.serve.monitor import (
    RequestRecord,
    SlowQueryCapture,
    TraceSampler,
    wall_clock,
)

#: Options JoinServer.submit refuses. ``trace`` swaps the executor's
#: tracer for the query's duration — a per-executor mutation that would
#: cross-attribute spans between concurrent queries; ``store_result``
#: mutates the cluster catalog, which the serving path keeps read-only.
REJECTED_OPTIONS = frozenset({"trace", "store_result"})

#: Distinct tenants that get their own rolling latency window before the
#: cardinality guard folds the tail into ``serve_latency_window._other``.
WINDOW_TENANT_CAP = 32

#: Report.meta fields copied into query-log records and capture traces.
_META_FIELDS = ("kernel", "parallel_mode", "units_split", "runtime_resplits")


class JoinServer:
    """Bounded concurrent dispatch of join statements over one backend.

    ``backend`` is typically a :class:`repro.session.Session`; anything
    exposing ``execute(statement, **options)`` works (the bench harness
    passes a bare executor). ``max_in_flight`` bounds concurrently
    executing queries (and sizes the dispatch pool), ``queue_depth`` how
    many more may wait admitted-but-unstarted; beyond that the
    ``overload`` policy applies. ``coalesce=False`` disables
    single-flight request sharing (every request then executes).

    Telemetry knobs: ``query_log`` takes a :class:`QueryLog` (shared,
    caller closes) or a path (owned, closed on shutdown);
    ``trace_sample=N`` samples every Nth executed request;
    ``slow_query_seconds`` + ``capture_dir`` dump trace and
    explain-analyze evidence for over-threshold requests, keeping at
    most ``capture_limit`` capture groups; ``window_seconds`` sizes the
    rolling latency windows ``stats()["window"]`` reports.
    """

    def __init__(
        self,
        backend,
        max_in_flight: int | None = None,
        queue_depth: int = 0,
        overload: str = "block",
        coalesce: bool = True,
        metrics: MetricsRegistry | None = None,
        query_log=None,
        trace_sample: int = 0,
        slow_query_seconds: float | None = None,
        capture_dir: str | None = None,
        capture_limit: int = 8,
        window_seconds: float = 60.0,
    ):
        if overload not in ("block", "shed"):
            raise ExecutionError(
                f"unknown overload policy {overload!r}; expected 'block' "
                "or 'shed'"
            )
        if max_in_flight is None:
            max_in_flight = max(2, available_cpus())
        if max_in_flight < 1:
            raise ExecutionError(
                f"max_in_flight must be at least 1, got {max_in_flight}"
            )
        if queue_depth < 0:
            raise ExecutionError(
                f"queue_depth must be non-negative, got {queue_depth}"
            )
        self.backend = backend
        self.max_in_flight = int(max_in_flight)
        self.queue_depth = int(queue_depth)
        self.overload = overload
        self.coalesce = bool(coalesce)
        if metrics is not None:
            self.metrics = metrics
        else:
            backend_metrics = getattr(backend, "metrics", None)
            self.metrics = (
                backend_metrics
                if isinstance(backend_metrics, MetricsRegistry)
                else MetricsRegistry()
            )
        if window_seconds <= 0:
            raise ExecutionError(
                f"window_seconds must be positive, got {window_seconds}"
            )
        if trace_sample < 0:
            raise ExecutionError(
                f"trace_sample must be >= 0 (1 in N; 0 = off), "
                f"got {trace_sample}"
            )
        if slow_query_seconds is not None and capture_dir is None:
            raise ExecutionError(
                "slow_query_seconds needs capture_dir: slow-query captures "
                "are written to disk"
            )
        self._pool = ThreadPoolExecutor(
            max_workers=self.max_in_flight, thread_name_prefix="join-serve"
        )
        self._admission = threading.BoundedSemaphore(
            self.max_in_flight + self.queue_depth
        )
        # Reentrant: submit registers done-callbacks while holding the
        # lock, and a future that finished already runs its callback
        # synchronously on the registering thread.
        self._lock = threading.RLock()
        self._singleflight: dict[tuple, Future] = {}
        self._outstanding: set[Future] = set()
        self._closed = False
        # Occupancy gauges move with inc/dec as requests are admitted,
        # dispatched, and released; stats() reads them directly.
        self._in_flight_gauge = self.metrics.gauge("serve_in_flight")
        self._queued_gauge = self.metrics.gauge("serve_queued")
        self._running_gauge = self.metrics.gauge("serve_running")
        # Rolling latency windows: one global ring plus per-tenant rings
        # behind a cardinality cap (the tail shares "_other").
        self.window_seconds = float(window_seconds)
        self._window = self.metrics.rolling_histogram(
            "serve_latency_window", LATENCY_BUCKETS,
            window_seconds=self.window_seconds,
        )
        self._tenant_windows: dict[str, RollingHistogram] = {}
        # Telemetry plane: query log, trace sampling, slow-query capture.
        if query_log is None or isinstance(query_log, QueryLog):
            self._query_log = query_log
            self._owns_query_log = False
        else:
            self._query_log = QueryLog(query_log)
            self._owns_query_log = True
        self._sampler = (
            TraceSampler(trace_sample, capture_dir, limit=capture_limit)
            if trace_sample > 0
            else None
        )
        self._slow = (
            SlowQueryCapture(
                slow_query_seconds, capture_dir, limit=capture_limit,
                explain=getattr(backend, "explain_analyze", None),
            )
            if slow_query_seconds is not None
            else None
        )
        self._seq = 0
        self._seq_lock = threading.Lock()

    # ------------------------------------------------------------- submission

    def submit(self, statement: str, tenant: str | None = None, **options) -> Future:
        """Admit one join statement; returns a future of its JoinResult.

        Honours the admission bound and overload policy; raises
        :class:`Overloaded` when shed or when the server is closed.
        Coalesced requests (identical statement + options already in
        flight, any tenant) share the leader's future without consuming
        an admission permit.
        """
        rejected = sorted(REJECTED_OPTIONS & set(options))
        if rejected:
            raise ExecutionError(
                f"option(s) {rejected} are not servable: trace swaps the "
                "executor's tracer and store_result mutates the catalog; "
                "run them through Session.execute directly"
            )
        arrival = time.perf_counter()
        if self._closed:
            raise Overloaded("server is closed to new queries")
        record = RequestRecord(
            seq=self._next_seq(),
            statement=str(statement),
            tenant=tenant,
            arrival=arrival,
        )
        key = self._coalesce_key(statement, options)
        if key is not None:
            with self._lock:
                leader = self._singleflight.get(key)
                if leader is not None:
                    self.metrics.counter("serve_queries_coalesced").inc()
                    record.coalesced = True
                    self._record_on_done(leader, record, options)
                    return leader
        if not self._admission.acquire(blocking=self.overload == "block"):
            self.metrics.counter("serve_queries_shed").inc()
            self._finish_shed(record)
            raise Overloaded(
                f"admission bound reached ({self.max_in_flight} in flight "
                f"+ {self.queue_depth} queued); query shed"
            )
        if self._closed:
            self._admission.release()
            raise Overloaded("server is closed to new queries")
        with self._lock:
            if key is not None:
                # Re-check under the lock: an identical request may have
                # become leader while this one waited on admission.
                leader = self._singleflight.get(key)
                if leader is not None:
                    self._admission.release()
                    self.metrics.counter("serve_queries_coalesced").inc()
                    record.coalesced = True
                    self._record_on_done(leader, record, options)
                    return leader
            self._queued_gauge.inc()
            try:
                future = self._pool.submit(
                    self._run, statement, tenant, options, record
                )
            except RuntimeError as exc:  # pool already shut down
                self._queued_gauge.dec()
                self._admission.release()
                raise Overloaded("server is closed to new queries") from exc
            self.metrics.counter("serve_queries_admitted").inc()
            self._in_flight_gauge.inc()
            self._outstanding.add(future)
            if key is not None:
                self._singleflight[key] = future
            future.add_done_callback(
                lambda done, key=key: self._release(key, done)
            )
        self._record_on_done(future, record, options)
        return future

    def execute(self, statement: str, tenant: str | None = None, **options):
        """Blocking submit: returns the JoinResult (or raises)."""
        return self.submit(statement, tenant=tenant, **options).result()

    def _next_seq(self) -> int:
        with self._seq_lock:
            self._seq += 1
            return self._seq

    def _run(
        self,
        statement: str,
        tenant: str | None,
        options: dict,
        record: RequestRecord,
    ):
        record.started = time.perf_counter()
        self._queued_gauge.dec()
        self._running_gauge.inc()
        try:
            if tenant is not None:
                options = {**options, "tenant": tenant}
            return self.backend.execute(statement, **options)
        finally:
            self._running_gauge.dec()
            record.finished = time.perf_counter()

    def _coalesce_key(self, statement: str, options: dict) -> tuple | None:
        if not self.coalesce:
            return None
        try:
            # tenant is deliberately absent: it namespaces cache entries
            # and counters but never changes the result, so identical
            # statements from different tenants share one execution.
            return (str(statement), tuple(sorted(options.items())))
        except TypeError:
            # Unhashable/unorderable option values: skip coalescing for
            # this request rather than refusing it.
            return None

    def _release(self, key: tuple | None, future: Future) -> None:
        with self._lock:
            if key is not None and self._singleflight.get(key) is future:
                del self._singleflight[key]
            self._outstanding.discard(future)
            self._in_flight_gauge.dec()
        self._admission.release()

    def _record_on_done(
        self, future: Future, record: RequestRecord, options: dict
    ) -> None:
        def finish(done: Future) -> None:
            record.latency = time.perf_counter() - record.arrival
            self.metrics.histogram(
                "serve_latency_seconds", LATENCY_BUCKETS
            ).observe(record.latency)
            self._window.observe(record.latency)
            if record.tenant is not None:
                self._tenant_window(record.tenant).observe(record.latency)
            failed = done.cancelled() or done.exception() is not None
            name = "serve_queries_failed" if failed else "serve_queries_completed"
            self.metrics.counter(name).inc()
            record.outcome = "error" if failed else "ok"
            if not failed and not record.coalesced:
                report = getattr(done.result(), "report", None)
                if report is not None:
                    cache = getattr(report, "cache", None) or {}
                    record.cache_status = cache.get("status")
                    meta = getattr(report, "meta", None) or {}
                    record.meta = {
                        name: meta.get(name) for name in _META_FIELDS
                    }
            # Coalesced followers never executed: the leader's callback
            # samples and captures, the follower only logs its wait.
            if not record.coalesced:
                if self._sampler is not None and self._sampler.should_sample(
                    record.seq
                ):
                    record.sampled = True
                    self._sampler.record(record)
                if self._slow is not None:
                    self._slow.consider(record, options)
            self._log_record(record)

        future.add_done_callback(finish)

    def _finish_shed(self, record: RequestRecord) -> None:
        record.outcome = "shed"
        record.latency = time.perf_counter() - record.arrival
        self._log_record(record)

    def _log_record(self, record: RequestRecord) -> None:
        log = self._query_log
        if log is None:
            return
        entry = {
            "ts": wall_clock(),
            "seq": record.seq,
            "tenant": record.tenant,
            "fingerprint": record.fingerprint,
            "latency_seconds": record.latency,
            "outcome": record.outcome,
            "cache": record.cache_status,
            "coalesced": record.coalesced,
            "shed": record.outcome == "shed",
            "sampled": record.sampled,
        }
        for name in _META_FIELDS:
            entry[name] = record.meta.get(name)
        try:
            log.log(entry)
        except ValueError:
            pass  # log closed while the last futures completed

    def _tenant_window(self, tenant: str) -> RollingHistogram:
        with self._lock:
            window = self._tenant_windows.get(tenant)
            if window is not None:
                return window
            if len(self._tenant_windows) >= WINDOW_TENANT_CAP:
                tenant = "_other"
                window = self._tenant_windows.get(tenant)
                if window is not None:
                    return window
            window = self.metrics.rolling_histogram(
                f"serve_latency_window.{tenant}",
                LATENCY_BUCKETS,
                window_seconds=self.window_seconds,
            )
            self._tenant_windows[tenant] = window
            return window

    # -------------------------------------------------------------- lifecycle

    def drain(self, timeout: float | None = None) -> bool:
        """Stop admitting queries and wait for in-flight ones to finish.

        Returns True when everything outstanding completed within the
        timeout. Idempotent; the dispatch pool stays usable for nothing
        — drained servers refuse new submissions with ``Overloaded``.
        """
        self._closed = True
        with self._lock:
            pending = list(self._outstanding)
        done, not_done = futures_wait(pending, timeout=timeout)
        return not not_done

    def shutdown(self, wait: bool = True) -> None:
        """Drain (when ``wait``) and tear the dispatch pool down."""
        self._closed = True
        if wait:
            self.drain()
        self._pool.shutdown(wait=wait)
        if self._owns_query_log and self._query_log is not None:
            self._query_log.close()

    def __enter__(self) -> "JoinServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(wait=exc_type is None)

    # ------------------------------------------------------------ observation

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def in_flight(self) -> int:
        """Currently admitted-and-unfinished queries (running + queued)."""
        return int(self._in_flight_gauge.value)

    def stats(self) -> dict:
        """Serving counters, latency quantiles, and per-tenant cache rates."""
        counters = self.metrics.snapshot()["counters"]
        histogram = self.metrics.histogram(
            "serve_latency_seconds", LATENCY_BUCKETS
        )
        stats = {
            "in_flight": self.in_flight,
            "queued": int(self._queued_gauge.value),
            "running": int(self._running_gauge.value),
            "closed": self._closed,
            "max_in_flight": self.max_in_flight,
            "queue_depth": self.queue_depth,
            "overload": self.overload,
            "coalesce": self.coalesce,
            "admitted": counters.get("serve_queries_admitted", 0),
            "completed": counters.get("serve_queries_completed", 0),
            "failed": counters.get("serve_queries_failed", 0),
            "shed": counters.get("serve_queries_shed", 0),
            "coalesced": counters.get("serve_queries_coalesced", 0),
            "latency_p50": histogram.quantile(0.50),
            "latency_p95": histogram.quantile(0.95),
            "latency_p99": histogram.quantile(0.99),
            "latency_mean": histogram.mean,
            "tenants": tenant_cache_stats(counters),
            "window": self._window_stats(),
            "telemetry": self._telemetry_stats(),
        }
        plan_cache = getattr(self.backend, "plan_cache", None)
        if plan_cache is not None:
            stats["plan_cache"] = plan_cache.stats()
        return stats

    def _window_stats(self) -> dict:
        """Rolling-window latency quantiles, global and per tenant."""
        with self._lock:
            tenant_windows = dict(self._tenant_windows)
        window = {
            "seconds": self.window_seconds,
            "count": self._window.count,
            "p50": self._window.quantile(0.50),
            "p95": self._window.quantile(0.95),
            "p99": self._window.quantile(0.99),
            "tenants": {
                tenant: {
                    "count": ring.count,
                    "p50": ring.quantile(0.50),
                    "p95": ring.quantile(0.95),
                    "p99": ring.quantile(0.99),
                }
                for tenant, ring in sorted(tenant_windows.items())
            },
        }
        return window

    def _telemetry_stats(self) -> dict:
        telemetry: dict = {
            "query_log": None,
            "trace_sample": 0,
            "sampled": 0,
            "slow_query_seconds": None,
            "slow_captures": 0,
            "slow_explains": 0,
        }
        if self._query_log is not None:
            telemetry["query_log"] = {
                "path": self._query_log.path,
                "records": self._query_log.records,
                "rotations": self._query_log.rotations,
            }
        if self._sampler is not None:
            telemetry["trace_sample"] = self._sampler.sample
            telemetry["sampled"] = self._sampler.sampled
        if self._slow is not None:
            telemetry["slow_query_seconds"] = self._slow.threshold_seconds
            telemetry["slow_captures"] = self._slow.captures
            telemetry["slow_explains"] = self._slow.explains
        return telemetry

    def monitor(self, host: str = "127.0.0.1", port: int = 0, **kwargs):
        """Start the HTTP monitor thread for this server.

        Returns a running :class:`repro.serve.monitor.MonitorServer`
        exposing ``/metrics``, ``/healthz``, and ``/statz``; ``port=0``
        binds an ephemeral port (read it back from ``monitor.port``).
        The caller owns the monitor's lifecycle — close it explicitly
        or use it as a context manager.
        """
        from repro.serve.monitor import MonitorServer

        return MonitorServer(self, host=host, port=port, **kwargs)


def tenant_cache_stats(counters: dict) -> dict:
    """Per-tenant hit/miss/hit-rate table from a counter snapshot.

    Reads the ``tenant_cache_hits.<t>`` / ``tenant_cache_misses.<t>``
    counters the executor maintains for tenant-scoped queries.
    """
    tenants: dict[str, dict] = {}
    for prefix, field in (
        ("tenant_cache_hits.", "hits"),
        ("tenant_cache_misses.", "misses"),
    ):
        for name, value in counters.items():
            if name.startswith(prefix):
                entry = tenants.setdefault(
                    name[len(prefix):], {"hits": 0, "misses": 0}
                )
                entry[field] = value
    for entry in tenants.values():
        lookups = entry["hits"] + entry["misses"]
        entry["hit_rate"] = entry["hits"] / lookups if lookups else 0.0
    return tenants


__all__ = ["JoinServer", "REJECTED_OPTIONS", "tenant_cache_stats"]
