"""The serving monitor plane: /metrics endpoint, tracing, slow queries.

Three pieces turn a :class:`repro.serve.server.JoinServer`'s internal
telemetry into something an operator (or a Prometheus scraper) can see
*while the server runs*:

- :class:`MonitorServer` — a stdlib ``http.server`` thread exposing

  - ``GET /metrics``  — Prometheus text exposition of the backend's
    metrics registry (:func:`repro.obs.telemetry.render_prometheus`);
  - ``GET /healthz``  — liveness JSON (503 once the server is closed
    to new queries, so load balancers drain it);
  - ``GET /statz``    — ``server.stats()`` plus the full registry
    snapshot as JSON: admission counters, rolling-window per-tenant
    latency quantiles, plan-cache and tenant-cache state.

  The monitor serves scrapes concurrently with query traffic — every
  instrument it reads is individually atomic, so scraping under load
  needs no pauses.
- :class:`TraceSampler` — head-based ``1/N`` sampling: every Nth
  executed request records serve-plane spans (queue wait, backend
  execution) as a Chrome trace-event object, retained in a bounded
  ring and optionally written to a capture directory.
- :class:`SlowQueryCapture` — any request over a latency threshold
  dumps a loadable Chrome trace plus an explain-analyze summary
  (per-node Eq 5-8 predicted-vs-observed) to the capture directory,
  with bounded retention so a pathological workload cannot fill the
  disk.

This module deliberately never imports the server — it is handed one —
so the server module can import the capture classes without a cycle.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
import urllib.request
from collections import deque
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs.telemetry import render_prometheus
from repro.obs.trace import Tracer


def statement_fingerprint(statement: str) -> str:
    """Short stable fingerprint of a statement for log/capture names."""
    return hashlib.sha1(str(statement).encode("utf-8")).hexdigest()[:12]


@dataclass
class RequestRecord:
    """Per-request telemetry the server accumulates as a request moves.

    Timestamps are raw ``perf_counter`` values: ``arrival`` at submit,
    ``started``/``finished`` around the backend execution (absent for
    coalesced followers, which never execute). The server fills in the
    outcome fields when the future completes.
    """

    seq: int
    statement: str
    tenant: str | None
    arrival: float
    started: float | None = None
    finished: float | None = None
    coalesced: bool = False
    sampled: bool = False
    outcome: str = "ok"
    latency: float = 0.0
    fingerprint: str = ""
    cache_status: str | None = None
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.fingerprint:
            self.fingerprint = statement_fingerprint(self.statement)


def request_tracer(record: RequestRecord) -> Tracer:
    """Serve-plane spans for one request, epoch-aligned to its arrival.

    An executed request yields ``queue_wait`` (admission to dispatch)
    and ``execute`` (backend execution) spans; a coalesced follower —
    which never executed — yields one ``wait_shared`` span covering its
    wait on the leader's future. The tracer's Chrome export is a
    self-contained, loadable trace.
    """
    tracer = Tracer(enabled=True, epoch=record.arrival, default_lane="serve")
    attrs = {
        "seq": record.seq,
        "tenant": record.tenant,
        "statement_fingerprint": record.fingerprint,
        "outcome": record.outcome,
        "cache": record.cache_status,
    }
    if record.started is not None and record.finished is not None:
        dispatch = record.started - record.arrival
        tracer.add_span("queue_wait", 0.0, dispatch, lane="serve", **attrs)
        tracer.add_span(
            "execute",
            dispatch,
            record.finished - record.arrival,
            lane="serve",
            **{**attrs, **record.meta},
        )
    else:
        tracer.add_span(
            "wait_shared", 0.0, record.latency, lane="serve", **attrs
        )
    return tracer


class _BoundedCaptureDir:
    """Retention helper: keeps at most ``limit`` capture groups on disk.

    A group is the set of files one capture wrote (trace + summary);
    when a new group would exceed the limit, the oldest group's files
    are deleted. Only files this process wrote are ever touched.
    """

    def __init__(self, directory: str, limit: int):
        self.directory = str(directory)
        self.limit = int(limit)
        self._groups: deque[list[str]] = deque()
        os.makedirs(self.directory, exist_ok=True)

    def admit(self, paths: list[str]) -> None:
        self._groups.append(list(paths))
        while len(self._groups) > self.limit:
            for path in self._groups.popleft():
                try:
                    os.remove(path)
                except OSError:
                    pass


class TraceSampler:
    """Head-based 1-in-N request tracing with bounded retention.

    ``sample=N`` samples every Nth executed request (1 = every request,
    0 = off). Sampled traces are kept as Chrome trace objects in an
    in-memory ring of ``limit`` entries; with a ``capture_dir`` each is
    also written to ``trace-<seq>-<fingerprint>.trace.json``, oldest
    files pruned past the same limit.
    """

    def __init__(
        self,
        sample: int,
        capture_dir: str | None = None,
        limit: int = 16,
    ):
        if sample < 0:
            raise ValueError(f"trace_sample must be >= 0, got {sample}")
        if limit < 1:
            raise ValueError(f"retention limit must be positive, got {limit}")
        self.sample = int(sample)
        self.limit = int(limit)
        self.traces: deque[tuple[int, dict]] = deque(maxlen=self.limit)
        self.sampled = 0
        self._dir = (
            _BoundedCaptureDir(capture_dir, limit)
            if capture_dir is not None
            else None
        )
        self._lock = threading.Lock()

    def should_sample(self, seq: int) -> bool:
        return self.sample > 0 and seq % self.sample == 0

    def record(self, record: RequestRecord) -> dict:
        trace = request_tracer(record).chrome_trace()
        with self._lock:
            self.sampled += 1
            self.traces.append((record.seq, trace))
            if self._dir is not None:
                path = os.path.join(
                    self._dir.directory,
                    f"trace-{record.seq:06d}-{record.fingerprint}.trace.json",
                )
                with open(path, "w", encoding="utf-8") as handle:
                    json.dump(trace, handle)
                    handle.write("\n")
                self._dir.admit([path])
        return trace


class SlowQueryCapture:
    """Dump trace + explain-analyze evidence for over-threshold requests.

    Any request whose latency exceeds ``threshold_seconds`` writes a
    capture group into ``capture_dir``:

    - ``slow-<seq>-<fingerprint>.trace.json`` — the request's
      serve-plane Chrome trace (queue wait vs execution), loadable in
      Perfetto;
    - ``slow-<seq>-<fingerprint>.explain.txt`` — the request record
      plus, when an ``explain`` callable was provided, a fresh
      explain-analyze of the offending statement (per-node Eq 5-8
      predicted vs observed).

    The explain re-executes the query, so captures serialise on one
    lock and a request arriving while another capture's explain is
    running records the trace but skips the re-execution — slow-query
    forensics must never amplify an overload. Retention keeps the most
    recent ``limit`` capture groups.
    """

    def __init__(
        self,
        threshold_seconds: float,
        capture_dir: str,
        limit: int = 8,
        explain=None,
    ):
        if threshold_seconds < 0:
            raise ValueError(
                f"slow-query threshold must be >= 0, got {threshold_seconds}"
            )
        self.threshold_seconds = float(threshold_seconds)
        self.captures = 0
        self.explains = 0
        self._explain = explain
        self._dir = _BoundedCaptureDir(capture_dir, limit)
        self._lock = threading.Lock()
        self._explain_lock = threading.Lock()

    @property
    def directory(self) -> str:
        return self._dir.directory

    def consider(self, record: RequestRecord, options: dict | None = None):
        """Capture the request if it was slow; returns the trace path."""
        if record.latency <= self.threshold_seconds:
            return None
        stem = f"slow-{record.seq:06d}-{record.fingerprint}"
        trace_path = os.path.join(self._dir.directory, f"{stem}.trace.json")
        explain_path = os.path.join(self._dir.directory, f"{stem}.explain.txt")
        trace = request_tracer(record).chrome_trace()
        summary = self._explain_summary(record, options)
        with self._lock:
            with open(trace_path, "w", encoding="utf-8") as handle:
                json.dump(trace, handle)
                handle.write("\n")
            with open(explain_path, "w", encoding="utf-8") as handle:
                handle.write(summary)
            self._dir.admit([trace_path, explain_path])
            self.captures += 1
        return trace_path

    def _explain_summary(
        self, record: RequestRecord, options: dict | None
    ) -> str:
        lines = [
            f"slow query capture: seq={record.seq} "
            f"fingerprint={record.fingerprint}",
            f"tenant:    {record.tenant}",
            f"statement: {record.statement}",
            f"latency:   {record.latency:.6f}s "
            f"(threshold {self.threshold_seconds:.6f}s)",
            f"outcome:   {record.outcome}  cache={record.cache_status}  "
            f"coalesced={record.coalesced}",
        ]
        if record.meta:
            lines.append(
                "meta:      "
                + " ".join(
                    f"{key}={record.meta[key]}" for key in sorted(record.meta)
                )
            )
        if self._explain is None:
            lines.append("(no explain backend configured)")
            return "\n".join(lines) + "\n"
        if not self._explain_lock.acquire(blocking=False):
            lines.append(
                "(explain-analyze skipped: another capture in progress)"
            )
            return "\n".join(lines) + "\n"
        try:
            report = self._explain(record.statement, **(options or {}))
            self.explains += 1
            lines += ["", report.describe()]
        except Exception as exc:  # capture must never fail the request
            lines.append(f"(explain-analyze failed: {exc})")
        finally:
            self._explain_lock.release()
        return "\n".join(lines) + "\n"


# ------------------------------------------------------------ HTTP monitor


def _json_default(value):
    try:
        return float(value)
    except (TypeError, ValueError):
        return str(value)


class MonitorServer:
    """A background HTTP thread exposing one JoinServer's telemetry.

    Binds ``host:port`` (port 0 picks an ephemeral port — the resolved
    one is ``monitor.port``) and answers ``/metrics``, ``/healthz``,
    and ``/statz`` until :meth:`close`. Requests are handled on their
    own threads (``ThreadingHTTPServer``), so a slow scraper never
    blocks a health check.
    """

    def __init__(
        self,
        server,
        host: str = "127.0.0.1",
        port: int = 0,
        namespace: str = "repro",
        max_series: int = 64,
        label_rules: dict[str, str] | None = None,
    ):
        self.server = server
        self.namespace = namespace
        self.max_series = max_series
        self.label_rules = label_rules
        monitor = self

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, *args) -> None:  # silence stderr
                return

            def _send(
                self, status: int, content_type: str, body: bytes
            ) -> None:
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def do_GET(self) -> None:
                try:
                    path = self.path.split("?", 1)[0]
                    if path == "/metrics":
                        monitor._count_scrape("metrics")
                        self._send(
                            200,
                            "text/plain; version=0.0.4; charset=utf-8",
                            monitor.render_metrics().encode("utf-8"),
                        )
                    elif path == "/healthz":
                        monitor._count_scrape("healthz")
                        payload = monitor.health()
                        self._send(
                            200 if payload["status"] == "ok" else 503,
                            "application/json",
                            json.dumps(payload).encode("utf-8"),
                        )
                    elif path == "/statz":
                        monitor._count_scrape("statz")
                        self._send(
                            200,
                            "application/json",
                            json.dumps(
                                monitor.statz(),
                                sort_keys=True,
                                default=_json_default,
                            ).encode("utf-8"),
                        )
                    else:
                        self._send(
                            404, "text/plain", b"unknown endpoint\n"
                        )
                except BrokenPipeError:  # scraper went away mid-response
                    pass

        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self._httpd.daemon_threads = True
        self.host, self.port = self._httpd.server_address[:2]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="join-serve-monitor",
            daemon=True,
        )
        self._thread.start()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def _count_scrape(self, endpoint: str) -> None:
        self.server.metrics.counter(f"monitor_scrapes_{endpoint}").inc()

    def render_metrics(self) -> str:
        return render_prometheus(
            self.server.metrics,
            namespace=self.namespace,
            label_rules=self.label_rules,
            max_series=self.max_series,
        )

    def health(self) -> dict:
        closed = bool(getattr(self.server, "closed", False))
        return {
            "status": "closing" if closed else "ok",
            "in_flight": int(getattr(self.server, "in_flight", 0)),
        }

    def statz(self) -> dict:
        return {
            **self.server.stats(),
            "metrics": self.server.metrics.snapshot(),
        }

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5.0)

    def __enter__(self) -> "MonitorServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def scrape(base_url: str, path: str = "/metrics", timeout: float = 5.0) -> str:
    """GET one monitor endpoint; returns the response body as text."""
    url = base_url.rstrip("/") + path
    if not url.startswith("http"):
        url = "http://" + url
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.read().decode("utf-8")


def scrape_statz(base_url: str, timeout: float = 5.0) -> dict:
    """GET and decode ``/statz``."""
    return json.loads(scrape(base_url, "/statz", timeout=timeout))


#: Wall-clock timestamp source for query-log records; module-level so
#: tests can monkeypatch it.
wall_clock = time.time


__all__ = [
    "MonitorServer",
    "RequestRecord",
    "SlowQueryCapture",
    "TraceSampler",
    "request_tracer",
    "scrape",
    "scrape_statz",
    "statement_fingerprint",
]
