"""Content fingerprints for warm-path plan caching.

A cached plan is only reusable while everything the planners consumed is
unchanged: the query itself, the two input arrays' data and schemas, the
cluster shape, and every planner-relevant executor option. The
fingerprint canonicalises all of it into one string and hashes it, so a
:class:`repro.serve.cache.PlanCache` key *is* the validity condition —
any data load, rebalance, restore, or DDL bumps an array's version token
and the stale entry simply stops matching.

Components:

- **canonical query text** — rendered from the *parsed*
  :class:`repro.query.aql.JoinQuery`, so whitespace, keyword case, and
  ``WHERE``/``ON`` spelling differences collapse to one key. Predicate
  and select-list order are preserved (they shape the output schema).
- **per-array token** — ``name#uid.version.epoch@schema-literal``: the
  catalog entry's unique id (fresh per CREATE, so drop/recreate never
  collides with a cached plan for the old incarnation), its data
  version (bumped by every load/rebalance/restore), the storage-level
  mutation epoch (a defence-in-depth counter summed over the nodes'
  local stores, catching writes that bypass the catalog), and the
  schema literal.
- **cluster shape** — node count plus network parameters (they feed the
  shuffle schedule and the cost model's bandwidth).
- **options** — planner name, pinned join algorithm, and every executor
  knob the prepare pipeline reads (bucket count, selectivity hint,
  shuffle policy, cost/simulation parameters, ...).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.query.aql import JoinQuery, MultiJoinQuery


@dataclass(frozen=True)
class Fingerprint:
    """A cache key plus the canonical text it hashes (for debugging)."""

    key: str
    text: str

    @property
    def short(self) -> str:
        """First 12 hex digits — enough to eyeball in reports and logs."""
        return self.key[:12]


def canonical_query(query: JoinQuery | MultiJoinQuery) -> str:
    """Render a parsed join query into one canonical string.

    Two textually different statements that parse to the same query
    (whitespace, keyword case, ``ON`` vs ``WHERE``) render identically;
    anything that changes the output (select list, INTO target,
    predicate order, pushdown filters) changes the rendering. Multi-join
    queries render their FROM list in statement order (``FROM A, B, C``)
    — the ordering DP sees the same inputs either way, but the statement
    order shapes the default output name.
    """
    if query.select_star or not query.select:
        select = "*"
    else:
        select = ", ".join(str(item) for item in query.select)
    parts = [f"SELECT {select}"]
    if query.into_schema is not None:
        parts.append(f"INTO {query.into_schema.to_literal()}")
    elif query.into_name is not None:
        parts.append(f"INTO {query.into_name}")
    if isinstance(query, MultiJoinQuery):
        parts.append(f"FROM {', '.join(query.arrays)}")
    else:
        parts.append(f"FROM {query.left} JOIN {query.right}")
    if query.predicates:
        rendered = " AND ".join(
            f"{pred.left.qualified()} = {pred.right.qualified()}"
            for pred in query.predicates
        )
        parts.append(f"ON {rendered}")
    if query.filters:
        rendered = " AND ".join(
            f"[{name}: {expr.render()}]"
            for name, expr in sorted(query.filters.items())
        )
        parts.append(f"FILTER {rendered}")
    return " ".join(parts)


def array_token(cluster, name: str) -> str:
    """One array's validity token: identity + data version + schema."""
    entry = cluster.catalog.entry(name)
    epoch = cluster.storage_epoch(name)
    return (
        f"{name}#{entry.uid}.{entry.version}.{epoch}"
        f"@{entry.schema.to_literal()}"
    )


def plan_fingerprint(
    query: JoinQuery | MultiJoinQuery,
    cluster,
    planner: str,
    join_algo: str | None,
    options: dict,
) -> Fingerprint:
    """Fingerprint one (query, data, cluster, options) configuration.

    Binary joins embed ``left=``/``right=`` array tokens; multi-join
    pipelines embed one ``array{i}=`` token per base array in statement
    order, so any base array's uid/version/epoch bump invalidates the
    whole pipeline entry.
    """
    if isinstance(query, MultiJoinQuery):
        array_sections = [
            f"array{i}={array_token(cluster, name)}"
            for i, name in enumerate(query.arrays)
        ]
    else:
        array_sections = [
            f"left={array_token(cluster, query.left)}",
            f"right={array_token(cluster, query.right)}",
        ]
    sections = [
        f"query={canonical_query(query)}",
        *array_sections,
        f"cluster=k{cluster.n_nodes}/{cluster.network!r}",
        f"planner={planner}",
        f"join_algo={join_algo}",
    ]
    sections.extend(
        f"{name}={value!r}" for name, value in sorted(options.items())
    )
    text = "\n".join(sections)
    key = hashlib.sha256(text.encode("utf-8")).hexdigest()
    return Fingerprint(key=key, text=text)


__all__ = ["Fingerprint", "canonical_query", "array_token", "plan_fingerprint"]
