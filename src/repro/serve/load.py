"""Closed- and open-loop load generation against a :class:`JoinServer`.

The Locust-style driver for the serving front end: N concurrent clients
drive a query mix (a handful of join statements over one workload's
arrays — first touches are cold plans, repeats are warm) with
Zipf-weighted tenant selection, so popular tenants hammer their cache
namespace while the tail stays cold — exactly the skew the shared LRU
budget has to absorb.

Two arrival disciplines:

- **closed loop** (:func:`run_closed_loop`): each client issues its next
  query the moment the previous one returns. Throughput self-paces to
  the server's capacity; latency measures service time.
- **open loop** (:func:`run_open_loop`): queries arrive on a fixed
  schedule (``rate_qps``) regardless of completions, the production
  model where traffic does not wait for you. Latency is measured from
  the *scheduled* arrival, so queue wait counts; when arrivals outrun
  capacity the server's overload policy (shed) is what keeps the queue
  bounded.

Every request's latency lands in the backend registry's
``serve_latency_seconds`` histogram; a :class:`LoadReport` condenses one
run into sustained q/s, p50/p95/p99/max latency (quantiles from the
same fixed-bucket histogram instrument the registry uses), admission
counters, per-tenant cache hit rates, and a byte-identity verdict of
every distinct served result against serial references.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field as dataclass_field

import numpy as np

from repro.errors import Overloaded
from repro.obs.metrics import LATENCY_BUCKETS, Histogram
from repro.serve.server import JoinServer, tenant_cache_stats
from repro.workloads.synthetic import zipf_weights

#: Admission/serving counters whose per-run deltas a LoadReport records.
_SERVE_COUNTERS = (
    "serve_queries_admitted",
    "serve_queries_completed",
    "serve_queries_failed",
    "serve_queries_shed",
    "serve_queries_coalesced",
)


def result_bytes(result) -> bytes:
    """Canonical byte representation of a join output: sorted cells.

    Parallelism, coalescing, and cache warmth may reorder rows; they
    must never change the cells, so identity is judged on the sorted
    structured representation.
    """
    packed = result.cells.to_structured(sorted(result.cells.attrs))
    return np.sort(packed).tobytes()


@dataclass
class QueryMix:
    """The statements one load run draws from, plus popularity skew.

    ``tenants`` are drawn with Zipf(``tenant_alpha``) weights
    (permutation seeded by ``seed``), so tenant popularity is skewed
    but reproducible. ``statement_alpha`` does the same for the
    statements — 0.0 keeps them uniform; positive values model the
    dashboard-style repetition real serving traffic has, where a few
    hot queries dominate (and where the server's single-flight
    coalescing earns its keep).
    """

    statements: list[str]
    tenants: list[str]
    tenant_alpha: float = 1.2
    statement_alpha: float = 0.0
    seed: int = 0
    #: executor options forwarded with every request (planner etc.)
    options: dict = dataclass_field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.statements:
            raise ValueError("a query mix needs at least one statement")
        if not self.tenants:
            raise ValueError("a query mix needs at least one tenant")
        self.tenant_weights = zipf_weights(
            len(self.tenants), self.tenant_alpha, rng=self.seed
        )
        if self.statement_alpha > 0:
            self.statement_weights = zipf_weights(
                len(self.statements), self.statement_alpha, rng=self.seed + 1
            )
        else:
            self.statement_weights = np.full(
                len(self.statements), 1.0 / len(self.statements)
            )

    def draw(self, rng: np.random.Generator) -> tuple[str, str]:
        """One (statement, tenant) request drawn from the mix."""
        statement = self.statements[
            int(rng.choice(len(self.statements), p=self.statement_weights))
        ]
        tenant = self.tenants[
            int(rng.choice(len(self.tenants), p=self.tenant_weights))
        ]
        return statement, tenant


@dataclass
class LoadReport:
    """One load run's results: throughput, latency tail, verification."""

    mode: str
    clients: int
    requests: int
    completed: int
    shed: int
    errors: int
    coalesced: int
    duration_seconds: float
    qps: float
    latency_p50: float
    latency_p95: float
    latency_p99: float
    latency_max: float
    latency_mean: float
    outputs_identical: bool
    distinct_results_verified: int
    per_tenant: dict
    counters: dict
    #: /metrics + /statz scrapes performed while clients were running
    #: (0 when the run had no monitor attached).
    scrapes: int = 0
    #: Exposition-grammar or scrape-transport problems seen under load;
    #: empty means every mid-run scrape parsed cleanly.
    scrape_errors: list = dataclass_field(default_factory=list)

    def row(self) -> dict:
        """Flat JSON-ready dict (the BENCH artifact row shape)."""
        return {
            "mode": self.mode,
            "clients": self.clients,
            "requests": self.requests,
            "completed": self.completed,
            "shed": self.shed,
            "errors": self.errors,
            "coalesced": self.coalesced,
            "duration_seconds": self.duration_seconds,
            "qps": self.qps,
            "latency_p50": self.latency_p50,
            "latency_p95": self.latency_p95,
            "latency_p99": self.latency_p99,
            "latency_max": self.latency_max,
            "latency_mean": self.latency_mean,
            "outputs_identical": self.outputs_identical,
            "distinct_results_verified": self.distinct_results_verified,
        }


def serial_references(backend, statements, **options) -> dict[str, bytes]:
    """Byte-identity oracles: each statement executed once, serially.

    Runs outside any server (and outside the timed window) with the
    cache bypassed, so the references are the plain single-caller
    executions every served result must match.
    """
    return {
        statement: result_bytes(
            backend.execute(statement, use_cache=False, **options)
        )
        for statement in statements
    }


def _verify(collected, references) -> tuple[bool, int]:
    """Byte-check every *distinct* served result (coalesced requests
    share one result object; it only needs checking once)."""
    seen: set[int] = set()
    identical = True
    for statement, result in collected:
        if id(result) in seen:
            continue
        seen.add(id(result))
        identical = identical and (
            result_bytes(result) == references[statement]
        )
    return identical, len(seen)


def _counter_snapshot(metrics) -> dict:
    counters = metrics.snapshot()["counters"]
    return {name: counters.get(name, 0) for name in _SERVE_COUNTERS}


def _build_report(
    mode: str,
    clients: int,
    latencies: list[float],
    shed: int,
    errors: int,
    duration: float,
    collected,
    references,
    metrics,
    before: dict,
) -> LoadReport:
    histogram = Histogram(LATENCY_BUCKETS)
    histogram.observe_many(latencies)
    after = _counter_snapshot(metrics)
    deltas = {name: after[name] - before[name] for name in _SERVE_COUNTERS}
    completed = len(latencies)
    if references is not None:
        identical, verified = _verify(collected, references)
    else:
        identical, verified = True, 0
    return LoadReport(
        mode=mode,
        clients=clients,
        requests=completed + shed + errors,
        completed=completed,
        shed=shed,
        errors=errors,
        coalesced=deltas["serve_queries_coalesced"],
        duration_seconds=duration,
        qps=completed / duration if duration > 0 else 0.0,
        latency_p50=histogram.quantile(0.50),
        latency_p95=histogram.quantile(0.95),
        latency_p99=histogram.quantile(0.99),
        latency_max=max(latencies) if latencies else 0.0,
        latency_mean=histogram.mean,
        outputs_identical=identical,
        distinct_results_verified=verified,
        per_tenant=tenant_cache_stats(metrics.snapshot()["counters"]),
        counters=deltas,
    )


class _LoadScraper:
    """Polls a monitor's /metrics and /statz while a load run is hot.

    The point is scrape-*under*-load: the exposition must stay
    grammatically valid and /statz decodable while every instrument it
    reads is being hammered concurrently. Grammar violations and
    transport failures accumulate in ``errors``; the load report
    carries them out.
    """

    def __init__(self, monitor, interval: float = 0.05):
        from repro.obs.telemetry import validate_exposition
        from repro.serve.monitor import scrape, scrape_statz

        self._validate = validate_exposition
        self._scrape = scrape
        self._scrape_statz = scrape_statz
        self.monitor = monitor
        self.interval = float(interval)
        self.scrapes = 0
        self.errors: list[str] = []
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._loop, name="load-scraper", daemon=True
        )

    def start(self) -> None:
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=10)

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            self._once()

    def _once(self) -> None:
        try:
            text = self._scrape(self.monitor.url)
            self.errors.extend(self._validate(text))
            statz = self._scrape_statz(self.monitor.url)
            if "window" not in statz:
                self.errors.append("/statz is missing the rolling window")
            self.scrapes += 1
        except Exception as exc:  # transport failure is a finding, not a crash
            self.errors.append(f"scrape failed: {exc}")


def run_closed_loop(
    server: JoinServer,
    mix: QueryMix,
    clients: int,
    requests_per_client: int,
    references: dict[str, bytes] | None = None,
    seed: int = 0,
    monitor=None,
    scrape_interval: float = 0.05,
) -> LoadReport:
    """N closed-loop clients, each issuing its next query on completion.

    Pass a running :class:`repro.serve.monitor.MonitorServer` as
    ``monitor`` to scrape ``/metrics`` and ``/statz`` every
    ``scrape_interval`` seconds *while the clients run*; the report's
    ``scrapes``/``scrape_errors`` then certify the exposition stayed
    valid under concurrent traffic.
    """
    if clients < 1 or requests_per_client < 1:
        raise ValueError("need at least one client and one request each")
    before = _counter_snapshot(server.metrics)
    barrier = threading.Barrier(clients + 1)
    latencies: list[list[float]] = [[] for _ in range(clients)]
    collected: list[list] = [[] for _ in range(clients)]
    shed = [0] * clients
    errors = [0] * clients

    def client_loop(index: int) -> None:
        rng = np.random.default_rng((mix.seed, seed, index))
        barrier.wait()
        for _ in range(requests_per_client):
            statement, tenant = mix.draw(rng)
            started = time.perf_counter()
            try:
                result = server.execute(
                    statement, tenant=tenant, **mix.options
                )
            except Overloaded:
                shed[index] += 1
                continue
            except Exception:
                errors[index] += 1
                continue
            latencies[index].append(time.perf_counter() - started)
            if references is not None:
                collected[index].append((statement, result))

    threads = [
        threading.Thread(target=client_loop, args=(index,), daemon=True)
        for index in range(clients)
    ]
    scraper = (
        _LoadScraper(monitor, scrape_interval) if monitor is not None else None
    )
    for thread in threads:
        thread.start()
    if scraper is not None:
        scraper.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    duration = time.perf_counter() - started
    if scraper is not None:
        # One final scrape after the last completion so the run always
        # certifies at least one full exposition, however short it was.
        scraper._once()
        scraper.stop()
    report = _build_report(
        "closed", clients,
        [sample for chunk in latencies for sample in chunk],
        sum(shed), sum(errors), duration,
        [pair for chunk in collected for pair in chunk],
        references, server.metrics, before,
    )
    if scraper is not None:
        report.scrapes = scraper.scrapes
        report.scrape_errors = scraper.errors
    return report


def run_open_loop(
    server: JoinServer,
    mix: QueryMix,
    rate_qps: float,
    total_requests: int,
    references: dict[str, bytes] | None = None,
    seed: int = 0,
) -> LoadReport:
    """Fixed-rate arrivals; latency counts from the *scheduled* arrival.

    A dispatcher thread submits on schedule (never waiting for
    completions); when the scheduled moment has already passed — e.g.
    a ``"block"`` server exerting back-pressure — the submission goes
    out immediately but the latency clock still starts at the schedule,
    so queueing delay is charged to the request, the way an external
    client would experience it. Run open-loop servers with
    ``overload="shed"`` to see admission control actually fire.
    """
    if rate_qps <= 0:
        raise ValueError(f"rate_qps must be positive, got {rate_qps}")
    if total_requests < 1:
        raise ValueError("need at least one request")
    before = _counter_snapshot(server.metrics)
    rng = np.random.default_rng((mix.seed, seed))
    latencies: list[float] = []
    collected: list = []
    record_lock = threading.Lock()
    pending = []
    shed = 0
    errors = 0
    start = time.perf_counter()
    for index in range(total_requests):
        scheduled = start + index / rate_qps
        delay = scheduled - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        statement, tenant = mix.draw(rng)
        try:
            future = server.submit(statement, tenant=tenant, **mix.options)
        except Overloaded:
            shed += 1
            continue
        except Exception:
            errors += 1
            continue

        def record(done, scheduled=scheduled, statement=statement):
            # Failures are counted once, in the drain loop below.
            if done.cancelled() or done.exception() is not None:
                return
            finished = time.perf_counter()
            with record_lock:
                latencies.append(finished - scheduled)
                if references is not None:
                    collected.append((statement, done.result()))

        future.add_done_callback(record)
        pending.append(future)
    for future in pending:
        try:
            future.result()
        except Exception:
            errors += 1
    duration = time.perf_counter() - start
    return _build_report(
        "open", 1, latencies, shed, errors, duration,
        collected, references, server.metrics, before,
    )


__all__ = [
    "QueryMix",
    "LoadReport",
    "run_closed_loop",
    "run_open_loop",
    "serial_references",
    "result_bytes",
]
