"""Warm-path query serving: fingerprinted plan/statistics caching.

See :mod:`repro.serve.cache` for the bounded-LRU :class:`PlanCache` and
:mod:`repro.serve.fingerprint` for the content fingerprints that key it.
"""

from repro.serve.cache import CachedPlan, PlanCache
from repro.serve.fingerprint import (
    Fingerprint,
    array_token,
    canonical_query,
    plan_fingerprint,
)

__all__ = [
    "CachedPlan",
    "PlanCache",
    "Fingerprint",
    "array_token",
    "canonical_query",
    "plan_fingerprint",
]
