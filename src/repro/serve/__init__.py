"""Warm-path query serving: plan caching and the concurrent front end.

See :mod:`repro.serve.cache` for the bounded-LRU :class:`PlanCache`,
:mod:`repro.serve.fingerprint` for the content fingerprints that key it,
:mod:`repro.serve.server` for the admission-controlled
:class:`JoinServer` front end, :mod:`repro.serve.load` for the
closed-/open-loop load generator that drives it, and
:mod:`repro.serve.monitor` for the telemetry plane (the HTTP
``/metrics``/``/healthz``/``/statz`` monitor, trace sampling, and
slow-query capture).
"""

from repro.serve.cache import CachedPipeline, CachedPlan, CachedStage, PlanCache
from repro.serve.fingerprint import (
    Fingerprint,
    array_token,
    canonical_query,
    plan_fingerprint,
)
from repro.serve.load import (
    LoadReport,
    QueryMix,
    result_bytes,
    run_closed_loop,
    run_open_loop,
    serial_references,
)
from repro.serve.monitor import (
    MonitorServer,
    SlowQueryCapture,
    TraceSampler,
    scrape,
    scrape_statz,
)
from repro.serve.server import JoinServer, tenant_cache_stats

__all__ = [
    "MonitorServer",
    "SlowQueryCapture",
    "TraceSampler",
    "scrape",
    "scrape_statz",
    "CachedPlan",
    "CachedStage",
    "CachedPipeline",
    "PlanCache",
    "Fingerprint",
    "array_token",
    "canonical_query",
    "plan_fingerprint",
    "JoinServer",
    "tenant_cache_stats",
    "QueryMix",
    "LoadReport",
    "run_closed_loop",
    "run_open_loop",
    "serial_references",
    "result_bytes",
]
