"""Join units, slice functions, and slice statistics (Section 3.1).

A *join unit* is a non-overlapping set of cells responsible for a fraction
of the predicate space: cells that must be compared for possible matches.
Units are either chunks of J's grid (range partitioning by the join
dimensions) or hash buckets over the composite key. A *slice* is the part
of one join unit stored on one node in one source array — the unit of
network transfer. Each node applies the *slice function* to its local
cells in parallel and reports slice sizes to the coordinator; those sizes
form the :class:`SliceStats` matrices that physical planners consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.adm.cells import CellSet, float_key_bits
from repro.adm.schema import ArraySchema
from repro.core.join_schema import JoinSchema
from repro.errors import PlanningError


@dataclass
class SliceStats:
    """Per-unit, per-node slice sizes for both sides of the join.

    ``s_left[i, j]`` is the number of cells of the left array belonging to
    join unit ``i`` that are stored on node ``j`` (the paper's s_{i,j},
    kept per side so hash-join build/probe costs can be modelled).
    """

    s_left: np.ndarray
    s_right: np.ndarray
    #: Memoised ``s_left + s_right``: the statistics are immutable once
    #: built, and the executor's simulated-timing loop plus every
    #: planner read the combined matrix far more often than it changes
    #: (never).
    _s_total_cache: "np.ndarray | None" = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        self.s_left = np.asarray(self.s_left, dtype=np.int64)
        self.s_right = np.asarray(self.s_right, dtype=np.int64)
        if self.s_left.shape != self.s_right.shape:
            raise PlanningError(
                f"slice matrices disagree: {self.s_left.shape} vs "
                f"{self.s_right.shape}"
            )
        if self.s_left.ndim != 2:
            raise PlanningError("slice statistics must be (n_units, n_nodes)")

    @property
    def n_units(self) -> int:
        return self.s_left.shape[0]

    @property
    def n_nodes(self) -> int:
        return self.s_left.shape[1]

    @property
    def s_total(self) -> np.ndarray:
        """Combined slice sizes, both sides: (n_units, n_nodes)."""
        if self._s_total_cache is None:
            self._s_total_cache = self.s_left + self.s_right
        return self._s_total_cache

    @property
    def unit_totals(self) -> np.ndarray:
        """S_i: total cells of each join unit across all nodes and sides."""
        return self.s_total.sum(axis=1)

    @property
    def left_unit_totals(self) -> np.ndarray:
        return self.s_left.sum(axis=1)

    @property
    def right_unit_totals(self) -> np.ndarray:
        return self.s_right.sum(axis=1)

    @property
    def total_cells(self) -> int:
        return int(self.unit_totals.sum())

    def center_of_gravity(self) -> np.ndarray:
        """The node holding the largest share of each unit (Equation 9).

        Ties rotate deterministically by unit id rather than collapsing
        onto the lowest node id: with near-identical chunk sizes
        (adversarial skew) or empty units, an argmax convention would
        pile every tied unit onto node 0.
        """
        s_total = self.s_total
        max_values = s_total.max(axis=1, keepdims=True)
        tied = s_total == max_values
        units = np.arange(self.n_units)
        # Preference 0 goes to node (unit mod k), 1 to the next node, ...
        preference = (np.arange(self.n_nodes)[None, :] - units[:, None]) % self.n_nodes
        score = np.where(tied, preference, self.n_nodes)
        return np.argmin(score, axis=1).astype(np.int64)

    def merged(self, groups: np.ndarray, n_groups: int) -> "SliceStats":
        """Aggregate units into coarser groups (for the Coarse ILP solver)."""
        groups = np.asarray(groups, dtype=np.int64)
        if groups.shape != (self.n_units,):
            raise PlanningError("group labels must cover every join unit")
        merged_left = np.zeros((n_groups, self.n_nodes), dtype=np.int64)
        merged_right = np.zeros((n_groups, self.n_nodes), dtype=np.int64)
        np.add.at(merged_left, groups, self.s_left)
        np.add.at(merged_right, groups, self.s_right)
        return SliceStats(merged_left, merged_right)


# ----------------------------------------------------------- slice functions


def key_columns(
    schema: JoinSchema,
    side: str,
    cells: CellSet,
    source_schema: ArraySchema,
) -> list[np.ndarray]:
    """Extract the predicate key columns for one side, type-normalised.

    When either side of a predicate pair stores the key as a float
    attribute, both sides are promoted to float64 so equal values compare
    and hash identically across the join.
    """
    columns: list[np.ndarray] = []
    for jfield in schema.fields:
        field_name = jfield.left_field if side == "left" else jfield.right_field
        if source_schema.has_dim(field_name):
            axis = source_schema.dim_names.index(field_name)
            column = cells.dim_column(axis)
        else:
            column = cells.column(field_name)
        columns.append(column)
    # Promote pairwise: a column is float if either side's field is float.
    promoted = []
    for jfield, column in zip(schema.fields, columns):
        if _field_is_float(schema, jfield):
            column = column.astype(np.float64)
        else:
            column = column.astype(np.int64)
        promoted.append(column)
    return promoted


def _field_is_float(schema: JoinSchema, jfield) -> bool:
    for side_schema, name in (
        (schema.left_schema, jfield.left_field),
        (schema.right_schema, jfield.right_field),
    ):
        if side_schema.has_attr(name) and side_schema.attr(name).type_name == "float64":
            return True
    return False


def chunk_unit_ids(
    schema: JoinSchema,
    side: str,
    cells: CellSet,
    source_schema: ArraySchema,
    columns: list[np.ndarray] | None = None,
) -> np.ndarray:
    """Slice function for chunk-grained join units: J's chunk grid.

    Key values outside J's dimension ranges are clamped into the border
    chunks — they can still only match cells clamped to the same border.
    ``columns`` may pass precomputed :func:`key_columns` so callers that
    already extracted them (the slice mapping) avoid a second pass.
    """
    if not schema.chunkable:
        raise PlanningError("join schema has no dimensions; use hash units")
    if columns is None:
        columns = key_columns(schema, side, cells, source_schema)
    dim_fields = schema.dim_fields
    if len(dim_fields) != len(schema.fields):
        raise PlanningError(
            "chunk-grained units require every predicate field to be a "
            "dimension of J"
        )
    flat = np.zeros(len(cells), dtype=np.int64)
    for jfield, column in zip(schema.fields, columns):
        dim = jfield.dim
        clamped = np.clip(column.astype(np.int64), dim.start, dim.end)
        flat = flat * dim.chunk_count + dim.chunk_index_of(clamped)
    return flat


_HASH_MULT = np.uint64(0xBF58476D1CE4E5B9)
_HASH_SEED = np.uint64(0x9E3779B97F4A7C15)


def _mix(values: np.ndarray) -> np.ndarray:
    """SplitMix64-style avalanche over a uint64 vector."""
    with np.errstate(over="ignore"):
        h = values * _HASH_MULT
        h ^= h >> np.uint64(31)
        h *= np.uint64(0x94D049BB133111EB)
        h ^= h >> np.uint64(29)
    return h


def hash_unit_ids(
    schema: JoinSchema,
    side: str,
    cells: CellSet,
    source_schema: ArraySchema,
    n_buckets: int,
    columns: list[np.ndarray] | None = None,
    packed: np.ndarray | None = None,
) -> np.ndarray:
    """Slice function for hash-bucketed join units.

    Hashes the full composite predicate key, so every cell pair that can
    match lands in the same bucket on both sides. ``columns`` may pass
    precomputed :func:`key_columns` to skip re-extraction; ``packed``
    may pass the codec's packed ``uint64`` keys (see
    :mod:`repro.adm.keycodec`), collapsing the per-field mixing loop to
    one avalanche over the already-exact composite value.
    """
    if n_buckets <= 0:
        raise PlanningError(f"bucket count must be positive, got {n_buckets}")
    if packed is not None:
        combined = _mix(np.ascontiguousarray(packed, dtype=np.uint64))
        return (combined % np.uint64(n_buckets)).astype(np.int64)
    if columns is None:
        columns = key_columns(schema, side, cells, source_schema)
    combined = np.full(len(cells), _HASH_SEED, dtype=np.uint64)
    with np.errstate(over="ignore"):
        for column in columns:
            bits = (
                float_key_bits(column).view(np.uint64)
                if column.dtype == np.float64
                else np.ascontiguousarray(column, dtype=np.int64).view(np.uint64)
            )
            combined ^= _mix(bits)
            combined *= _HASH_MULT
    return (combined % np.uint64(n_buckets)).astype(np.int64)


def refine_unit_ids(
    unit_ids: np.ndarray,
    keys: np.ndarray,
    offsets: np.ndarray,
    thresholds: dict[int, np.ndarray],
) -> np.ndarray:
    """Remap unit ids through a plan-time split (Section 5 extension).

    ``offsets[u]`` is the first refined id of original unit ``u``;
    ``thresholds[u]`` holds the sorted packed-key cut points of a split
    unit. A row of unit ``u`` with key ``k`` lands in sub-unit
    ``offsets[u] + #(cuts <= k)`` — ``side="right"`` so every row
    carrying the same key lands in the same sub-unit on both sides,
    which is what keeps split and unsplit outputs byte-identical.
    """
    refined = offsets[unit_ids]
    for unit, cuts in thresholds.items():
        mask = unit_ids == unit
        if np.any(mask):
            refined[mask] += np.searchsorted(cuts, keys[mask], side="right")
    return refined


def unit_ids_for(
    schema: JoinSchema,
    side: str,
    cells: CellSet,
    source_schema: ArraySchema,
    unit_kind: str,
    n_buckets: int | None = None,
    columns: list[np.ndarray] | None = None,
    packed: np.ndarray | None = None,
) -> np.ndarray:
    """Dispatch to the slice function matching the logical plan's units.

    ``packed`` optionally passes codec-packed composite keys; only the
    hash slice function can consume them (chunk units need the raw
    dimension columns, which callers already hold).
    """
    if unit_kind == "chunk":
        return chunk_unit_ids(schema, side, cells, source_schema, columns=columns)
    if unit_kind == "bucket":
        if n_buckets is None:
            raise PlanningError("bucket units require an explicit bucket count")
        return hash_unit_ids(
            schema, side, cells, source_schema, n_buckets, columns=columns,
            packed=packed,
        )
    raise PlanningError(f"unknown join unit kind {unit_kind!r}")
