"""Operator cost formulas for logical join optimization (Table 1).

Costs are abstract per-cell work units; the planner only needs them to
*rank* plans correctly (Figure 5 validates that the ranking correlates
with wall time as a power law). Each formula takes the operand's cell
count ``n`` and, where a sort is involved, its chunk count ``c`` — sorting
happens per chunk, so its cost is ``n log(n / c)``.

Extending to a distributed execution over ``k`` nodes divides every term
by ``k`` (Section 4, last paragraph); the *relative* ordering of plans is
unchanged, which is why the logical phase can plan on the single-node
model and leave skew to the physical phase.
"""

from __future__ import annotations

import math


def _sort_term(n_cells: float, n_chunks: float) -> float:
    """Per-chunk sort work: n * log(n / c), guarded for tiny inputs."""
    if n_cells <= 0:
        return 0.0
    per_chunk = max(n_cells / max(n_chunks, 1.0), 2.0)
    return n_cells * math.log(per_chunk)


def cost_scan(n_cells: float) -> float:
    """``scan(α)``: no reorganisation; zero added cost. Ordered chunks."""
    return 0.0


def cost_redim(n_cells: float, n_chunks: float) -> float:
    """``redim(α, J)``: one pass to slice cells into new chunks plus a
    per-chunk sort — ``n + n log(n/c)``. Output: ordered chunks."""
    return n_cells + _sort_term(n_cells, n_chunks)


def cost_rechunk(n_cells: float) -> float:
    """``rechunk(α, J)``: assign cells to J's chunk intervals without
    sorting — ``n``. Output: unordered chunks."""
    return float(n_cells)


def cost_hash(n_cells: float) -> float:
    """``hash(α, P)``: hash every cell into a bucket — ``n``. Output:
    unordered, dimensionless buckets."""
    return float(n_cells)


def cost_sort(n_cells: float, n_chunks: float) -> float:
    """``sort(α)``: per-chunk sort of already-placed cells —
    ``n log(n/c)``. Output: ordered chunks/buckets."""
    return _sort_term(n_cells, n_chunks)


def cost_compare(algorithm: str, n_left: float, n_right: float) -> float:
    """Cell-comparison work for one join algorithm (Section 4).

    Merge and hash joins are linear in their input sizes; the nested loop
    join is polynomial, which is why it never wins (verified analytically
    here and empirically in Figure 5).
    """
    if algorithm in ("merge", "hash"):
        return float(n_left + n_right)
    if algorithm == "nested_loop":
        return float(n_left) * float(n_right)
    raise ValueError(f"unknown join algorithm {algorithm!r}")


def estimate_output_cells(n_left: float, n_right: float, selectivity: float) -> float:
    """The paper's output-cardinality convention: a join with selectivity
    ``s`` produces ``s × (n_α + n_β)`` output cells."""
    if selectivity < 0:
        raise ValueError(f"selectivity must be non-negative, got {selectivity}")
    return selectivity * (n_left + n_right)
