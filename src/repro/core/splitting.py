"""Plan-time unit splitting for skewed joins (SharesSkew-style).

The paper's planners *place* join units but never *resize* them, so one
heavy-hitter unit — a hot hash bucket or a dense chunk — dominates the
Eq 5-8 compare term no matter where it lands. Following SharesSkew and
Metwally's equi-join load balancing, the splitter subdivides any unit
whose predicted compare cost exceeds a threshold multiple of the mean
into K sub-units by cutting the unit's *key range* at sample quantiles
of the combined (left + right) key population. Because the cuts are key
values, both sides partition identically: every matching pair stays
inside one sub-unit and the split plan's output is byte-identical to
the unsplit plan's.

Cut points come from the codec-packed ``uint64`` composite keys, so
sub-units are contiguous ranges of the globally sorted packed-key
column — the single-sort assemblies and the :class:`SharedArena`
unit-bounds tables extend to them with no new machinery. The
structured-key (>64-bit) fallback has no packed column to cut and
declines to split; it stays the byte-exact oracle.

A unit whose weight is one single hot key cannot be subdivided by key
boundaries at all (``np.unique`` collapses every candidate cut). The
splitter declines, and the *run-time* re-split in
:mod:`repro.engine.parallel` — which partitions the larger side's rows
and replicates the smaller side's covering key range — picks up the
slack.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.cost_model import CostParams, unit_compare_costs
from repro.core.slices import SliceStats, refine_unit_ids

#: Units below this many total rows are never split: the per-unit
#: bookkeeping (extra bounds rows, planner variables) would outweigh any
#: balance gain on ranges this small.
MIN_SPLIT_ROWS = 1024


@dataclass
class SplitPlan:
    """The unit-id refinement produced by :func:`plan_unit_split`.

    ``parent[s]`` maps refined unit ``s`` back to its original unit;
    ``offsets[u]`` is the first refined id of original unit ``u`` (the
    refined ids of ``u`` are the contiguous run ``offsets[u] ..
    offsets[u] + count(u)``); ``thresholds`` holds each split unit's
    sorted key cut points.
    """

    parent: np.ndarray
    offsets: np.ndarray
    thresholds: dict[int, np.ndarray] = field(repr=False)
    n_units: int = 0

    @property
    def n_parent_units(self) -> int:
        return len(self.offsets)

    @property
    def units_split(self) -> int:
        return len(self.thresholds)

    @property
    def subunits_created(self) -> int:
        """Total sub-units carved out of the split parents."""
        return sum(len(cuts) + 1 for cuts in self.thresholds.values())

    def remap(self, unit_ids: np.ndarray, keys: np.ndarray) -> np.ndarray:
        return refine_unit_ids(unit_ids, keys, self.offsets, self.thresholds)


def plan_unit_split(
    stats: SliceStats,
    algorithm: str,
    params: CostParams,
    key_chunks: list[tuple[np.ndarray, np.ndarray]],
    threshold: float = 4.0,
    factor: int = 8,
    min_rows: int = MIN_SPLIT_ROWS,
) -> SplitPlan | None:
    """Decide which units to split and where to cut their key ranges.

    ``key_chunks`` is the slice mapping's per-chunk ``(unit_ids,
    packed_keys)`` pairs over *both* sides — the same arrays the
    assemblies are built from, so no extra pass over the data. A unit is
    heavy when its Eq 5-8 compare cost ``C_i`` exceeds ``threshold``
    times the mean over non-empty units and it holds at least
    ``min_rows`` rows. Each heavy unit is cut at the ``factor``-quantile
    positions of its sorted combined key population; duplicate and
    degenerate cuts collapse, so a single-hot-key unit yields no cuts
    and is left whole. Returns ``None`` when nothing splits.
    """
    costs = unit_compare_costs(stats, algorithm, params)
    totals = stats.unit_totals
    active = costs > 0
    if not np.any(active):
        return None
    mean_cost = float(costs[active].mean())
    heavy = np.nonzero(
        (costs > threshold * mean_cost) & (totals >= min_rows)
    )[0]
    if heavy.size == 0:
        return None

    gathered: dict[int, list[np.ndarray]] = {int(u): [] for u in heavy}
    for unit_ids, keys in key_chunks:
        for unit in gathered:
            mask = unit_ids == unit
            if np.any(mask):
                gathered[unit].append(keys[mask])

    thresholds: dict[int, np.ndarray] = {}
    for unit, pieces in gathered.items():
        if not pieces:
            continue
        keys = np.sort(np.concatenate(pieces))
        # Quantile cut candidates over the combined population; a cut at
        # (or below) the minimum key would leave sub-unit 0 empty.
        positions = (np.arange(1, factor) * keys.size) // factor
        cuts = np.unique(keys[positions])
        cuts = cuts[cuts > keys[0]]
        if cuts.size:
            thresholds[unit] = cuts
    if not thresholds:
        return None

    n_parents = stats.n_units
    counts = np.ones(n_parents, dtype=np.int64)
    for unit, cuts in thresholds.items():
        counts[unit] = len(cuts) + 1
    bounds = np.concatenate(([0], np.cumsum(counts)))
    return SplitPlan(
        parent=np.repeat(np.arange(n_parents, dtype=np.int64), counts),
        offsets=bounds[:-1],
        thresholds=thresholds,
        n_units=int(bounds[-1]),
    )
