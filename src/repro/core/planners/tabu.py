"""Tabu search physical planner (Section 5.2, Algorithm 2).

A locally optimal search seeded by the Minimum Bandwidth Heuristic. Each
round it visits every node whose per-node analytical cost exceeds the
cluster mean and tries to move that node's join units, one at a time, to
any other node, accepting a move only if it lowers the *global* plan cost
(Equation 8). The tabu list caches data-to-node assignments that have
ever held — not whole plans — which keeps the search polynomial
(O(n × k) reassignments total), prevents ping-pong loops between
non-bottleneck nodes, and reflects that re-placing a unit where it
already was is unlikely to be profitable.

Implementation note: a what-if evaluation only changes two entries of the
per-node send/recv/compare vectors, so each candidate is scored in O(1)
scalar work against precomputed top-3 maxima instead of rebuilding the
whole cost (the planner evaluates up to n × k candidates).
"""

from __future__ import annotations

import numpy as np

from repro.core.cost_model import AnalyticalCostModel
from repro.core.planners.base import PhysicalPlanner
from repro.core.planners.mbh import MinimumBandwidthPlanner


def _top3(values: np.ndarray) -> list[tuple[float, int]]:
    """The three largest (value, index) pairs, descending."""
    order = np.argsort(values)[::-1][:3]
    return [(float(values[i]), int(i)) for i in order]


def _max_excluding(top3: list[tuple[float, int]], skip_a: int, skip_b: int) -> float:
    """Max of a vector excluding two indices, given its top-3 entries."""
    for value, index in top3:
        if index != skip_a and index != skip_b:
            return value
    return 0.0


class TabuPlanner(PhysicalPlanner):
    name = "tabu"

    def __init__(self, max_rounds: int = 64, use_tabu_list: bool = True):
        """``use_tabu_list=False`` disables the assignment cache (for the
        ablation study): the search may then revisit placements, so it is
        additionally bounded by ``max_rounds`` to preclude ping-pong
        loops — the failure mode the list exists to prevent."""
        self.max_rounds = max_rounds
        self.use_tabu_list = use_tabu_list

    def assign(self, model: AnalyticalCostModel) -> tuple[np.ndarray, dict]:
        stats = model.stats
        n_units, n_nodes = stats.n_units, stats.n_nodes
        s_total = stats.s_total
        unit_totals = stats.unit_totals
        unit_costs = model.unit_costs
        t = model.params.t

        assignment, _ = MinimumBandwidthPlanner().assign(model)
        assignment = assignment.copy()
        tabu = np.zeros((n_units, n_nodes), dtype=bool)
        if self.use_tabu_list:
            tabu[np.arange(n_units), assignment] = True

        send, recv, compare = model.node_totals(assignment)
        send = send.astype(np.float64)
        recv = recv.astype(np.float64)
        best_cost = model.cost_from_totals(send, recv, compare)
        moves = 0
        evaluations = 0

        for _ in range(self.max_rounds):
            changed = False
            per_node = np.maximum(send, recv) * t + compare
            mean_cost = float(per_node.mean())
            for node in range(n_nodes):
                if per_node[node] <= mean_cost:
                    continue
                top_send = _top3(send)
                top_recv = _top3(recv)
                top_comp = _top3(compare)
                for unit in np.flatnonzero(assignment == node):
                    source = int(assignment[unit])
                    if source != node:
                        continue
                    total_i = float(unit_totals[unit])
                    cost_i = float(unit_costs[unit])
                    send_src = send[source] + s_total[unit, source]
                    recv_src = recv[source] - (total_i - s_total[unit, source])
                    comp_src = compare[source] - cost_i
                    for target in range(n_nodes):
                        if target == source or tabu[unit, target]:
                            continue
                        evaluations += 1
                        send_tgt = send[target] - s_total[unit, target]
                        recv_tgt = recv[target] + (total_i - s_total[unit, target])
                        comp_tgt = compare[target] + cost_i
                        align = max(
                            _max_excluding(top_send, source, target),
                            send_src,
                            send_tgt,
                            _max_excluding(top_recv, source, target),
                            recv_src,
                            recv_tgt,
                        )
                        candidate = align * t + max(
                            _max_excluding(top_comp, source, target),
                            comp_src,
                            comp_tgt,
                        )
                        if candidate < best_cost:
                            assignment[unit] = target
                            if self.use_tabu_list:
                                tabu[unit, target] = True
                            send[source], send[target] = send_src, send_tgt
                            recv[source], recv[target] = recv_src, recv_tgt
                            compare[source], compare[target] = comp_src, comp_tgt
                            best_cost = candidate
                            top_send = _top3(send)
                            top_recv = _top3(recv)
                            top_comp = _top3(compare)
                            moves += 1
                            changed = True
                            break  # unit moved; continue with the next unit
            if not changed:
                break
            send, recv, compare = model.node_totals(assignment)
            send = send.astype(np.float64)
            recv = recv.astype(np.float64)

        return assignment, {
            "moves": moves,
            "evaluations": evaluations,
            "final_cost": best_cost,
        }
