"""Tabu search physical planner (Section 5.2, Algorithm 2).

A locally optimal search seeded by the Minimum Bandwidth Heuristic. Each
round it visits every node whose per-node analytical cost exceeds the
cluster mean and tries to move that node's join units, one at a time, to
any other node, accepting a move only if it lowers the *global* plan cost
(Equation 8). The tabu list caches data-to-node assignments that have
ever held — not whole plans — which keeps the search polynomial
(O(n × k) reassignments total), prevents ping-pong loops between
non-bottleneck nodes, and reflects that re-placing a unit where it
already was is unlikely to be profitable.

Two implementations share exact first-improvement semantics:

- the *reference* loop (``vectorized=False``) scores one (unit, target)
  candidate at a time in O(1) scalar work against precomputed top-3
  maxima — the oracle the property tests compare against;
- the *vectorized* path (the default) evaluates, for one overloaded
  node, every remaining (unit, target) candidate in a single 2-D numpy
  pass. Per-node send/recv/compare totals only change when a move is
  accepted, so between accepted moves the whole candidate block is a
  pure function of constant vectors; the first improving entry in
  row-major order is exactly the candidate the reference loop would
  have accepted, and the arithmetic per candidate is the same IEEE
  float64 operation sequence, so assignments, costs, and evaluation
  counts are bit-identical.

The vectorized path keeps the cluster-wide top-3 maxima incrementally
(:class:`_TopTracker`): a move touches exactly two entries of each
per-node vector, so the tracker removes and reinserts those two entries
against a watermark instead of re-sorting the vector after every move.
"""

from __future__ import annotations

import numpy as np

from repro.core.cost_model import AnalyticalCostModel
from repro.core.planners.base import PhysicalPlanner
from repro.core.planners.mbh import MinimumBandwidthPlanner


#: Unit-block widths of the batched candidate scan (see the accept
#: loop): _BLOCK rows while sweeping, _MOVE_BLOCK right after a move.
_BLOCK = 64
_MOVE_BLOCK = 4


def _top3(values: np.ndarray) -> list[tuple[float, int]]:
    """The three largest (value, index) pairs, descending."""
    order = np.argsort(values)[::-1][:3]
    return [(float(values[i]), int(i)) for i in order]


def _max_excluding(top3: list[tuple[float, int]], skip_a: int, skip_b: int) -> float:
    """Max of a vector excluding two indices, given its top-3 entries."""
    for value, index in top3:
        if index != skip_a and index != skip_b:
            return value
    return 0.0


class _TopTracker:
    """Incrementally maintained top entries of one per-node vector.

    Holds a descending buffer of the vector's largest (value, index)
    pairs plus a *watermark*: every index outside the buffer is known to
    hold a value ≤ the watermark. A move changes exactly two entries, so
    :meth:`update` removes those indices from the buffer and reinserts
    the new values — but only when they beat the watermark; smaller
    values are indistinguishable from the off-buffer mass. The buffer
    can only shrink on such updates, and a full O(k) rescan happens just
    when it drains below three entries, instead of after every accepted
    move.
    """

    __slots__ = ("values", "_entries", "_watermark")

    #: Rescan buffer depth: each accepted move can evict at most two
    #: entries, so depth 8 sustains several moves per rescan.
    DEPTH = 8

    def __init__(self, values: np.ndarray):
        self.values = values
        self._rescan()

    def _rescan(self) -> None:
        values = self.values
        k = len(values)
        depth = min(self.DEPTH, k)
        if depth == k:
            order = np.argsort(values)[::-1]
        else:
            top = np.argpartition(values, k - depth)[k - depth:]
            order = top[np.argsort(values[top])[::-1]]
        self._entries = [(float(values[i]), int(i)) for i in order]
        self._watermark = self._entries[-1][0] if self._entries else 0.0

    def update(self, index_a: int, index_b: int) -> None:
        """Re-admit two just-changed indices (``self.values`` already new)."""
        entries = [
            e for e in self._entries if e[1] != index_a and e[1] != index_b
        ]
        watermark = self._watermark
        for index in (index_a, index_b):
            value = float(self.values[index])
            if value >= watermark:
                pos = 0
                while pos < len(entries) and entries[pos][0] >= value:
                    pos += 1
                entries.insert(pos, (value, index))
        self._entries = entries
        if len(entries) < min(3, len(self.values)):
            self._rescan()

    def top3(self) -> list[tuple[float, int]]:
        return self._entries[:3]

    def max_excluding_vector(self, source: int, n: int) -> np.ndarray:
        """For every target t: max of the vector excluding {source, t}.

        The vectorized form of :func:`_max_excluding` over all targets at
        once. ``source`` is one index, so the largest non-source entry e0
        answers every target except t = e0's own index, which falls back
        to the runner-up — three retained entries always suffice.
        """
        first = second = None
        for entry in self._entries[:3]:
            if entry[1] == source:
                continue
            if first is None:
                first = entry
            else:
                second = entry
                break
        if first is None:
            return np.zeros(n, dtype=np.float64)
        out = np.full(n, first[0], dtype=np.float64)
        out[first[1]] = second[0] if second is not None else 0.0
        return out


class TabuPlanner(PhysicalPlanner):
    name = "tabu"

    def __init__(
        self,
        max_rounds: int = 64,
        use_tabu_list: bool = True,
        vectorized: bool = True,
    ):
        """``use_tabu_list=False`` disables the assignment cache (for the
        ablation study): the search may then revisit placements, so it is
        additionally bounded by ``max_rounds`` to preclude ping-pong
        loops — the failure mode the list exists to prevent.
        ``vectorized=False`` selects the scalar reference loop, kept as
        the oracle the property tests hold the batched path to."""
        self.max_rounds = max_rounds
        self.use_tabu_list = use_tabu_list
        self.vectorized = vectorized

    def assign(self, model: AnalyticalCostModel) -> tuple[np.ndarray, dict]:
        if self.vectorized:
            return self._assign_vectorized(model)
        return self._assign_reference(model)

    # ------------------------------------------------------- vectorized path

    def _assign_vectorized(self, model: AnalyticalCostModel) -> tuple[np.ndarray, dict]:
        stats = model.stats
        n_units, n_nodes = stats.n_units, stats.n_nodes
        s_total = stats.s_total
        unit_totals = stats.unit_totals
        unit_costs = model.unit_costs
        t = model.params.t

        assignment, _ = MinimumBandwidthPlanner().assign(model)
        assignment = assignment.copy()
        tabu = np.zeros((n_units, n_nodes), dtype=bool)
        if self.use_tabu_list:
            tabu[np.arange(n_units), assignment] = True

        send, recv, compare = model.node_totals(assignment)
        send = send.astype(np.float64)
        recv = recv.astype(np.float64)
        best_cost = model.cost_from_totals(send, recv, compare)
        moves = 0
        evaluations = 0

        # Slice-count ingredients, converted to float64 once: every value
        # is an exact integer below 2^53, so the batched arithmetic below
        # is bit-identical to the reference loop's int-plus-float scalars.
        s_float = s_total.astype(np.float64)
        remote = (unit_totals[:, np.newaxis] - s_total).astype(np.float64)

        for _ in range(self.max_rounds):
            changed = False
            per_node = np.maximum(send, recv) * t + compare
            mean_cost = float(per_node.mean())
            for node in range(n_nodes):
                if per_node[node] <= mean_cost:
                    continue
                top_send = _TopTracker(send)
                top_recv = _TopTracker(recv)
                top_comp = _TopTracker(compare)
                units = np.flatnonzero(assignment == node)
                start = 0
                block = _BLOCK
                while start < len(units):
                    # Block the scan so an accepted move re-evaluates at
                    # most a block of rows, not the full remaining
                    # suffix. Accepted moves cluster: the unit right
                    # after a move usually moves too, so the block
                    # shrinks to _MOVE_BLOCK after an accept and grows
                    # back to _BLOCK once a block scans clean.
                    batch = units[start : start + block]
                    # Constant per-candidate ingredients for the block:
                    # totals only change on an accepted move, which
                    # restarts the scan just past the moved unit.
                    s_batch = s_float[batch]              # (m, k)
                    remote_b = remote[batch]              # S_i - s_ij
                    cost_b = unit_costs[batch]
                    send_src = send[node] + s_batch[:, node]
                    recv_src = recv[node] - remote_b[:, node]
                    comp_src = compare[node] - cost_b
                    send_tgt = send[np.newaxis, :] - s_batch
                    recv_tgt = recv[np.newaxis, :] + remote_b
                    comp_tgt = compare[np.newaxis, :] + cost_b[:, np.newaxis]
                    me_send = top_send.max_excluding_vector(node, n_nodes)
                    me_recv = top_recv.max_excluding_vector(node, n_nodes)
                    me_comp = top_comp.max_excluding_vector(node, n_nodes)

                    align = np.maximum(me_send[np.newaxis, :], send_tgt)
                    np.maximum(align, send_src[:, np.newaxis], out=align)
                    np.maximum(align, me_recv[np.newaxis, :], out=align)
                    np.maximum(align, recv_src[:, np.newaxis], out=align)
                    np.maximum(align, recv_tgt, out=align)
                    comp_all = np.maximum(me_comp[np.newaxis, :], comp_tgt)
                    np.maximum(comp_all, comp_src[:, np.newaxis], out=comp_all)
                    candidate = np.multiply(align, t, out=align)
                    candidate += comp_all

                    valid = ~tabu[batch]
                    valid[:, node] = False
                    improving = valid & (candidate < best_cost)
                    pos = int(improving.argmax())
                    row, target = divmod(pos, n_nodes)
                    if not improving[row, target]:
                        evaluations += int(valid.sum())
                        start += len(batch)
                        block = _BLOCK
                        continue
                    unit = int(batch[row])
                    # The reference loop scores valid candidates in
                    # row-major order and stops at the first improving
                    # one — count exactly those.
                    evaluations += int(valid[:row].sum())
                    evaluations += int(valid[row, : target + 1].sum())

                    assignment[unit] = target
                    if self.use_tabu_list:
                        tabu[unit, target] = True
                    send[node] = send_src[row]
                    send[target] = send_tgt[row, target]
                    recv[node] = recv_src[row]
                    recv[target] = recv_tgt[row, target]
                    compare[node] = comp_src[row]
                    compare[target] = comp_tgt[row, target]
                    best_cost = float(candidate[row, target])
                    top_send.update(node, target)
                    top_recv.update(node, target)
                    top_comp.update(node, target)
                    moves += 1
                    changed = True
                    start += row + 1  # unit moved; continue with the next
                    block = _MOVE_BLOCK
            if not changed:
                break
            send, recv, compare = model.node_totals(assignment)
            send = send.astype(np.float64)
            recv = recv.astype(np.float64)

        return assignment, {
            "moves": moves,
            "evaluations": evaluations,
            "final_cost": best_cost,
        }

    # -------------------------------------------------------- reference path

    def _assign_reference(self, model: AnalyticalCostModel) -> tuple[np.ndarray, dict]:
        stats = model.stats
        n_units, n_nodes = stats.n_units, stats.n_nodes
        s_total = stats.s_total
        unit_totals = stats.unit_totals
        unit_costs = model.unit_costs
        t = model.params.t

        assignment, _ = MinimumBandwidthPlanner().assign(model)
        assignment = assignment.copy()
        tabu = np.zeros((n_units, n_nodes), dtype=bool)
        if self.use_tabu_list:
            tabu[np.arange(n_units), assignment] = True

        send, recv, compare = model.node_totals(assignment)
        send = send.astype(np.float64)
        recv = recv.astype(np.float64)
        best_cost = model.cost_from_totals(send, recv, compare)
        moves = 0
        evaluations = 0

        for _ in range(self.max_rounds):
            changed = False
            per_node = np.maximum(send, recv) * t + compare
            mean_cost = float(per_node.mean())
            for node in range(n_nodes):
                if per_node[node] <= mean_cost:
                    continue
                top_send = _top3(send)
                top_recv = _top3(recv)
                top_comp = _top3(compare)
                for unit in np.flatnonzero(assignment == node):
                    source = int(assignment[unit])
                    if source != node:
                        continue
                    total_i = float(unit_totals[unit])
                    cost_i = float(unit_costs[unit])
                    send_src = send[source] + s_total[unit, source]
                    recv_src = recv[source] - (total_i - s_total[unit, source])
                    comp_src = compare[source] - cost_i
                    for target in range(n_nodes):
                        if target == source or tabu[unit, target]:
                            continue
                        evaluations += 1
                        send_tgt = send[target] - s_total[unit, target]
                        recv_tgt = recv[target] + (total_i - s_total[unit, target])
                        comp_tgt = compare[target] + cost_i
                        align = max(
                            _max_excluding(top_send, source, target),
                            send_src,
                            send_tgt,
                            _max_excluding(top_recv, source, target),
                            recv_src,
                            recv_tgt,
                        )
                        candidate = align * t + max(
                            _max_excluding(top_comp, source, target),
                            comp_src,
                            comp_tgt,
                        )
                        if candidate < best_cost:
                            assignment[unit] = target
                            if self.use_tabu_list:
                                tabu[unit, target] = True
                            send[source], send[target] = send_src, send_tgt
                            recv[source], recv[target] = recv_src, recv_tgt
                            compare[source], compare[target] = comp_src, comp_tgt
                            best_cost = candidate
                            top_send = _top3(send)
                            top_recv = _top3(recv)
                            top_comp = _top3(compare)
                            moves += 1
                            changed = True
                            break  # unit moved; continue with the next unit
            if not changed:
                break
            send, recv, compare = model.node_totals(assignment)
            send = send.astype(np.float64)
            recv = recv.astype(np.float64)

        return assignment, {
            "moves": moves,
            "evaluations": evaluations,
            "final_cost": best_cost,
        }
