"""The skew-agnostic baseline planner (Section 6.2, "Baseline").

It decides at the level of entire arrays, the approach taken from
relational optimizers:

- **merge joins**: move the smaller array to the larger one — every join
  unit is processed where the larger array already stores its slice;
- **hash joins**: with ``b`` buckets over ``k`` nodes, the first
  ``ceil(b/k)`` buckets go to node 0, the next block to node 1, and so
  on, regardless of where the cells actually live.
"""

from __future__ import annotations

import numpy as np

from repro.core.cost_model import AnalyticalCostModel
from repro.core.planners.base import PhysicalPlanner


class BaselinePlanner(PhysicalPlanner):
    name = "baseline"

    def assign(self, model: AnalyticalCostModel) -> tuple[np.ndarray, dict]:
        stats = model.stats
        if model.algorithm == "merge":
            return self._merge_assignment(stats)
        return self._hash_assignment(stats)

    def _merge_assignment(self, stats) -> tuple[np.ndarray, dict]:
        left_total = int(stats.left_unit_totals.sum())
        right_total = int(stats.right_unit_totals.sum())
        # The *larger* array stays put: each unit joins wherever the larger
        # array's slice of it lives (its per-unit argmax — whole chunks
        # live on one node in the base layout).
        anchor = stats.s_left if left_total >= right_total else stats.s_right
        assignment = np.argmax(anchor, axis=1).astype(np.int64)
        # Units absent from the anchor array fall back to wherever the
        # other side stores them.
        other = stats.s_right if left_total >= right_total else stats.s_left
        missing = anchor.sum(axis=1) == 0
        assignment[missing] = np.argmax(other[missing], axis=1)
        meta = {"anchor_side": "left" if left_total >= right_total else "right"}
        return assignment, meta

    def _hash_assignment(self, stats) -> tuple[np.ndarray, dict]:
        block = -(-stats.n_units // stats.n_nodes)
        assignment = np.minimum(
            np.arange(stats.n_units) // block, stats.n_nodes - 1
        ).astype(np.int64)
        return assignment, {"block_size": block}
