"""Common physical-planner interface."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.cost_model import AnalyticalCostModel, PlanCost


@dataclass
class PhysicalPlan:
    """A join-unit-to-node assignment plus planning metadata."""

    assignment: np.ndarray
    planner: str
    cost: PlanCost
    plan_seconds: float
    meta: dict = field(default_factory=dict)

    @property
    def n_units(self) -> int:
        return len(self.assignment)

    def describe(self) -> str:
        text = (
            f"{self.planner}: cost={self.cost.total_seconds:.3f}s "
            f"(align={self.cost.align_seconds:.3f}s, "
            f"compare={self.cost.compare_seconds:.3f}s), "
            f"planned in {self.plan_seconds:.3f}s"
        )
        if self.meta.get("units_split"):
            text += (
                f", {self.meta['units_split']} heavy units split into "
                f"{self.meta['subunits_created']} sub-units"
            )
        return text


class PhysicalPlanner:
    """Base class: subclasses implement :meth:`assign`."""

    name = "abstract"

    def assign(self, model: AnalyticalCostModel) -> tuple[np.ndarray, dict]:
        """Produce (assignment, metadata) for the model's slice stats."""
        raise NotImplementedError

    def plan(self, model: AnalyticalCostModel) -> PhysicalPlan:
        """Run the planner, timing it and costing the result."""
        start = time.perf_counter()
        assignment, meta = self.assign(model)
        elapsed = time.perf_counter() - start
        return PhysicalPlan(
            assignment=np.asarray(assignment, dtype=np.int64),
            planner=self.name,
            cost=model.plan_cost(assignment),
            plan_seconds=elapsed,
            meta=meta,
        )
