"""The ILP physical planner (Section 5.2, Equations 10-12).

Formulates the analytical cost model as an integer linear program:
binary assignment variables ``x_{i,j}``, plus structural variables ``d``
(data alignment time) and ``g`` (cell comparison time) that implement the
cost model's max() through one-sided constraints. The objective is
``min(d + g)``.

The solver runs with a time budget, tuned (as in the paper) to where
solution quality goes asymptotic; it returns the best incumbent found,
which on flat landscapes (uniform data, slight skew) may be far from
optimal — exactly the behaviour Figures 7, 8, and 10 report.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.core.cost_model import AnalyticalCostModel
from repro.core.planners.base import PhysicalPlanner
from repro.solver import BranchAndBoundSolver, MilpProblem


def build_ilp(model: AnalyticalCostModel) -> MilpProblem:
    """Construct the Equation 10-12 MILP for the given slice statistics."""
    stats = model.stats
    n, k = stats.n_units, stats.n_nodes
    s_total = stats.s_total.astype(np.float64)
    unit_totals = stats.unit_totals.astype(np.float64)
    unit_costs = model.unit_costs
    t = model.params.t
    n_x = n * k
    d_idx, g_idx = n_x, n_x + 1
    n_vars = n_x + 2

    def x_index(unit: int, node: int) -> int:
        return unit * k + node

    # Σ_j x_ij = 1 for every unit (Equation 4).
    eq_rows = np.repeat(np.arange(n), k)
    eq_cols = np.arange(n_x)
    a_eq = sparse.csr_matrix(
        (np.ones(n_x), (eq_rows, eq_cols)), shape=(n, n_vars)
    )
    b_eq = np.ones(n)

    rows, cols, vals, b_ub = [], [], [], []
    row = 0
    for j in range(k):
        # Send (Equation 10): t·(colsum_j − Σ_i s_ij x_ij) ≤ d
        #   ⇔  −t·Σ_i s_ij x_ij − d ≤ −t·colsum_j
        col_sum = float(s_total[:, j].sum())
        for i in range(n):
            if s_total[i, j]:
                rows.append(row)
                cols.append(x_index(i, j))
                vals.append(-t * float(s_total[i, j]))
        rows.append(row)
        cols.append(d_idx)
        vals.append(-1.0)
        b_ub.append(-t * col_sum)
        row += 1

        # Receive (Equation 11): t·Σ_i (S_i − s_ij) x_ij − d ≤ 0
        for i in range(n):
            remote = float(unit_totals[i] - s_total[i, j])
            if remote:
                rows.append(row)
                cols.append(x_index(i, j))
                vals.append(t * remote)
        rows.append(row)
        cols.append(d_idx)
        vals.append(-1.0)
        b_ub.append(0.0)
        row += 1

        # Comparison (Equation 12): Σ_i C_i x_ij − g ≤ 0
        for i in range(n):
            if unit_costs[i]:
                rows.append(row)
                cols.append(x_index(i, j))
                vals.append(float(unit_costs[i]))
        rows.append(row)
        cols.append(g_idx)
        vals.append(-1.0)
        b_ub.append(0.0)
        row += 1

    a_ub = sparse.csr_matrix((vals, (rows, cols)), shape=(row, n_vars))
    c = np.zeros(n_vars)
    c[d_idx] = 1.0
    c[g_idx] = 1.0
    lb = np.zeros(n_vars)
    ub = np.concatenate([np.ones(n_x), [np.inf, np.inf]])
    return MilpProblem(
        c=c,
        a_ub=a_ub,
        b_ub=np.asarray(b_ub),
        a_eq=a_eq,
        b_eq=b_eq,
        lb=lb,
        ub=ub,
        integrality=np.arange(n_x),
    )


def assignment_to_vector(
    model: AnalyticalCostModel, assignment: np.ndarray
) -> np.ndarray:
    """Lift an assignment into a feasible full MILP variable vector."""
    stats = model.stats
    n, k = stats.n_units, stats.n_nodes
    x = np.zeros(n * k + 2)
    x[np.arange(n) * k + assignment] = 1.0
    send, recv, compare = model.node_totals(assignment)
    x[n * k] = max(int(send.max(initial=0)), int(recv.max(initial=0))) * model.params.t
    x[n * k + 1] = float(compare.max(initial=0.0))
    return x


class IlpPlanner(PhysicalPlanner):
    name = "ilp"

    def __init__(self, time_budget_s: float = 5.0):
        self.time_budget_s = time_budget_s

    def assign(self, model: AnalyticalCostModel) -> tuple[np.ndarray, dict]:
        stats = model.stats
        n, k = stats.n_units, stats.n_nodes
        problem = build_ilp(model)

        def round_relaxation(x_relaxed: np.ndarray) -> np.ndarray:
            matrix = x_relaxed[: n * k].reshape(n, k)
            assignment = np.argmax(matrix, axis=1).astype(np.int64)
            return assignment_to_vector(model, assignment)

        solver = BranchAndBoundSolver(
            time_budget_s=self.time_budget_s, rounding_hook=round_relaxation
        )
        result = solver.solve(problem)
        meta = {
            "status": result.status.value,
            "nodes_explored": result.nodes_explored,
            "gap": result.gap,
            "solver_seconds": result.elapsed_s,
        }
        if result.x is None:
            # Budget expired before any incumbent: the paper's α=0.5 case.
            # Fall back to the trivially feasible block assignment so the
            # query can still run.
            block = -(-n // k)
            assignment = np.minimum(np.arange(n) // block, k - 1).astype(np.int64)
            meta["fallback"] = "block"
            return assignment, meta
        matrix = result.x[: n * k].reshape(n, k)
        assignment = np.argmax(matrix, axis=1).astype(np.int64)
        return assignment, meta
