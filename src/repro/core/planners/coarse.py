"""The Coarse ILP planner (Section 5.2, "Coarse Solver").

The full ILP struggles to converge at moderate problem sizes (1024 join
units), so this planner first *packs* join units into a bounded number of
bins — grouping units that share a center of gravity, so bins do not
"conflict" by having equal cell concentrations on multiple hosts — and
then solves the much smaller bin-to-node ILP. The coarser granularity
speeds up the solver at a possible cost in plan quality, since the join
is now placed in larger segments.
"""

from __future__ import annotations

import numpy as np

from repro.core.cost_model import AnalyticalCostModel
from repro.core.planners.base import PhysicalPlanner
from repro.core.planners.ilp import IlpPlanner
from repro.core.slices import SliceStats


def pack_bins(stats: SliceStats, n_bins: int) -> tuple[np.ndarray, int]:
    """Group join units into at most ``n_bins`` center-of-gravity bins.

    Bins are allotted to each center-of-gravity group proportionally to
    its unit count (every non-empty group keeps at least one bin), and
    units are dealt into their group's bins largest-first round-robin so
    bin sizes stay balanced. Returns (bin label per unit, bin count).
    """
    centers = stats.center_of_gravity()
    sizes = stats.unit_totals
    groups = [np.flatnonzero(centers == node) for node in range(stats.n_nodes)]
    groups = [g for g in groups if len(g)]
    n_bins = max(n_bins, len(groups))

    counts = np.array([len(g) for g in groups], dtype=np.float64)
    allotment = np.maximum(1, np.floor(counts / counts.sum() * n_bins)).astype(int)
    # Distribute any remaining bins to the largest groups.
    while allotment.sum() < n_bins:
        allotment[int(np.argmax(counts / allotment))] += 1
    while allotment.sum() > n_bins:
        eligible = np.flatnonzero(allotment > 1)
        if not len(eligible):
            break
        shrink = eligible[int(np.argmin(counts[eligible] / allotment[eligible]))]
        allotment[shrink] -= 1

    labels = np.zeros(stats.n_units, dtype=np.int64)
    next_bin = 0
    for group, bins_here in zip(groups, allotment):
        order = group[np.argsort(-sizes[group], kind="stable")]
        labels[order] = next_bin + (np.arange(len(order)) % bins_here)
        next_bin += bins_here
    return labels, int(next_bin)


class CoarseIlpPlanner(PhysicalPlanner):
    name = "ilp_coarse"

    def __init__(self, n_bins: int = 75, time_budget_s: float = 5.0):
        self.n_bins = n_bins
        self.time_budget_s = time_budget_s

    def assign(self, model: AnalyticalCostModel) -> tuple[np.ndarray, dict]:
        stats = model.stats
        labels, n_bins = pack_bins(stats, self.n_bins)
        merged = stats.merged(labels, n_bins)
        coarse_model = AnalyticalCostModel(merged, model.algorithm, model.params)
        bin_assignment, inner_meta = IlpPlanner(
            time_budget_s=self.time_budget_s
        ).assign(coarse_model)
        assignment = bin_assignment[labels]
        meta = {"n_bins": n_bins, **{f"ilp_{k}": v for k, v in inner_meta.items()}}
        return assignment, meta
