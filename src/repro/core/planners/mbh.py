"""Minimum Bandwidth Heuristic (Section 5.2, Equation 9).

Each join unit is assigned to its *center of gravity* — the node already
storing the largest share of its cells — which provably minimises the
total number of cells a physical plan transmits. The heuristic is
essentially free to compute and excels for merge joins, but does nothing
to balance the cell-comparison load, which is where it loses to Tabu on
hash joins under slight skew (Figure 8, α = 0.5).
"""

from __future__ import annotations

import numpy as np

from repro.core.cost_model import AnalyticalCostModel
from repro.core.planners.base import PhysicalPlanner


class MinimumBandwidthPlanner(PhysicalPlanner):
    name = "mbh"

    def assign(self, model: AnalyticalCostModel) -> tuple[np.ndarray, dict]:
        assignment = model.stats.center_of_gravity()
        total = model.stats.unit_totals
        rows = np.arange(model.stats.n_units)
        moved = int((total - model.stats.s_total[rows, assignment]).sum())
        return assignment, {"cells_moved": moved}
