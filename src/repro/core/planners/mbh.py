"""Minimum Bandwidth Heuristic (Section 5.2, Equation 9).

Each join unit is assigned to its *center of gravity* — the node already
storing the largest share of its cells — which provably minimises the
total number of cells a physical plan transmits. The heuristic is
essentially free to compute and excels for merge joins, but does nothing
to balance the cell-comparison load, which is where it loses to Tabu on
hash joins under slight skew (Figure 8, α = 0.5).
"""

from __future__ import annotations

import numpy as np

from repro.core.cost_model import AnalyticalCostModel
from repro.core.planners.base import PhysicalPlanner


class MinimumBandwidthPlanner(PhysicalPlanner):
    name = "mbh"

    def __init__(self, vectorized: bool = True):
        self.vectorized = vectorized

    def assign(self, model: AnalyticalCostModel) -> tuple[np.ndarray, dict]:
        if not self.vectorized:
            return self._assign_reference(model)
        assignment = model.stats.center_of_gravity()
        total = model.stats.unit_totals
        rows = np.arange(model.stats.n_units)
        moved = int((total - model.stats.s_total[rows, assignment]).sum())
        return assignment, {"cells_moved": moved}

    def _assign_reference(self, model: AnalyticalCostModel) -> tuple[np.ndarray, dict]:
        """Scalar per-unit oracle for the batched center-of-gravity path.

        Mirrors :meth:`SliceStats.center_of_gravity` exactly, including
        the rotating tie-break (preference starts at node ``unit % k``).
        """
        stats = model.stats
        s_total = stats.s_total
        n_nodes = stats.n_nodes
        assignment = np.empty(stats.n_units, dtype=np.int64)
        moved = 0
        for unit in range(stats.n_units):
            row = s_total[unit]
            best = int(row.max())
            chosen = -1
            for offset in range(n_nodes):
                node = (unit + offset) % n_nodes
                if row[node] == best:
                    chosen = node
                    break
            assignment[unit] = chosen
            moved += int(row.sum()) - best
        return assignment, {"cells_moved": moved}
