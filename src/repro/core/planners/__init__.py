"""Physical shuffle-join planners (Section 5.2).

Every planner consumes slice statistics (via the analytical cost model)
and produces a join-unit-to-node assignment:

- ``baseline`` — the skew-agnostic planner relational optimizers use:
  move the smaller array (merge joins) or deal buckets out in equal
  blocks (hash joins);
- ``mbh`` — Minimum Bandwidth Heuristic: each unit goes to its center of
  gravity, provably minimising cells transmitted;
- ``tabu`` — Tabu search seeded by MBH, rebalancing overloaded nodes;
- ``ilp`` — the exact cost model as an integer linear program, solved
  with a time budget;
- ``ilp_coarse`` — the ILP over center-of-gravity bins (default 75) to
  shrink the decision space.
"""

from repro.core.planners.base import PhysicalPlan, PhysicalPlanner
from repro.core.planners.baseline import BaselinePlanner
from repro.core.planners.coarse import CoarseIlpPlanner
from repro.core.planners.ilp import IlpPlanner
from repro.core.planners.mbh import MinimumBandwidthPlanner
from repro.core.planners.tabu import TabuPlanner
from repro.errors import PlanningError

_PLANNERS = {
    "baseline": BaselinePlanner,
    "mbh": MinimumBandwidthPlanner,
    "tabu": TabuPlanner,
    "ilp": IlpPlanner,
    "ilp_coarse": CoarseIlpPlanner,
}

PLANNER_NAMES = tuple(sorted(_PLANNERS))


def get_planner(name: str, **kwargs) -> PhysicalPlanner:
    """Instantiate a physical planner by its registry name."""
    try:
        cls = _PLANNERS[name]
    except KeyError:
        raise PlanningError(
            f"unknown physical planner {name!r}; choose from {PLANNER_NAMES}"
        ) from None
    return cls(**kwargs)


__all__ = [
    "BaselinePlanner",
    "CoarseIlpPlanner",
    "IlpPlanner",
    "MinimumBandwidthPlanner",
    "PLANNER_NAMES",
    "PhysicalPlan",
    "PhysicalPlanner",
    "TabuPlanner",
    "get_planner",
]
