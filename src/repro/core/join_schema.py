"""Join schema inference (Section 4, "Join Schema Definition").

For a join τ = α ⋈ β the engine derives an intermediate schema
``J = {D_J, A_J}`` that (a) groups matching cells deterministically into
join units and (b) carries exactly the fields needed to evaluate the
predicate and populate the destination schema τ:

- every dimension of J appears in a join predicate;
- J has at least one dimension (or, for hash-bucketed plans, at least one
  key field);
- ``A_J = D_τ ∪ A_τ ∪ P − D_J`` — the vertically partitioned store only
  ships necessary attributes;
- dimension shapes are copied *lazily* from α, β, or τ where the field is
  already a dimension, and inferred from value histograms otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.adm.schema import ArraySchema, Dimension
from repro.adm.stats import Histogram, infer_dimension
from repro.errors import PlanningError
from repro.query.aql import JoinQuery
from repro.query.predicates import JoinPredicate, PredicateKind, classify_predicates


#: Upper bound on the join schema's total chunk count: join units stay
#: "of moderate size ... without overwhelming the physical planner"
#: (Section 3.3). Copied dimensions (already materialised grids) are
#: honoured as-is; only histogram-inferred dimensions share the budget.
MAX_CHUNK_UNITS = 4096


@dataclass(frozen=True)
class JoinField:
    """One predicate pair, promoted to a potential dimension of J."""

    name: str
    left_field: str
    right_field: str
    kind: PredicateKind
    #: The inferred dimension shape, or None when the key is float-typed
    #: and therefore cannot become an integer dimension (hash units only).
    dim: Dimension | None


@dataclass
class JoinSchema:
    """The inferred join schema J plus its provenance.

    ``fields`` lists one entry per predicate, in predicate order. The
    entries with a non-None ``dim`` form ``D_J`` and define the chunk grid
    for chunk-grained join units; all entries together form the composite
    key for hash-bucketed join units.
    """

    fields: list[JoinField]
    left_schema: ArraySchema
    right_schema: ArraySchema
    destination: ArraySchema
    #: attribute columns that must be shipped from each side (A_J split by
    #: source), excluding fields recoverable from the join coordinates
    left_carry: tuple[str, ...] = ()
    right_carry: tuple[str, ...] = ()

    @property
    def dims(self) -> tuple[Dimension, ...]:
        return tuple(f.dim for f in self.fields if f.dim is not None)

    @property
    def dim_fields(self) -> tuple[JoinField, ...]:
        return tuple(f for f in self.fields if f.dim is not None)

    @property
    def chunkable(self) -> bool:
        """True when J has at least one integer dimension, i.e. chunk-based
        join units (and therefore redim/rechunk alignment) are possible."""
        return bool(self.dims)

    @property
    def chunk_grid(self) -> tuple[int, ...]:
        return tuple(d.chunk_count for d in self.dims)

    @property
    def n_chunks(self) -> int:
        grid = self.chunk_grid
        return int(np.prod(grid, dtype=np.int64)) if grid else 1

    @property
    def kind(self) -> PredicateKind:
        """The join's overall character: D:D only when every pair is D:D."""
        kinds = {f.kind for f in self.fields}
        if kinds == {PredicateKind.DIM_DIM}:
            return PredicateKind.DIM_DIM
        if PredicateKind.ATTR_ATTR in kinds:
            return PredicateKind.ATTR_ATTR
        return PredicateKind.ATTR_DIM

    def conforms(self, side: str) -> bool:
        """Does a source array already match J's chunk grid and order?

        True when the side's dimensions are exactly the J-dimension source
        fields, in order, with identical ranges and chunk intervals — the
        precondition for using ``scan`` (no reorganisation) on that side.
        """
        schema = self.left_schema if side == "left" else self.right_schema
        dim_fields = self.dim_fields
        if len(dim_fields) != len(self.fields):
            return False  # some key fields cannot be dimensions at all
        if len(schema.dims) != len(dim_fields):
            return False
        for schema_dim, jfield in zip(schema.dims, dim_fields):
            source = jfield.left_field if side == "left" else jfield.right_field
            if schema_dim.name != source:
                return False
            if not schema_dim.same_shape(jfield.dim):
                return False
        return True

    def grid_matches_destination(self) -> bool:
        """Does J's chunk grid coincide with the destination schema's?

        When it does, join output lands in the right chunks already and at
        most a sort is needed; otherwise a redimension must follow the join.
        """
        dest = self.destination
        if dest.is_dimensionless():
            return True
        dims = self.dims
        if len(dims) != len(self.fields):
            return False
        if len(dest.dims) != len(dims):
            return False
        return all(a.same_shape(b) for a, b in zip(dims, dest.dims))


# --------------------------------------------------------------- inference


def _union_range(*dims: Dimension) -> tuple[int, int]:
    return min(d.start for d in dims), max(d.end for d in dims)


def _infer_field_dimension(
    name: str,
    pred: JoinPredicate,
    kind: PredicateKind,
    alpha: ArraySchema,
    beta: ArraySchema,
    destination: ArraySchema | None,
    histograms: dict[str, Histogram],
    target_chunks: int,
) -> Dimension | None:
    """Apply the paper's lazy dimension-shape rule for one predicate field."""
    donor_dims: list[Dimension] = []
    if alpha.has_dim(pred.left.field):
        donor_dims.append(alpha.dim(pred.left.field))
    if beta.has_dim(pred.right.field):
        donor_dims.append(beta.dim(pred.right.field))
    dest_dim = None
    if destination is not None and destination.has_dim(name):
        dest_dim = destination.dim(name)

    if donor_dims:
        # Copy the chunk interval from the largest donor; take the union of
        # the source ranges (extended to the destination's if present).
        candidates = donor_dims + ([dest_dim] if dest_dim else [])
        interval = max(d.chunk_interval for d in candidates)
        start, end = _union_range(*donor_dims)
        if dest_dim:
            start, end = min(start, dest_dim.start), max(end, dest_dim.end)
        return Dimension(name=name, start=start, end=end, chunk_interval=interval)

    if dest_dim:
        return dest_dim

    # Both sides store the key as an attribute: float keys cannot become
    # integer dimensions, integer keys get a histogram-inferred shape.
    for side_schema, field_name in ((alpha, pred.left.field), (beta, pred.right.field)):
        if side_schema.attr(field_name).type_name == "float64":
            return None
    merged: Histogram | None = None
    for key in (f"{alpha.name}.{pred.left.field}", f"{beta.name}.{pred.right.field}"):
        hist = histograms.get(key)
        if hist is not None:
            merged = hist if merged is None else merged.merge(hist)
    if merged is None:
        return None  # no statistics: fall back to hash-bucketed units
    return infer_dimension(name, merged, target_chunks=target_chunks)


def default_destination(
    query: JoinQuery,
    alpha: ArraySchema,
    beta: ArraySchema,
) -> ArraySchema:
    """The Equation-3 default output schema for τ = α ⋈ β.

    ``D_τ = D_α ∪ D_β − (D_β ∩ D_P)`` and
    ``A_τ = A_α ∪ A_β − (A_β ∩ A_P)``: the natural-join convention where
    the right side's predicate fields collapse into the left side's.
    Attribute name collisions are resolved by prefixing the array name.
    """
    pred_right_dims = {
        p.right.field for p in query.predicates if beta.has_dim(p.right.field)
    }
    pred_right_attrs = {
        p.right.field for p in query.predicates if beta.has_attr(p.right.field)
    }
    dims = list(alpha.dims) + [
        d for d in beta.dims
        if d.name not in pred_right_dims and not alpha.has_dim(d.name)
    ]
    attrs = list(alpha.attrs)
    taken = {a.name for a in attrs} | {d.name for d in dims}
    for attr in beta.attrs:
        if attr.name in pred_right_attrs:
            continue
        name = attr.name
        if name in taken:
            name = f"{beta.name}_{attr.name}"
        attrs.append(attr.__class__(name=name, type_name=attr.type_name))
        taken.add(name)
    return ArraySchema(name=query.output_name, dims=tuple(dims), attrs=tuple(attrs))


def infer_join_schema(
    query: JoinQuery,
    alpha: ArraySchema,
    beta: ArraySchema,
    histograms: dict[str, Histogram] | None = None,
    target_chunks_per_dim: int = 32,
    destination: ArraySchema | None = None,
) -> JoinSchema:
    """Derive the join schema J for a parsed join query.

    ``histograms`` maps qualified field names (``"A.v"``) to value
    histograms, used when an attribute key must become a dimension.
    ``destination`` overrides the output schema; by default the query's
    INTO schema or the Equation-3 natural-join default is used.
    """
    histograms = histograms or {}
    kinds = classify_predicates(query.predicates, alpha, beta)
    if destination is None:
        destination = query.into_schema or default_destination(query, alpha, beta)

    # First pass: resolve names and dimension shapes that are *copied*
    # (from source or destination dimensions — the lazy rule).
    pending: list[tuple] = []
    used_names: set[str] = set()
    for pred, kind in kinds.items():
        name = pred.left.field
        # Prefer the destination's name for this key if the destination
        # declares it as a dimension under the right-side name instead.
        if destination.has_dim(pred.right.field) and not destination.has_dim(name):
            name = pred.right.field
        if name in used_names:
            name = f"{name}_{len(pending)}"
        used_names.add(name)
        dim = _infer_field_dimension(
            name, pred, kind, alpha, beta, destination, {},
            target_chunks=target_chunks_per_dim,
        )
        pending.append((name, pred, kind, dim))

    # Second pass: histogram-inferred dimensions share the remaining grid
    # budget, keeping the total join-unit count moderate ("without
    # overwhelming the physical planner", Section 3.3). MAX_CHUNK_UNITS
    # bounds the product of all chunk counts.
    copied_grid = 1
    n_inferred = 0
    for _, _, _, dim in pending:
        if dim is not None:
            copied_grid *= dim.chunk_count
        else:
            n_inferred += 1
    if n_inferred:
        budget = max(MAX_CHUNK_UNITS / max(copied_grid, 1), 1.0)
        per_dim_target = max(1, int(budget ** (1.0 / n_inferred)))
        per_dim_target = min(per_dim_target, target_chunks_per_dim)
    else:
        per_dim_target = target_chunks_per_dim

    fields: list[JoinField] = []
    for name, pred, kind, dim in pending:
        if dim is None:
            dim = _infer_field_dimension(
                name, pred, kind, alpha, beta, destination, histograms,
                target_chunks=per_dim_target,
            )
        fields.append(
            JoinField(
                name=name,
                left_field=pred.left.field,
                right_field=pred.right.field,
                kind=kind,
                dim=dim,
            )
        )

    if not fields:
        raise PlanningError("join schema inference needs at least one predicate")

    schema = JoinSchema(
        fields=fields,
        left_schema=alpha,
        right_schema=beta,
        destination=destination,
    )
    schema.left_carry, schema.right_carry = _carried_fields(
        query, schema, alpha, beta
    )
    return schema


def _carried_fields(
    query: JoinQuery,
    schema: JoinSchema,
    alpha: ArraySchema,
    beta: ArraySchema,
) -> tuple[tuple[str, ...], tuple[str, ...]]:
    """Compute A_J split by source: fields needed downstream of the join.

    A field is needed if it is referenced by a select expression or by the
    destination schema; key fields are excluded (recoverable from the join
    coordinates). Source *dimensions* may be carried too — they materialise
    as attributes of the join cells (e.g. ``SELECT A.i ... WHERE A.v=B.w``).
    """
    needed: set[tuple[str, str]] = set()  # (side, field)

    def note(array_name: str | None, field_name: str) -> None:
        resolved = _resolve_side(array_name, field_name, alpha, beta)
        if resolved is not None:
            needed.add(resolved)

    if query.select_star:
        for field_name in schema.destination.field_names:
            note(None, field_name)
    else:
        for item in query.select:
            for ref in item.expr.field_refs():
                parts = ref.rsplit(".", 1)
                if len(parts) == 2:
                    note(parts[0], parts[1])
                else:
                    note(None, parts[0])
        for field_name in schema.destination.dim_names:
            note(None, field_name)

    key_left = {f.left_field for f in schema.fields}
    key_right = {f.right_field for f in schema.fields}
    left = tuple(sorted(f for s, f in needed if s == "left" and f not in key_left))
    right = tuple(sorted(f for s, f in needed if s == "right" and f not in key_right))
    return left, right


def _resolve_side(
    array_name: str | None,
    field_name: str,
    alpha: ArraySchema,
    beta: ArraySchema,
) -> tuple[str, str] | None:
    """Locate a referenced field on one side of the join, if it exists.

    Destination-only names (e.g. computed output attributes) resolve to
    None. Qualified references must name one of the two sources.
    """
    if array_name == alpha.name:
        return ("left", field_name)
    if array_name == beta.name:
        return ("right", field_name)
    if array_name is not None:
        raise PlanningError(
            f"field reference {array_name}.{field_name} names neither "
            f"{alpha.name!r} nor {beta.name!r}"
        )
    if alpha.has_dim(field_name) or alpha.has_attr(field_name):
        return ("left", field_name)
    if beta.has_dim(field_name) or beta.has_attr(field_name):
        return ("right", field_name)
    # Collision-renamed fields ("B_v1") point back at their source.
    for side, schema in (("left", alpha), ("right", beta)):
        prefix = f"{schema.name}_"
        if field_name.startswith(prefix):
            bare = field_name[len(prefix):]
            if schema.has_dim(bare) or schema.has_attr(bare):
                return (side, bare)
    return None
