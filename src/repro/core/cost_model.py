"""The analytical physical cost model (Section 5.1, Equations 4-8).

A physical plan assigns every join unit to exactly one node. Its cost is::

    c = max(send, recv) × t + compare

where ``send``/``recv`` are the worst per-node cell counts shipped during
data alignment and ``compare`` is the worst per-node cell-comparison time.
The model deliberately ignores network congestion — the executor's
write-lock schedule bounds it — and secondary effects like per-slice
latency, which is what the Table-2 experiment measures the residual of.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.slices import SliceStats
from repro.errors import PlanningError


@dataclass(frozen=True)
class CostParams:
    """Empirically derived per-cell cost parameters (seconds per cell).

    ``m``: merge-join comparison; ``b``: hash-map build; ``p``: hash-map
    probe; ``t``: network transmission. The paper derives these from runs
    of the heuristics-based planner; :mod:`repro.engine.calibrate`
    implements that procedure against the simulator.
    """

    m: float = 1.0e-6
    b: float = 1.6e-5
    p: float = 1.0e-6
    t: float = 5.0e-6

    def __post_init__(self) -> None:
        for name in ("m", "b", "p", "t"):
            if getattr(self, name) <= 0:
                raise PlanningError(f"cost parameter {name} must be positive")

    def with_bandwidth(self, cells_per_second: float) -> "CostParams":
        """Derive the transmit cost from a link bandwidth."""
        return replace(self, t=1.0 / cells_per_second)


def unit_compare_costs(
    stats: SliceStats, algorithm: str, params: CostParams
) -> np.ndarray:
    """C_i per join unit, in seconds (Section 5.1).

    Merge join: ``C_i = m × S_i``. Hash join: ``C_i = b×t_i + p×u_i``
    with ``t_i`` the smaller (build) side and ``u_i`` the larger (probe)
    side — building a hash map costs much more per cell than probing
    one. Shared between :class:`AnalyticalCostModel` and the plan-time
    unit splitter (:mod:`repro.core.splitting`), which flags units whose
    C_i dominates the mean.
    """
    if algorithm not in ("merge", "hash"):
        raise PlanningError(
            f"physical cost model supports merge and hash joins, "
            f"got {algorithm!r}"
        )
    left = stats.left_unit_totals.astype(np.float64)
    right = stats.right_unit_totals.astype(np.float64)
    if algorithm == "merge":
        return params.m * (left + right)
    build = np.minimum(left, right)
    probe = np.maximum(left, right)
    return params.b * build + params.p * probe


@dataclass(frozen=True)
class PlanCost:
    """The cost model's decomposition of one candidate physical plan."""

    send_cells: int
    recv_cells: int
    compare_seconds: float
    transmit_cost: float

    @property
    def align_seconds(self) -> float:
        """max(s, r) × t — Equation 8's data-alignment term."""
        return max(self.send_cells, self.recv_cells) * self.transmit_cost

    @property
    def total_seconds(self) -> float:
        return self.align_seconds + self.compare_seconds


class AnalyticalCostModel:
    """Costs join-unit-to-node assignments for one logical plan.

    The model is evaluated thousands of times inside Tabu search, so the
    per-assignment entry points are fully vectorised and an incremental
    per-node view (:meth:`node_totals`, :meth:`apply_move`) is provided.
    """

    def __init__(self, stats: SliceStats, algorithm: str, params: CostParams):
        # The nested loop join is never profitable (Sections 4, 6.1), so
        # the physical model does not include it; unit_compare_costs
        # rejects anything but merge/hash.
        self.stats = stats
        self.algorithm = algorithm
        self.params = params
        self._unit_costs = unit_compare_costs(stats, algorithm, params)

    @property
    def unit_costs(self) -> np.ndarray:
        return self._unit_costs

    # ------------------------------------------------------- full evaluation

    def _validate_assignment(self, assignment: np.ndarray) -> np.ndarray:
        assignment = np.asarray(assignment, dtype=np.int64)
        if assignment.shape != (self.stats.n_units,):
            raise PlanningError(
                f"assignment must cover all {self.stats.n_units} join units"
            )
        if len(assignment) and (
            assignment.min() < 0 or assignment.max() >= self.stats.n_nodes
        ):
            raise PlanningError("assignment names a node outside the cluster")
        return assignment

    def node_totals(
        self, assignment: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-node (send_cells, recv_cells, compare_seconds) vectors.

        send_j: cells stored on j belonging to units assigned elsewhere
        (Equation 5). recv_j: cells of units assigned to j stored
        elsewhere (Equation 6). comp_j: Σ C_i over units assigned to j
        (Equation 7).
        """
        assignment = self._validate_assignment(assignment)
        k = self.stats.n_nodes
        s_total = self.stats.s_total
        unit_totals = self.stats.unit_totals
        rows = np.arange(self.stats.n_units)
        local = s_total[rows, assignment]

        col_totals = s_total.sum(axis=0)
        kept = np.bincount(assignment, weights=local, minlength=k)
        send = col_totals - kept

        recv = np.bincount(
            assignment, weights=unit_totals - local, minlength=k
        )
        compare = np.bincount(assignment, weights=self._unit_costs, minlength=k)
        return send.astype(np.int64), recv.astype(np.int64), compare

    def plan_cost(self, assignment: np.ndarray) -> PlanCost:
        """Equation 8: the full analytic cost of one assignment."""
        send, recv, compare = self.node_totals(assignment)
        return PlanCost(
            send_cells=int(send.max(initial=0)),
            recv_cells=int(recv.max(initial=0)),
            compare_seconds=float(compare.max(initial=0.0)),
            transmit_cost=self.params.t,
        )

    def per_node_costs(self, assignment: np.ndarray) -> np.ndarray:
        """Tabu's per-node view: each node's own align + compare cost.

        Algorithm 2 evaluates Equations 5-7 "considering a single j at a
        time" instead of taking the max across the cluster.
        """
        send, recv, compare = self.node_totals(assignment)
        return np.maximum(send, recv) * self.params.t + compare

    # ------------------------------------------------- incremental evaluation

    def move_delta(
        self,
        send: np.ndarray,
        recv: np.ndarray,
        compare: np.ndarray,
        unit: int,
        source: int,
        target: int,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-node totals after moving one unit, without a full rebuild.

        Returns *new copies*; callers keep the originals for rollback.
        Moving unit i from node N to node j: N must now send its local
        slice of i (send_N += s_iN) and stops receiving the rest
        (recv_N -= S_i - s_iN); j keeps its local slice (send_j -= s_ij)
        and receives the rest (recv_j += S_i - s_ij); C_i migrates.
        """
        s_total = self.stats.s_total
        total_i = int(self.stats.unit_totals[unit])
        send = send.copy()
        recv = recv.copy()
        compare = compare.copy()
        send[source] += s_total[unit, source]
        recv[source] -= total_i - s_total[unit, source]
        send[target] -= s_total[unit, target]
        recv[target] += total_i - s_total[unit, target]
        compare[source] -= self._unit_costs[unit]
        compare[target] += self._unit_costs[unit]
        return send, recv, compare

    def cost_from_totals(
        self, send: np.ndarray, recv: np.ndarray, compare: np.ndarray
    ) -> float:
        """Equation 8 evaluated on precomputed per-node totals."""
        align = max(float(send.max(initial=0)), float(recv.max(initial=0)))
        return align * self.params.t + float(compare.max(initial=0.0))
