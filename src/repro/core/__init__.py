"""The paper's primary contribution: the shuffle join optimization framework.

- :mod:`repro.core.join_schema` — join schema inference (Section 4)
- :mod:`repro.core.logical` — dynamic-programming logical planner (Algorithm 1)
- :mod:`repro.core.logical_cost` — operator cost formulas (Table 1)
- :mod:`repro.core.slices` — join units, slice functions, slice statistics
- :mod:`repro.core.cost_model` — the analytical physical cost model (Eqs 4-8)
- :mod:`repro.core.planners` — Baseline, MBH, Tabu, ILP, and Coarse-ILP
  physical planners (Section 5.2)
"""

from repro.core.cost_model import AnalyticalCostModel, CostParams, PlanCost
from repro.core.join_schema import JoinField, JoinSchema, infer_join_schema
from repro.core.logical import LogicalPlan, LogicalPlanner
from repro.core.multijoin import MultiJoinPlan, MultiJoinPlanner
from repro.core.planners import get_planner, PLANNER_NAMES
from repro.core.slices import SliceStats

__all__ = [
    "AnalyticalCostModel",
    "CostParams",
    "JoinField",
    "JoinSchema",
    "LogicalPlan",
    "LogicalPlanner",
    "MultiJoinPlan",
    "MultiJoinPlanner",
    "PLANNER_NAMES",
    "PlanCost",
    "SliceStats",
    "get_planner",
    "infer_join_schema",
]
