"""Multi-join ordering (the paper's first future-work item).

"Identifying the most efficient order of several joins within a single
query is one such question" (Section 8). This module answers it with the
classic Selinger-style dynamic program over connected subsets, driving
the same machinery as the 2-way planner:

- pairwise join selectivities come from the sampling estimator
  (:mod:`repro.engine.estimate`);
- intermediate cardinalities follow the paper's output convention
  ``|S ⋈ X| = sel × (n_S + n_X)``, with multi-predicate selectivities
  combined under an independence assumption;
- each candidate step is costed with the Table-1 formulas for a
  reorganise-both-sides hash plan (the shape every intermediate join
  takes: intermediates are dimensionless, so both sides hash);
- only *connected* extensions are enumerated — a join with no linking
  predicate would be a cross join, which the framework (like the paper)
  treats as a non-plan.

The search is left-deep: each step joins the running intermediate with
one base array, which is exactly what the chained shuffle-join executor
(:mod:`repro.engine.multijoin`) can run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations

from repro.core import logical_cost as lc
from repro.errors import PlanningError
from repro.query.aql import MultiJoinQuery
from repro.query.predicates import JoinPredicate


@dataclass(frozen=True)
class JoinStep:
    """One 2-way join in the ordered plan: ``placed ⋈ array``."""

    placed: tuple[str, ...]
    array: str
    predicates: tuple[JoinPredicate, ...]
    estimated_output: float
    step_cost: float


@dataclass
class MultiJoinPlan:
    """An ordered sequence of 2-way joins plus its analytic cost."""

    order: list[str]
    steps: list[JoinStep] = field(default_factory=list)
    total_cost: float = 0.0

    @property
    def n_stages(self) -> int:
        """Number of 2-way joins the chained executor will run."""
        return len(self.steps)

    def describe(self) -> str:
        lines = [f"join order: {' ⋈ '.join(self.order)} "
                 f"(total cost {self.total_cost:.3g})"]
        for step in self.steps:
            preds = " AND ".join(str(p) for p in step.predicates)
            lines.append(
                f"  ({' ⋈ '.join(step.placed)}) ⋈ {step.array} on {preds} "
                f"→ ~{step.estimated_output:.3g} cells, "
                f"cost {step.step_cost:.3g}"
            )
        return "\n".join(lines)


def predicates_between(
    query: MultiJoinQuery, left: set[str], right: str
) -> tuple[JoinPredicate, ...]:
    """Predicates linking any placed array to the candidate array, oriented
    so the placed side is on the left."""
    linking = []
    for pred in query.predicates:
        la, ra = pred.left.array, pred.right.array
        if la in left and ra == right:
            linking.append(pred)
        elif ra in left and la == right:
            linking.append(JoinPredicate(pred.right, pred.left))
    return tuple(linking)


def _pair_key(pred: JoinPredicate) -> frozenset:
    return frozenset((pred.left.array, pred.right.array))


class MultiJoinPlanner:
    """Orders the 2-way joins of a multi-join query.

    ``sizes`` maps array name → cell count; ``pair_selectivities`` maps
    ``frozenset({P, Q})`` → the estimated selectivity of joining P and Q
    on *all* predicates linking them (see
    :func:`repro.engine.multijoin.estimate_pair_selectivities`).
    """

    def __init__(
        self,
        sizes: dict[str, int],
        pair_selectivities: dict[frozenset, float],
    ):
        self.sizes = sizes
        self.pair_selectivities = pair_selectivities

    # ------------------------------------------------------------ estimates

    def _extension_selectivity(
        self, placed: set[str], candidate: str
    ) -> float:
        """Combined selectivity of all pairs linking ``candidate`` into
        ``placed`` (independence assumption across pairs)."""
        selectivity = 1.0
        found = False
        for pair, pair_sel in self.pair_selectivities.items():
            if candidate in pair and (pair - {candidate}) <= placed:
                found = True
                selectivity *= pair_sel
        if not found:
            raise PlanningError(
                f"no selectivity estimate links {candidate!r} to "
                f"{sorted(placed)}"
            )
        return selectivity

    @staticmethod
    def _step_cost(n_left: float, n_right: float, n_out: float) -> float:
        """Table-1 cost of one intermediate join: hash both sides, linear
        comparison, one pass to materialise the output."""
        return (
            lc.cost_hash(n_left)
            + lc.cost_hash(n_right)
            + lc.cost_compare("hash", n_left, n_right)
            + n_out
        )

    # --------------------------------------------------------------- search

    @staticmethod
    def _insert_frontier(frontier: list, entry: tuple) -> None:
        """Keep only (cost, cells)-Pareto-optimal entries per subset.

        Under the paper's cardinality convention
        ``|S ⋈ X| = sel × (n_S + n_X)`` an intermediate's size depends on
        the *order* within S, not just the subset — so min-cost-per-subset
        does not have optimal substructure (a pricier prefix with a
        smaller intermediate can win later). Dominance pruning restores
        exactness: an entry survives unless another is at least as good
        on both cost and cells.
        """
        cost, cells = entry[0], entry[1]
        for other in frontier:
            if other[0] <= cost and other[1] <= cells:
                return  # dominated
        frontier[:] = [
            other for other in frontier
            if not (cost <= other[0] and cells <= other[1])
        ]
        frontier.append(entry)

    def plan(self, query: MultiJoinQuery) -> MultiJoinPlan:
        """Dynamic program over connected subsets; exact among left-deep
        orders (Pareto frontiers per subset, see :meth:`_insert_frontier`).
        """
        arrays = list(query.arrays)
        if len(arrays) < 3:
            raise PlanningError("multi-join planning needs at least 3 arrays")
        missing = [name for name in arrays if name not in self.sizes]
        if missing:
            raise PlanningError(f"no size estimates for arrays {missing}")

        # state: frozenset of placed arrays ->
        #        Pareto list of (cost, est_cells, order, steps)
        best: dict[frozenset, list] = {}
        for first, second in combinations(arrays, 2):
            preds = predicates_between(query, {first}, second)
            if not preds:
                continue
            sel = self._extension_selectivity({first}, second)
            n_left = float(self.sizes[first])
            n_right = float(self.sizes[second])
            n_out = lc.estimate_output_cells(n_left, n_right, sel)
            cost = self._step_cost(n_left, n_right, n_out)
            step = JoinStep(
                placed=(first,),
                array=second,
                predicates=preds,
                estimated_output=n_out,
                step_cost=cost,
            )
            state = frozenset((first, second))
            self._insert_frontier(
                best.setdefault(state, []),
                (cost, n_out, [first, second], [step]),
            )

        for size in range(2, len(arrays)):
            for state in [s for s in best if len(s) == size]:
                for cost, cells, order, steps in list(best[state]):
                    for candidate in arrays:
                        if candidate in state:
                            continue
                        preds = predicates_between(
                            query, set(state), candidate
                        )
                        if not preds:
                            continue
                        sel = self._extension_selectivity(
                            set(state), candidate
                        )
                        n_right = float(self.sizes[candidate])
                        n_out = lc.estimate_output_cells(cells, n_right, sel)
                        step_cost = self._step_cost(cells, n_right, n_out)
                        step = JoinStep(
                            placed=tuple(order),
                            array=candidate,
                            predicates=preds,
                            estimated_output=n_out,
                            step_cost=step_cost,
                        )
                        new_state = state | {candidate}
                        self._insert_frontier(
                            best.setdefault(new_state, []),
                            (
                                cost + step_cost,
                                n_out,
                                order + [candidate],
                                steps + [step],
                            ),
                        )

        goal = frozenset(arrays)
        if not best.get(goal):
            raise PlanningError(
                "the join graph is disconnected: some arrays share no "
                "predicate with the rest (a cross join is required, which "
                "the optimizer does not plan)"
            )
        cost, _, order, steps = min(best[goal], key=lambda e: e[0])
        return MultiJoinPlan(order=order, steps=steps, total_cost=cost)

    def plan_fixed_order(
        self, query: MultiJoinQuery, order: list[str]
    ) -> MultiJoinPlan:
        """Cost a *given* left-deep order (for ordering comparisons).

        Every extension must still be connected by a predicate.
        """
        if sorted(order) != sorted(query.arrays):
            raise PlanningError(
                f"order {order} does not cover the query's arrays"
            )
        placed = [order[0]]
        cells = float(self.sizes[order[0]])
        steps: list[JoinStep] = []
        total = 0.0
        for candidate in order[1:]:
            preds = predicates_between(query, set(placed), candidate)
            if not preds:
                raise PlanningError(
                    f"order {order}: no predicate links {candidate!r} to "
                    f"{placed} (cross join required)"
                )
            sel = self._extension_selectivity(set(placed), candidate)
            n_right = float(self.sizes[candidate])
            n_out = lc.estimate_output_cells(cells, n_right, sel)
            step_cost = self._step_cost(cells, n_right, n_out)
            steps.append(
                JoinStep(
                    placed=tuple(placed),
                    array=candidate,
                    predicates=preds,
                    estimated_output=n_out,
                    step_cost=step_cost,
                )
            )
            total += step_cost
            cells = n_out
            placed.append(candidate)
        return MultiJoinPlan(order=list(order), steps=steps, total_cost=total)
