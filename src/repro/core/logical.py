"""The dynamic-programming logical join planner (Section 4, Algorithm 1).

The planner enumerates plans of the form::

    (α-align, β-align, joinAlgo, out-align)

where each align step is one of ``scan | redim | rechunk | hash``, the
join algorithm is ``hash | merge | nested_loop``, and the output step is
``scan | redim | sort``. Invalid combinations are pruned by
:func:`validate_plan`; surviving plans are costed with the Table-1
formulas and the cheapest wins.

The two properties that make good plans (Section 4): reorganise *lazily*
(only pay redim/rechunk/hash when the layout demands it) and put the
expensive sort on the side of the join with the lowest cardinality —
before the join when the output is large, after when it is small.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.core import logical_cost as lc
from repro.core.join_schema import JoinSchema
from repro.errors import PlanningError
from repro.query import afl

ALIGN_OPS = ("scan", "redim", "rechunk", "hash")
JOIN_ALGOS = ("hash", "merge", "nested_loop")
OUT_OPS = ("scan", "redim", "sort")

#: Data form produced by each align operator.
_ALIGN_OUTPUT = {
    "scan": "ordered_chunks",
    "redim": "ordered_chunks",
    "rechunk": "unordered_chunks",
    "hash": "hash_buckets",
}


@dataclass(frozen=True)
class LogicalPlan:
    """One candidate logical plan with its analytic cost."""

    alpha_align: str
    beta_align: str
    join_algo: str
    out_align: str
    cost: float
    #: "chunk" when join units are J-grid chunks, "bucket" for hash buckets
    join_unit_kind: str
    #: True when join units arrive sorted (merge join requirement)
    units_ordered: bool

    def describe(self) -> str:
        return (
            f"{self.join_algo}-join[α:{self.alpha_align}, β:{self.beta_align}, "
            f"out:{self.out_align}] cost={self.cost:.3g}"
        )

    def afl(self, schema: JoinSchema) -> str:
        """Render this plan as an AFL expression."""
        join_dims = ", ".join(d.to_literal() for d in schema.dims)
        j_literal = f"<...>[{join_dims}]" if join_dims else "<...>[]"
        preds = ", ".join(f.name for f in schema.fields)

        def align(op: str, name: str) -> afl.AflNode:
            if op == "scan":
                return afl.scan(name)
            if op == "hash":
                return afl.AflNode("hash", (afl.scan(name), preds))
            return afl.AflNode(op, (afl.scan(name), j_literal))

        joiners = {
            "hash": afl.hash_join,
            "merge": afl.merge_join,
            "nested_loop": afl.nested_loop_join,
        }
        tree = joiners[self.join_algo](
            align(self.alpha_align, schema.left_schema.name),
            align(self.beta_align, schema.right_schema.name),
        )
        if self.out_align == "redim":
            tree = afl.AflNode("redim", (tree, schema.destination.name))
        elif self.out_align == "sort":
            tree = afl.AflNode("sort", (tree,))
        return tree.render()


@dataclass(frozen=True)
class PlanInputs:
    """Cardinalities and chunk counts feeding the cost formulas."""

    n_alpha: int
    n_beta: int
    c_alpha: int
    c_beta: int
    selectivity: float = 1.0
    n_nodes: int = 1

    @property
    def n_output(self) -> float:
        return lc.estimate_output_cells(self.n_alpha, self.n_beta, self.selectivity)


def validate_plan(
    alpha_align: str,
    beta_align: str,
    join_algo: str,
    out_align: str,
    schema: JoinSchema,
) -> bool:
    """Plan validation rules (Section 4, "validatePlan").

    - both sides must produce the *same* join-unit space: chunk-grained
      aligns (scan/redim/rechunk) cannot pair with hash buckets;
    - ``scan`` on a source requires that it already conforms to J;
    - ``redim``/``rechunk`` require J to be chunkable (integer key space);
    - a merge join requires sorted chunks on both inputs;
    - the output step must actually deliver τ: a bare ``scan`` after a
      hash or nested-loop join is precluded for destinations with
      dimensions; ``sort`` only applies when J's grid already matches τ's.
    """
    alpha_form = _ALIGN_OUTPUT[alpha_align]
    beta_form = _ALIGN_OUTPUT[beta_align]

    alpha_is_bucket = alpha_form == "hash_buckets"
    beta_is_bucket = beta_form == "hash_buckets"
    if alpha_is_bucket != beta_is_bucket:
        return False

    for side, op in (("left", alpha_align), ("right", beta_align)):
        if op == "scan" and not schema.conforms(side):
            return False
        if op in ("redim", "rechunk") and not schema.chunkable:
            return False

    if join_algo == "merge":
        if alpha_form != "ordered_chunks" or beta_form != "ordered_chunks":
            return False

    dest = schema.destination
    grid_ok = schema.grid_matches_destination()
    join_output_ordered = join_algo == "merge" and not alpha_is_bucket

    if out_align == "scan":
        if dest.is_dimensionless():
            return True
        # Output chunks must already be τ's chunks, in sorted order.
        return grid_ok and join_output_ordered and not alpha_is_bucket
    if out_align == "sort":
        if dest.is_dimensionless():
            return False  # nothing to sort into
        # Cells are already in τ's chunks but unordered.
        return grid_ok and not alpha_is_bucket and not join_output_ordered
    if out_align == "redim":
        if dest.is_dimensionless():
            return False  # a redim to a dimensionless target is a no-op
        # Always applicable otherwise; wasteful duplicates of cheaper valid
        # options are allowed — costing will rank them down.
        return True
    raise PlanningError(f"unknown output align step {out_align!r}")


def plan_cost(
    alpha_align: str,
    beta_align: str,
    join_algo: str,
    out_align: str,
    schema: JoinSchema,
    inputs: PlanInputs,
) -> float:
    """Sum the Table-1 costs of a validated plan."""
    k = max(inputs.n_nodes, 1)
    j_chunks = schema.n_chunks

    def align_cost(op: str, n_cells: int) -> float:
        if op == "scan":
            return lc.cost_scan(n_cells)
        if op == "redim":
            return lc.cost_redim(n_cells, j_chunks)
        if op == "rechunk":
            return lc.cost_rechunk(n_cells)
        if op == "hash":
            return lc.cost_hash(n_cells)
        raise PlanningError(f"unknown align step {op!r}")

    total = align_cost(alpha_align, inputs.n_alpha)
    total += align_cost(beta_align, inputs.n_beta)
    total += lc.cost_compare(join_algo, inputs.n_alpha, inputs.n_beta)

    n_out = inputs.n_output
    dest_chunks = schema.destination.n_chunks
    if out_align == "redim":
        total += lc.cost_redim(n_out, dest_chunks)
    elif out_align == "sort":
        total += lc.cost_sort(n_out, dest_chunks)
    return total / k


class LogicalPlanner:
    """Enumerates, validates, costs, and ranks logical join plans."""

    def __init__(self, schema: JoinSchema, inputs: PlanInputs):
        self.schema = schema
        self.inputs = inputs

    def enumerate_plans(self, include_nested_loop: bool = True) -> list[LogicalPlan]:
        """All valid plans, cheapest first (the full Algorithm-1 lattice)."""
        plans: list[LogicalPlan] = []
        algos = JOIN_ALGOS if include_nested_loop else ("hash", "merge")
        for alpha_align, beta_align, join_algo, out_align in itertools.product(
            ALIGN_OPS, ALIGN_OPS, algos, OUT_OPS
        ):
            if not validate_plan(
                alpha_align, beta_align, join_algo, out_align, self.schema
            ):
                continue
            cost = plan_cost(
                alpha_align, beta_align, join_algo, out_align,
                self.schema, self.inputs,
            )
            unit_kind = (
                "bucket" if _ALIGN_OUTPUT[alpha_align] == "hash_buckets" else "chunk"
            )
            plans.append(
                LogicalPlan(
                    alpha_align=alpha_align,
                    beta_align=beta_align,
                    join_algo=join_algo,
                    out_align=out_align,
                    cost=cost,
                    join_unit_kind=unit_kind,
                    units_ordered=join_algo == "merge",
                )
            )
        if not plans:
            raise PlanningError(
                "no valid logical plan; the default cross join would be "
                "required (not modelled by the optimizer)"
            )
        plans.sort(key=lambda p: (p.cost, p.describe()))
        return plans

    #: Relative cost tolerance within which the planner prefers
    #: hash-bucketed join units: bucket slices are sourced from more
    #: chunks (and nodes), giving the physical planner a finer-grained
    #: search space (Section 4, the ``hash`` operator discussion).
    BUCKET_PREFERENCE_TOLERANCE = 0.01

    @classmethod
    def _prefer_buckets(cls, plans: list[LogicalPlan]) -> LogicalPlan:
        """Among near-tied cheapest plans, pick a bucket-unit hash plan.

        The flexibility argument only applies to hash joins — they are
        the plans the physical planner fine-tunes; merge joins need
        ordered chunks and the nested loop is never physically planned.
        """
        cheapest = plans[0]
        threshold = cheapest.cost * (1.0 + cls.BUCKET_PREFERENCE_TOLERANCE)
        for plan in plans:
            if plan.cost > threshold:
                break
            if plan.join_unit_kind == "bucket" and plan.join_algo == "hash":
                return plan
        return cheapest

    def best_plan(self, include_nested_loop: bool = True) -> LogicalPlan:
        """The minimum-cost plan, the output of Algorithm 1."""
        plans = self.enumerate_plans(include_nested_loop=include_nested_loop)
        return self._prefer_buckets(plans)

    def plan_named(self, join_algo: str) -> LogicalPlan:
        """Cheapest valid plan using a specific join algorithm.

        Used by the Figure-5/6 experiments, which compare the best hash,
        merge, and nested-loop plans against each other.
        """
        candidates = [
            p for p in self.enumerate_plans() if p.join_algo == join_algo
        ]
        if not candidates:
            raise PlanningError(f"no valid plan uses the {join_algo} join")
        return self._prefer_buckets(candidates)
