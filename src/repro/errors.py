"""Exception hierarchy for the shuffle join framework.

All library errors derive from :class:`ReproError` so callers can catch a
single type at API boundaries while tests can assert on specific failures.
"""


class ReproError(Exception):
    """Base class for every error raised by this library."""


class SchemaError(ReproError):
    """An array schema is malformed or two schemas are incompatible."""


class ParseError(ReproError):
    """A schema literal, AQL query, or AFL expression failed to parse."""


class CatalogError(ReproError):
    """A system-catalog lookup or registration failed."""


class PlanningError(ReproError):
    """The logical or physical planner could not produce a valid plan."""


class ExecutionError(ReproError):
    """Shuffle join execution failed."""


class Overloaded(ExecutionError):
    """The serving front end refused a query under admission control.

    Raised by :class:`repro.serve.server.JoinServer` when the in-flight
    plus queued query count has reached the configured bound and the
    overload policy is ``"shed"``, or when a query arrives after
    shutdown. Callers should treat it as retryable back-pressure.
    """


class SolverError(ReproError):
    """The MILP solver substrate hit an unrecoverable condition."""
