"""Destination-schema derivation and output-cell construction.

Maps the join's matched cell pairs onto the destination schema τ:
each τ dimension draws its value from a join key or a source field, and
each τ attribute from a SELECT expression (positional) or, for
``SELECT *``, from the same name-resolution rule.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.adm.cells import CellSet
from repro.adm.schema import ArraySchema, Attribute
from repro.core.join_schema import JoinSchema, default_destination
from repro.errors import PlanningError
from repro.query.aql import JoinQuery
from repro.query.expressions import BinOp, Expression, Field
from repro.query.predicates import PredicateKind


@dataclass(frozen=True)
class OutputField:
    """How one destination field is populated.

    ``source`` is one of:

    - ``("key", field_index)`` — the join key of predicate ``field_index``;
    - ``("left" | "right", field_name)`` — a source dimension/attribute;
    - ``("expr", position)`` — the SELECT item at ``position``.
    """

    name: str
    role: str  # "dim" | "attr"
    source: tuple


def infer_expression_type(
    expr: Expression, alpha: ArraySchema, beta: ArraySchema
) -> str:
    """Static result type of a SELECT expression: float64 when division or
    any float field is involved, int64 otherwise."""

    def walk(node: Expression) -> str:
        if isinstance(node, Field):
            name = node.name.rsplit(".", 1)[-1]
            for schema in (alpha, beta):
                if schema.has_attr(name) and schema.attr(name).type_name == "float64":
                    return "float64"
            return "int64"
        if isinstance(node, BinOp):
            if node.op == "/":
                return "float64"
            if walk(node.left) == "float64" or walk(node.right) == "float64":
                return "float64"
            return "int64"
        if hasattr(node, "operand"):
            return walk(node.operand)
        if hasattr(node, "value"):
            return "float64" if not float(node.value).is_integer() else "int64"
        return "int64"

    return walk(expr)


def derive_destination(
    query: JoinQuery, alpha: ArraySchema, beta: ArraySchema
) -> ArraySchema:
    """The destination schema τ for a join query.

    Explicit ``INTO`` schemas win; ``SELECT *`` without INTO gets the
    Equation-3 natural-join default; an explicit select list without INTO
    keeps the source shape for pure D:D joins (the output "matches the
    shape of its inputs") and is dimensionless otherwise.
    """
    if query.into_schema is not None:
        return query.into_schema
    if query.select_star:
        return default_destination(query, alpha, beta)
    kinds = {p.kind(alpha, beta) for p in query.predicates}
    attrs = tuple(
        Attribute(
            name=_unique_name(item.output_name, idx, query),
            type_name=infer_expression_type(item.expr, alpha, beta),
        )
        for idx, item in enumerate(query.select)
    )
    # Pure D:D joins whose predicates cover the left source's dimensions
    # keep the source shape ("the output matches the shape of its inputs");
    # partial-dimension joins (e.g. geospatial-only) produce multiple
    # matches per coordinate and therefore a dimensionless output.
    covered = {p.left.field for p in query.predicates} == set(alpha.dim_names)
    dims = alpha.dims if kinds == {PredicateKind.DIM_DIM} and covered else ()
    return ArraySchema(name=query.output_name, dims=tuple(dims), attrs=attrs)


def _unique_name(name: str, idx: int, query: JoinQuery) -> str:
    taken = [item.output_name for item in query.select]
    if taken.count(name) > 1 or name == "expr":
        return f"{name}_{idx}" if name != "expr" else f"expr_{idx}"
    return name


def build_output_spec(query: JoinQuery, schema: JoinSchema) -> list[OutputField]:
    """Resolve every destination field to its value source."""
    dest = schema.destination
    alpha, beta = schema.left_schema, schema.right_schema
    spec: list[OutputField] = []

    for dim in dest.dims:
        spec.append(OutputField(dim.name, "dim", _resolve_name(dim.name, schema)))

    if query.select_star:
        for attr in dest.attrs:
            spec.append(
                OutputField(attr.name, "attr", _resolve_name(attr.name, schema))
            )
        return spec

    if len(query.select) != len(dest.attrs):
        raise PlanningError(
            f"SELECT list has {len(query.select)} items but destination "
            f"{dest.name!r} declares {len(dest.attrs)} attributes"
        )
    for position, attr in enumerate(dest.attrs):
        spec.append(OutputField(attr.name, "attr", ("expr", position)))
    return spec


def _resolve_name(name: str, schema: JoinSchema) -> tuple:
    """Locate a destination field's value by name (Section 4's schema
    alignment): join keys first, then source fields, allowing the
    ``Array_field`` spelling that collision renaming produces."""
    for idx, jfield in enumerate(schema.fields):
        if name in (jfield.name, jfield.left_field, jfield.right_field):
            return ("key", idx)
    alpha, beta = schema.left_schema, schema.right_schema
    candidates = []
    for side, source in (("left", alpha), ("right", beta)):
        if source.has_dim(name) or source.has_attr(name):
            candidates.append((side, name))
        prefixed = f"{source.name}_"
        if name.startswith(prefixed):
            bare = name[len(prefixed):]
            if source.has_dim(bare) or source.has_attr(bare):
                candidates.append((side, bare))
    if not candidates:
        raise PlanningError(
            f"destination field {name!r} matches no join key or source field"
        )
    return candidates[0]


class OutputBuilder:
    """Accumulates output cells from per-unit match batches."""

    def __init__(self, query: JoinQuery, schema: JoinSchema):
        self.query = query
        self.schema = schema
        self.spec = build_output_spec(query, schema)
        self.dest = schema.destination
        self._coord_parts: list[np.ndarray] = []
        self._attr_parts: dict[str, list[np.ndarray]] = {
            f.name: [] for f in self.spec if f.role == "attr"
        }

    def add_matches(
        self,
        left_cells: CellSet,
        right_cells: CellSet,
        left_idx: np.ndarray,
        right_idx: np.ndarray,
        left_keys: list[np.ndarray],
    ) -> int:
        """Materialise one unit's matches; returns the output cell count."""
        part = self.materialise_matches(
            left_cells, right_cells, left_idx, right_idx, left_keys
        )
        if part is None:
            return 0
        coords, attrs = part
        self.add_part(coords, attrs)
        return len(coords)

    def add_part(self, coords: np.ndarray, attrs: dict[str, np.ndarray]) -> None:
        """Append an already-materialised output part (parallel merge path)."""
        self._coord_parts.append(coords)
        for name, column in attrs.items():
            self._attr_parts[name].append(column)

    def materialise_matches(
        self,
        left_cells: CellSet,
        right_cells: CellSet,
        left_idx: np.ndarray,
        right_idx: np.ndarray,
        left_keys: list[np.ndarray],
    ) -> tuple[np.ndarray, dict[str, np.ndarray]] | None:
        """Build one batch of output cells without mutating the builder.

        Pure with respect to builder state, so parallel workers can call
        it concurrently on a shared builder and hand the parts back to
        :meth:`add_part` for a deterministic merge. Returns ``None`` for
        an empty match batch.
        """
        n = len(left_idx)
        if n == 0:
            return None
        env = self._environment(left_cells, right_cells, left_idx, right_idx)

        def column_for(source: tuple) -> np.ndarray:
            kind = source[0]
            if kind == "key":
                return left_keys[source[1]][left_idx]
            if kind == "expr":
                item = self.query.select[source[1]]
                return np.broadcast_to(
                    np.asarray(item.expr.evaluate(env)), (n,)
                ).copy()
            side, field_name = source
            cells = left_cells if side == "left" else right_cells
            source_schema = (
                self.schema.left_schema if side == "left" else self.schema.right_schema
            )
            index = left_idx if side == "left" else right_idx
            if source_schema.has_dim(field_name):
                axis = source_schema.dim_names.index(field_name)
                return cells.dim_column(axis)[index]
            return cells.column(field_name)[index]

        coords = np.empty((n, len(self.dest.dims)), dtype=np.int64)
        attr_values: dict[str, np.ndarray] = {}
        for field in self.spec:
            column = column_for(field.source)
            if field.role == "dim":
                axis = self.dest.dim_names.index(field.name)
                coords[:, axis] = np.asarray(column, dtype=np.int64)
            else:
                dtype = self.dest.attr(field.name).dtype
                attr_values[field.name] = np.asarray(column).astype(dtype)
        return coords, attr_values

    def _environment(
        self,
        left_cells: CellSet,
        right_cells: CellSet,
        left_idx: np.ndarray,
        right_idx: np.ndarray,
    ) -> dict[str, np.ndarray]:
        env: dict[str, np.ndarray] = {}
        ambiguous: set[str] = set()
        for side, cells, index in (
            ("left", left_cells, left_idx),
            ("right", right_cells, right_idx),
        ):
            source = (
                self.schema.left_schema if side == "left" else self.schema.right_schema
            )
            for axis, dim in enumerate(source.dims):
                column = cells.dim_column(axis)[index]
                env[f"{source.name}.{dim.name}"] = column
                _set_bare(env, ambiguous, dim.name, column)
            for name in cells.attr_names:
                column = cells.column(name)[index]
                env[f"{source.name}.{name}"] = column
                _set_bare(env, ambiguous, name, column)
        for name in ambiguous:
            env.pop(name, None)
        return env

    def finish(self) -> CellSet:
        """Concatenate accumulated parts into the final output cell set.

        A join with zero matches accumulates no parts at all —
        ``np.concatenate`` on an empty list raises, so the empty case is
        guarded to return an empty cell set that still carries the
        destination's dimensionality and exact attribute dtypes.
        """
        if not self._coord_parts:
            return CellSet.empty(
                len(self.dest.dims), {a.name: a.dtype for a in self.dest.attrs}
            )
        coords = (
            self._coord_parts[0]
            if len(self._coord_parts) == 1
            else np.concatenate(self._coord_parts)
        )
        attrs = {
            name: parts[0] if len(parts) == 1 else np.concatenate(parts)
            for name, parts in self._attr_parts.items()
        }
        return CellSet(coords, attrs)


def _set_bare(
    env: dict[str, np.ndarray],
    ambiguous: set[str],
    name: str,
    column: np.ndarray,
) -> None:
    if name in ambiguous:
        return
    if name in env:
        ambiguous.add(name)
    else:
        env[name] = column
