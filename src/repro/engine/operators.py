"""Standalone array reorganisation operators.

- ``redimension`` (Section 2.3.1): convert attributes to dimensions or
  vice versa — the executor uses the same conversion implicitly during
  slice mapping, but workflows like the paper's
  ``merge(A, redim(B, <...>))`` example need it standalone;
- ``between`` / ``subarray``: spatial windowing (SciDB staples — science
  workflows carve out regions before joining);
- ``regrid``: block-aggregate an array onto a coarser grid (e.g.
  downsample MODIS 1° cells to 4° averages).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.adm.array import LocalArray
from repro.adm.cells import CellSet
from repro.adm.schema import ArraySchema, Dimension
from repro.errors import SchemaError


def redimension(array: LocalArray, target: ArraySchema) -> LocalArray:
    """Reorganise ``array`` into ``target``'s schema.

    Every field of the target schema (dimension or attribute) must exist
    in the source as either a dimension or an attribute of the same
    name; values are carried across the role change. Cells whose new
    coordinates fall outside the target's dimension ranges are rejected
    — the target schema must cover the data, as in SciDB.

    >>> redimension(a, parse_schema("B<v1:int64, i:int64>[j=1,6,3]"))
    """
    cells = array.cells()
    source = array.schema

    def column_for(name: str) -> np.ndarray:
        if source.has_dim(name):
            return cells.dim_column(source.dim_names.index(name))
        if source.has_attr(name):
            return cells.column(name)
        raise SchemaError(
            f"redimension target field {name!r} does not exist in "
            f"source schema {source.name!r}"
        )

    if not len(cells):
        return LocalArray.empty(target)

    coords = np.empty((len(cells), target.ndims), dtype=np.int64)
    for axis, dim in enumerate(target.dims):
        column = column_for(dim.name)
        if np.issubdtype(column.dtype, np.floating):
            rounded = np.rint(column)
            if not np.allclose(column, rounded):
                raise SchemaError(
                    f"attribute {dim.name!r} holds non-integer values and "
                    f"cannot become a dimension"
                )
            column = rounded.astype(np.int64)
        coords[:, axis] = column

    attrs = {}
    for attr in target.attrs:
        column = column_for(attr.name)
        attrs[attr.name] = np.asarray(column).astype(attr.dtype)

    return LocalArray.from_cells(target, CellSet(coords, attrs))


def _validate_box(
    array: LocalArray, low: Sequence[int], high: Sequence[int]
) -> None:
    if len(low) != array.schema.ndims or len(high) != array.schema.ndims:
        raise SchemaError(
            f"window needs {array.schema.ndims} bounds per corner, got "
            f"{len(low)} and {len(high)}"
        )
    for lo, hi, dim in zip(low, high, array.schema.dims):
        if lo > hi:
            raise SchemaError(
                f"window is empty along {dim.name!r}: {lo} > {hi}"
            )


def between(
    array: LocalArray, low: Sequence[int], high: Sequence[int]
) -> LocalArray:
    """Keep only the cells inside the closed box [low, high].

    The schema is unchanged (SciDB's ``between``): the result still
    lives in the original coordinate space and chunk grid.
    """
    _validate_box(array, low, high)
    cells = array.cells()
    mask = np.ones(len(cells), dtype=bool)
    for axis, (lo, hi) in enumerate(zip(low, high)):
        column = cells.dim_column(axis)
        mask &= (column >= lo) & (column <= hi)
    return LocalArray.from_cells(array.schema, cells.take(mask))


def subarray(
    array: LocalArray, low: Sequence[int], high: Sequence[int]
) -> LocalArray:
    """Extract the box [low, high] and shift it to start at each
    dimension's origin (SciDB's ``subarray``): the result's schema covers
    exactly the window."""
    windowed = between(array, low, high)
    cells = windowed.cells()
    dims = []
    shifted = cells.coords.copy()
    for axis, (lo, hi, dim) in enumerate(zip(low, high, array.schema.dims)):
        shifted[:, axis] = cells.coords[:, axis] - lo + dim.start
        dims.append(
            Dimension(
                name=dim.name,
                start=dim.start,
                end=dim.start + (hi - lo),
                chunk_interval=min(dim.chunk_interval, hi - lo + 1),
            )
        )
    schema = ArraySchema(
        name=f"{array.schema.name}_sub",
        dims=tuple(dims),
        attrs=array.schema.attrs,
    )
    return LocalArray.from_cells(schema, CellSet(shifted, cells.attrs))


def regrid(
    array: LocalArray,
    block_sizes: Sequence[int],
    items,
    output_name: str | None = None,
) -> LocalArray:
    """Block-aggregate onto a coarser grid (SciDB's ``regrid``).

    Each output cell at coordinate ``c`` aggregates the input cells in
    the block ``[start + (c-1)·b, start + c·b - 1]`` along every
    dimension; ``items`` are :class:`repro.query.aql.AggregateItem`.
    """
    from repro.engine.aggregate import aggregate as _aggregate

    schema = array.schema
    if len(block_sizes) != schema.ndims:
        raise SchemaError(
            f"regrid needs one block size per dimension "
            f"({schema.ndims}), got {len(block_sizes)}"
        )
    if any(b <= 0 for b in block_sizes):
        raise SchemaError(f"block sizes must be positive, got {block_sizes}")

    cells = array.cells()
    coarse = np.empty_like(cells.coords)
    dims = []
    for axis, (block, dim) in enumerate(zip(block_sizes, schema.dims)):
        coarse[:, axis] = (cells.coords[:, axis] - dim.start) // block + 1
        n_blocks = -(-dim.extent // block)
        dims.append(
            Dimension(
                name=dim.name,
                start=1,
                end=n_blocks,
                chunk_interval=max(1, -(-dim.chunk_interval // block)),
            )
        )
    coarse_schema = ArraySchema(
        name=f"{schema.name}_grid", dims=tuple(dims), attrs=schema.attrs
    )
    coarse_array = LocalArray.from_cells(
        coarse_schema, CellSet(coarse, cells.attrs)
    )
    return _aggregate(
        coarse_array,
        items,
        group_by=list(coarse_schema.dim_names),
        output_name=output_name or f"{schema.name}_regrid",
    )
