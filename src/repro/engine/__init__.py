"""Shuffle join execution engine.

Performs the two-phase execution of Section 3.4 against the cluster
simulator: data alignment (slice shuffling under the greedy write-lock
schedule) followed by per-unit cell comparison with the selected join
algorithm. The executor really computes the join (numpy cell matching)
and *derives* phase durations from the simulated network schedule plus
calibrated per-cell CPU rates.
"""

from repro.engine.executor import (
    ExecutionReport,
    ExplainReport,
    JoinResult,
    PreparedJoin,
    ShuffleJoinExecutor,
)
from repro.engine.operators import between, redimension, regrid, subarray
from repro.engine.aggregate import aggregate, apply_expression, window
from repro.engine.multijoin import MultiJoinResult, execute_multi_join
from repro.engine.joins import hash_join_match, merge_join_match, nested_loop_match
from repro.engine.kernels import (
    HAVE_NUMBA,
    KERNELS,
    packed_match,
    packed_match_sorted,
    resolve_kernel,
)
from repro.engine.shm import SharedArena, live_arena_names
from repro.engine.parallel import shutdown_pools
from repro.engine.simulation import SimulationParams

__all__ = [
    "HAVE_NUMBA",
    "KERNELS",
    "SharedArena",
    "live_arena_names",
    "packed_match",
    "packed_match_sorted",
    "resolve_kernel",
    "shutdown_pools",
    "ExecutionReport",
    "ExplainReport",
    "redimension",
    "between",
    "subarray",
    "regrid",
    "aggregate",
    "apply_expression",
    "window",
    "MultiJoinResult",
    "execute_multi_join",
    "JoinResult",
    "PreparedJoin",
    "ShuffleJoinExecutor",
    "SimulationParams",
    "hash_join_match",
    "merge_join_match",
    "nested_loop_match",
]
