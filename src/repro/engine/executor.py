"""The shuffle join executor (Sections 3.3-3.4 end to end).

Pipeline: parse AQL → infer the join schema → logical planning
(Algorithm 1) → slice mapping on every node → physical planning →
data alignment over the simulated write-lock network schedule → per-unit
cell comparison → output construction in the destination schema.

The join is *really computed* (numpy cell matching, validated against a
brute-force cross join in the test suite); the phase durations are
*derived* from the simulated network schedule plus calibrated per-cell
CPU rates, while planning time is genuine wall-clock time of the planner
implementations.
"""

from __future__ import annotations

import threading
import time
import warnings
from dataclasses import dataclass, field

import numpy as np

from repro.adm.array import LocalArray
from repro.adm.cells import CellSet, composite_key
from repro.adm.keycodec import KeyCodec, plan_codec
from repro.adm.schema import ArraySchema
from repro.adm.stats import Histogram
from repro.cluster.cluster import Cluster
from repro.cluster.network import Transfer, schedule_shuffle
from repro.core.cost_model import AnalyticalCostModel, CostParams, PlanCost
from repro.core.join_schema import JoinSchema, infer_join_schema
from repro.core.logical import LogicalPlan, LogicalPlanner, PlanInputs
from repro.core.planners import PhysicalPlan, get_planner
from repro.core.slices import SliceStats, key_columns, unit_ids_for
from repro.core.splitting import SplitPlan, plan_unit_split
from repro.engine.joins import hash_join_match, match_pairs
from repro.engine.kernels import resolve_kernel
from repro.engine.output import OutputBuilder, derive_destination
from repro.engine.parallel import (
    UnitBatch,
    resolve_mode,
    resolve_workers,
    run_batches,
    run_shm_batches,
    shutdown_pools,
)
from repro.engine.shm import SharedArena
from repro.engine.simulation import SimulationParams
from repro.errors import ExecutionError, PlanningError
from repro.obs.counters import CounterSet
from repro.obs.explain_analyze import ExplainAnalyzeReport
from repro.obs.metrics import MetricsRegistry, record_execution
from repro.obs.timers import PhaseProfiler
from repro.obs.trace import Tracer
from repro.query.aql import FilterQuery, JoinQuery, MultiJoinQuery, parse_aql
from repro.query.afl import apply_filter
from repro.serve.cache import CachedPlan, PlanCache
from repro.serve.fingerprint import Fingerprint, plan_fingerprint


@dataclass
class ExecutionReport:
    """Timing and traffic breakdown of one shuffle join execution.

    ``plan_seconds`` is measured wall-clock planning time (logical +
    physical); ``align_seconds`` and ``compare_seconds`` are simulated
    phase durations.
    """

    planner: str
    join_algo: str
    unit_kind: str
    n_units: int
    logical_afl: str
    plan_seconds: float
    align_seconds: float
    compare_seconds: float
    cells_moved: int
    n_transfers: int
    output_cells: int
    #: bytes actually shipped (coordinates + only the attributes the query
    #: needs — the vertical-partitioning payoff of Section 2.1) and the
    #: bytes a row-store would have shipped (all attributes)
    bytes_moved: int = 0
    bytes_moved_full_width: int = 0
    analytic_cost: PlanCost | None = None
    per_node_compare: np.ndarray | None = None
    cells_sent: dict[int, int] = field(default_factory=dict)
    cells_received: dict[int, int] = field(default_factory=dict)
    meta: dict = field(default_factory=dict)
    #: Wall-clock seconds per prepare stage (cache_lookup / logical_plan /
    #: stats / physical_assign / alignment / schedule), from the profiler.
    prepare_breakdown: dict[str, float] = field(default_factory=dict)
    #: Plan-cache outcome for this query: ``status`` (hit/miss) and
    #: fingerprint plus the cache's cumulative hit/miss/eviction counters.
    #: Empty when the executor runs without a plan cache.
    cache: dict = field(default_factory=dict)
    #: Cells each node's matching emitted (parallel to the cluster's
    #: node ids; ``per_node_compare`` carries the busy seconds).
    per_node_output: np.ndarray | None = None
    #: Per-node predicted (Eqs 5-8) and observed cost vectors, captured
    #: by ``analyze``/traced executions; feeds
    #: :class:`repro.obs.explain_analyze.ExplainAnalyzeReport`.
    node_profile: dict | None = None

    @property
    def execute_seconds(self) -> float:
        """Simulated execution time: data alignment + cell comparison."""
        return self.align_seconds + self.compare_seconds

    @property
    def total_seconds(self) -> float:
        """End-to-end latency: planning + alignment + comparison."""
        return self.plan_seconds + self.execute_seconds

    def describe(self) -> str:
        text = (
            f"[{self.planner}/{self.join_algo}] total={self.total_seconds:.3f}s "
            f"(plan={self.plan_seconds:.3f}s, align={self.align_seconds:.3f}s, "
            f"compare={self.compare_seconds:.3f}s) "
            f"moved={self.cells_moved} cells, out={self.output_cells} cells"
        )
        if self.prepare_breakdown:
            stages = ", ".join(
                f"{stage}={seconds * 1000:.1f}ms"
                for stage, seconds in self.prepare_breakdown.items()
            )
            text += f"\n  prepare: {stages}"
        if self.cache:
            counters = " ".join(
                f"{name}={self.cache[name]}"
                for name in ("hits", "misses", "evictions", "entries")
                if name in self.cache
            )
            text += (
                f"\n  plan cache: {self.cache.get('status', '?')} "
                f"[{self.cache.get('fingerprint', '?')}] {counters}"
            )
        return text


@dataclass
class JoinResult:
    """A completed join: the output array plus its execution report."""

    array: LocalArray
    report: ExecutionReport
    logical_plan: LogicalPlan
    physical_plan: PhysicalPlan | None
    join_schema: JoinSchema
    #: The per-query tracer when the query ran with ``trace=...``.
    trace: Tracer | None = None

    @property
    def cells(self) -> CellSet:
        return self.array.cells()


@dataclass
class ExplainReport:
    """Planning-only view of a join query (no execution).

    Lists every valid logical plan with its Algorithm-1 cost, the chosen
    plan, and — when a physical planner was requested — the join-unit
    assignment summary and its analytic cost.
    """

    query: str
    destination: str
    join_kind: str
    chosen_afl: str
    chosen: LogicalPlan
    candidates: list[tuple[str, float]]
    physical: PhysicalPlan | None = None
    n_units: int | None = None
    #: Plan-cache outcome of the lookup explain performed (``"hit"`` /
    #: ``"miss"``), or None when the executor runs without a plan cache.
    cache_status: str | None = None
    cache_fingerprint: str | None = None

    def describe(self) -> str:
        lines = [
            f"query:       {self.query}",
            f"destination: {self.destination}",
            f"join kind:   {self.join_kind}",
            f"chosen plan: {self.chosen_afl}",
            "candidate logical plans (cost ascending):",
        ]
        for description, cost in self.candidates:
            marker = "  *" if description == self.chosen.describe() else "   "
            lines.append(f"{marker} {description}")
        if self.physical is not None:
            lines.append(
                f"physical:    {self.physical.describe()} "
                f"over {self.n_units} join units"
            )
        if self.cache_status is not None:
            lines.append(
                f"plan cache:  {self.cache_status} "
                f"[{self.cache_fingerprint or '?'}]"
            )
        return "\n".join(lines)


@dataclass
class _SideAssembly:
    """One join side's cells in globally unit-major order.

    Built by the single-sort slice mapping: all nodes' cells (with their
    key columns and composite keys) are concatenated node-major, then one
    stable argsort by join-unit id puts them in unit-major order — within
    a unit, ascending node id; within a node, original arrival order.
    Every per-unit view (assembled cells, key columns, composite keys,
    per-node pieces) is then a contiguous slice of these arrays: no
    per-piece construction, no re-sorting, no per-unit key re-derivation.
    """

    cells: CellSet
    #: ``n_units + 1`` row boundaries: unit ``u`` spans
    #: ``[bounds[u], bounds[u + 1])``.
    bounds: np.ndarray
    key_cols: list[np.ndarray]
    keys: np.ndarray
    #: ``n_units * n_nodes + 1`` boundaries of per-(unit, node) pieces —
    #: contiguous because the stable unit sort keeps nodes in concat order.
    piece_offsets: np.ndarray
    n_nodes: int

    def slice_cells(self, lo: int, hi: int) -> CellSet:
        coords = self.cells.coords
        return CellSet._from_validated(
            coords[lo:hi],
            {name: col[lo:hi] for name, col in self.cells.attrs.items()},
        )


@dataclass
class _SliceTable:
    """Slice mapping output: per-(side, unit, node) cell sets + statistics.

    The single-sort mapping stores each side as one :class:`_SideAssembly`
    and serves units as slice views. The reference mapping (and slice
    tables built by hand in tests) stores explicit per-(unit, node) piece
    tables instead. Assembly and key derivation are memoised per
    (side, unit): a prepared join executed under several planners (or
    re-executed serial vs parallel) materialises each unit exactly once.
    The caches are safe because cell sets are immutable by convention and
    the slice tables themselves are never mutated after slice mapping.
    """

    stats: SliceStats
    left: list[list[CellSet | None]] | None = None
    right: list[list[CellSet | None]] | None = None
    left_assembly: _SideAssembly | None = None
    right_assembly: _SideAssembly | None = None
    #: The packed-key codec covering both assemblies' composite keys, or
    #: None when keys are structured (packing disabled, reference slice
    #: mapping, or a key wider than 64 bits).
    codec: KeyCodec | None = None
    #: The plan-time unit split applied to this table's assemblies, or
    #: None when splitting is off, declined (structured keys, no heavy
    #: units, single-hot-key units), or not applicable to the plan.
    split: SplitPlan | None = None
    _assembled: dict[tuple[str, int], CellSet | None] = field(
        default_factory=dict, repr=False
    )
    _keys: dict[tuple[str, int], tuple[list[np.ndarray], np.ndarray]] = field(
        default_factory=dict, repr=False
    )
    #: Merge-join sort orders per (side, unit): the serial merge path
    #: argsorts each unit's composite key once, not once per execution.
    _orders: dict[tuple[str, int], np.ndarray] = field(
        default_factory=dict, repr=False
    )
    #: Shuffle schedules keyed by (assignment bytes, policy): the network
    #: simulation is a deterministic function of the slice statistics and
    #: the unit assignment, so planner-comparison studies re-executing a
    #: prepared join under the same assignment reuse the schedule.
    _alignment: dict[tuple[bytes, str], tuple[float, object]] = field(
        default_factory=dict, repr=False
    )
    #: Physical plans keyed by (planner, join algo): like the shuffle
    #: schedule, a physical plan is a function of the slice statistics
    #: only, so re-executing a prepared join under the same planner
    #: reuses the assignment instead of re-solving it per execution.
    _physical_memo: dict[tuple[str, str], tuple[np.ndarray, object]] = field(
        default_factory=dict, repr=False
    )
    #: Shared-memory arena over both assemblies' packed keys and bounds,
    #: built lazily for process-mode execution and reused across
    #: executions of the same prepared join. ``None`` until built (or
    #: after release); ``_arena_failed`` latches allocation failures so
    #: one failed segment doesn't retry per execution.
    _arena: SharedArena | None = field(default=None, repr=False)
    _arena_failed: bool = field(default=False, repr=False)
    #: Serialises arena creation/release: two concurrent process-mode
    #: executions of one cached plan must share one segment, not race
    #: check-then-create and leak the loser's /dev/shm allocation.
    _arena_lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False
    )

    def _side_assembly(self, side: str) -> _SideAssembly | None:
        return self.left_assembly if side == "left" else self.right_assembly

    def shm_arena(self) -> SharedArena | None:
        """Create-or-get the shared arena (packed single-sort joins only).

        Returns None when the layout cannot be shared — structured keys,
        reference slice mapping, or a shared-memory allocation failure —
        and the caller falls back to the classic pickling path.
        """
        with self._arena_lock:
            if self._arena is not None and not self._arena.closed:
                return self._arena
            if self._arena_failed or self.codec is None:
                return None
            left, right = self.left_assembly, self.right_assembly
            if left is None or right is None:
                return None
            try:
                self._arena = SharedArena.create(
                    left.keys, right.keys, left.bounds, right.bounds,
                    self.codec.total_width,
                )
            except (OSError, ValueError):
                self._arena_failed = True
                return None
            return self._arena

    def release_arena(self) -> None:
        """Tear down the shared arena now (idempotent; GC also covers it)."""
        with self._arena_lock:
            arena, self._arena = self._arena, None
        if arena is not None:
            arena.release()

    def assembled(self, side: str, unit: int) -> CellSet | None:
        cache_key = (side, unit)
        if cache_key in self._assembled:
            return self._assembled[cache_key]
        assembly = self._side_assembly(side)
        if assembly is not None:
            lo = int(assembly.bounds[unit])
            hi = int(assembly.bounds[unit + 1])
            result = assembly.slice_cells(lo, hi) if hi > lo else None
        else:
            table = self.left if side == "left" else self.right
            parts = (
                [c for c in table[unit] if c is not None and len(c)]
                if table is not None
                else []
            )
            result = CellSet.concat(parts) if parts else None
        self._assembled[cache_key] = result
        return result

    def piece(self, side: str, unit: int, node: int) -> CellSet | None:
        """One node's contribution to one unit (view or stored piece)."""
        assembly = self._side_assembly(side)
        if assembly is not None:
            offset = unit * assembly.n_nodes + node
            lo = int(assembly.piece_offsets[offset])
            hi = int(assembly.piece_offsets[offset + 1])
            return assembly.slice_cells(lo, hi) if hi > lo else None
        table = self.left if side == "left" else self.right
        return table[unit][node] if table is not None else None

    def unit_keys(
        self, side: str, unit: int, join_schema: JoinSchema
    ) -> tuple[list[np.ndarray], np.ndarray]:
        """Cached (key columns, composite keys) of one assembled unit side.

        The keys are packed ``uint64`` when :attr:`codec` is set (the
        assemblies were built with packed keys) and structured otherwise;
        every matcher accepts both representations.
        """
        cache_key = (side, unit)
        if cache_key in self._keys:
            return self._keys[cache_key]
        assembly = self._side_assembly(side)
        if assembly is not None:
            lo = int(assembly.bounds[unit])
            hi = int(assembly.bounds[unit + 1])
            # Row-aligned with assembled() by construction: the same
            # global sort ordered the cells and the key material.
            cols = [col[lo:hi] for col in assembly.key_cols]
            keys = assembly.keys[lo:hi]
            self._keys[cache_key] = (cols, keys)
            return cols, keys
        cells = self.assembled(side, unit)
        source = (
            join_schema.left_schema if side == "left" else join_schema.right_schema
        )
        cols = key_columns(join_schema, side, cells, source)
        keys = composite_key(cols)
        self._keys[cache_key] = (cols, keys)
        return cols, keys

    def unit_order(
        self, side: str, unit: int, join_schema: JoinSchema
    ) -> np.ndarray:
        """Cached stable argsort of one unit side's composite key."""
        cache_key = (side, unit)
        order = self._orders.get(cache_key)
        if order is None:
            _, keys = self.unit_keys(side, unit, join_schema)
            order = np.argsort(keys, kind="stable")
            self._orders[cache_key] = order
        return order

    def shipped_bytes_per_cell(self, side: str) -> int:
        """Bytes per cell of one side's (projected) slices.

        Every slice of a side carries the same columns (the slice mapping
        projects to the ship fields first), so one sample piece fixes the
        whole side's width.
        """
        assembly = self._side_assembly(side)
        if assembly is not None:
            cells = assembly.cells
            if not len(cells):
                return 0
            return 8 * cells.ndims + sum(
                column.dtype.itemsize for column in cells.attrs.values()
            )
        table = self.left if side == "left" else self.right
        for row in table or []:
            for piece in row:
                if piece is not None and len(piece):
                    return 8 * piece.ndims + sum(
                        column.dtype.itemsize for column in piece.attrs.values()
                    )
        return 0


class ShuffleJoinExecutor:
    """Plans and executes shuffle joins against a cluster."""

    def __init__(
        self,
        cluster: Cluster,
        cost_params: CostParams | None = None,
        sim_params: SimulationParams | None = None,
        n_buckets: int | None = None,
        selectivity_hint: float | None = None,
        ilp_time_budget_s: float = 5.0,
        tabu_max_rounds: int = 64,
        shuffle_policy: str = "greedy_lock",
        n_workers: int | None = None,
        parallel_mode: str = "thread",
        shm: bool | None = None,
        kernel: str = "auto",
        split_units: str = "off",
        split_threshold: float = 4.0,
        split_factor: int = 8,
        profiler: PhaseProfiler | None = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        single_sort: bool = True,
        packed_keys: bool = True,
        plan_cache: PlanCache | None = None,
        plan_cache_size: int = 0,
    ):
        self.cluster = cluster
        self.shuffle_policy = shuffle_policy
        # Warm-path serving: a bounded LRU of prepared plans keyed by
        # content fingerprints (see repro.serve). Off by default at the
        # executor level so benchmark/experiment harnesses measuring
        # planning cost keep measuring it; Session turns it on.
        if plan_cache is not None:
            self.plan_cache: PlanCache | None = plan_cache
        else:
            self.plan_cache = PlanCache(plan_cache_size) if plan_cache_size else None
        # ``single_sort=False`` replays the pre-vectorization slice
        # mapping (one partition sort per structure, per-unit key
        # re-derivation at match time). Kept as the reference arm for
        # the prepare benchmark and as an ablation/debug switch.
        self.single_sort = single_sort
        # ``packed_keys=False`` keeps structured composite keys even when
        # the join key would fit one packed uint64 lane — the reference
        # oracle for the key codec (see repro.adm.keycodec). Packing only
        # applies on the single-sort pipeline; the reference slice
        # mapping always uses structured keys.
        self.packed_keys = packed_keys
        # Enabled by default: the executor enters a handful of coarse
        # phases per query, so every report can carry the prepare
        # breakdown at negligible cost. Pass a disabled profiler to
        # switch the spans into shared no-op context managers.
        self.profiler = profiler if profiler is not None else PhaseProfiler()
        # Span tracing is *off* by default (a disabled tracer's span()
        # returns one shared no-op context manager); pass an enabled
        # Tracer — or trace=... on execute — to record execution spans.
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        # The metrics registry is always on: it only aggregates a few
        # per-execution totals and skew gauges, negligible against the
        # matching work, and gives the serving path standing telemetry.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        # Worker-pool knobs for the cell-comparison phase: None/0/1 run
        # the serial per-unit path; >1 batches units per assigned node
        # and executes the batches on a pool (see repro.engine.parallel).
        self.n_workers = resolve_workers(n_workers)
        self.parallel_mode = resolve_mode(parallel_mode)
        # Zero-copy process workers: on by default in process mode (the
        # whole point of the mode), meaningless for threads — which
        # already share every array — so shm=True there is a warned
        # no-op rather than a crash.
        if shm is None:
            shm = self.parallel_mode == "process"
        elif shm and self.parallel_mode != "process":
            warnings.warn(
                "shm=True has no effect with parallel_mode="
                f"{self.parallel_mode!r}: threads already share memory; "
                "ignoring",
                stacklevel=2,
            )
            shm = False
        self.shm = bool(shm)
        # The packed-key match kernel: resolved once ("auto" → numba
        # when installed, numpy otherwise) so every batch and report
        # sees the implementation that actually runs.
        self.kernel = resolve_kernel(kernel)
        # Skew splitting: "static" subdivides heavy units at plan time
        # (key-boundary cuts through repro.core.splitting); "adaptive"
        # additionally re-splits straggler ranges at run time on the
        # shared-memory process path. Splitting needs packed keys on the
        # single-sort pipeline; the structured fallback declines and
        # stays the byte-exact oracle.
        if split_units not in ("off", "static", "adaptive"):
            raise ExecutionError(
                f"unknown split_units {split_units!r}; expected 'off', "
                "'static', or 'adaptive'"
            )
        if split_threshold <= 0:
            raise ExecutionError(
                f"split_threshold must be positive, got {split_threshold}"
            )
        if split_factor < 2:
            raise ExecutionError(
                f"split_factor must be at least 2, got {split_factor}"
            )
        self.split_units = split_units
        self.split_threshold = float(split_threshold)
        self.split_factor = int(split_factor)
        self.cost = (
            cost_params
            if cost_params is not None
            else CostParams().with_bandwidth(cluster.network.bandwidth_cells_per_s)
        )
        self.sim = sim_params or SimulationParams()
        self.n_buckets = n_buckets
        self.selectivity_hint = selectivity_hint
        self.ilp_time_budget_s = ilp_time_budget_s
        self.tabu_max_rounds = tabu_max_rounds

    # ------------------------------------------------------------ public API

    def execute(
        self,
        query: str | JoinQuery,
        planner: str = "tabu",
        join_algo: str | None = None,
        store_result: bool = False,
        n_workers: int | None = None,
        use_cache: bool | None = None,
        analyze: bool = False,
        trace: "str | bool | None" = None,
        tenant: str | None = None,
    ) -> JoinResult:
        """Run a join query end to end.

        ``planner`` selects the physical planner (baseline, mbh, tabu,
        ilp, ilp_coarse). ``join_algo`` optionally pins the logical plan
        to one join algorithm (as the Figure 5/6 experiments do);
        otherwise Algorithm 1 picks the cheapest. ``n_workers`` overrides
        the executor's worker-pool size for this query only.
        ``use_cache=False`` bypasses the plan cache for this query
        (both lookup and population); the default uses the cache
        whenever the executor has one.

        ``analyze=True`` captures the per-node predicted-vs-actual cost
        profile (``report.node_profile``) for explain-analyze.
        ``trace`` records execution spans for this query onto a fresh
        tracer attached to the result (``result.trace``); a string
        value additionally writes the Chrome trace JSON to that path.

        ``tenant`` namespaces the plan-cache entry: the token is folded
        into the content fingerprint, so tenants never share cached
        plans (the LRU budget stays shared) and the metrics registry
        accumulates per-tenant ``tenant_cache_hits.<t>`` /
        ``tenant_cache_misses.<t>`` counters.
        """
        if tenant is not None and (
            not isinstance(tenant, str) or not tenant
        ):
            raise ExecutionError(
                f"tenant must be a non-empty string or None, got {tenant!r}"
            )
        if isinstance(query, str):
            parsed = parse_aql(query)
        else:
            parsed = query
        if isinstance(parsed, FilterQuery):
            raise ExecutionError(
                "ShuffleJoinExecutor.execute handles join queries; use "
                "execute_filter for single-array queries"
            )
        query_tracer = Tracer() if trace else None
        saved_tracer = self.tracer
        if query_tracer is not None:
            self.tracer = query_tracer
        try:
            result = self._execute_parsed(
                parsed, planner, join_algo, store_result, n_workers,
                use_cache, analyze, tenant,
            )
        finally:
            self.tracer = saved_tracer
        if query_tracer is not None:
            if isinstance(trace, (str, bytes)) or hasattr(trace, "__fspath__"):
                query_tracer.write_chrome(trace)
            result.trace = query_tracer
        return result

    def _execute_parsed(
        self,
        parsed: JoinQuery | MultiJoinQuery,
        planner: str,
        join_algo: str | None,
        store_result: bool,
        n_workers: int | None,
        use_cache: bool | None,
        analyze: bool,
        tenant: str | None = None,
    ) -> JoinResult:
        if isinstance(parsed, MultiJoinQuery):
            from repro.engine.multijoin import execute_multi_join

            if join_algo is not None:
                raise ExecutionError(
                    "multi-join stages choose their own join algorithms; "
                    "join_algo cannot be pinned"
                )
            result = execute_multi_join(
                self, parsed, planner=planner, n_workers=n_workers,
                use_cache=use_cache, analyze=analyze, tenant=tenant,
            )
            if store_result and not self.cluster.catalog.exists(
                result.array.schema.name
            ):
                self.cluster.load_array(result.array)
            return result
        result = self._execute_join(
            parsed, planner, join_algo, n_workers, use_cache=use_cache,
            analyze=analyze, tenant=tenant,
        )
        if store_result and not self.cluster.catalog.exists(result.array.schema.name):
            self.cluster.load_array(result.array)
        return result

    def explain_analyze(
        self,
        query: str | JoinQuery,
        planner: str = "tabu",
        join_algo: str | None = None,
        n_workers: int | None = None,
        use_cache: bool | None = None,
        trace: "str | bool | None" = None,
    ) -> ExplainAnalyzeReport:
        """Execute a join and report per-node predicted-vs-actual costs.

        The query *really runs* (EXPLAIN ANALYZE semantics): the report
        lines the physical cost model's per-node alignment/comparison
        predictions (Equations 5-8) up against what the execution
        observed, with skew statistics over the actual per-node loads.
        The underlying :class:`JoinResult` rides along as
        ``report.result``.
        """
        text = query if isinstance(query, str) else str(query)
        result = self.execute(
            query, planner=planner, join_algo=join_algo,
            n_workers=n_workers, use_cache=use_cache,
            analyze=True, trace=trace,
        )
        from repro.engine.multijoin import MultiJoinResult

        if isinstance(result, MultiJoinResult):
            from repro.obs.explain_analyze import MultiJoinExplainAnalyzeReport

            return MultiJoinExplainAnalyzeReport.from_result(
                result, query=text
            )
        return ExplainAnalyzeReport.from_result(result, query=text)

    def explain(
        self,
        query: str | JoinQuery,
        planner: str | None = None,
        join_algo: str | None = None,
    ) -> ExplainReport:
        """Plan a join query without executing it.

        With ``planner`` given, slice mapping and physical planning run
        too (they read only statistics and never move data), so the
        report includes the join-unit-to-node assignment summary.
        """
        parsed = parse_aql(query) if isinstance(query, str) else query
        if isinstance(parsed, FilterQuery):
            raise ExecutionError("explain covers join queries")
        if isinstance(parsed, MultiJoinQuery):
            from repro.engine.multijoin import explain_multi_join

            if join_algo is not None:
                raise ExecutionError(
                    "multi-join stages choose their own join algorithms; "
                    "join_algo cannot be pinned"
                )
            return explain_multi_join(
                self, parsed, planner=planner,
                text=query if isinstance(query, str) else str(query),
            )
        alpha = self.cluster.schema(parsed.left)
        beta = self.cluster.schema(parsed.right)
        destination = derive_destination(parsed, alpha, beta)
        join_schema = infer_join_schema(
            parsed, alpha, beta,
            histograms=self._histograms_for(parsed, alpha, beta),
            destination=destination,
        )
        inputs = PlanInputs(
            n_alpha=self.cluster.array_cell_count(parsed.left),
            n_beta=self.cluster.array_cell_count(parsed.right),
            c_alpha=max(self.cluster.catalog_entry(parsed.left).n_chunks, 1),
            c_beta=max(self.cluster.catalog_entry(parsed.right).n_chunks, 1),
            selectivity=self._selectivity(parsed, join_schema),
            n_nodes=self.cluster.n_nodes,
        )
        logical_planner = LogicalPlanner(join_schema, inputs)
        candidates = [
            (plan.describe(), plan.cost)
            for plan in logical_planner.enumerate_plans(include_nested_loop=False)
        ]
        if join_algo is None:
            chosen = logical_planner.best_plan(include_nested_loop=False)
        else:
            chosen = logical_planner.plan_named(join_algo)

        physical_plan = None
        n_units = None
        cache_status = None
        cache_fingerprint = None
        if planner is not None and self.cluster.n_nodes > 1:
            entry = None
            if self.plan_cache is not None:
                with self.profiler.phase("cache_lookup"):
                    fingerprint = self._plan_fingerprint(
                        parsed, planner, join_algo
                    )
                    entry = self.plan_cache.get(fingerprint)
                # Read-only consult: explain never populates the cache
                # (its logical phase ignores pushdown-filtered counts,
                # so a stored plan could diverge from an executed one),
                # and a hit must agree with the plan shown above.
                if entry is not None and (
                    entry.logical_plan.join_algo != chosen.join_algo
                ):
                    entry = None
                cache_status = "hit" if entry is not None else "miss"
                cache_fingerprint = fingerprint.short
            if entry is not None:
                n_units = entry.n_units
                physical_plan = entry.physical_plan
            else:
                n_units, slice_table = self._slice_mapping(
                    parsed, join_schema, chosen
                )
                _, physical_plan, _ = self._physical_plan(
                    slice_table.stats, chosen, planner,
                    split=slice_table.split,
                )
        return ExplainReport(
            query=query if isinstance(query, str) else str(query),
            destination=destination.to_literal(),
            join_kind=str(join_schema.kind),
            chosen_afl=chosen.afl(join_schema),
            chosen=chosen,
            candidates=candidates,
            physical=physical_plan,
            n_units=n_units,
            cache_status=cache_status,
            cache_fingerprint=cache_fingerprint,
        )

    def execute_filter(self, query: str | FilterQuery) -> LocalArray:
        """Run a single-array query: scan → filter → aggregate/project."""
        parsed = parse_aql(query) if isinstance(query, str) else query
        if not isinstance(parsed, FilterQuery):
            raise ExecutionError("execute_filter expects a single-array query")
        array = self.cluster.gather_array(parsed.array)
        if parsed.predicate is not None:
            array = apply_filter(array, parsed.predicate)
        if parsed.has_aggregates:
            from repro.engine.aggregate import aggregate

            output_name = (
                parsed.into_schema.name
                if parsed.into_schema is not None
                else parsed.into_name
            )
            return aggregate(
                array,
                parsed.select,
                group_by=parsed.group_by,
                output_name=output_name,
            )
        return array

    # ------------------------------------------------------------- internals

    def prepare(
        self,
        query: str | JoinQuery,
        join_algo: str | None = None,
        selectivity_hint: float | None = None,
    ) -> "PreparedJoin":
        """Run the planner-independent phases once and keep the result.

        Logical planning and slice mapping do not depend on the physical
        planner, so a prepared join can be executed under several
        planners (:meth:`PreparedJoin.execute`,
        :meth:`PreparedJoin.compare`) without repeating them — the shape
        planner-comparison studies take. ``selectivity_hint`` overrides
        the sampling estimator for this query only (the multi-join
        pipeline hands each stage the ordering DP's output estimate).
        """
        parsed = parse_aql(query) if isinstance(query, str) else query
        if not isinstance(parsed, JoinQuery):
            raise ExecutionError("prepare expects a two-array join query")
        snapshot = self.profiler.snapshot()
        plan_started = time.perf_counter()
        with self.profiler.phase("logical_plan"):
            join_schema, logical_plan = self._logical_phase(
                parsed, join_algo, selectivity_hint=selectivity_hint
            )
        logical_seconds = time.perf_counter() - plan_started
        with self.profiler.phase("stats"):
            n_units, slice_table = self._slice_mapping(
                parsed, join_schema, logical_plan
            )
        return PreparedJoin(
            executor=self,
            query=parsed,
            join_schema=join_schema,
            logical_plan=logical_plan,
            logical_seconds=logical_seconds,
            n_units=n_units,
            slice_table=slice_table,
            prepare_breakdown=self.profiler.since(snapshot),
        )

    def _logical_phase(
        self,
        query: JoinQuery,
        join_algo: str | None,
        selectivity_hint: float | None = None,
    ) -> tuple[JoinSchema, LogicalPlan]:
        cluster = self.cluster
        alpha = cluster.schema(query.left)
        beta = cluster.schema(query.right)
        destination = derive_destination(query, alpha, beta)
        histograms = self._histograms_for(query, alpha, beta)
        join_schema = infer_join_schema(
            query, alpha, beta, histograms=histograms, destination=destination
        )
        inputs = PlanInputs(
            n_alpha=self._filtered_count(query, query.left),
            n_beta=self._filtered_count(query, query.right),
            c_alpha=max(cluster.catalog_entry(query.left).n_chunks, 1),
            c_beta=max(cluster.catalog_entry(query.right).n_chunks, 1),
            selectivity=self._selectivity(
                query, join_schema, hint=selectivity_hint
            ),
            n_nodes=cluster.n_nodes,
        )
        logical_planner = LogicalPlanner(join_schema, inputs)
        if join_algo is None:
            logical_plan = logical_planner.best_plan(include_nested_loop=False)
        else:
            logical_plan = logical_planner.plan_named(join_algo)
        return join_schema, logical_plan

    def _fingerprint_options(self, tenant: str | None) -> dict:
        """Every planner-relevant executor knob, for plan fingerprints."""
        return {
            # Per-tenant cache namespacing: the tenant token changes the
            # fingerprint, so tenants never hit each other's entries —
            # one shared LRU budget, disjoint key spaces.
            "tenant": tenant,
            "n_buckets": self.n_buckets,
            "selectivity_hint": self.selectivity_hint,
            "shuffle_policy": self.shuffle_policy,
            "single_sort": self.single_sort,
            "packed_keys": self.packed_keys,
            # The split configuration changes the slice table's unit
            # granularity, so cached plans must never cross it. (The
            # runtime-only knobs — kernel, shm, parallel_mode — stay
            # fingerprint-neutral: they don't change the plan.)
            "split_units": self.split_units,
            "split_threshold": self.split_threshold,
            "split_factor": self.split_factor,
            "tabu_max_rounds": self.tabu_max_rounds,
            "ilp_time_budget_s": self.ilp_time_budget_s,
            "cost": self.cost,
            "sim": self.sim,
        }

    def _plan_fingerprint(
        self,
        query: JoinQuery,
        planner: str,
        join_algo: str | None,
        tenant: str | None = None,
    ) -> Fingerprint:
        """Content fingerprint of one (query, data, cluster, options)."""
        return plan_fingerprint(
            query, self.cluster, planner, join_algo,
            self._fingerprint_options(tenant),
        )

    def _pipeline_fingerprint(
        self,
        query: MultiJoinQuery,
        planner: str,
        tenant: str | None = None,
    ) -> Fingerprint:
        """Whole-pipeline fingerprint for a multi-join query.

        Embeds one ``uid.version.epoch@schema`` token per *base* array
        (intermediates are ephemeral and derived), the cluster shape,
        and the same option set as binary plans — the ordering DP reads
        those knobs through each stage's planner. A version or epoch
        bump on any base array changes the key, so stale pipelines can
        never be replayed.
        """
        return plan_fingerprint(
            query, self.cluster, planner, None,
            self._fingerprint_options(tenant),
        )

    def invalidate_cached_plans(self, array_name: str | None = None) -> int:
        """Purge cached plans reading one array (or all); returns count.

        Fingerprint versioning already prevents stale hits; eager
        purging (used by DROP ARRAY) just frees the LRU slots early.
        """
        if self.plan_cache is None:
            return 0
        if array_name is None:
            dropped = len(self.plan_cache)
            self.plan_cache.clear()
            return dropped
        return self.plan_cache.invalidate_array(array_name)

    def _execute_join(
        self,
        query: JoinQuery,
        planner_name: str,
        join_algo: str | None,
        n_workers: int | None = None,
        use_cache: bool | None = None,
        analyze: bool = False,
        tenant: str | None = None,
    ) -> JoinResult:
        # ---- plan-cache lookup (timed) ----
        cache = self.plan_cache if use_cache is not False else None
        cache_info: dict = {}
        entry = None
        fingerprint = None
        lookup_seconds = 0.0
        if cache is not None:
            lookup_started = time.perf_counter()
            with self.tracer.span("cache_lookup") as lookup_span:
                with self.profiler.phase("cache_lookup"):
                    fingerprint = self._plan_fingerprint(
                        query, planner_name, join_algo, tenant
                    )
                    entry = cache.get(fingerprint)
                lookup_span.set(
                    status="hit" if entry is not None else "miss",
                    fingerprint=fingerprint.short,
                )
            lookup_seconds = time.perf_counter() - lookup_started
            cache_info = {
                "status": "hit" if entry is not None else "miss",
                "fingerprint": fingerprint.short,
                **cache.stats(),
            }
            if tenant is not None:
                suffix = "hits" if entry is not None else "misses"
                self.metrics.counter(f"tenant_cache_{suffix}.{tenant}").inc()

        if entry is not None:
            # Warm path: every prepare artifact — logical plan, slice
            # statistics and assemblies, physical assignment, shuffle
            # schedule (in the slice table's alignment cache) — is
            # served from the entry; only cell comparison re-runs.
            return self._run_physical(
                query, entry.join_schema, entry.logical_plan,
                entry.n_units, entry.slice_table, planner_name,
                lookup_seconds, n_workers=n_workers,
                prepare_breakdown={"cache_lookup": lookup_seconds},
                physical=(entry.assignment, entry.physical_plan),
                cache_info=cache_info,
                analyze=analyze,
            )

        # ---- logical planning (timed) ----
        snapshot = self.profiler.snapshot()
        plan_started = time.perf_counter()
        with self.tracer.span("logical_plan"):
            with self.profiler.phase("logical_plan"):
                join_schema, logical_plan = self._logical_phase(
                    query, join_algo
                )
        logical_seconds = time.perf_counter() - plan_started

        # ---- slice mapping ----
        with self.tracer.span("slice_mapping"):
            with self.profiler.phase("stats"):
                n_units, slice_table = self._slice_mapping(
                    query, join_schema, logical_plan
                )

        breakdown = self.profiler.since(snapshot)
        if cache is not None:
            breakdown = {"cache_lookup": lookup_seconds, **breakdown}
        result = self._run_physical(
            query, join_schema, logical_plan, n_units, slice_table,
            planner_name, logical_seconds + lookup_seconds,
            n_workers=n_workers, prepare_breakdown=breakdown,
            cache_info=cache_info, analyze=analyze,
        )
        if cache is not None:
            assignment = (
                result.physical_plan.assignment
                if result.physical_plan is not None
                else np.zeros(n_units, dtype=np.int64)
            )
            cache.put(CachedPlan(
                join_schema=join_schema,
                logical_plan=logical_plan,
                n_units=n_units,
                slice_table=slice_table,
                assignment=assignment,
                physical_plan=result.physical_plan,
                arrays=(query.left, query.right),
                fingerprint=fingerprint,
                prepare_breakdown=dict(result.report.prepare_breakdown),
            ))
        return result

    def _run_physical(
        self,
        query: JoinQuery,
        join_schema: JoinSchema,
        logical_plan: LogicalPlan,
        n_units: int,
        slice_table: "_SliceTable",
        planner_name: str,
        logical_seconds: float,
        n_workers: int | None = None,
        prepare_breakdown: dict[str, float] | None = None,
        physical: tuple[np.ndarray, PhysicalPlan | None] | None = None,
        cache_info: dict | None = None,
        analyze: bool = False,
    ) -> JoinResult:
        tracer = self.tracer
        # The per-node profile is only assembled when someone will read
        # it: an analyze execution or a traced one.
        profile_nodes = analyze or tracer.enabled
        snapshot = self.profiler.snapshot()
        # ---- physical planning (timed; skipped when a cached plan's
        # assignment is handed in) ----
        model: AnalyticalCostModel | None = None
        memo_key = (planner_name, logical_plan.join_algo)
        if physical is not None:
            assignment, physical_plan = physical
            physical_seconds = 0.0
        elif memo_key in slice_table._physical_memo:
            # Re-execution of a prepared join under a planner it already
            # ran: the plan is a pure function of the slice statistics,
            # so reuse the solved assignment (the model, when needed for
            # profiling, is recomputed below).
            with tracer.span(
                "physical_assign", planner=planner_name, memoized=True
            ):
                assignment, physical_plan = slice_table._physical_memo[
                    memo_key
                ]
            physical_seconds = 0.0
        else:
            physical_started = time.perf_counter()
            with tracer.span("physical_assign", planner=planner_name):
                with self.profiler.phase("physical_assign"):
                    assignment, physical_plan, model = self._physical_plan(
                        slice_table.stats, logical_plan, planner_name,
                        split=slice_table.split,
                    )
            physical_seconds = time.perf_counter() - physical_started
            slice_table._physical_memo[memo_key] = (assignment, physical_plan)
        if (
            profile_nodes
            and model is None
            and logical_plan.join_algo in ("merge", "hash")
        ):
            # Cache hits hand in (assignment, plan) with no model, and
            # single-node runs skip planning; the model is a pure
            # function of the slice statistics, so recompute it here.
            model = AnalyticalCostModel(
                slice_table.stats, logical_plan.join_algo, self.cost
            )

        # ---- data alignment (simulated) ----
        align_offset = tracer.now()
        with tracer.span(
            "data_alignment", policy=self.shuffle_policy
        ) as align_span:
            align_seconds, shuffle = self._data_alignment(
                query, slice_table, assignment
            )
            align_span.set(
                cells_moved=shuffle.total_cells_moved,
                n_transfers=shuffle.n_transfers,
                simulated_seconds=align_seconds,
            )
        # Transfer events land on per-destination network lanes, re-based
        # from simulated time onto the tracer's timeline.
        shuffle.export_spans(tracer, offset=align_offset)
        bytes_moved, bytes_full_width = self._traffic_bytes(
            query, slice_table, assignment
        )

        # ---- cell comparison (real matching, simulated timing) ----
        with tracer.span(
            "cell_comparison", algo=logical_plan.join_algo
        ) as compare_span:
            (
                compare_seconds,
                per_node_compare,
                node_output,
                output_cells,
                meta,
                match_counters,
            ) = self._cell_comparison(
                query, join_schema, logical_plan, slice_table, assignment,
                n_workers=n_workers,
            )
            compare_span.set(
                output_cells=len(output_cells),
                simulated_seconds=compare_seconds,
            )

        node_profile = None
        if profile_nodes and model is not None:
            node_profile = self._node_profile(
                model, assignment, shuffle, per_node_compare, node_output
            )

        report = ExecutionReport(
            planner=physical_plan.planner if physical_plan else "single-node",
            join_algo=logical_plan.join_algo,
            unit_kind=logical_plan.join_unit_kind,
            n_units=n_units,
            logical_afl=logical_plan.afl(join_schema),
            plan_seconds=logical_seconds + physical_seconds,
            align_seconds=align_seconds,
            compare_seconds=compare_seconds,
            cells_moved=shuffle.total_cells_moved,
            n_transfers=shuffle.n_transfers,
            output_cells=len(output_cells),
            bytes_moved=bytes_moved,
            bytes_moved_full_width=bytes_full_width,
            analytic_cost=physical_plan.cost if physical_plan else None,
            per_node_compare=per_node_compare,
            cells_sent=shuffle.cells_sent,
            cells_received=shuffle.cells_received,
            meta=meta,
            prepare_breakdown={
                **(prepare_breakdown or {}),
                **self.profiler.since(snapshot),
            },
            cache=dict(cache_info or {}),
            per_node_output=node_output,
            node_profile=node_profile,
        )
        # Standing telemetry: fold the match-path counters and the
        # per-execution totals/skew gauges into the registry.
        for name, count in match_counters.snapshot().items():
            self.metrics.counter(name).inc(count)
        record_execution(self.metrics, report)
        output_array = LocalArray.from_cells(join_schema.destination, output_cells)
        return JoinResult(
            array=output_array,
            report=report,
            logical_plan=logical_plan,
            physical_plan=physical_plan,
            join_schema=join_schema,
        )

    def _node_profile(
        self,
        model: AnalyticalCostModel,
        assignment: np.ndarray,
        shuffle,
        per_node_compare: np.ndarray,
        node_output: np.ndarray,
    ) -> dict:
        """Per-node predicted (Eqs 5-8) vs observed cost vectors.

        Predicted alignment per node is ``max(send, recv) × t`` — the
        Equation-8 alignment term "considering a single j at a time".
        The observed counterpart is the node's busy time in the shuffle
        schedule, which by construction excludes the lock waiting the
        model ignores (the residual shows up in explain-analyze as
        schedule wait).
        """
        send_pred, recv_pred, compare_pred = model.node_totals(assignment)
        send_busy, recv_busy = shuffle.busy_seconds()
        t = self.cost.t
        k = self.cluster.n_nodes
        return {
            "pred_send_cells": send_pred.tolist(),
            "pred_recv_cells": recv_pred.tolist(),
            "pred_align_seconds": [
                max(int(s), int(r)) * t
                for s, r in zip(send_pred, recv_pred)
            ],
            "pred_compare_seconds": [float(c) for c in compare_pred],
            "actual_sent_cells": [
                int(shuffle.cells_sent.get(node, 0)) for node in range(k)
            ],
            "actual_recv_cells": [
                int(shuffle.cells_received.get(node, 0)) for node in range(k)
            ],
            "actual_align_seconds": [
                max(send_busy.get(node, 0.0), recv_busy.get(node, 0.0))
                for node in range(k)
            ],
            "actual_compare_seconds": per_node_compare.tolist(),
            "output_cells": node_output.tolist(),
        }

    # ---------------------------------------------------------------- pieces

    def _histograms_for(
        self, query: JoinQuery, alpha: ArraySchema, beta: ArraySchema
    ) -> dict[str, Histogram]:
        """Histograms over attribute join keys, for dimension inference.

        Served from the catalog's cached ANALYZE statistics (computed on
        demand, invalidated by loads) — the statistics the paper assumes
        the engine keeps in its catalog.
        """
        histograms: dict[str, Histogram] = {}
        for pred in query.predicates:
            for array_name, schema, field_name in (
                (query.left, alpha, pred.left.field),
                (query.right, beta, pred.right.field),
            ):
                if not schema.has_attr(field_name):
                    continue
                key = f"{schema.name}.{field_name}"
                if key in histograms:
                    continue
                stats = self.cluster.statistics(array_name)
                if field_name in stats.histograms:
                    histograms[key] = stats.histograms[field_name]
        return histograms

    def _selectivity(
        self,
        query: JoinQuery,
        join_schema: JoinSchema,
        hint: float | None = None,
    ) -> float:
        """The output-cardinality knob for the logical cost model.

        An explicit hint wins — a per-call one (pipeline stages pass the
        ordering DP's estimate) over the executor-level knob; otherwise
        a sampling estimate is taken (see :mod:`repro.engine.estimate`).
        The planner only needs the estimate's order of magnitude — it
        decides whether the output or the inputs are cheaper to sort.
        """
        if hint is not None:
            return hint
        if self.selectivity_hint is not None:
            return self.selectivity_hint
        from repro.engine.estimate import estimate_selectivity

        return estimate_selectivity(
            self.cluster, query.left, query.right, join_schema
        )

    def _node_cells(self, query: JoinQuery, array_name: str, node):
        """One node's local cells with the query's pushdown filter applied.

        Filtering happens *before* slice mapping, so filtered-out cells
        are never shipped or compared — classic predicate pushdown.
        """
        if not node.has_array(array_name):
            return None
        cells = node.store(array_name).cells()
        if not len(cells):
            return None
        predicate = query.filters.get(array_name)
        if predicate is not None:
            from repro.query.afl import cells_environment

            schema = self.cluster.schema(array_name)
            mask = np.asarray(
                predicate.evaluate(cells_environment(schema, cells)),
                dtype=bool,
            )
            cells = cells.take(mask)
            if not len(cells):
                return None
        return cells

    def _filtered_count(self, query: JoinQuery, array_name: str) -> int:
        """Post-pushdown cell count (feeds the logical cost model)."""
        if array_name not in query.filters:
            return self.cluster.array_cell_count(array_name)
        total = 0
        for node in self.cluster.nodes:
            cells = self._node_cells(query, array_name, node)
            total += len(cells) if cells is not None else 0
        return total

    def _ship_fields(self, join_schema: JoinSchema, side: str) -> list[str]:
        """Attribute columns one side must ship: carried fields plus any
        join keys stored as attributes (coordinates always travel)."""
        schema = (
            join_schema.left_schema if side == "left" else join_schema.right_schema
        )
        carry = (
            join_schema.left_carry if side == "left" else join_schema.right_carry
        )
        fields = [name for name in carry if schema.has_attr(name)]
        for jfield in join_schema.fields:
            name = jfield.left_field if side == "left" else jfield.right_field
            if schema.has_attr(name) and name not in fields:
                fields.append(name)
        return fields

    def _slice_mapping(
        self,
        query: JoinQuery,
        join_schema: JoinSchema,
        logical_plan: LogicalPlan,
    ) -> tuple[int, _SliceTable]:
        """Apply the slice function to every node's local cells."""
        if logical_plan.join_unit_kind == "chunk":
            n_units = join_schema.n_chunks
            n_buckets = None
        else:
            n_units = self.n_buckets or max(join_schema.n_chunks, 64)
            n_buckets = n_units

        k = self.cluster.n_nodes
        s_left = np.zeros((n_units, k), dtype=np.int64)
        s_right = np.zeros((n_units, k), dtype=np.int64)
        assemblies: dict[str, _SideAssembly | None] = {"left": None, "right": None}
        left_table: list[list[CellSet | None]] | None = None
        right_table: list[list[CellSet | None]] | None = None
        if not self.single_sort:
            left_table = [[None] * k for _ in range(n_units)]
            right_table = [[None] * k for _ in range(n_units)]

        # First pass: extract every node's local cells and key columns.
        # Key derivation is deferred so the packed-key codec can be
        # planned over the *union* of both sides' observed ranges — equal
        # values must pack equal across the whole join.
        side_chunks: dict[str, list[tuple[int, CellSet, list[np.ndarray]]]] = {
            "left": [],
            "right": [],
        }
        for side, array_name, matrix, table in (
            ("left", query.left, s_left, left_table),
            ("right", query.right, s_right, right_table),
        ):
            source_schema = (
                join_schema.left_schema if side == "left" else join_schema.right_schema
            )
            ship = self._ship_fields(join_schema, side)
            for node in self.cluster.nodes:
                cells = self._node_cells(query, array_name, node)
                if cells is None:
                    continue
                cells = cells.with_attrs(ship)
                node_id = node.node_id
                if not self.single_sort:
                    # Reference pipeline: partition re-derives the key
                    # columns internally and sorts once per structure;
                    # composite keys are rebuilt per unit at match time.
                    unit_ids = unit_ids_for(
                        join_schema, side, cells, source_schema,
                        logical_plan.join_unit_kind, n_buckets=n_buckets,
                    )
                    for unit, piece in enumerate(
                        cells.partition(unit_ids, n_units)
                    ):
                        if len(piece):
                            table[unit][node_id] = piece
                            matrix[unit, node_id] = len(piece)
                    continue
                # One key-column extraction per (side, node); the sort is
                # deferred to a single global pass over the whole side.
                cols = key_columns(join_schema, side, cells, source_schema)
                side_chunks[side].append((node_id, cells, cols))

        codec: KeyCodec | None = None
        if self.single_sort and self.packed_keys:
            column_sets = [
                cols
                for chunks in side_chunks.values()
                for _, _, cols in chunks
            ]
            if column_sets:
                codec = plan_codec(
                    column_sets, dims=[f.dim for f in join_schema.fields]
                )

        split: SplitPlan | None = None
        if self.single_sort:
            # Second pass: derive keys (packed when the codec applies,
            # structured otherwise) and slice each side. Assembly is
            # deferred until after the split decision — the splitter
            # reads both sides' (unit id, key) columns, and a split
            # refines the ids before anything is sorted.
            derived: dict[
                str,
                list[tuple[int, CellSet, list[np.ndarray], np.ndarray, np.ndarray]],
            ] = {"left": [], "right": []}
            for side in ("left", "right"):
                source_schema = (
                    join_schema.left_schema
                    if side == "left"
                    else join_schema.right_schema
                )
                for node_id, cells, cols in side_chunks[side]:
                    if codec is not None:
                        keys = codec.pack(cols)
                        packed = keys
                    else:
                        keys = composite_key(cols)
                        packed = None
                    unit_ids = unit_ids_for(
                        join_schema, side, cells, source_schema,
                        logical_plan.join_unit_kind, n_buckets=n_buckets,
                        columns=cols, packed=packed,
                    )
                    derived[side].append((node_id, cells, cols, keys, unit_ids))

            split = self._plan_split(logical_plan, codec, derived, n_units)
            if split is not None:
                n_units = split.n_units
                s_left = np.zeros((n_units, k), dtype=np.int64)
                s_right = np.zeros((n_units, k), dtype=np.int64)
                derived = {
                    side: [
                        (node_id, cells, cols, keys, split.remap(unit_ids, keys))
                        for node_id, cells, cols, keys, unit_ids in chunks
                    ]
                    for side, chunks in derived.items()
                }

            for side, matrix in (("left", s_left), ("right", s_right)):
                chunks: list[
                    tuple[CellSet, list[np.ndarray], np.ndarray, np.ndarray]
                ] = []
                for node_id, cells, cols, keys, unit_ids in derived[side]:
                    matrix[:, node_id] = np.bincount(
                        unit_ids, minlength=n_units
                    )
                    chunks.append((cells, cols, keys, unit_ids))
                assemblies[side] = self._assemble_side(
                    chunks, matrix, n_units, k
                )

        return n_units, _SliceTable(
            stats=SliceStats(s_left, s_right),
            left=left_table,
            right=right_table,
            left_assembly=assemblies["left"],
            right_assembly=assemblies["right"],
            codec=codec,
            split=split,
        )

    def _plan_split(
        self,
        logical_plan: LogicalPlan,
        codec: KeyCodec | None,
        derived: dict,
        n_units: int,
    ) -> SplitPlan | None:
        """Decide the plan-time unit split for this slice mapping.

        Splitting needs packed ``uint64`` keys (sub-units are key-range
        cuts of the globally sorted packed column) and a costable join
        algorithm; the structured-key fallback and nested-loop plans
        decline and keep exact parent-unit granularity.
        """
        if (
            self.split_units == "off"
            or codec is None
            or logical_plan.join_algo not in ("merge", "hash")
        ):
            return None
        totals = {
            side: np.zeros(n_units, dtype=np.int64)
            for side in ("left", "right")
        }
        key_chunks: list[tuple[np.ndarray, np.ndarray]] = []
        for side in ("left", "right"):
            for _, _, _, keys, unit_ids in derived[side]:
                totals[side] += np.bincount(unit_ids, minlength=n_units)
                key_chunks.append((unit_ids, keys))
        # The splitter only reads per-unit totals, so a single-column
        # stats view is enough — the real (n_units, k) matrices are
        # rebuilt after the remap.
        provisional = SliceStats(
            totals["left"][:, None], totals["right"][:, None]
        )
        return plan_unit_split(
            provisional, logical_plan.join_algo, self.cost, key_chunks,
            threshold=self.split_threshold, factor=self.split_factor,
        )

    @staticmethod
    def _assemble_side(
        chunks: list[tuple[CellSet, list[np.ndarray], np.ndarray, np.ndarray]],
        counts: np.ndarray,
        n_units: int,
        n_nodes: int,
    ) -> _SideAssembly | None:
        """Collapse one side's per-node chunks into unit-major arrays.

        One concatenate plus one stable argsort by unit id orders the
        cells, key columns, and composite keys together; every per-unit
        and per-(unit, node) structure is then a contiguous slice.
        Node-major concatenation + a stable sort reproduces exactly the
        order the per-piece path assembled: ascending node id within a
        unit, original arrival order within a node.
        """
        if not chunks:
            return None
        if len(chunks) == 1:
            all_cells, all_cols, all_keys, all_units = chunks[0]
        else:
            all_cells = CellSet.concat([chunk[0] for chunk in chunks])
            all_cols = [
                np.concatenate([chunk[1][i] for chunk in chunks])
                for i in range(len(chunks[0][1]))
            ]
            all_keys = np.concatenate([chunk[2] for chunk in chunks])
            all_units = np.concatenate([chunk[3] for chunk in chunks])
        order = np.argsort(all_units, kind="stable")
        sorted_units = all_units[order]
        bounds = np.searchsorted(sorted_units, np.arange(n_units + 1))
        piece_offsets = np.zeros(n_units * n_nodes + 1, dtype=np.int64)
        np.cumsum(counts.ravel(), out=piece_offsets[1:])
        return _SideAssembly(
            cells=all_cells.take(order),
            bounds=bounds,
            key_cols=[col[order] for col in all_cols],
            keys=all_keys[order],
            piece_offsets=piece_offsets,
            n_nodes=n_nodes,
        )

    def _physical_plan(
        self,
        stats: SliceStats,
        logical_plan: LogicalPlan,
        planner_name: str,
        split: SplitPlan | None = None,
    ) -> tuple[np.ndarray, PhysicalPlan | None, AnalyticalCostModel | None]:
        if self.cluster.n_nodes == 1:
            assignment = np.zeros(stats.n_units, dtype=np.int64)
            return assignment, None, None
        if logical_plan.join_algo == "nested_loop":
            raise PlanningError(
                "the nested loop join is never profitable and is not "
                "modelled by the physical planners; pin hash or merge, or "
                "run on a single node"
            )
        model = AnalyticalCostModel(stats, logical_plan.join_algo, self.cost)
        planner = self._make_planner(planner_name)
        plan = planner.plan(model)
        if split is not None:
            # Placement saw the refined granularity; record how much of
            # it came from the skew splitter.
            plan.meta.setdefault("units_split", split.units_split)
            plan.meta.setdefault("subunits_created", split.subunits_created)
        return plan.assignment, plan, model

    def _make_planner(self, name: str):
        if name in ("ilp", "ilp_coarse"):
            return get_planner(name, time_budget_s=self.ilp_time_budget_s)
        if name == "tabu":
            return get_planner(name, max_rounds=self.tabu_max_rounds)
        return get_planner(name)

    def _traffic_bytes(
        self,
        query: JoinQuery,
        slice_table: "_SliceTable",
        assignment: np.ndarray,
    ) -> tuple[int, int]:
        """Bytes shipped vs the bytes a full-width (row-store) shuffle
        would ship — slices are already projected to the needed columns,
        so the difference is the vertical-partitioning saving.

        Works entirely on the slice statistics matrices: every cell on a
        side has the same byte width, so the moved-cell counts (slices
        whose node is not the unit's destination) fix both totals without
        touching a single cell set.
        """
        stats = slice_table.stats
        off_destination = np.ones((stats.n_units, stats.n_nodes), dtype=bool)
        off_destination[np.arange(stats.n_units), assignment] = False
        moved = 0
        full = 0
        for side, name, matrix in (
            ("left", query.left, stats.s_left),
            ("right", query.right, stats.s_right),
        ):
            schema = self.cluster.schema(name)
            cells_moved = int(matrix[off_destination].sum())
            moved += cells_moved * slice_table.shipped_bytes_per_cell(side)
            full += cells_moved * 8 * (schema.ndims + len(schema.attrs))
        return moved, full

    def _data_alignment(
        self,
        query: JoinQuery,
        slice_table: _SliceTable,
        assignment: np.ndarray,
    ):
        """Simulate slice mapping CPU plus the write-lock shuffle.

        The simulation is deterministic in (statistics, assignment,
        policy), so its result is cached on the slice table — repeated
        executions of a prepared join under the same assignment skip the
        discrete-event run entirely.
        """
        cache_key = (assignment.tobytes(), self.shuffle_policy)
        cached = slice_table._alignment.get(cache_key)
        if cached is not None:
            return cached
        stats = slice_table.stats
        with self.profiler.phase("alignment"):
            s_total = stats.s_total
            moved = s_total != 0
            moved[np.arange(stats.n_units), assignment] = False
            units, nodes = np.nonzero(moved)
            dests = assignment[units]
            cell_counts = s_total[units, nodes]
            transfers = [
                Transfer(src=src, dst=dst, n_cells=n_cells, tag=unit)
                for src, dst, n_cells, unit in zip(
                    nodes.tolist(),
                    dests.tolist(),
                    cell_counts.tolist(),
                    units.tolist(),
                )
            ]
        with self.profiler.phase("schedule"):
            shuffle = schedule_shuffle(
                transfers, self.cluster.network, policy=self.shuffle_policy
            )
        map_times = [
            self.sim.slice_map_per_cell
            * (
                node.local_cell_count(query.left)
                + node.local_cell_count(query.right)
            )
            for node in self.cluster.nodes
        ]
        align_seconds = max(map_times, default=0.0) + shuffle.total_time
        slice_table._alignment[cache_key] = (align_seconds, shuffle)
        return align_seconds, shuffle

    def _cell_comparison(
        self,
        query: JoinQuery,
        join_schema: JoinSchema,
        logical_plan: LogicalPlan,
        slice_table: _SliceTable,
        assignment: np.ndarray,
        n_workers: int | None = None,
    ):
        """Per-unit matching on each node, with simulated timing.

        The simulated per-node durations derive purely from the slice
        statistics, so they are identical whichever real execution path
        (serial per-unit loop or batched worker pool) does the matching.
        Returns the match-path :class:`CounterSet` alongside the result —
        both paths count units matched, cells compared, and cells
        emitted, so metrics agree serial vs parallel.
        """
        k = self.cluster.n_nodes
        stats = slice_table.stats
        builder = OutputBuilder(query, join_schema)
        node_seconds = np.zeros(k, dtype=np.float64)
        node_output = np.zeros(k, dtype=np.int64)
        counters = CounterSet()
        meta: dict = {}
        if slice_table.codec is not None:
            meta["packed_keys"] = True
            meta["key_width"] = slice_table.codec.total_width
        if self.split_units != "off":
            split = slice_table.split
            meta["split_units"] = self.split_units
            meta["units_split"] = split.units_split if split else 0
            meta["subunits_created"] = split.subunits_created if split else 0
        algo = logical_plan.join_algo
        sort_inputs = logical_plan.join_algo == "merge" and (
            logical_plan.alpha_align == "redim" or logical_plan.beta_align == "redim"
        )

        left_totals = stats.left_unit_totals
        right_totals = stats.right_unit_totals
        # The timing model is evaluated vectorised over the whole unit
        # population: per-unit scalar calls used to dominate the real
        # wall-clock of small executions (hundreds of Python-level
        # ``compare_time`` calls per query). ``np.add.at`` accumulates
        # in ascending unit order, matching the old loop's traversal.
        s_total = stats.s_total
        active = np.nonzero((left_totals > 0) | (right_totals > 0))[0]
        matchable: list[int] = []
        if active.size:
            nodes = assignment[active].astype(np.int64)
            n_left = left_totals[active]
            n_right = right_totals[active]
            contrib = np.full(
                active.size, self.sim.per_unit_overhead_s, dtype=np.float64
            )
            contrib += self.sim.local_read_per_cell * s_total[active, nodes]
            if sort_inputs:
                contrib += self.sim.sort_time_vec(n_left)
                contrib += self.sim.sort_time_vec(n_right)
            contrib += self.sim.compare_time_vec(
                algo, n_left, n_right, self.cost
            )
            np.add.at(node_seconds, nodes, contrib)
            matchable = [
                int(unit) for unit in active[(n_left > 0) & (n_right > 0)]
            ]

        workers = (
            self.n_workers if n_workers is None else resolve_workers(n_workers)
        )
        if workers > 1 and matchable:
            produced_by_node, match_meta = self._match_parallel(
                matchable, assignment, slice_table, join_schema, builder,
                algo, workers, counters,
            )
            for node, produced in produced_by_node.items():
                node_output[node] += produced
            meta.update(match_meta)
        else:
            # The serial oracle always matches through the portable
            # numpy kernels — it is the reference everything else is
            # byte-compared against.
            meta["kernel"] = "numpy"
            self._match_serial(
                matchable, assignment, slice_table, join_schema, builder,
                algo, meta, node_output, counters,
            )
        if self.split_units == "adaptive":
            # The shm coordinator fills these in; every other path
            # (serial, threads, classic process) has no runtime splitter.
            meta.setdefault("runtime_resplits", 0)
            meta.setdefault("steal_count", 0)

        # Output alignment and chunk management, per producing node.
        dest_chunks = join_schema.destination.n_chunks
        for node in range(k):
            n_out = int(node_output[node])
            if not n_out:
                continue
            if logical_plan.out_align == "sort":
                node_seconds[node] += self.sim.sort_time(n_out, dest_chunks)
            elif logical_plan.out_align == "redim":
                node_seconds[node] += self.sim.slice_map_per_cell * n_out
                node_seconds[node] += self.sim.sort_time(n_out, dest_chunks)
            node_seconds[node] += self.sim.output_time(n_out, dest_chunks)

        output_cells = builder.finish()
        compare_seconds = float(node_seconds.max(initial=0.0))
        return (
            compare_seconds, node_seconds, node_output, output_cells,
            meta, counters,
        )

    def _match_serial(
        self,
        matchable: list[int],
        assignment: np.ndarray,
        slice_table: _SliceTable,
        join_schema: JoinSchema,
        builder: OutputBuilder,
        algo: str,
        meta: dict,
        node_output: np.ndarray,
        counters: CounterSet,
    ) -> None:
        """The reference path: match join units one at a time, in order."""
        for unit in matchable:
            node = int(assignment[unit])
            left_cells = slice_table.assembled("left", unit)
            right_cells = slice_table.assembled("right", unit)
            left_key_cols, left_keys = slice_table.unit_keys(
                "left", unit, join_schema
            )
            _, right_keys = slice_table.unit_keys("right", unit, join_schema)
            if algo == "merge":
                left_order = slice_table.unit_order("left", unit, join_schema)
                right_order = slice_table.unit_order("right", unit, join_schema)
                li, ri = match_pairs(
                    "merge", left_keys[left_order], right_keys[right_order]
                )
                li, ri = left_order[li], right_order[ri]
            elif algo == "nested_loop":
                try:
                    li, ri = match_pairs("nested_loop", left_keys, right_keys)
                except ExecutionError:
                    li, ri = hash_join_match(left_keys, right_keys)
                    meta["nested_loop_simulated"] = True
            else:
                li, ri = match_pairs("hash", left_keys, right_keys)

            produced = builder.add_matches(
                left_cells, right_cells, li, ri, left_key_cols
            )
            node_output[node] += produced
            counters.add("join_units_matched", 1)
            counters.add("cells_compared", len(left_keys) + len(right_keys))
            counters.add("matched_pairs", len(li))
            counters.add("cells_emitted", produced)

    def _match_parallel(
        self,
        matchable: list[int],
        assignment: np.ndarray,
        slice_table: _SliceTable,
        join_schema: JoinSchema,
        builder: OutputBuilder,
        algo: str,
        workers: int,
        counters: CounterSet,
    ) -> tuple[dict[int, int], dict]:
        """Batch matchable units per assigned node and run on the pool.

        Process-mode executions with packed keys take the zero-copy
        shared-memory path when an arena is available: workers attach
        the slice table's arena and return only match indices, and any
        mid-batch failure tears the arena and the pools down before the
        error propagates (no leaked ``/dev/shm`` segments). Structured
        keys, nested-loop plans, and arena allocation failures fall back
        to the classic pickling path.
        """
        codec = slice_table.codec
        if (
            self.shm
            and self.parallel_mode == "process"
            and codec is not None
            and algo != "nested_loop"
        ):
            arena = slice_table.shm_arena()
            if arena is not None:
                left = slice_table.left_assembly
                right = slice_table.right_assembly
                self.metrics.gauge("shm_bytes_shared").set(arena.nbytes)
                try:
                    node_output, meta = run_shm_batches(
                        arena, assignment, builder,
                        left.cells, right.cells, left.key_cols,
                        workers, kernel=self.kernel,
                        tracer=self.tracer, counters=counters,
                        split_units=self.split_units,
                    )
                except Exception:
                    # Exception-safe teardown: unlink the segment and
                    # recycle the pools before the error surfaces, so a
                    # killed batch leaves nothing in /dev/shm.
                    slice_table.release_arena()
                    shutdown_pools()
                    raise
                meta["parallel_mode"] = self.parallel_mode
                return node_output, meta

        key_width = codec.total_width if codec is not None else None
        by_node: dict[int, UnitBatch] = {}
        for unit in matchable:
            node = int(assignment[unit])
            batch = by_node.get(node)
            if batch is None:
                batch = by_node[node] = UnitBatch(node=node, key_width=key_width)
            left_key_cols, left_keys = slice_table.unit_keys(
                "left", unit, join_schema
            )
            _, right_keys = slice_table.unit_keys("right", unit, join_schema)
            batch.add_unit(
                unit,
                slice_table.assembled("left", unit),
                slice_table.assembled("right", unit),
                left_key_cols,
                left_keys,
                right_keys,
            )
        node_output, meta = run_batches(
            list(by_node.values()), builder, algo, workers,
            mode=self.parallel_mode, tracer=self.tracer, counters=counters,
            kernel=self.kernel,
        )
        meta["parallel_mode"] = self.parallel_mode
        return node_output, meta


@dataclass
class PreparedJoin:
    """A join with its planner-independent phases already done.

    Produced by :meth:`ShuffleJoinExecutor.prepare`; execute it under any
    number of physical planners without re-running logical planning or
    slice mapping. Each execution is independent (the join really runs
    each time), only the preparation is shared.
    """

    executor: ShuffleJoinExecutor
    query: JoinQuery
    join_schema: JoinSchema
    logical_plan: LogicalPlan
    logical_seconds: float
    n_units: int
    slice_table: _SliceTable
    #: Seconds the planner-independent phases took (logical_plan / stats),
    #: merged into every execution's report breakdown.
    prepare_breakdown: dict[str, float] = field(default_factory=dict)

    @property
    def stats(self) -> SliceStats:
        """The slice statistics every physical planner consumes."""
        return self.slice_table.stats

    def execute(
        self,
        planner: str = "tabu",
        n_workers: int | None = None,
        analyze: bool = False,
    ) -> JoinResult:
        """Run the physical phases under one planner.

        ``n_workers`` overrides the executor's pool size for this run —
        the knob the wall-clock benchmarks use to time serial vs
        parallel execution of one identically prepared join.
        ``analyze=True`` captures the per-node predicted-vs-actual
        profile, as on :meth:`ShuffleJoinExecutor.execute`.
        """
        return self.executor._run_physical(
            self.query,
            self.join_schema,
            self.logical_plan,
            self.n_units,
            self.slice_table,
            planner,
            self.logical_seconds,
            n_workers=n_workers,
            prepare_breakdown=self.prepare_breakdown,
            analyze=analyze,
        )

    def compare(self, planners) -> dict[str, JoinResult]:
        """Execute under each planner; returns results keyed by name."""
        return {name: self.execute(planner=name) for name in planners}
