"""Empirical derivation of the cost model parameters (Section 5.1).

The paper derives m, b, p, and t "empirically using the database's
performance on our heuristics-based physical planner". This module
implements that procedure against the simulator: it runs controlled
micro-joins through the MBH planner at several input sizes, measures the
simulated phase durations, and fits the per-cell rates by least squares.

Because the simulator layers secondary costs (per-unit overheads, local
disk reads, slice mapping) on top of the primary rates, the fitted
parameters recover the configured ones only approximately — which is the
point: a deployment calibrates against the black-box system, not against
the constants it cannot see.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.adm.cells import CellSet
from repro.cluster.cluster import Cluster
from repro.core.cost_model import CostParams
from repro.engine.simulation import SimulationParams


@dataclass(frozen=True)
class CalibrationReport:
    """Fitted cost parameters plus the raw measurements behind them."""

    params: CostParams
    merge_points: list[tuple[int, float]]
    hash_points: list[tuple[int, int, float]]
    transfer_points: list[tuple[int, float]]


def _uniform_pair(cluster: Cluster, n_cells: int, grid: int, seed: int) -> None:
    """Create two same-shape uniform arrays A/B with ``n_cells`` cells each.

    B's chunks are placed one node over from A's, so a merge join must
    actually shuffle data — the signal the transfer-rate fit needs.
    """
    rng = np.random.default_rng(seed)
    extent = grid * 64
    for index, name in enumerate(("A", "B")):
        coords = np.unique(
            rng.integers(1, extent + 1, size=(n_cells, 2)), axis=0
        )
        cells = CellSet(coords, {"v1": rng.integers(0, 1 << 30, len(coords))})
        offset = index  # shift B's round robin by one node
        cluster.create_array(
            f"{name}<v1:int64>[i=1,{extent},64, j=1,{extent},64]",
            cells,
            placement=lambda ids, k, off=offset: [
                (rank + off) % k for rank in range(len(ids))
            ],
        )


def calibrate(
    sizes: tuple[int, ...] = (20_000, 40_000, 80_000),
    n_nodes: int = 4,
    seed: int = 7,
    sim_params: SimulationParams | None = None,
) -> CalibrationReport:
    """Fit (m, b, p, t) from micro-benchmark runs on the MBH planner."""
    from repro.engine.executor import ShuffleJoinExecutor  # avoid cycle

    sim = sim_params or SimulationParams()
    merge_points: list[tuple[int, float]] = []
    hash_points: list[tuple[int, int, float]] = []
    transfer_points: list[tuple[int, float]] = []

    for size in sizes:
        # Merge join micro-run: compare time scales with total cells.
        cluster = Cluster(n_nodes=n_nodes)
        _uniform_pair(cluster, size, grid=8, seed=seed)
        executor = ShuffleJoinExecutor(cluster, sim_params=sim)
        result = executor.execute(
            "SELECT A.v1, B.v1 FROM A, B WHERE A.i = B.i AND A.j = B.j",
            planner="mbh",
            join_algo="merge",
        )
        total = cluster.array_cell_count("A") + cluster.array_cell_count("B")
        per_node = total / n_nodes
        merge_points.append((int(per_node), result.report.compare_seconds))
        # Alignment is bounded by the busiest receiving link, so the
        # transfer rate is fitted against the max per-node received cells.
        busiest = max(result.report.cells_received.values(), default=0)
        transfer_points.append((busiest, result.report.align_seconds))

        # Hash join micro-run: build + probe split by side sizes.
        cluster = Cluster(n_nodes=n_nodes)
        _uniform_pair(cluster, size, grid=8, seed=seed + 1)
        executor = ShuffleJoinExecutor(
            cluster, sim_params=sim, n_buckets=64, selectivity_hint=0.01
        )
        result = executor.execute(
            "SELECT A.i INTO T<i:int64>[] FROM A, B WHERE A.v1 = B.v1",
            planner="mbh",
            join_algo="hash",
        )
        n_a = cluster.array_cell_count("A")
        n_b = cluster.array_cell_count("B")
        build = min(n_a, n_b) // n_nodes
        probe = max(n_a, n_b) // n_nodes
        hash_points.append((build, probe, result.report.compare_seconds))

    # m: slope of merge compare time vs per-node cell count.
    cells = np.array([point[0] for point in merge_points], dtype=np.float64)
    times = np.array([point[1] for point in merge_points])
    m = float(np.polyfit(cells, times, 1)[0])

    # b, p: least squares on compare = b·build + p·probe (+ intercept).
    design = np.array(
        [[build, probe, 1.0] for build, probe, _ in hash_points]
    )
    target = np.array([time for _, _, time in hash_points])
    if len(hash_points) >= 3:
        solution, *_ = np.linalg.lstsq(design, target, rcond=None)
        b, p = float(solution[0]), float(solution[1])
    else:  # pragma: no cover - degenerate configuration
        b = p = float(target[-1] / max(design[-1, 0] + design[-1, 1], 1))
    # The two regressors are nearly collinear in uniform micro-runs; fall
    # back to a combined rate split by the configured build/probe ratio.
    if b <= 0 or p <= 0:
        combined = float(
            target.sum() / max((design[:, 0] + design[:, 1]).sum(), 1.0)
        )
        b, p = combined * 1.6, combined * 0.4

    # t: slope of alignment time vs cells moved.
    moved = np.array([point[0] for point in transfer_points], dtype=np.float64)
    align = np.array([point[1] for point in transfer_points])
    t = float(np.polyfit(moved, align, 1)[0]) if np.ptp(moved) else float(
        align[-1] / max(moved[-1], 1)
    )
    t = max(t, 1e-9)

    params = CostParams(
        m=max(m, 1e-9), b=max(b, 1e-9), p=max(p, 1e-9), t=t
    )
    return CalibrationReport(
        params=params,
        merge_points=merge_points,
        hash_points=hash_points,
        transfer_points=transfer_points,
    )
