"""Per-cell timing model for simulated query execution.

The executor derives phase durations from the work it actually performs:
cells scanned during slice mapping, cells shipped over the simulated
network, cells compared per node, and output cells managed. The analytic
cost model (Section 5.1) shares the primary parameters (m, b, p, t) but
deliberately ignores the *secondary* terms modelled here — per-unit
overheads, sorting during join-unit assembly, local disk fetches, and
output-chunk management. Those residuals are why the model-vs-latency
fits in Figure 5 and Table 2 land near r² ≈ 0.9 instead of 1.0.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.cost_model import CostParams


@dataclass(frozen=True)
class SimulationParams:
    """Secondary per-cell costs, in seconds (see module docstring)."""

    #: applying the slice function during slice mapping, per local cell
    slice_map_per_cell: float = 1.5e-7
    #: fetching locally stored source data from disk at comparison time
    #: (shuffled cells are already in memory — the hardware-variance
    #: effect Section 6.2.1 credits MBH's robustness to)
    local_read_per_cell: float = 1.0e-7
    #: fixed overhead per join unit processed (assembly, dispatch)
    per_unit_overhead_s: float = 5.0e-5
    #: comparison-sort cost per cell per log2(cells) (redim/sort steps)
    sort_per_cell_log: float = 8.0e-7
    #: output-chunk management per output cell (allocation, locality loss)
    output_per_cell: float = 4.0e-8
    #: growth factor of output management with chunk population
    output_log_factor: float = 0.15
    #: per-comparison cost of the nested loop join (each probe cell walks
    #: the full opposite side of its unit — branchy, cache-unfriendly)
    nested_loop_per_pair: float = 6.0e-7

    def sort_time(self, n_cells: int, n_chunks: int = 1) -> float:
        """Per-chunk sort: n × log2(n/c) × unit cost."""
        if n_cells <= 0:
            return 0.0
        per_chunk = max(n_cells / max(n_chunks, 1), 2.0)
        return self.sort_per_cell_log * n_cells * math.log2(per_chunk)

    def output_time(self, n_cells: int, n_chunks: int = 1) -> float:
        """Output-chunk management: mildly superlinear in chunk population,
        reproducing the latency knee at very high output cardinalities
        (Figure 6)."""
        if n_cells <= 0:
            return 0.0
        per_chunk = max(n_cells / max(n_chunks, 1), 1.0)
        return (
            self.output_per_cell
            * n_cells
            * (1.0 + self.output_log_factor * math.log2(1.0 + per_chunk))
        )

    def compare_time(
        self,
        algorithm: str,
        n_left: int,
        n_right: int,
        cost: CostParams,
    ) -> float:
        """Cell-comparison time of one join unit under ``algorithm``."""
        if algorithm == "merge":
            return cost.m * (n_left + n_right)
        if algorithm == "hash":
            build = min(n_left, n_right)
            probe = max(n_left, n_right)
            return cost.b * build + cost.p * probe
        if algorithm == "nested_loop":
            return self.nested_loop_per_pair * n_left * n_right
        raise ValueError(f"unknown join algorithm {algorithm!r}")

    # The vectorised forms below evaluate whole unit populations at
    # once; the executor's timing pass used to call the scalar methods
    # hundreds of times per execution, which cost more wall-clock than
    # the matching it was modelling.

    def sort_time_vec(self, n_cells: np.ndarray) -> np.ndarray:
        """:meth:`sort_time` (single chunk) over a vector of unit sizes."""
        n = np.asarray(n_cells, dtype=np.float64)
        per_chunk = np.maximum(n, 2.0)
        return np.where(
            n > 0, self.sort_per_cell_log * n * np.log2(per_chunk), 0.0
        )

    def compare_time_vec(
        self,
        algorithm: str,
        n_left: np.ndarray,
        n_right: np.ndarray,
        cost: CostParams,
    ) -> np.ndarray:
        """:meth:`compare_time` over vectors of per-unit side sizes."""
        nl = np.asarray(n_left, dtype=np.float64)
        nr = np.asarray(n_right, dtype=np.float64)
        if algorithm == "merge":
            return cost.m * (nl + nr)
        if algorithm == "hash":
            return cost.b * np.minimum(nl, nr) + cost.p * np.maximum(nl, nr)
        if algorithm == "nested_loop":
            return self.nested_loop_per_pair * nl * nr
        raise ValueError(f"unknown join algorithm {algorithm!r}")
