"""Shared-memory arenas for zero-copy process-pool matching.

The slice mapping already assembles each join side into one contiguous,
unit-major block (``_SideAssembly``): packed ``uint64`` composite keys
plus an ``n_units + 1`` bounds table whose slice ``[bounds[u],
bounds[u+1])`` is unit ``u``'s rows. That layout is exactly what a
process worker needs to match any subset of units — so instead of
pickling per-unit cell sets into every pool task, the coordinator copies
the four arrays once into a :class:`multiprocessing.shared_memory`
segment and ships workers only the tiny :class:`ArenaLayout` descriptor.
Workers attach read-only, gather their units' key rows straight out of
the mapping, and return nothing but match index arrays; the coordinator
materialises output cells from its own (already shared, fork-inherited)
assembly arrays using those global indices.

The key columns are stored **sorted within each unit** (units stay in
ascending order, so the whole column is ascending once the unit id is
prepended as high bits), with an ``order`` map from sorted position
back to the original assembly row. Sorting happens once at arena
creation; every execution's match then runs on pre-sorted runs — a
binary-search merge instead of an argsort per batch — and workers map
matched positions through ``order`` before shipping indices back.

Segment layout, all 8-byte aligned by construction::

    [left keys   : uint64 x n_left ]   (sorted within units)
    [left order  : int64  x n_left ]   (sorted position -> assembly row)
    [right keys  : uint64 x n_right]   (sorted within units)
    [right order : int64  x n_right]
    [left bounds : int64 x (n_units + 1)]
    [right bounds: int64 x (n_units + 1)]

Lifecycle: the *owner* (coordinator) creates the segment and is the only
party that unlinks it; workers attach and close. Every arena registers a
:func:`weakref.finalize` callback, so a dropped reference — including a
mid-execution exception unwinding the coordinator — still closes and
unlinks the segment (``weakref.finalize`` also runs at interpreter
exit). Segment names carry :data:`ARENA_PREFIX`, which is what the leak
check in the test suite scans ``/dev/shm`` for.
"""

from __future__ import annotations

import os
import secrets
import weakref
from dataclasses import dataclass

import numpy as np
from multiprocessing import shared_memory

from repro.engine.kernels import build_key_filter, filter_log2_for

#: Every arena segment name starts with this; tests scan /dev/shm for it
#: to prove exception paths leak nothing.
ARENA_PREFIX = "repro-arena-"

_UINT64 = np.dtype(np.uint64)
_INT64 = np.dtype(np.int64)


@dataclass(frozen=True)
class ArenaLayout:
    """Everything a worker needs to attach: name plus array extents.

    Small and picklable — this is the whole per-task payload for the
    key material (the unit id array rides alongside it).
    """

    name: str
    n_left: int
    n_right: int
    n_units: int
    key_width: int
    #: True when the unit id fits the bits above the packed key and the
    #: stored key columns are the *fused* ``(unit << key_width) | key``
    #: values — globally sorted, matchable with zero per-execution
    #: transforms. False falls back to raw per-unit-sorted keys (the
    #: hash+verify path).
    fused: bool = True
    #: log2 bit-size of the right-side membership filter region (0 =
    #: no filter; only fused arenas carry one). Workers prefilter left
    #: needles against it before the exact binary-search match, which
    #: collapses low-selectivity matching to a candidate handful.
    filter_log2: int = 0

    @property
    def filter_bytes(self) -> int:
        return (1 << (self.filter_log2 - 3)) if self.filter_log2 >= 3 else 0

    @property
    def nbytes(self) -> int:
        return (
            8 * (2 * (self.n_left + self.n_right) + 2 * (self.n_units + 1))
            + self.filter_bytes
        )


def _region_offsets(
    layout: ArenaLayout,
) -> tuple[int, int, int, int, int, int, int]:
    left_keys = 0
    left_order = left_keys + 8 * layout.n_left
    right_keys = left_order + 8 * layout.n_left
    right_order = right_keys + 8 * layout.n_right
    left_bounds = right_order + 8 * layout.n_right
    right_bounds = left_bounds + 8 * (layout.n_units + 1)
    right_filter = right_bounds + 8 * (layout.n_units + 1)
    return (
        left_keys, left_order, right_keys, right_order,
        left_bounds, right_bounds, right_filter,
    )


def _unit_sorted(
    keys: np.ndarray,
    bounds: np.ndarray,
    key_width: int,
    fuse: bool,
) -> tuple[np.ndarray, np.ndarray]:
    """Sort a unit-major key column within each unit.

    Returns ``(stored_keys, order)`` where ``order`` maps sorted
    positions back to original rows. When ``fuse`` is set the stored
    column is the fused ``(unit << key_width) | key`` value — one
    globally ascending uint64 lane workers can match with nothing but
    binary search. One sort at creation time buys every subsequent
    match a sort-free merge.
    """
    counts = np.diff(np.asarray(bounds, dtype=np.int64))
    unit_col = np.repeat(np.arange(counts.size, dtype=np.int64), counts)
    if fuse:
        fused = (unit_col.astype(np.uint64) << np.uint64(key_width)) | keys
        order = np.argsort(fused, kind="stable").astype(np.int64)
        return fused[order], order
    order = np.lexsort((keys, unit_col)).astype(np.int64)
    return keys[order], order


def _release_segment(segment: shared_memory.SharedMemory, owner: bool) -> None:
    """Idempotent close (+ unlink for the owner); never raises.

    Runs from ``release()``, from the GC finalizer, and at interpreter
    exit — any of which may find the segment already gone (another path
    won the race, or the test deleted it out from under us).
    """
    try:
        segment.close()
    except BufferError:  # pragma: no cover - a live view still exports
        # the buffer (GC finalizer ordering). Drop the handles so
        # SharedMemory.__del__ doesn't retry-and-warn; the mmap unmaps
        # once the last view dies, and the fd can go now.
        segment._buf = None
        segment._mmap = None
        fd = getattr(segment, "_fd", -1)
        if fd >= 0:
            try:
                os.close(fd)
            except OSError:
                pass
            segment._fd = -1
    except OSError:  # pragma: no cover - platform quirks
        pass
    if owner:
        try:
            segment.unlink()
        except FileNotFoundError:
            pass
        except OSError:  # pragma: no cover - platform quirks
            pass


class SharedArena:
    """One join's key material in a shared-memory segment.

    Create on the coordinator with :meth:`create`, attach in workers
    with :meth:`attach`; the four array properties are zero-copy views
    into the segment. ``release()`` tears the mapping down (and unlinks
    when owning) and is safe to call any number of times.
    """

    def __init__(
        self,
        segment: shared_memory.SharedMemory,
        layout: ArenaLayout,
        owner: bool,
    ):
        self._segment = segment
        self.layout = layout
        self.owner = owner
        self._closed = False
        self._finalizer = weakref.finalize(
            self, _release_segment, segment, owner
        )

    def _view(self, offset: int, count: int, dtype: np.dtype) -> np.ndarray:
        # Views are constructed per access, never stored: a stored view
        # would export the segment's buffer past the arena's lifetime
        # and make close() fail under GC's unspecified finalizer order.
        # Construction is a few microseconds; callers fancy-index the
        # view immediately (producing plain copies), so nothing keeps
        # the buffer exported between calls.
        return np.frombuffer(
            self._segment.buf, dtype=dtype, count=count, offset=offset
        )

    @property
    def left_keys(self) -> np.ndarray:
        """Left key column, per-unit sorted (fused with unit ids when
        :attr:`ArenaLayout.fused`)."""
        return self._view(
            _region_offsets(self.layout)[0], self.layout.n_left, _UINT64
        )

    @property
    def left_order(self) -> np.ndarray:
        """Left sorted position -> original assembly row."""
        return self._view(
            _region_offsets(self.layout)[1], self.layout.n_left, _INT64
        )

    @property
    def right_keys(self) -> np.ndarray:
        """Right key column, per-unit sorted (fused with unit ids when
        :attr:`ArenaLayout.fused`)."""
        return self._view(
            _region_offsets(self.layout)[2], self.layout.n_right, _UINT64
        )

    @property
    def right_order(self) -> np.ndarray:
        """Right sorted position -> original assembly row."""
        return self._view(
            _region_offsets(self.layout)[3], self.layout.n_right, _INT64
        )

    @property
    def left_bounds(self) -> np.ndarray:
        return self._view(
            _region_offsets(self.layout)[4], self.layout.n_units + 1, _INT64
        )

    @property
    def right_bounds(self) -> np.ndarray:
        return self._view(
            _region_offsets(self.layout)[5], self.layout.n_units + 1, _INT64
        )

    @property
    def right_filter(self) -> np.ndarray:
        """Membership bitmap over the right fused keys (uint8 bytes)."""
        return self._view(
            _region_offsets(self.layout)[6],
            self.layout.filter_bytes,
            np.dtype(np.uint8),
        )

    # ------------------------------------------------------------- lifecycle

    @classmethod
    def create(
        cls,
        left_keys: np.ndarray,
        right_keys: np.ndarray,
        left_bounds: np.ndarray,
        right_bounds: np.ndarray,
        key_width: int,
    ) -> "SharedArena":
        """Allocate a segment; copy the assembly arrays in, unit-sorted."""
        if left_bounds.shape != right_bounds.shape:
            raise ValueError(
                "left/right bounds must cover the same unit count, got "
                f"{left_bounds.shape} vs {right_bounds.shape}"
            )
        n_units = int(left_bounds.size) - 1
        unit_bits = max(n_units - 1, 0).bit_length()
        fused = unit_bits + int(key_width) <= 64
        layout = ArenaLayout(
            name=f"{ARENA_PREFIX}{os.getpid()}-{secrets.token_hex(4)}",
            n_left=int(left_keys.size),
            n_right=int(right_keys.size),
            n_units=n_units,
            key_width=int(key_width),
            fused=fused,
            filter_log2=filter_log2_for(int(right_keys.size)) if fused else 0,
        )
        sorted_left, order_left = _unit_sorted(
            left_keys.view(np.uint64), left_bounds, layout.key_width,
            layout.fused,
        )
        sorted_right, order_right = _unit_sorted(
            right_keys.view(np.uint64), right_bounds, layout.key_width,
            layout.fused,
        )
        segment = shared_memory.SharedMemory(
            name=layout.name, create=True, size=max(layout.nbytes, 1)
        )
        arena = cls(segment, layout, owner=True)
        np.copyto(arena.left_keys, sorted_left, casting="no")
        np.copyto(arena.left_order, order_left, casting="no")
        np.copyto(arena.right_keys, sorted_right, casting="no")
        np.copyto(arena.right_order, order_right, casting="no")
        np.copyto(
            arena.left_bounds,
            np.ascontiguousarray(left_bounds, dtype=np.int64),
            casting="no",
        )
        np.copyto(
            arena.right_bounds,
            np.ascontiguousarray(right_bounds, dtype=np.int64),
            casting="no",
        )
        if layout.filter_log2:
            np.copyto(
                arena.right_filter,
                build_key_filter(sorted_right, layout.filter_log2),
                casting="no",
            )
        return arena

    @classmethod
    def attach(cls, layout: ArenaLayout) -> "SharedArena":
        """Map an existing segment (worker side); views are read-shared."""
        segment = shared_memory.SharedMemory(name=layout.name, create=False)
        return cls(segment, layout, owner=False)

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def nbytes(self) -> int:
        return self.layout.nbytes

    def release(self) -> None:
        """Tear the segment down now (idempotent; GC also covers it)."""
        if self._closed:
            return
        self._closed = True
        self._finalizer()

    def __enter__(self) -> "SharedArena":
        return self

    def __exit__(self, *exc) -> None:
        self.release()


def split_row_range(
    left_keys: np.ndarray,
    right_keys: np.ndarray,
    left_lo: int,
    left_hi: int,
    right_lo: int,
    right_hi: int,
) -> tuple[tuple[int, int, int, int], tuple[int, int, int, int]] | None:
    """Halve one sorted key row range, zero-copy (adaptive re-split).

    The *left* rows partition exactly at their midpoint; each half's
    *right* range is the sub-range of the (sorted) right rows covering
    that half's key span, found with two binary searches. A key
    straddling the midpoint appears in **both** halves' right ranges —
    the replication side of SharesSkew's split — which keeps every match
    reachable while the disjoint left rows keep matches disjoint.

    Operates on the arena's fused key columns (the unit bits above the
    packed key are equal across sides within one unit, so cross-side
    comparisons stay exact). Returns two ``(left_lo, left_hi, right_lo,
    right_hi)`` row windows, or None when the left range has fewer than
    two rows and cannot be cut.
    """
    if left_hi - left_lo < 2:
        return None
    mid = (left_lo + left_hi) // 2
    cut_low = left_keys[mid - 1]
    cut_high = left_keys[mid]
    right_slice = right_keys[right_lo:right_hi]
    first_hi = right_lo + int(
        np.searchsorted(right_slice, cut_low, side="right")
    )
    second_lo = right_lo + int(
        np.searchsorted(right_slice, cut_high, side="left")
    )
    return (
        (left_lo, mid, right_lo, first_hi),
        (mid, left_hi, second_lo, right_hi),
    )


def live_arena_names() -> list[str]:
    """Arena segments currently present on this host (leak check).

    On Linux every shared-memory segment is a file under ``/dev/shm``;
    scanning for :data:`ARENA_PREFIX` names is how tests assert that an
    execution — including one that died mid-batch — left nothing behind.
    """
    base = "/dev/shm"
    try:
        entries = os.listdir(base)
    except OSError:  # pragma: no cover - non-Linux platforms
        return []
    return sorted(name for name in entries if name.startswith(ARENA_PREFIX))


__all__ = [
    "ARENA_PREFIX",
    "ArenaLayout",
    "SharedArena",
    "live_arena_names",
    "split_row_range",
]
