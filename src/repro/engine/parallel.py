"""Parallel execution of join units over a worker pool.

The physical planners balance *per-node* comparison work; this module
makes the engine exploit that balance for real wall-clock time, not just
simulated time. Join units are grouped by their assigned cluster node —
one logical worker per simulated node — and each node's batch runs as
one task on a ``concurrent.futures`` pool.

Within a batch, matching is a single vectorised pass: every unit's
composite keys are stacked — together with the unit id, so equal keys
only match inside their own join unit — into one 64-bit column. One
build/probe over that column covers all units the node owns.

When the key codec applies (see :mod:`repro.adm.keycodec`), the stacked
column is **exact**: the unit id occupies the bits above the packed
key, so equal column values are equal (unit, key) rows by construction
and no verification pass is needed. Structured keys — the fallback for
keys wider than 64 bits — are instead collapsed into a SplitMix64 hash
column, and the candidate pairs are verified against the true key
fields afterwards, which keeps the result exact under hash collisions.
Either way, plain-integer comparison replaces numpy's slow
structured-dtype kernels, which is why the batched path is faster than
the per-unit loop even on a single core.

Output parts are materialised by the workers without touching shared
builder state (:meth:`OutputBuilder.materialise_matches` is pure) and
merged by the coordinator in ascending node order, so results are
deterministic: repeated parallel runs, and serial runs, produce the
same multiset of cells.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.adm.cells import CellSet
from repro.core.slices import _HASH_MULT, _HASH_SEED, _mix
from repro.engine.joins import hash_join_match, match_pairs
from repro.engine.output import OutputBuilder
from repro.errors import ExecutionError
from repro.obs.counters import CounterSet
from repro.obs.trace import NULL_TRACER, Tracer

#: Pool flavours: threads share memory (numpy releases the GIL in the
#: sort/searchsorted kernels that dominate matching); processes sidestep
#: the GIL entirely at the price of pickling batches and results.
PARALLEL_MODES = ("thread", "process")


def resolve_workers(n_workers: int | None) -> int:
    """Normalise a worker-count knob: ``None``/0/1 mean serial."""
    if n_workers is None:
        return 1
    if n_workers < 0:
        raise ExecutionError(f"n_workers must be >= 0, got {n_workers}")
    return max(int(n_workers), 1)


@dataclass
class UnitBatch:
    """All matchable join units assigned to one node, with cached keys.

    ``units[i]`` owns ``left_cells[i]``/``right_cells[i]`` and their
    precomputed key columns and composite keys (shared with the slice
    table's cache — building a batch never re-derives keys).
    ``key_width`` is the packed-key bit width when the keys are
    codec-packed ``uint64`` columns, and None for structured keys.
    """

    node: int
    key_width: int | None = None
    units: list[int] = field(default_factory=list)
    left_cells: list[CellSet] = field(default_factory=list)
    right_cells: list[CellSet] = field(default_factory=list)
    left_key_cols: list[list[np.ndarray]] = field(default_factory=list)
    left_keys: list[np.ndarray] = field(default_factory=list)
    right_keys: list[np.ndarray] = field(default_factory=list)

    def add_unit(
        self,
        unit: int,
        left_cells: CellSet,
        right_cells: CellSet,
        left_key_cols: list[np.ndarray],
        left_keys: np.ndarray,
        right_keys: np.ndarray,
    ) -> None:
        self.units.append(unit)
        self.left_cells.append(left_cells)
        self.right_cells.append(right_cells)
        self.left_key_cols.append(left_key_cols)
        self.left_keys.append(left_keys)
        self.right_keys.append(right_keys)


@dataclass
class BatchResult:
    """One executed batch: the output part plus bookkeeping counters.

    ``counters`` and ``spans`` are the worker's observability harvest —
    both plain picklable values, so they travel back from process-pool
    workers and merge at the coordinator (``CounterSet.merge`` /
    ``Tracer.extend``).
    """

    node: int
    produced: int
    part: tuple[np.ndarray, dict[str, np.ndarray]] | None
    meta: dict
    counters: CounterSet = field(default_factory=CounterSet)
    spans: list = field(default_factory=list)


def stack_unit_keys(
    units: list[int], keys_list: list[np.ndarray]
) -> tuple[np.ndarray, dict[str, np.ndarray]]:
    """Stack per-unit composite keys field-wise, with a unit-id column.

    Returns ``(unit_column, field_columns)``: plain int64 arrays covering
    the batch's concatenated rows. The unit id participates in matching
    like a most-significant key field, so a batch-wide equi-match can
    only pair rows from the same join unit — the batched match equals
    the union of the per-unit matches. (Unit ids are already a pure
    function of the key for both chunk units and hash buckets; the
    explicit column makes the batch correct by construction rather than
    by that invariant.)
    """
    lengths = np.array([len(keys) for keys in keys_list], dtype=np.int64)
    unit_column = np.repeat(np.asarray(units, dtype=np.int64), lengths)
    fields = {
        name: np.concatenate([keys[name] for keys in keys_list])
        for name in keys_list[0].dtype.names
    }
    return unit_column, fields


def stack_packed_keys(
    units: list[int], keys_list: list[np.ndarray]
) -> tuple[np.ndarray, np.ndarray]:
    """Stack per-unit packed keys, with a row-aligned unit-id column.

    Returns ``(unit_column, packed_column)``, both ``uint64``, covering
    the batch's concatenated rows.
    """
    lengths = np.array([len(keys) for keys in keys_list], dtype=np.int64)
    unit_column = np.repeat(np.asarray(units, dtype=np.uint64), lengths)
    return unit_column, np.concatenate(keys_list)


def hash_stacked_keys(
    unit_column: np.ndarray, fields: dict[str, np.ndarray]
) -> np.ndarray:
    """Collapse (unit id, key fields) rows into one uint64 hash column.

    Same SplitMix64 recipe the slice functions use. Equal rows always
    hash equal, so matching on the hash column finds every true match;
    the (vanishingly rare) collisions are removed afterwards by exact
    verification — see :func:`_match_batch`.
    """
    combined = np.full(len(unit_column), _HASH_SEED, dtype=np.uint64)
    with np.errstate(over="ignore"):
        for column in (unit_column, *fields.values()):
            combined ^= _mix(np.ascontiguousarray(column).view(np.uint64))
            combined *= _HASH_MULT
    return combined


def _match_batch(
    batch: UnitBatch, algo: str, meta: dict
) -> tuple[np.ndarray, np.ndarray]:
    """Match every unit in a batch; indices address the concatenated cells.

    ``hash`` and ``merge`` produce identical match sets by definition, so
    the batch path computes both through the hashed build/probe — the
    simulated phase timing still reflects the planned algorithm, and the
    serial path remains the per-algorithm reference implementation.
    """
    if algo == "nested_loop":
        # The paper's never-profitable baseline has no batched form worth
        # building; run it per unit (with the oversize hash fallback) and
        # offset the local indices into the concatenated coordinate space.
        left_parts: list[np.ndarray] = []
        right_parts: list[np.ndarray] = []
        left_offset = right_offset = 0
        for left_keys, right_keys in zip(batch.left_keys, batch.right_keys):
            try:
                li, ri = match_pairs("nested_loop", left_keys, right_keys)
            except ExecutionError:
                li, ri = hash_join_match(left_keys, right_keys)
                meta["nested_loop_simulated"] = True
            left_parts.append(li + left_offset)
            right_parts.append(ri + right_offset)
            left_offset += len(left_keys)
            right_offset += len(right_keys)
        return (
            np.concatenate(left_parts).astype(np.int64),
            np.concatenate(right_parts).astype(np.int64),
        )

    if batch.key_width is not None:
        left_units, left_packed = stack_packed_keys(
            batch.units, batch.left_keys
        )
        right_units, right_packed = stack_packed_keys(
            batch.units, batch.right_keys
        )
        unit_bits = max(batch.units).bit_length()
        if unit_bits + batch.key_width <= 64:
            # Exact composite: the unit id sits above the packed key, so
            # equal column values are equal (unit, key) rows — one
            # build/probe, no collisions, no verification pass.
            shift = np.uint64(batch.key_width)
            return hash_join_match(
                (left_units << shift) | left_packed,
                (right_units << shift) | right_packed,
            )
        # Unit ids overflow the spare bits: hash the two columns and
        # verify candidates exactly (still only two comparisons per
        # candidate, against one per key field for structured keys).
        left_idx, right_idx = hash_join_match(
            hash_stacked_keys(left_units, {"packed": left_packed}),
            hash_stacked_keys(right_units, {"packed": right_packed}),
        )
        if len(left_idx):
            genuine = left_units[left_idx] == right_units[right_idx]
            genuine &= left_packed[left_idx] == right_packed[right_idx]
            left_idx, right_idx = left_idx[genuine], right_idx[genuine]
        return left_idx, right_idx

    left_units, left_fields = stack_unit_keys(batch.units, batch.left_keys)
    right_units, right_fields = stack_unit_keys(batch.units, batch.right_keys)
    left_idx, right_idx = hash_join_match(
        hash_stacked_keys(left_units, left_fields),
        hash_stacked_keys(right_units, right_fields),
    )
    if len(left_idx):
        # Exact verification: drop hash-collision candidates by comparing
        # the true unit ids and key fields of each candidate pair.
        genuine = left_units[left_idx] == right_units[right_idx]
        for name, left_column in left_fields.items():
            genuine &= left_column[left_idx] == right_fields[name][right_idx]
        left_idx, right_idx = left_idx[genuine], right_idx[genuine]
    return left_idx, right_idx


def execute_batch(
    batch: UnitBatch,
    builder: OutputBuilder,
    algo: str,
    trace_epoch: float | None = None,
) -> BatchResult:
    """Run one node's batch: vectorised match + output materialisation.

    Reads the builder's spec but never mutates it, so any number of
    batches may execute concurrently against the same builder; the
    coordinator merges the returned parts afterwards.

    ``trace_epoch`` (the coordinating tracer's epoch) switches on
    per-worker span collection: the worker records onto its own tracer
    — aligned to the coordinator's timeline — and ships the finished
    spans back in the :class:`BatchResult`.
    """
    tracer = (
        Tracer(epoch=trace_epoch, default_lane=f"worker:n{batch.node}")
        if trace_epoch is not None
        else NULL_TRACER
    )
    counters = CounterSet()
    meta: dict = {}
    rows_left = sum(len(keys) for keys in batch.left_keys)
    rows_right = sum(len(keys) for keys in batch.right_keys)
    with tracer.span(
        f"batch n{batch.node}",
        node=batch.node,
        units=len(batch.units),
        rows_left=rows_left,
        rows_right=rows_right,
    ) as batch_span:
        with tracer.span("match"):
            left_idx, right_idx = _match_batch(batch, algo, meta)
        with tracer.span("materialise"):
            left_cells = CellSet.concat(batch.left_cells)
            right_cells = CellSet.concat(batch.right_cells)
            n_key_cols = len(batch.left_key_cols[0])
            left_key_cols = [
                np.concatenate([cols[i] for cols in batch.left_key_cols])
                for i in range(n_key_cols)
            ]
            part = builder.materialise_matches(
                left_cells, right_cells, left_idx, right_idx, left_key_cols
            )
        produced = 0 if part is None else len(part[0])
        batch_span.set(matched_pairs=len(left_idx), produced=produced)
    counters.add("batches", 1)
    counters.add("join_units_matched", len(batch.units))
    counters.add("cells_compared", rows_left + rows_right)
    counters.add("matched_pairs", len(left_idx))
    counters.add("cells_emitted", produced)
    return BatchResult(
        node=batch.node,
        produced=produced,
        part=part,
        meta=meta,
        counters=counters,
        spans=tracer.spans if tracer.enabled else [],
    )


def run_batches(
    batches: list[UnitBatch],
    builder: OutputBuilder,
    algo: str,
    n_workers: int,
    mode: str = "thread",
    tracer: Tracer | None = None,
    counters: CounterSet | None = None,
) -> tuple[dict[int, int], dict]:
    """Execute batches on a worker pool and merge deterministically.

    Parts are appended to ``builder`` in ascending node order regardless
    of completion order, so the output is independent of scheduling.
    Returns per-node produced-cell counts and merged execution metadata.

    With an enabled ``tracer``, each worker collects spans onto its own
    epoch-aligned tracer and the finished spans merge here, in node
    order; per-worker counter sets likewise merge into ``counters``.
    """
    if mode not in PARALLEL_MODES:
        raise ExecutionError(
            f"unknown parallel mode {mode!r}; expected one of {PARALLEL_MODES}"
        )
    trace_epoch = (
        tracer.epoch if tracer is not None and tracer.enabled else None
    )
    batches = sorted(batches, key=lambda b: b.node)
    if n_workers <= 1 or len(batches) <= 1:
        results = [
            execute_batch(batch, builder, algo, trace_epoch=trace_epoch)
            for batch in batches
        ]
    else:
        results = _pool_map(
            batches, builder, algo, n_workers, mode, trace_epoch
        )

    node_output: dict[int, int] = {}
    meta: dict = {}
    for result in results:
        if result.part is not None:
            builder.add_part(*result.part)
        node_output[result.node] = (
            node_output.get(result.node, 0) + result.produced
        )
        meta.update(result.meta)
        if counters is not None:
            counters.merge(result.counters)
        if trace_epoch is not None:
            tracer.extend(result.spans)
    return node_output, meta


def _pool_map(
    batches: list[UnitBatch],
    builder: OutputBuilder,
    algo: str,
    n_workers: int,
    mode: str,
    trace_epoch: float | None = None,
) -> list[BatchResult]:
    workers = min(n_workers, len(batches))
    if mode == "process":
        import multiprocessing as mp

        # Fork (where available) shares the parent's pages; spawn would
        # re-import and pickle everything per worker.
        context = (
            mp.get_context("fork")
            if "fork" in mp.get_all_start_methods()
            else None
        )
        pool = ProcessPoolExecutor(max_workers=workers, mp_context=context)
    else:
        pool = ThreadPoolExecutor(max_workers=workers)
    with pool:
        futures = [
            pool.submit(
                execute_batch, batch, builder, algo, trace_epoch=trace_epoch
            )
            for batch in batches
        ]
        return [future.result() for future in futures]
