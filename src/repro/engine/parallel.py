"""Parallel execution of join units over a worker pool.

The physical planners balance *per-node* comparison work; this module
makes the engine exploit that balance for real wall-clock time, not just
simulated time. Join units are grouped by their assigned cluster node —
one logical worker per simulated node — and each node's batch runs as
one task on a ``concurrent.futures`` pool.

Within a batch, matching is a single vectorised pass: every unit's
composite keys are stacked — together with the unit id, so equal keys
only match inside their own join unit — into one 64-bit column. One
build/probe over that column covers all units the node owns.

When the key codec applies (see :mod:`repro.adm.keycodec`), the stacked
column is **exact**: the unit id occupies the bits above the packed
key, so equal column values are equal (unit, key) rows by construction
and no verification pass is needed. Structured keys — the fallback for
keys wider than 64 bits — are instead collapsed into a SplitMix64 hash
column, and the candidate pairs are verified against the true key
fields afterwards, which keeps the result exact under hash collisions.
Either way, plain-integer comparison replaces numpy's slow
structured-dtype kernels, which is why the batched path is faster than
the per-unit loop even on a single core.

Output parts are materialised by the workers without touching shared
builder state (:meth:`OutputBuilder.materialise_matches` is pure) and
merged by the coordinator in ascending node order, so results are
deterministic: repeated parallel runs, and serial runs, produce the
same multiset of cells.

Two execution paths feed the pool:

- the *classic* path pickles each :class:`UnitBatch` (cell sets, key
  columns) into the task and the materialised output part back out —
  the only option for structured keys and for thread pools (where
  "pickling" is free);
- the *shared-memory* path (:func:`run_shm_batches`) ships only an
  :class:`~repro.engine.shm.ArenaLayout` descriptor plus a unit-id
  array per task; workers attach the coordinator's arena zero-copy,
  match against the shared packed-key columns, and return nothing but
  global match-index arrays. The coordinator materialises output cells
  itself, straight from the (fork-inherited) side assemblies.

Worker pools are cached per ``(mode, size)`` and reused across
executions — forking a fresh process pool per query used to cost more
than the matching itself. :func:`shutdown_pools` tears the cache down
(also registered atexit).
"""

from __future__ import annotations

import atexit
import os
import threading
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from multiprocessing.connection import wait as _conn_wait

import numpy as np

from repro.adm.cells import CellSet
from repro.core.slices import _HASH_MULT, _HASH_SEED, _mix
from repro.engine.joins import hash_join_match, match_pairs
from repro.engine.kernels import (
    packed_match,
    packed_match_sorted,
    probe_key_filter,
)
from repro.engine.output import OutputBuilder
from repro.engine.shm import ArenaLayout, SharedArena, split_row_range
from repro.errors import ExecutionError
from repro.obs.counters import CounterSet
from repro.obs.trace import NULL_TRACER, Tracer

#: Pool flavours: threads share memory (numpy releases the GIL in the
#: sort/searchsorted kernels that dominate matching); processes sidestep
#: the GIL entirely at the price of pickling batches and results — or,
#: on the shared-memory path, of one segment attach per worker.
PARALLEL_MODES = ("thread", "process")


def resolve_workers(n_workers: int | None) -> int:
    """Normalise a worker-count knob: ``None``/0/1 mean serial."""
    if n_workers is None:
        return 1
    if n_workers < 0:
        raise ExecutionError(f"n_workers must be >= 0, got {n_workers}")
    return max(int(n_workers), 1)


def resolve_mode(mode: str) -> str:
    """Validate a parallel-mode knob; unknown values fail loudly."""
    if mode not in PARALLEL_MODES:
        raise ExecutionError(
            f"unknown parallel mode {mode!r}; expected one of {PARALLEL_MODES}"
        )
    return mode


def available_cpus() -> int:
    """CPUs actually usable by this process (affinity-aware).

    ``os.process_cpu_count`` (3.13+) respects CPU affinity masks and
    cgroup-style pinning; ``sched_getaffinity`` is the pre-3.13
    equivalent; ``os.cpu_count`` is the portable fallback. Benchmarks
    record this number (not the host's raw core count) and the shm
    dispatcher uses it to avoid fanning out beyond real parallelism.
    """
    n: int | None
    if hasattr(os, "process_cpu_count"):  # pragma: no cover - 3.13+
        n = os.process_cpu_count()
    else:
        try:
            n = len(os.sched_getaffinity(0))
        except (AttributeError, OSError):  # pragma: no cover - non-Linux
            n = os.cpu_count()
    return max(int(n or 1), 1)


# --------------------------------------------------------------- worker pools

_POOLS: dict[tuple[str, int], ThreadPoolExecutor | ProcessPoolExecutor] = {}
_POOLS_LOCK = threading.Lock()


def _get_pool(mode: str, workers: int):
    """The cached pool for ``(mode, workers)``, created on first use.

    Process pools fork lazily on first submit and stay warm afterwards,
    so repeated executions (the serving path, benchmarks) pay the fork
    cost once instead of per query.
    """
    key = (mode, workers)
    with _POOLS_LOCK:
        pool = _POOLS.get(key)
        if pool is None:
            if mode == "process":
                import multiprocessing as mp

                # Fork (where available) shares the parent's pages; spawn
                # would re-import and pickle everything per worker.
                context = (
                    mp.get_context("fork")
                    if "fork" in mp.get_all_start_methods()
                    else None
                )
                pool = ProcessPoolExecutor(
                    max_workers=workers, mp_context=context
                )
            else:
                pool = ThreadPoolExecutor(max_workers=workers)
            _POOLS[key] = pool
        return pool


def _discard_pool(mode: str, workers: int) -> None:
    """Drop (and shut down) one cached pool after it broke."""
    with _POOLS_LOCK:
        pool = _POOLS.pop((mode, workers), None)
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)


def shutdown_pools() -> int:
    """Shut down every cached worker pool; returns how many were live.

    Called atexit, by the exception-teardown path, and by tests that
    need workers re-forked (a forked worker snapshots module state at
    pool creation, so monkeypatching requires a fresh pool).
    """
    with _POOLS_LOCK:
        pools = list(_POOLS.values())
        _POOLS.clear()
        fork_pools = list(_FORK_POOLS.values())
        _FORK_POOLS.clear()
    for pool in pools:
        pool.shutdown(wait=True, cancel_futures=True)
    for fork_pool in fork_pools:
        fork_pool.shutdown()
    return len(pools) + len(fork_pools)


atexit.register(shutdown_pools)


# ----------------------------------------------------------- fork pipe pool

try:
    import multiprocessing as _mp

    _FORK_AVAILABLE = "fork" in _mp.get_all_start_methods()
except (ImportError, ValueError):  # pragma: no cover - exotic platforms
    _FORK_AVAILABLE = False


def _fork_worker_main(conn) -> None:
    """Loop of one forked shm worker: recv task chunk, send result chunk.

    Tasks execute through the module-global :func:`execute_shm_batch`
    (resolved at call time, so a test that monkeypatches it *before*
    the pool forks injects faults into the children too). A worker
    never dies on a task error — it reports ``("err", message)`` per
    failed task and keeps serving, so one poisoned batch doesn't cost
    the pool. ``None`` is the shutdown sentinel.
    """
    while True:
        try:
            tasks = conn.recv()
        except (EOFError, OSError):
            break
        if tasks is None:
            break
        replies = []
        for task in tasks:
            try:
                replies.append(("ok", execute_shm_batch(task)))
            except Exception as exc:
                replies.append(("err", f"{type(exc).__name__}: {exc}"))
        try:
            conn.send(replies)
        except (EOFError, OSError):
            break
    try:
        conn.close()
    except OSError:  # pragma: no cover - already torn down
        pass


class _ForkPool:
    """Minimal fork pool: one duplex pipe per worker, chunked dispatch.

    ``ProcessPoolExecutor`` charges a management-thread round trip plus
    a wakeup-pipe write per submitted task — on the shm path that
    overhead exceeds the matching itself. This pool forks once, keeps
    one ``Connection`` per worker, and ships each worker its whole
    chunk of tasks in a single send/recv, so per-execution IPC is
    O(workers), not O(tasks). Workers inherit the parent's pages (fork)
    and attach arenas by name, never unpickling key material.
    """

    def __init__(self, workers: int):
        ctx = _mp.get_context("fork")
        self.workers = workers
        # One query at a time per pool: the pipes carry no request ids,
        # so two concurrent queries interleaving sends over the same
        # connections would cross-deliver results. The serving front
        # end runs many queries concurrently against one executor;
        # whichever reaches the pool second blocks here.
        self._lock = threading.Lock()
        self._conns = []
        self._procs = []
        for _ in range(workers):
            parent, child = ctx.Pipe(duplex=True)
            proc = ctx.Process(
                target=_fork_worker_main, args=(child,), daemon=True
            )
            proc.start()
            child.close()
            self._conns.append(parent)
            self._procs.append(proc)

    def alive(self) -> bool:
        return all(proc.is_alive() for proc in self._procs)

    def run(self, chunks: list[list]) -> list:
        """Dispatch one chunk of tasks per worker; collect all results.

        ``chunks`` must not exceed the worker count (the caller packs
        tasks — see :func:`_pack_chunks`). Task errors are collected
        (not raced): every healthy worker's chunk is drained before the
        first failure raises, which keeps the pipes empty and the pool
        reusable. A dead worker raises immediately — the caller
        discards the pool.
        """
        with self._lock:
            active = [
                (conn, chunk)
                for conn, chunk in zip(self._conns, chunks)
                if chunk
            ]
            for conn, chunk in active:
                conn.send(chunk)
            results: list = []
            failure: str | None = None
            for conn, _ in active:
                try:
                    replies = conn.recv()
                except (EOFError, OSError) as exc:
                    raise ExecutionError(
                        f"process worker died mid-execution: {exc!r}"
                    ) from exc
                for status, payload in replies:
                    if status == "err":
                        failure = failure if failure is not None else payload
                    else:
                        results.append(payload)
            if failure is not None:
                raise ExecutionError(
                    f"shared-memory worker failed: {failure}"
                )
            return results

    def shutdown(self) -> None:
        for conn in self._conns:
            try:
                conn.send(None)
            except (OSError, BrokenPipeError):
                pass
        for proc in self._procs:
            proc.join(timeout=2.0)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=1.0)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass


_FORK_POOLS: dict[int, _ForkPool] = {}

#: Dispatch granularity floor: a chunk of shm tasks is only worth its
#: own worker message once it carries at least this many key rows.
#: Waking a sleeping worker costs a scheduling round trip whatever the
#: payload, so small workloads are packed into fewer, larger chunks
#: instead of fanning out one underfilled message per worker.
_MIN_CHUNK_ROWS = 131072


def _range_chunks(
    unit_rows: np.ndarray, max_chunks: int
) -> list[tuple[int, int]]:
    """Split units into at most ``max_chunks`` contiguous, row-balanced
    ranges.

    Contiguity is the point: the arena stores rows unit-major, so a
    contiguous unit range is a contiguous row slice — workers match
    views of the shared columns with zero gathering. The chunk count
    scales with total rows (one chunk per :data:`_MIN_CHUNK_ROWS`) up
    to the worker cap, and boundaries land where cumulative rows cross
    equal-share targets, so chunks carry near-equal work whatever the
    skew.
    """
    n_units = int(unit_rows.size)
    cum = np.concatenate(
        ([0], np.cumsum(np.asarray(unit_rows, dtype=np.int64)))
    )
    total = int(cum[-1])
    n_chunks = max(
        1, min(max_chunks, -(-total // _MIN_CHUNK_ROWS), max(n_units, 1))
    )
    if n_chunks <= 1:
        return [(0, n_units)]
    targets = (np.arange(1, n_chunks, dtype=np.int64) * total) // n_chunks
    splits = np.searchsorted(cum, targets, side="left")
    edges = np.unique(np.concatenate(([0], splits, [n_units])))
    return [
        (int(lo), int(hi)) for lo, hi in zip(edges[:-1], edges[1:])
    ]


def _get_fork_pool(workers: int) -> _ForkPool:
    """Cached fork pool of the given size; rebuilt if any worker died."""
    with _POOLS_LOCK:
        pool = _FORK_POOLS.get(workers)
        if pool is not None and not pool.alive():
            _FORK_POOLS.pop(workers, None)
            pool.shutdown()
            pool = None
        if pool is None:
            pool = _ForkPool(workers)
            _FORK_POOLS[workers] = pool
        return pool


def _discard_fork_pool(workers: int) -> None:
    with _POOLS_LOCK:
        pool = _FORK_POOLS.pop(workers, None)
    if pool is not None:
        pool.shutdown()


@dataclass
class UnitBatch:
    """All matchable join units assigned to one node, with cached keys.

    ``units[i]`` owns ``left_cells[i]``/``right_cells[i]`` and their
    precomputed key columns and composite keys (shared with the slice
    table's cache — building a batch never re-derives keys).
    ``key_width`` is the packed-key bit width when the keys are
    codec-packed ``uint64`` columns, and None for structured keys.
    """

    node: int
    key_width: int | None = None
    units: list[int] = field(default_factory=list)
    left_cells: list[CellSet] = field(default_factory=list)
    right_cells: list[CellSet] = field(default_factory=list)
    left_key_cols: list[list[np.ndarray]] = field(default_factory=list)
    left_keys: list[np.ndarray] = field(default_factory=list)
    right_keys: list[np.ndarray] = field(default_factory=list)

    def add_unit(
        self,
        unit: int,
        left_cells: CellSet,
        right_cells: CellSet,
        left_key_cols: list[np.ndarray],
        left_keys: np.ndarray,
        right_keys: np.ndarray,
    ) -> None:
        self.units.append(unit)
        self.left_cells.append(left_cells)
        self.right_cells.append(right_cells)
        self.left_key_cols.append(left_key_cols)
        self.left_keys.append(left_keys)
        self.right_keys.append(right_keys)


@dataclass
class BatchResult:
    """One executed batch: the output part plus bookkeeping counters.

    ``counters`` and ``spans`` are the worker's observability harvest —
    both plain picklable values, so they travel back from process-pool
    workers and merge at the coordinator (``CounterSet.merge`` /
    ``Tracer.extend``).
    """

    node: int
    produced: int
    part: tuple[np.ndarray, dict[str, np.ndarray]] | None
    meta: dict
    counters: CounterSet = field(default_factory=CounterSet)
    spans: list = field(default_factory=list)


def stack_unit_keys(
    units: list[int], keys_list: list[np.ndarray]
) -> tuple[np.ndarray, dict[str, np.ndarray]]:
    """Stack per-unit composite keys field-wise, with a unit-id column.

    Returns ``(unit_column, field_columns)``: plain int64 arrays covering
    the batch's concatenated rows. The unit id participates in matching
    like a most-significant key field, so a batch-wide equi-match can
    only pair rows from the same join unit — the batched match equals
    the union of the per-unit matches. (Unit ids are already a pure
    function of the key for both chunk units and hash buckets; the
    explicit column makes the batch correct by construction rather than
    by that invariant.)
    """
    lengths = np.array([len(keys) for keys in keys_list], dtype=np.int64)
    unit_column = np.repeat(np.asarray(units, dtype=np.int64), lengths)
    fields = {
        name: np.concatenate([keys[name] for keys in keys_list])
        for name in keys_list[0].dtype.names
    }
    return unit_column, fields


def stack_packed_keys(
    units: list[int], keys_list: list[np.ndarray]
) -> tuple[np.ndarray, np.ndarray]:
    """Stack per-unit packed keys, with a row-aligned unit-id column.

    Returns ``(unit_column, packed_column)``, both ``uint64``, covering
    the batch's concatenated rows.
    """
    lengths = np.array([len(keys) for keys in keys_list], dtype=np.int64)
    unit_column = np.repeat(np.asarray(units, dtype=np.uint64), lengths)
    return unit_column, np.concatenate(keys_list)


def hash_stacked_keys(
    unit_column: np.ndarray, fields: dict[str, np.ndarray]
) -> np.ndarray:
    """Collapse (unit id, key fields) rows into one uint64 hash column.

    Same SplitMix64 recipe the slice functions use. Equal rows always
    hash equal, so matching on the hash column finds every true match;
    the (vanishingly rare) collisions are removed afterwards by exact
    verification — see :func:`_match_batch`.
    """
    combined = np.full(len(unit_column), _HASH_SEED, dtype=np.uint64)
    with np.errstate(over="ignore"):
        for column in (unit_column, *fields.values()):
            combined ^= _mix(np.ascontiguousarray(column).view(np.uint64))
            combined *= _HASH_MULT
    return combined


def match_packed_columns(
    left_units: np.ndarray,
    left_packed: np.ndarray,
    right_units: np.ndarray,
    right_packed: np.ndarray,
    key_width: int,
    max_unit: int,
    kernel: str = "numpy",
) -> tuple[np.ndarray, np.ndarray]:
    """Match stacked (unit id, packed key) uint64 columns exactly.

    The shared core of the classic batched path and the shared-memory
    worker. When the unit id fits the bits above the packed key the two
    columns fuse into one exact uint64 lane (no verification needed);
    otherwise the rows are hashed and candidates verified, which stays
    exact under collisions. Either single-column equi-match runs on the
    selected kernel (see :mod:`repro.engine.kernels`).
    """
    unit_bits = int(max_unit).bit_length()
    if unit_bits + key_width <= 64:
        # Exact composite: the unit id sits above the packed key, so
        # equal column values are equal (unit, key) rows — one
        # build/probe, no collisions, no verification pass.
        shift = np.uint64(key_width)
        return packed_match(
            (left_units << shift) | left_packed,
            (right_units << shift) | right_packed,
            kernel,
        )
    # Unit ids overflow the spare bits: hash the two columns and
    # verify candidates exactly (still only two comparisons per
    # candidate, against one per key field for structured keys).
    left_idx, right_idx = packed_match(
        hash_stacked_keys(left_units, {"packed": left_packed}),
        hash_stacked_keys(right_units, {"packed": right_packed}),
        kernel,
    )
    if len(left_idx):
        genuine = left_units[left_idx] == right_units[right_idx]
        genuine &= left_packed[left_idx] == right_packed[right_idx]
        left_idx, right_idx = left_idx[genuine], right_idx[genuine]
    return left_idx, right_idx


def _match_batch(
    batch: UnitBatch, algo: str, meta: dict, kernel: str = "numpy"
) -> tuple[np.ndarray, np.ndarray]:
    """Match every unit in a batch; indices address the concatenated cells.

    ``hash`` and ``merge`` produce identical match sets by definition, so
    the batch path computes both through the hashed build/probe — the
    simulated phase timing still reflects the planned algorithm, and the
    serial path remains the per-algorithm reference implementation.
    """
    if algo == "nested_loop":
        # The paper's never-profitable baseline has no batched form worth
        # building; run it per unit (with the oversize hash fallback) and
        # offset the local indices into the concatenated coordinate space.
        left_parts: list[np.ndarray] = []
        right_parts: list[np.ndarray] = []
        left_offset = right_offset = 0
        for left_keys, right_keys in zip(batch.left_keys, batch.right_keys):
            try:
                li, ri = match_pairs("nested_loop", left_keys, right_keys)
            except ExecutionError:
                li, ri = hash_join_match(left_keys, right_keys)
                meta["nested_loop_simulated"] = True
            left_parts.append(li + left_offset)
            right_parts.append(ri + right_offset)
            left_offset += len(left_keys)
            right_offset += len(right_keys)
        return (
            np.concatenate(left_parts).astype(np.int64),
            np.concatenate(right_parts).astype(np.int64),
        )

    if batch.key_width is not None:
        left_units, left_packed = stack_packed_keys(
            batch.units, batch.left_keys
        )
        right_units, right_packed = stack_packed_keys(
            batch.units, batch.right_keys
        )
        return match_packed_columns(
            left_units, left_packed, right_units, right_packed,
            batch.key_width, max(batch.units), kernel,
        )

    left_units, left_fields = stack_unit_keys(batch.units, batch.left_keys)
    right_units, right_fields = stack_unit_keys(batch.units, batch.right_keys)
    left_idx, right_idx = packed_match(
        hash_stacked_keys(left_units, left_fields),
        hash_stacked_keys(right_units, right_fields),
        kernel,
    )
    if len(left_idx):
        # Exact verification: drop hash-collision candidates by comparing
        # the true unit ids and key fields of each candidate pair.
        genuine = left_units[left_idx] == right_units[right_idx]
        for name, left_column in left_fields.items():
            genuine &= left_column[left_idx] == right_fields[name][right_idx]
        left_idx, right_idx = left_idx[genuine], right_idx[genuine]
    return left_idx, right_idx


def execute_batch(
    batch: UnitBatch,
    builder: OutputBuilder,
    algo: str,
    trace_epoch: float | None = None,
    kernel: str = "numpy",
) -> BatchResult:
    """Run one node's batch: vectorised match + output materialisation.

    Reads the builder's spec but never mutates it, so any number of
    batches may execute concurrently against the same builder; the
    coordinator merges the returned parts afterwards.

    ``trace_epoch`` (the coordinating tracer's epoch) switches on
    per-worker span collection: the worker records onto its own tracer
    — aligned to the coordinator's timeline — and ships the finished
    spans back in the :class:`BatchResult`.
    """
    tracer = (
        Tracer(epoch=trace_epoch, default_lane=f"worker:n{batch.node}")
        if trace_epoch is not None
        else NULL_TRACER
    )
    counters = CounterSet()
    meta: dict = {}
    rows_left = sum(len(keys) for keys in batch.left_keys)
    rows_right = sum(len(keys) for keys in batch.right_keys)
    with tracer.span(
        f"batch n{batch.node}",
        node=batch.node,
        units=len(batch.units),
        rows_left=rows_left,
        rows_right=rows_right,
    ) as batch_span:
        with tracer.span("match", kernel=kernel):
            left_idx, right_idx = _match_batch(batch, algo, meta, kernel)
        with tracer.span("materialise"):
            left_cells = CellSet.concat(batch.left_cells)
            right_cells = CellSet.concat(batch.right_cells)
            n_key_cols = len(batch.left_key_cols[0])
            left_key_cols = [
                np.concatenate([cols[i] for cols in batch.left_key_cols])
                for i in range(n_key_cols)
            ]
            part = builder.materialise_matches(
                left_cells, right_cells, left_idx, right_idx, left_key_cols
            )
        produced = 0 if part is None else len(part[0])
        batch_span.set(matched_pairs=len(left_idx), produced=produced)
    counters.add("batches", 1)
    counters.add("join_units_matched", len(batch.units))
    counters.add("cells_compared", rows_left + rows_right)
    counters.add("matched_pairs", len(left_idx))
    counters.add("cells_emitted", produced)
    return BatchResult(
        node=batch.node,
        produced=produced,
        part=part,
        meta=meta,
        counters=counters,
        spans=tracer.spans if tracer.enabled else [],
    )


def run_batches(
    batches: list[UnitBatch],
    builder: OutputBuilder,
    algo: str,
    n_workers: int,
    mode: str = "thread",
    tracer: Tracer | None = None,
    counters: CounterSet | None = None,
    kernel: str = "numpy",
) -> tuple[dict[int, int], dict]:
    """Execute batches on a worker pool and merge deterministically.

    Parts are appended to ``builder`` in ascending node order regardless
    of completion order, so the output is independent of scheduling.
    Returns per-node produced-cell counts and merged execution metadata.

    With an enabled ``tracer``, each worker collects spans onto its own
    epoch-aligned tracer and the finished spans merge here, in node
    order; per-worker counter sets likewise merge into ``counters``.
    """
    resolve_mode(mode)
    trace_epoch = (
        tracer.epoch if tracer is not None and tracer.enabled else None
    )
    batches = sorted(batches, key=lambda b: b.node)
    if n_workers <= 1 or len(batches) <= 1:
        results = [
            execute_batch(
                batch, builder, algo, trace_epoch=trace_epoch, kernel=kernel
            )
            for batch in batches
        ]
    else:
        results = _pool_map(
            batches, builder, algo, n_workers, mode, trace_epoch, kernel
        )

    node_output: dict[int, int] = {}
    meta: dict = {"kernel": kernel, "shm": False}
    for result in results:
        if result.part is not None:
            builder.add_part(*result.part)
        node_output[result.node] = (
            node_output.get(result.node, 0) + result.produced
        )
        meta.update(result.meta)
        if counters is not None:
            counters.merge(result.counters)
        if trace_epoch is not None:
            tracer.extend(result.spans)
    return node_output, meta


def _pool_map(
    batches: list[UnitBatch],
    builder: OutputBuilder,
    algo: str,
    n_workers: int,
    mode: str,
    trace_epoch: float | None = None,
    kernel: str = "numpy",
) -> list[BatchResult]:
    workers = min(n_workers, len(batches))
    pool = _get_pool(mode, workers)
    futures = [
        pool.submit(
            execute_batch, batch, builder, algo,
            trace_epoch=trace_epoch, kernel=kernel,
        )
        for batch in batches
    ]
    try:
        return [future.result() for future in futures]
    except BrokenProcessPool as exc:
        _discard_pool(mode, workers)
        raise ExecutionError(
            f"{mode} worker pool died mid-execution: {exc}"
        ) from exc


# ------------------------------------------------------- shared-memory path


@dataclass(frozen=True)
class ShmTask:
    """One dispatch chunk's work order on the shared-memory path.

    The whole pickled payload: a *contiguous* unit range ``[start,
    stop)``, where the shared key material lives, and how to match it.
    Compare :class:`UnitBatch`, which carries the cells themselves.
    Because the arena columns are unit-major sorted, a contiguous unit
    range is a contiguous *row* slice of the shared arrays — workers
    match pure views, no gather at all. Units with an empty side inside
    the range cost nothing (their fused keys cannot match the other
    side), so ranges cover every unit and per-node attribution happens
    at the coordinator from the returned global rows.

    The adaptive re-splitter (:func:`_run_dynamic`) narrows a
    single-unit task to a *row* sub-range via ``left_lo``..``right_hi``:
    the left rows partition exactly while the right range covers the
    left sub-range's key span (a key straddling the cut appears in both
    halves' right ranges — matches stay disjoint because the left rows
    are). ``order`` is the position in the split tree: halving a task
    appends 0/1, and the coordinator merges results in lexicographic
    ``order``, so output is deterministic whatever worker ran what.
    """

    chunk: int
    start: int
    stop: int
    layout: ArenaLayout
    kernel: str
    trace_epoch: float | None
    order: tuple[int, ...] = ()
    #: Row overrides (fused arenas, single-unit tasks only): when set,
    #: match rows ``[left_lo, left_hi)`` x ``[right_lo, right_hi)``
    #: instead of the unit range's full bounds.
    left_lo: int | None = None
    left_hi: int | None = None
    right_lo: int | None = None
    right_hi: int | None = None


@dataclass
class ShmBatchResult:
    """What a shared-memory worker ships back: match indices only.

    ``left_rows``/``right_rows`` are *global* row indices into the side
    assemblies (not batch-local like :class:`BatchResult` parts), so the
    coordinator materialises output cells with plain fancy indexing over
    arrays it already holds.
    """

    chunk: int
    left_rows: np.ndarray
    right_rows: np.ndarray
    meta: dict
    counters: CounterSet = field(default_factory=CounterSet)
    spans: list = field(default_factory=list)
    #: The task's split-tree position; the coordinator's merge key.
    order: tuple[int, ...] = ()


#: Worker-side arena cache: attach once per (worker process, segment),
#: evict least-recently-used beyond a small cap so long-lived workers
#: don't accumulate mappings across many prepared joins.
_ATTACHED_ARENAS: OrderedDict[str, SharedArena] = OrderedDict()
_ATTACH_CAP = 8


def _attached_arena(layout: ArenaLayout) -> SharedArena:
    arena = _ATTACHED_ARENAS.get(layout.name)
    if arena is None:
        arena = SharedArena.attach(layout)
        _ATTACHED_ARENAS[layout.name] = arena
        while len(_ATTACHED_ARENAS) > _ATTACH_CAP:
            _, evicted = _ATTACHED_ARENAS.popitem(last=False)
            evicted.release()
    else:
        _ATTACHED_ARENAS.move_to_end(layout.name)
    return arena


def _concat_ranges(
    lo: np.ndarray, hi: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate ``[lo[i], hi[i])`` ranges into one index array.

    Returns ``(rows, counts)`` — the vectorised equivalent of
    ``np.concatenate([np.arange(l, h) for l, h in zip(lo, hi)])``.
    """
    counts = hi - lo
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), counts
    offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
    rows = np.repeat(lo - offsets, counts) + np.arange(total, dtype=np.int64)
    return rows, counts


def execute_shm_batch(task: ShmTask) -> ShmBatchResult:
    """Match one chunk's unit range against the shared arena (worker).

    Attaches (cached per worker process), slices the range's rows
    straight out of the unit-major sorted columns — a contiguous unit
    range is a contiguous row slice, so there is no gather at all —
    matches in one pass, and maps the matched positions back to global
    assembly rows, the only payload that travels to the coordinator.
    """
    tracer = (
        Tracer(epoch=task.trace_epoch, default_lane=f"worker:c{task.chunk}")
        if task.trace_epoch is not None
        else NULL_TRACER
    )
    counters = CounterSet()
    meta: dict = {}
    with tracer.span(
        f"batch c{task.chunk}",
        chunk=task.chunk,
        units=task.stop - task.start,
        shm=True,
    ) as batch_span:
        with tracer.span(
            "shm_attach", segment=task.layout.name, nbytes=task.layout.nbytes
        ):
            arena = _attached_arena(task.layout)
        left_bounds = arena.left_bounds
        right_bounds = arena.right_bounds
        # A row-scoped task (adaptive re-split) narrows the unit range's
        # bounds to a sub-range of its rows; plain tasks span the full
        # bounds of [start, stop).
        scoped = task.left_lo is not None
        if scoped:
            left_lo, left_hi = int(task.left_lo), int(task.left_hi)
            right_lo, right_hi = int(task.right_lo), int(task.right_hi)
        else:
            left_lo = int(left_bounds[task.start])
            left_hi = int(left_bounds[task.stop])
            right_lo = int(right_bounds[task.start])
            right_hi = int(right_bounds[task.stop])
        with tracer.span("match", kernel=task.kernel):
            if task.layout.fused:
                # The arena stores fused (unit << key_width) | key
                # columns, globally sorted; a contiguous slice stays
                # sorted, so matching is a pure binary-search merge —
                # no argsort, no per-row transforms, per execution.
                left_slice = arena.left_keys[left_lo:left_hi]
                right_slice = arena.right_keys[right_lo:right_hi]
                candidates = None
                if task.layout.filter_log2:
                    # Low-selectivity fast path: the arena's membership
                    # bitmap rejects most left needles in one gather
                    # (~one cache miss each); only surviving candidates
                    # pay the exact binary-search match. When most
                    # needles survive (a selective filter buys nothing
                    # on merge-heavy data), match the full slice.
                    hits = probe_key_filter(
                        left_slice,
                        arena.right_filter,
                        task.layout.filter_log2,
                    )
                    candidates = np.nonzero(hits)[0]
                    if candidates.size > (left_slice.size >> 2):
                        candidates = None
                if candidates is not None:
                    left_idx, right_idx = packed_match_sorted(
                        left_slice[candidates], right_slice, task.kernel
                    )
                    left_idx = candidates[left_idx]
                else:
                    left_idx, right_idx = packed_match_sorted(
                        left_slice, right_slice, task.kernel
                    )
            else:
                left_counts = np.diff(left_bounds[task.start:task.stop + 1])
                right_counts = np.diff(right_bounds[task.start:task.stop + 1])
                units = np.arange(
                    task.start, task.stop, dtype=np.uint64
                )
                left_idx, right_idx = match_packed_columns(
                    np.repeat(units, left_counts),
                    arena.left_keys[left_lo:left_hi],
                    np.repeat(units, right_counts),
                    arena.right_keys[right_lo:right_hi],
                    task.layout.key_width,
                    task.stop - 1,
                    task.kernel,
                )
        # Sorted-arena positions -> original assembly rows: gather only
        # the matched positions through the shared order maps.
        left_rows = arena.left_order[left_lo + left_idx]
        right_rows = arena.right_order[right_lo + right_idx]
        # Counter parity with the serial oracle: count only matchable
        # units (both sides populated) and their rows — the slice also
        # spans units the serial loop would skip. A row-scoped task
        # counts neither: the coordinator credited its parent unit once
        # when it split the range (halves overlap on the straddling
        # key's right rows, so summing per-half counts would overcount).
        if scoped:
            n_matchable = 0
            compared = 0
        else:
            left_counts = np.diff(left_bounds[task.start:task.stop + 1])
            right_counts = np.diff(right_bounds[task.start:task.stop + 1])
            matchable = (left_counts > 0) & (right_counts > 0)
            n_matchable = int(np.count_nonzero(matchable))
            compared = int(
                left_counts[matchable].sum() + right_counts[matchable].sum()
            )
        batch_span.set(
            rows_left=left_hi - left_lo,
            rows_right=right_hi - right_lo,
            matched_pairs=len(left_idx),
        )
    counters.add("batches", 1)
    counters.add("join_units_matched", n_matchable)
    counters.add("cells_compared", compared)
    counters.add("matched_pairs", len(left_idx))
    return ShmBatchResult(
        chunk=task.chunk,
        left_rows=left_rows,
        right_rows=right_rows,
        meta=meta,
        counters=counters,
        spans=tracer.spans if tracer.enabled else [],
        order=task.order,
    )


#: Run-time re-split floor: a task is only worth halving while each half
#: keeps at least this many key rows. Far below the dispatch floor
#: (:data:`_MIN_CHUNK_ROWS`) on purpose — a re-split task goes to a
#: worker that is already awake, so the break-even payload is the
#: matching work itself, not a scheduling round trip.
_RESPLIT_MIN_ROWS = 16384


def _task_rows(
    task: ShmTask, left_bounds: np.ndarray, right_bounds: np.ndarray
) -> int:
    """Key rows (both sides) a task will touch — the load estimate."""
    if task.left_lo is not None:
        return (task.left_hi - task.left_lo) + (task.right_hi - task.right_lo)
    return int(
        (left_bounds[task.stop] - left_bounds[task.start])
        + (right_bounds[task.stop] - right_bounds[task.start])
    )


def split_shm_task(
    task: ShmTask, arena: SharedArena
) -> tuple[ShmTask, ShmTask] | None:
    """Halve one shm task in place — new bounds over the same arena.

    Zero-copy by construction: both halves reference the identical
    shared segment, only their ``[start, stop)`` unit range or
    ``left_lo``..``right_hi`` row windows differ. Three cases:

    - multi-unit range: cut at the interior *unit boundary* nearest half
      the cumulative rows — both halves stay plain tasks that count
      their own units;
    - single-unit plain task (fused arenas only): cut the unit's *rows*
      via :func:`repro.engine.shm.split_row_range`, producing row-scoped
      halves;
    - already row-scoped task: cut the row window again the same way.

    Returns ``None`` when the task cannot be cut (a sub-two-row left
    range, or a single structured-key unit — that path stays the
    oracle).
    """
    if task.left_lo is not None:
        halves = split_row_range(
            arena.left_keys, arena.right_keys,
            task.left_lo, task.left_hi, task.right_lo, task.right_hi,
        )
        if halves is None:
            return None
        (a_llo, a_lhi, a_rlo, a_rhi), (b_llo, b_lhi, b_rlo, b_rhi) = halves
        return (
            replace(
                task, order=task.order + (0,),
                left_lo=a_llo, left_hi=a_lhi,
                right_lo=a_rlo, right_hi=a_rhi,
            ),
            replace(
                task, order=task.order + (1,),
                left_lo=b_llo, left_hi=b_lhi,
                right_lo=b_rlo, right_hi=b_rhi,
            ),
        )
    if task.stop - task.start > 1:
        left_bounds = np.asarray(arena.left_bounds)
        right_bounds = np.asarray(arena.right_bounds)
        lb = left_bounds[task.start:task.stop + 1]
        rb = right_bounds[task.start:task.stop + 1]
        cum = (lb - lb[0]) + (rb - rb[0])
        mid = task.start + 1 + int(
            np.argmin(np.abs(cum[1:-1] * 2 - cum[-1]))
        )
        return (
            replace(task, stop=mid, order=task.order + (0,)),
            replace(task, start=mid, order=task.order + (1,)),
        )
    if not arena.layout.fused:
        return None
    left_bounds = arena.left_bounds
    right_bounds = arena.right_bounds
    halves = split_row_range(
        arena.left_keys, arena.right_keys,
        int(left_bounds[task.start]), int(left_bounds[task.stop]),
        int(right_bounds[task.start]), int(right_bounds[task.stop]),
    )
    if halves is None:
        return None
    (a_llo, a_lhi, a_rlo, a_rhi), (b_llo, b_lhi, b_rlo, b_rhi) = halves
    return (
        replace(
            task, order=task.order + (0,),
            left_lo=a_llo, left_hi=a_lhi, right_lo=a_rlo, right_hi=a_rhi,
        ),
        replace(
            task, order=task.order + (1,),
            left_lo=b_llo, left_hi=b_lhi, right_lo=b_rlo, right_hi=b_rhi,
        ),
    )


def _run_dynamic(
    pool: _ForkPool,
    tasks: list[ShmTask],
    arena: SharedArena,
    counters: CounterSet | None,
) -> tuple[list[ShmBatchResult], int, int]:
    """Per-task dispatch with straggler re-splitting (adaptive mode).

    Largest-pending-first dispatch over the fork pool's pipes, one task
    per message. Before a task ships, it is halved (repeatedly) while it
    dwarfs the fair share of the work still queued for the other
    workers — so no worker ever holds a range bigger than what the rest
    of the pool has left, which is exactly the straggler condition the
    static plan cannot see. Second halves go back into the queue and are
    re-examined at their own dispatch.

    Deterministic despite the timing-dependent completion order: the
    queue only changes at dispatch (pop largest, maybe push halves), so
    the k-th dispatch always sees the same queue state, the split tree
    is a pure function of the initial tasks, and the caller merges
    results by ``order`` tuple.

    Returns ``(results, resplits, steal_count)``; ``steal_count`` is how
    many split halves ran on a different worker than their sibling.
    """
    left_bounds = np.asarray(arena.left_bounds)
    right_bounds = np.asarray(arena.right_bounds)

    def rows_of(task: ShmTask) -> int:
        return _task_rows(task, left_bounds, right_bounds)

    def compensate(task: ShmTask) -> None:
        # The serial oracle counts a matchable unit and its rows exactly
        # once; a row-scoped half counts nothing (halves overlap on the
        # straddling key's right rows), so the parent unit is credited
        # here, at its first row-split.
        if counters is None:
            return
        l_rows = int(left_bounds[task.stop] - left_bounds[task.start])
        r_rows = int(right_bounds[task.stop] - right_bounds[task.start])
        if l_rows > 0 and r_rows > 0:
            counters.add("join_units_matched", 1)
            counters.add("cells_compared", l_rows + r_rows)

    pending = sorted(tasks, key=rows_of, reverse=True)
    # Same exclusivity as _ForkPool.run: the dynamic dispatcher owns
    # every pipe until the run drains, so concurrent queries serialise
    # at the pool instead of interleaving messages.
    with pool._lock:
        return _run_dynamic_locked(pool, pending, arena, counters, rows_of,
                                   compensate)


def _run_dynamic_locked(
    pool: _ForkPool,
    pending: list[ShmTask],
    arena: SharedArena,
    counters: CounterSet | None,
    rows_of,
    compensate,
) -> tuple[list[ShmBatchResult], int, int]:
    idle = list(pool._conns)
    n_workers = pool.workers
    inflight: dict = {}
    owner: dict[tuple[int, ...], object] = {}
    results: list[ShmBatchResult] = []
    failure: str | None = None
    resplits = 0
    steal_count = 0
    while pending or inflight:
        while idle and pending:
            task = pending.pop(0)
            while True:
                rows = rows_of(task)
                if rows < 2 * _RESPLIT_MIN_ROWS:
                    break
                remaining = sum(rows_of(t) for t in pending)
                fair_share = remaining / max(n_workers - 1, 1)
                if rows <= max(fair_share, 2 * _RESPLIT_MIN_ROWS):
                    break
                halves = split_shm_task(task, arena)
                if halves is None:
                    break
                first, second = halves
                if task.left_lo is None and first.left_lo is not None:
                    compensate(task)
                resplits += 1
                pending.append(second)
                pending.sort(key=rows_of, reverse=True)
                task = first
            conn = idle.pop()
            if len(task.order) >= 2:
                parent = task.order[:-1]
                sibling_conn = owner.get(parent)
                if sibling_conn is None:
                    owner[parent] = conn
                elif sibling_conn is not conn:
                    steal_count += 1
            try:
                conn.send([task])
            except (OSError, BrokenPipeError) as exc:
                raise ExecutionError(
                    f"process worker died mid-execution: {exc!r}"
                ) from exc
            inflight[conn] = task
        if not inflight:
            break
        for conn in _conn_wait(list(inflight)):
            try:
                replies = conn.recv()
            except (EOFError, OSError) as exc:
                raise ExecutionError(
                    f"process worker died mid-execution: {exc!r}"
                ) from exc
            del inflight[conn]
            idle.append(conn)
            for status, payload in replies:
                if status == "err":
                    failure = failure if failure is not None else payload
                else:
                    results.append(payload)
        if failure is not None:
            # Stop feeding work, but drain every in-flight pipe so the
            # pool stays clean (same contract as _ForkPool.run).
            pending.clear()
    if failure is not None:
        raise ExecutionError(f"shared-memory worker failed: {failure}")
    return results, resplits, steal_count


def run_shm_batches(
    arena: SharedArena,
    assignment: np.ndarray,
    builder: OutputBuilder,
    left_cells: CellSet,
    right_cells: CellSet,
    left_key_cols: list[np.ndarray],
    n_workers: int,
    kernel: str = "numpy",
    tracer: Tracer | None = None,
    counters: CounterSet | None = None,
    split_units: str = "off",
) -> tuple[dict[int, int], dict]:
    """Execute the shared-memory plan: index-only workers, local build.

    ``left_cells``/``right_cells``/``left_key_cols`` are the *whole*
    side assemblies; workers return global rows into them, so the
    coordinator materialises the output directly — no per-batch
    cell-set concatenation, no pickled parts. ``assignment`` (unit ->
    node) only attributes produced counts afterwards: dispatch ignores
    the node plan entirely and splits units into contiguous,
    row-balanced ranges that workers match as views.

    ``split_units="adaptive"`` (fused arenas, fork platforms) swaps the
    one-chunk-per-worker dispatch for :func:`_run_dynamic`: tasks ship
    one at a time, stragglers are halved zero-copy before they ship,
    and idle workers steal the halves. Output stays byte-identical —
    results merge by split-tree ``order``, not completion order.
    """
    trace_epoch = (
        tracer.epoch if tracer is not None and tracer.enabled else None
    )
    meta: dict = {
        "kernel": kernel,
        "shm": True,
        "shm_bytes": arena.nbytes,
    }
    n_units = arena.layout.n_units
    if n_units <= 0:
        return {}, meta
    left_bounds = np.asarray(arena.left_bounds)
    right_bounds = np.asarray(arena.right_bounds)
    unit_rows = np.diff(left_bounds) + np.diff(right_bounds)
    # Dispatch width: never more chunks than workers, never more than
    # the compute justifies (_range_chunks), and never beyond the CPUs
    # this process can actually use — oversubscribing a small host
    # turns fan-out into pure scheduling overhead. The floor of 2
    # keeps real process workers engaged whenever parallelism was
    # requested, whatever the affinity mask says.
    pool_size = min(n_workers, max(available_cpus(), 2))
    # Effective slots: parallelism the host can really deliver. The
    # pool-size floor of 2 above keeps process workers engaged for the
    # *static* path (isolation still pays for itself), but adaptive
    # re-splitting only converts stragglers into speedup when split
    # halves can run concurrently — on one effective slot every extra
    # dispatch round trip is pure loss, so adaptive falls back to the
    # static split there.
    effective_slots = min(n_workers, available_cpus())
    tasks = [
        ShmTask(
            chunk=index,
            start=start,
            stop=stop,
            layout=arena.layout,
            kernel=kernel,
            trace_epoch=trace_epoch,
            order=(index,),
        )
        for index, (start, stop) in enumerate(
            _range_chunks(unit_rows, pool_size)
        )
    ]
    adaptive = (
        split_units == "adaptive"
        and arena.layout.fused
        and _FORK_AVAILABLE
        and n_workers > 1
        and pool_size > 1
        and effective_slots > 1
    )
    if adaptive:
        pool = _get_fork_pool(pool_size)
        try:
            results, resplits, steals = _run_dynamic(
                pool, tasks, arena, counters
            )
        except ExecutionError:
            _discard_fork_pool(pool_size)
            raise
        meta["runtime_resplits"] = resplits
        meta["steal_count"] = steals
    elif n_workers <= 1 or len(tasks) <= 1:
        try:
            results = [execute_shm_batch(task) for task in tasks]
        except ExecutionError:
            raise
        except Exception as exc:
            # Same contract as the pooled paths: batch failures always
            # surface as ExecutionError so callers have one type to
            # trigger arena/pool teardown on.
            raise ExecutionError(
                f"shared-memory batch failed: {exc}"
            ) from exc
    elif _FORK_AVAILABLE:
        pool = _get_fork_pool(pool_size)
        try:
            results = pool.run([[task] for task in tasks])
        except ExecutionError:
            _discard_fork_pool(pool_size)
            raise
    else:  # pragma: no cover - spawn-only platforms
        workers = min(n_workers, len(tasks))
        pool = _get_pool("process", workers)
        futures = [pool.submit(execute_shm_batch, task) for task in tasks]
        try:
            results = [future.result() for future in futures]
        except BrokenProcessPool as exc:
            _discard_pool("process", workers)
            raise ExecutionError(
                f"process worker pool died mid-execution: {exc}"
            ) from exc

    # Deterministic merge: lexicographic split-tree order — plain runs
    # reduce to ascending chunk order, adaptive runs interleave halves
    # exactly where their parent range sat — whatever worker handled
    # each task; one concatenated materialise pass builds the whole
    # output at once (materialise_matches emits exactly one output row
    # per match pair). Per-node produced counts fall out of the matched
    # rows themselves: row -> unit via the bounds table, unit -> node
    # via the plan's assignment.
    results.sort(key=lambda result: result.order)
    left_parts = [result.left_rows for result in results]
    right_parts = [result.right_rows for result in results]
    for result in results:
        meta.update(result.meta)
        if counters is not None:
            counters.merge(result.counters)
            counters.add("cells_emitted", len(result.left_rows))
        if trace_epoch is not None:
            tracer.extend(result.spans)
    node_output: dict[int, int] = {}
    all_left = (
        np.concatenate(left_parts) if left_parts else
        np.empty(0, dtype=np.int64)
    )
    if all_left.size:
        pair_units = np.searchsorted(left_bounds, all_left, side="right") - 1
        produced = np.bincount(
            np.asarray(assignment, dtype=np.int64)[pair_units]
        )
        node_output = {
            int(node): int(count)
            for node, count in enumerate(produced)
            if count
        }
        part = builder.materialise_matches(
            left_cells,
            right_cells,
            all_left,
            np.concatenate(right_parts),
            left_key_cols,
        )
        if part is not None:
            builder.add_part(*part)
    return node_output, meta
