"""Sampling-based join selectivity estimation.

The paper puts output-cardinality estimation out of scope and notes the
optimizer "only needs to know whether or not the output cell count
exceeds the size of its inputs to make efficient choices about when to
sort the data". This module provides that coarse estimate: sample the
join keys of both sides, count sample matches by key-group products, and
scale by the inverse sampling fractions.
"""

from __future__ import annotations

import numpy as np

from repro.adm.cells import composite_key
from repro.cluster.cluster import Cluster
from repro.core.join_schema import JoinSchema
from repro.core.slices import key_columns


def _sampled_keys(
    cluster: Cluster,
    array_name: str,
    join_schema: JoinSchema,
    side: str,
    sample_cells: int,
    rng: np.random.Generator,
) -> tuple[np.ndarray, float]:
    """Composite join keys from a uniform sample of one array's cells.

    Returns (keys, sampling_fraction). Sampling happens per node — every
    node contributes its share, mirroring how a distributed engine would
    collect the statistic without centralising the data.
    """
    source_schema = (
        join_schema.left_schema if side == "left" else join_schema.right_schema
    )
    total = cluster.array_cell_count(array_name)
    if total == 0:
        return np.empty(0, dtype=np.int64), 1.0
    fraction = min(1.0, sample_cells / total)
    parts = []
    for node in cluster.nodes:
        if not node.has_array(array_name):
            continue
        cells = node.store(array_name).cells()
        if not len(cells):
            continue
        take = max(1, int(round(fraction * len(cells))))
        index = rng.choice(len(cells), size=min(take, len(cells)), replace=False)
        sample = cells.take(np.sort(index))
        parts.append(
            composite_key(key_columns(join_schema, side, sample, source_schema))
        )
    if not parts:
        return np.empty(0, dtype=np.int64), fraction
    return np.concatenate(parts), fraction


def estimate_selectivity(
    cluster: Cluster,
    left_name: str,
    right_name: str,
    join_schema: JoinSchema,
    sample_cells: int = 20_000,
    seed: int = 0,
) -> float:
    """Estimate the join's selectivity ``|output| / (n_α + n_β)``.

    ``E[matches] ≈ sample_matches / (f_α × f_β)`` where f is each side's
    sampling fraction — unbiased for equi-joins under uniform sampling.
    The result is floored at a tiny positive value so downstream cost
    formulas never see an exactly-zero output estimate.
    """
    rng = np.random.default_rng(seed)
    left_keys, f_left = _sampled_keys(
        cluster, left_name, join_schema, "left", sample_cells, rng
    )
    right_keys, f_right = _sampled_keys(
        cluster, right_name, join_schema, "right", sample_cells, rng
    )
    total = cluster.array_cell_count(left_name) + cluster.array_cell_count(
        right_name
    )
    if total == 0 or len(left_keys) == 0 or len(right_keys) == 0:
        return 1e-6

    left_uniques, left_counts = np.unique(left_keys, return_counts=True)
    right_uniques, right_counts = np.unique(right_keys, return_counts=True)
    positions = np.searchsorted(right_uniques, left_uniques)
    positions = np.clip(positions, 0, len(right_uniques) - 1)
    hit = right_uniques[positions] == left_uniques
    sample_matches = float(
        (left_counts[hit] * right_counts[positions[hit]]).sum()
    )
    estimated_matches = sample_matches / max(f_left * f_right, 1e-12)
    return max(estimated_matches / total, 1e-6)
