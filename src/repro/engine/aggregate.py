"""Aggregation over arrays: SUM / COUNT / AVG / MIN / MAX with GROUP BY.

SciDB's ``aggregate`` operator, reproduced for the ADM: grouping is by a
subset of the array's *dimensions* (the natural array grouping — each
group is a line/plane of the dimension space), and the output is a new
array over exactly those dimensions. With no group-by dimensions the
result is a single dimensionless cell.

This is the substrate the paper's second future-work item (complex
analytics such as covariance-matrix queries, Section 8) builds on — see
``examples/covariance_analytics.py``.
"""

from __future__ import annotations

import numpy as np

from repro.adm.array import LocalArray
from repro.adm.cells import CellSet
from repro.adm.schema import ArraySchema, Attribute
from repro.errors import ExecutionError
from repro.query.afl import environment_for
from repro.query.aql import AGGREGATE_FUNCTIONS, AggregateItem
from repro.query.expressions import Expression

__all__ = [
    "AGGREGATE_FUNCTIONS",
    "AggregateItem",
    "aggregate",
    "apply_expression",
]


def _group_layout(array: LocalArray, group_by: list[str]):
    """Group index per cell plus the distinct group coordinates."""
    cells = array.cells()
    if not group_by:
        return cells, np.zeros(len(cells), dtype=np.int64), np.empty(
            (1, 0), dtype=np.int64
        )
    axes = []
    for name in group_by:
        if not array.schema.has_dim(name):
            raise ExecutionError(
                f"GROUP BY field {name!r} is not a dimension of "
                f"{array.schema.name!r}"
            )
        axes.append(array.schema.dim_names.index(name))
    key_matrix = cells.coords[:, axes]
    dtype = [(f"g{i}", np.int64) for i in range(len(axes))]
    packed = np.empty(len(cells), dtype=dtype)
    for i in range(len(axes)):
        packed[f"g{i}"] = key_matrix[:, i]
    groups, inverse = np.unique(packed, return_inverse=True)
    group_coords = np.empty((len(groups), len(axes)), dtype=np.int64)
    for i in range(len(axes)):
        group_coords[:, i] = groups[f"g{i}"]
    return cells, inverse.astype(np.int64), group_coords


def _reduce(fn: str, values: np.ndarray | None, inverse: np.ndarray,
            n_groups: int) -> np.ndarray:
    if fn == "count":
        return np.bincount(inverse, minlength=n_groups).astype(np.int64)
    assert values is not None
    values = np.asarray(values, dtype=np.float64)
    if fn == "sum":
        return np.bincount(inverse, weights=values, minlength=n_groups)
    if fn == "avg":
        sums = np.bincount(inverse, weights=values, minlength=n_groups)
        counts = np.bincount(inverse, minlength=n_groups)
        return sums / np.maximum(counts, 1)
    out = np.full(
        n_groups, np.inf if fn == "min" else -np.inf, dtype=np.float64
    )
    if fn == "min":
        np.minimum.at(out, inverse, values)
    else:
        np.maximum.at(out, inverse, values)
    return out


def aggregate(
    array: LocalArray,
    items: list[AggregateItem],
    group_by: list[str] | None = None,
    output_name: str | None = None,
) -> LocalArray:
    """Aggregate an array, optionally grouped by dimensions.

    >>> aggregate(a, [AggregateItem("sum", parse_expression("v"), "total")],
    ...           group_by=["i"])
    """
    group_by = list(group_by or [])
    if not items:
        raise ExecutionError("aggregation needs at least one aggregate item")
    aliases = [item.alias for item in items]
    if len(set(aliases)) != len(aliases):
        raise ExecutionError(f"duplicate aggregate aliases in {aliases}")

    cells, inverse, group_coords = _group_layout(array, group_by)
    n_groups = len(group_coords)
    if len(cells) == 0:
        n_groups = 0
        group_coords = np.empty((0, len(group_by)), dtype=np.int64)

    env = environment_for(array)
    attrs: dict[str, np.ndarray] = {}
    attr_types: list[Attribute] = []
    for item in items:
        values = (
            None
            if item.expr is None
            else np.broadcast_to(
                np.asarray(item.expr.evaluate(env), dtype=np.float64),
                (len(cells),),
            )
        )
        if n_groups:
            column = _reduce(item.fn, values, inverse, n_groups)
        else:
            column = np.empty(0, dtype=np.float64)
        if item.fn == "count":
            attrs[item.alias] = column.astype(np.int64)
            attr_types.append(Attribute(item.alias, "int64"))
        else:
            attrs[item.alias] = column.astype(np.float64)
            attr_types.append(Attribute(item.alias, "float64"))

    dims = tuple(array.schema.dim(name) for name in group_by)
    schema = ArraySchema(
        name=output_name or f"{array.schema.name}_agg",
        dims=dims,
        attrs=tuple(attr_types),
    )
    return LocalArray.from_cells(schema, CellSet(group_coords, attrs))


def window(
    array: LocalArray,
    radii: list[int],
    items: list[AggregateItem],
    output_name: str | None = None,
) -> LocalArray:
    """Moving-window aggregation (SciDB's ``window``).

    Every occupied cell aggregates the occupied cells within ``radii`` of
    it along each dimension (a ``(2r+1)^d`` neighbourhood). Sparse-aware:
    the implementation walks the window's offsets and joins shifted
    coordinates, so cost is O(cells × window volume × log cells) with no
    dense materialisation.
    """
    import itertools as _itertools

    from repro.adm.cells import composite_key

    schema = array.schema
    if len(radii) != schema.ndims:
        raise ExecutionError(
            f"window needs one radius per dimension ({schema.ndims}), "
            f"got {len(radii)}"
        )
    if any(r < 0 for r in radii):
        raise ExecutionError(f"window radii must be non-negative: {radii}")
    if not items:
        raise ExecutionError("window needs at least one aggregate item")

    cells = array.cells()
    n = len(cells)
    env = environment_for(array)
    value_columns = {}
    for item in items:
        if item.expr is not None:
            value_columns[item.alias] = np.broadcast_to(
                np.asarray(item.expr.evaluate(env), dtype=np.float64), (n,)
            )

    # Sorted coordinate index for shifted lookups.
    keys = composite_key([cells.coords[:, axis] for axis in range(schema.ndims)])
    order = np.argsort(keys)
    sorted_keys = keys[order]

    sums = {alias: np.zeros(n) for alias in value_columns}
    counts = np.zeros(n, dtype=np.int64)
    minima = {
        item.alias: np.full(n, np.inf) for item in items if item.fn == "min"
    }
    maxima = {
        item.alias: np.full(n, -np.inf) for item in items if item.fn == "max"
    }

    offsets = _itertools.product(*[range(-r, r + 1) for r in radii])
    for offset in offsets:
        shifted = cells.coords + np.asarray(offset, dtype=np.int64)
        shifted_keys = composite_key(
            [shifted[:, axis] for axis in range(schema.ndims)]
        )
        positions = np.searchsorted(sorted_keys, shifted_keys)
        positions = np.clip(positions, 0, len(sorted_keys) - 1)
        hit = sorted_keys[positions] == shifted_keys
        if not hit.any():
            continue
        neighbour = order[positions[hit]]
        counts[hit] += 1
        for alias, values in value_columns.items():
            if alias in sums:
                sums[alias][hit] += values[neighbour]
            if alias in minima:
                np.minimum.at(minima[alias], np.flatnonzero(hit), values[neighbour])
            if alias in maxima:
                np.maximum.at(maxima[alias], np.flatnonzero(hit), values[neighbour])

    attrs: dict[str, np.ndarray] = {}
    attr_types: list[Attribute] = []
    for item in items:
        if item.fn == "count":
            attrs[item.alias] = counts.copy()
            attr_types.append(Attribute(item.alias, "int64"))
        elif item.fn == "sum":
            attrs[item.alias] = sums[item.alias]
            attr_types.append(Attribute(item.alias, "float64"))
        elif item.fn == "avg":
            attrs[item.alias] = sums[item.alias] / np.maximum(counts, 1)
            attr_types.append(Attribute(item.alias, "float64"))
        elif item.fn == "min":
            attrs[item.alias] = minima[item.alias]
            attr_types.append(Attribute(item.alias, "float64"))
        else:
            attrs[item.alias] = maxima[item.alias]
            attr_types.append(Attribute(item.alias, "float64"))

    out_schema = ArraySchema(
        name=output_name or f"{schema.name}_window",
        dims=schema.dims,
        attrs=tuple(attr_types),
    )
    return LocalArray.from_cells(out_schema, CellSet(cells.coords, attrs))


def apply_expression(
    array: LocalArray,
    name: str,
    expr: Expression,
    output_name: str | None = None,
) -> LocalArray:
    """SciDB's ``apply``: add a computed attribute to every cell."""
    if array.schema.has_dim(name) or array.schema.has_attr(name):
        raise ExecutionError(
            f"apply: field {name!r} already exists in {array.schema.name!r}"
        )
    cells = array.cells()
    env = environment_for(array)
    if len(cells):
        column = np.broadcast_to(
            np.asarray(expr.evaluate(env)), (len(cells),)
        ).copy()
    else:
        column = np.empty(0, dtype=np.float64)
    type_name = "int64" if np.issubdtype(column.dtype, np.integer) else "float64"
    schema = ArraySchema(
        name=output_name or array.schema.name,
        dims=array.schema.dims,
        attrs=array.schema.attrs + (Attribute(name, type_name),),
    )
    new_attrs = dict(cells.attrs)
    new_attrs[name] = column.astype(np.int64 if type_name == "int64" else np.float64)
    return LocalArray.from_cells(schema, CellSet(cells.coords, new_attrs))
