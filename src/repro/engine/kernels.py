"""Compiled match kernels for the packed-uint64 key path.

The PR 4 key codec collapses a composite join key into one ``uint64``
lane, so the innermost matching operation the whole engine runs is
"find all equal pairs between two uint64 columns". This module owns
that operation behind one entry point, :func:`packed_match`, with two
interchangeable implementations:

- ``numpy`` — the portable reference: stable argsort of the build side
  plus a binary-search probe (:func:`repro.engine.joins.hash_join_match`
  on the raw columns). Always available.
- ``numba`` — an ``@njit(cache=True)`` kernel that radix-partitions both
  columns by their shared high bits into cache-sized buckets, sorts each
  bucket, and emits matches with a sorted-run compare (two passes: count,
  then fill — no growable output buffers inside the jitted code).

numba is an *optional* extra (``pip install repro[fast]``): when the
import fails, :data:`HAVE_NUMBA` is False, ``kernel="auto"`` silently
resolves to ``numpy``, and only an explicit ``kernel="numba"`` request
raises. Both kernels return the same match *multiset*; pair order may
differ, which is fine because every consumer treats the output as a set
(the engine's byte-identical guarantee is over sorted cells).

Kernel choice is recorded per execution in ``ExecutionReport.meta``
(``kernel: "numba" | "numpy"``) and is deliberately excluded from plan
fingerprints — it changes how matches are computed, never what the plan
or the output is.
"""

from __future__ import annotations

import numpy as np

from repro.engine.joins import hash_join_match
from repro.errors import ExecutionError

try:  # pragma: no cover - exercised only when numba is installed
    from numba import njit

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - the container default
    njit = None
    HAVE_NUMBA = False

#: Accepted values of the ``kernel=`` knob. ``auto`` resolves at
#: executor construction: numba when importable, numpy otherwise.
KERNELS = ("auto", "numba", "numpy")

#: Radix bucket count for the numba kernel: 256 buckets keeps the
#: per-bucket sort inside L2 for the batch sizes the engine produces.
_RADIX_BITS = 8


def resolve_kernel(kernel: str | None) -> str:
    """Normalise a kernel knob to the implementation that will run.

    ``None``/``"auto"`` pick numba when available and fall back to numpy
    silently; asking for ``"numba"`` explicitly when it is not installed
    is an error (the caller wanted the compiled kernel and would
    otherwise benchmark the wrong thing).
    """
    if kernel is None:
        kernel = "auto"
    if kernel not in KERNELS:
        raise ExecutionError(
            f"unknown kernel {kernel!r}; expected one of {KERNELS}"
        )
    if kernel == "auto":
        return "numba" if HAVE_NUMBA else "numpy"
    if kernel == "numba" and not HAVE_NUMBA:
        raise ExecutionError(
            "kernel='numba' requested but numba is not installed; "
            "install the [fast] extra or use kernel='auto' to fall back "
            "to the numpy kernel"
        )
    return kernel


def _match_numpy(
    left: np.ndarray, right: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Reference implementation: sort-based build/probe equi-match."""
    return hash_join_match(left, right)


def _match_sorted_numpy(
    left: np.ndarray, right: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Equi-match of two already-sorted columns: binary search only.

    With both inputs ascending, each left value's matches are one
    contiguous right run located by a pair of ``searchsorted`` calls —
    no argsort at match time, which is the point of storing arena keys
    pre-sorted (see :mod:`repro.engine.shm`).
    """
    lo = np.searchsorted(right, left, side="left")
    hi = np.searchsorted(right, left, side="right")
    counts = hi - lo
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    left_idx = np.repeat(np.arange(left.size, dtype=np.int64), counts)
    offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
    right_idx = np.repeat(lo - offsets, counts) + np.arange(
        total, dtype=np.int64
    )
    return left_idx, right_idx


if HAVE_NUMBA:  # pragma: no cover - requires the optional extra

    @njit(cache=True)
    def _radix_bucket_counts(keys, shift, n_buckets):
        counts = np.zeros(n_buckets + 1, dtype=np.int64)
        for i in range(keys.size):
            counts[np.int64(keys[i] >> shift) + 1] += 1
        for b in range(n_buckets):
            counts[b + 1] += counts[b]
        return counts

    @njit(cache=True)
    def _radix_scatter(keys, shift, offsets):
        cursor = offsets[:-1].copy()
        out_keys = np.empty(keys.size, dtype=np.uint64)
        out_rows = np.empty(keys.size, dtype=np.int64)
        for i in range(keys.size):
            b = np.int64(keys[i] >> shift)
            slot = cursor[b]
            out_keys[slot] = keys[i]
            out_rows[slot] = i
            cursor[b] += 1
        return out_keys, out_rows

    @njit(cache=True)
    def _count_run_matches(lk, rk):
        total = np.int64(0)
        i = 0
        j = 0
        while i < lk.size and j < rk.size:
            if lk[i] < rk[j]:
                i += 1
            elif lk[i] > rk[j]:
                j += 1
            else:
                value = lk[i]
                i0 = i
                j0 = j
                while i < lk.size and lk[i] == value:
                    i += 1
                while j < rk.size and rk[j] == value:
                    j += 1
                total += np.int64(i - i0) * np.int64(j - j0)
        return total

    @njit(cache=True)
    def _fill_run_matches(lk, lrows, rk, rrows, left_out, right_out, cursor):
        i = 0
        j = 0
        while i < lk.size and j < rk.size:
            if lk[i] < rk[j]:
                i += 1
            elif lk[i] > rk[j]:
                j += 1
            else:
                value = lk[i]
                i0 = i
                j0 = j
                while i < lk.size and lk[i] == value:
                    i += 1
                while j < rk.size and rk[j] == value:
                    j += 1
                for a in range(i0, i):
                    for b in range(j0, j):
                        left_out[cursor] = lrows[a]
                        right_out[cursor] = rrows[b]
                        cursor += 1
        return cursor

    @njit(cache=True)
    def _match_numba_impl(left, right):
        n_buckets = 1 << _RADIX_BITS
        # Shared bucket function: top radix bits of the combined value
        # range, so equal keys land in the same bucket on both sides and
        # buckets preserve key order between themselves.
        max_key = np.uint64(0)
        for i in range(left.size):
            if left[i] > max_key:
                max_key = left[i]
        for i in range(right.size):
            if right[i] > max_key:
                max_key = right[i]
        bits = 0
        probe = max_key
        while probe > 0:
            probe >>= np.uint64(1)
            bits += 1
        shift = np.uint64(bits - _RADIX_BITS if bits > _RADIX_BITS else 0)

        left_offsets = _radix_bucket_counts(left, shift, n_buckets)
        right_offsets = _radix_bucket_counts(right, shift, n_buckets)
        lkeys, lrows = _radix_scatter(left, shift, left_offsets)
        rkeys, rrows = _radix_scatter(right, shift, right_offsets)

        total = np.int64(0)
        for b in range(n_buckets):
            llo, lhi = left_offsets[b], left_offsets[b + 1]
            rlo, rhi = right_offsets[b], right_offsets[b + 1]
            if lhi > llo and rhi > rlo:
                lseg = np.sort(lkeys[llo:lhi])
                rseg = np.sort(rkeys[rlo:rhi])
                total += _count_run_matches(lseg, rseg)

        left_out = np.empty(total, dtype=np.int64)
        right_out = np.empty(total, dtype=np.int64)
        cursor = np.int64(0)
        for b in range(n_buckets):
            llo, lhi = left_offsets[b], left_offsets[b + 1]
            rlo, rhi = right_offsets[b], right_offsets[b + 1]
            if lhi <= llo or rhi <= rlo:
                continue
            lorder = np.argsort(lkeys[llo:lhi], kind="mergesort")
            rorder = np.argsort(rkeys[rlo:rhi], kind="mergesort")
            lseg = lkeys[llo:lhi][lorder]
            rseg = rkeys[rlo:rhi][rorder]
            lseg_rows = lrows[llo:lhi][lorder]
            rseg_rows = rrows[rlo:rhi][rorder]
            cursor = _fill_run_matches(
                lseg, lseg_rows, rseg, rseg_rows, left_out, right_out, cursor
            )
        return left_out, right_out

    def _match_numba(
        left: np.ndarray, right: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        if left.size == 0 or right.size == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        return _match_numba_impl(
            np.ascontiguousarray(left, dtype=np.uint64),
            np.ascontiguousarray(right, dtype=np.uint64),
        )

    def _match_sorted_numba(
        left: np.ndarray, right: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        if left.size == 0 or right.size == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        lk = np.ascontiguousarray(left, dtype=np.uint64)
        rk = np.ascontiguousarray(right, dtype=np.uint64)
        total = _count_run_matches(lk, rk)
        left_out = np.empty(total, dtype=np.int64)
        right_out = np.empty(total, dtype=np.int64)
        _fill_run_matches(
            lk,
            np.arange(lk.size, dtype=np.int64),
            rk,
            np.arange(rk.size, dtype=np.int64),
            left_out,
            right_out,
            np.int64(0),
        )
        return left_out, right_out

else:

    def _match_numba(left, right):  # pragma: no cover - guarded by resolve
        raise ExecutionError(
            "numba kernel invoked but numba is not installed"
        )

    def _match_sorted_numba(left, right):  # pragma: no cover - see above
        raise ExecutionError(
            "numba kernel invoked but numba is not installed"
        )


#: Fibonacci-hash multiplier for the membership filter (the 64-bit
#: golden-ratio constant): one wrapping multiply spreads the packed
#: keys' low-entropy bit patterns across the filter's index space.
_FILTER_MULT = np.uint64(0x9E3779B97F4A7C15)


def filter_log2_for(n_keys: int) -> int:
    """Filter size (log2 bits) for a column of ``n_keys`` keys.

    ~32 filter bits per key keeps the false-positive rate a few
    percent at worst; clamped to [16, 24] so tiny columns still get a
    useful filter and huge ones cap at a 2 MiB bitmap.
    """
    return min(24, max(16, int(max(n_keys, 1) * 32 - 1).bit_length()))


def build_key_filter(keys: np.ndarray, log2: int) -> np.ndarray:
    """One-shot membership bitmap over a uint64 key column.

    Returns a ``uint8`` byte array of ``2**log2`` bits. Built once per
    arena at creation time; probing costs a single gather per needle —
    roughly one cache miss — against the four or five a binary search
    spends, which is what makes low-selectivity matching cheap.
    """
    filt = np.zeros(1 << (log2 - 3), dtype=np.uint8)
    h = (np.asarray(keys, dtype=np.uint64) * _FILTER_MULT) >> np.uint64(
        64 - log2
    )
    np.bitwise_or.at(
        filt,
        (h >> np.uint64(3)).astype(np.int64),
        np.left_shift(np.uint8(1), (h & np.uint64(7)).astype(np.uint8)),
    )
    return filt


def probe_key_filter(
    keys: np.ndarray, filt: np.ndarray, log2: int
) -> np.ndarray:
    """Membership test of each key against :func:`build_key_filter`.

    Returns a uint8 0/1 vector; 0 means *definitely absent*, 1 means
    possibly present (verify with an exact match). False positives are
    bounded by the fill factor, never false negatives.
    """
    h = (np.asarray(keys, dtype=np.uint64) * _FILTER_MULT) >> np.uint64(
        64 - log2
    )
    return (
        filt[(h >> np.uint64(3)).astype(np.int64)]
        >> (h & np.uint64(7)).astype(np.uint8)
    ) & np.uint8(1)


def packed_match(
    left: np.ndarray, right: np.ndarray, kernel: str = "numpy"
) -> tuple[np.ndarray, np.ndarray]:
    """All equal pairs between two uint64 columns, via the named kernel.

    ``kernel`` must be an already-resolved implementation name
    (``"numba"`` or ``"numpy"`` — run the knob through
    :func:`resolve_kernel` first); returns ``(left_idx, right_idx)``
    int64 index arrays addressing the input columns.
    """
    if kernel == "numba":
        return _match_numba(left, right)
    if kernel != "numpy":
        raise ExecutionError(
            f"packed_match expects a resolved kernel, got {kernel!r}"
        )
    return _match_numpy(left, right)


def packed_match_sorted(
    left: np.ndarray, right: np.ndarray, kernel: str = "numpy"
) -> tuple[np.ndarray, np.ndarray]:
    """All equal pairs between two *ascending-sorted* uint64 columns.

    The fast lane of the shared-memory worker: arena keys are stored
    pre-sorted within each unit, so a worker's gathered column is
    globally sorted and matching needs no sort at all. Callers are
    responsible for the sortedness invariant; unsorted input silently
    returns the wrong pairs.
    """
    if kernel == "numba":
        return _match_sorted_numba(left, right)
    if kernel != "numpy":
        raise ExecutionError(
            f"packed_match_sorted expects a resolved kernel, got {kernel!r}"
        )
    return _match_sorted_numpy(left, right)


__all__ = [
    "HAVE_NUMBA",
    "KERNELS",
    "build_key_filter",
    "filter_log2_for",
    "packed_match",
    "packed_match_sorted",
    "probe_key_filter",
    "resolve_kernel",
]
