"""Execution of AFL operator trees (Section 2.2's second query surface).

AQL queries are rewritten internally as AFL in SciDB; this runner closes
the loop for the reproduction by *executing* AFL trees — the composable
form users write when operator order matters — against a cluster:

- single-array operators (``scan``, ``filter``, ``project``, ``redim``,
  ``rechunk``, ``sort``) evaluate directly;
- ``mergeJoin``/``hashJoin`` evaluate their subtrees, register the
  intermediates as temporary arrays, and run the shuffle join executor;
- ``cross`` computes the guarded Cartesian product — the ADM's default
  (and deliberately worst) plan that the optimizer improves upon.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.adm.array import LocalArray
from repro.adm.cells import CellSet
from repro.adm.schema import ArraySchema, Attribute
from repro.engine.executor import ShuffleJoinExecutor
from repro.engine.operators import redimension
from repro.errors import ExecutionError
from repro.query.afl import AflNode, apply_filter, parse_afl
from repro.query.expressions import Expression

#: Guard for the cross join's output size.
MAX_CROSS_CELLS = 5_000_000


class AflRunner:
    """Evaluates AFL trees against the executor's cluster."""

    def __init__(self, executor: ShuffleJoinExecutor):
        self.executor = executor
        self._temp_counter = itertools.count()

    def run(self, tree: AflNode | str) -> LocalArray:
        """Evaluate an AFL expression, returning the result array."""
        node = parse_afl(tree) if isinstance(tree, str) else tree
        return self._evaluate(node)

    # ------------------------------------------------------------- dispatch

    def _evaluate(self, node: AflNode) -> LocalArray:
        handler = getattr(self, f"_op_{node.op}", None)
        if handler is None:
            raise ExecutionError(f"AFL operator {node.op!r} is not executable")
        return handler(node)

    def _child(self, node: AflNode, index: int = 0) -> LocalArray:
        arg = node.args[index]
        if isinstance(arg, AflNode):
            return self._evaluate(arg)
        if isinstance(arg, str):
            return self.executor.cluster.gather_array(arg)
        raise ExecutionError(
            f"AFL operator {node.op!r}: operand {index} must be an array"
        )

    # ---------------------------------------------------------- unary ops

    def _op_scan(self, node: AflNode) -> LocalArray:
        name = node.args[0]
        if not isinstance(name, str):
            raise ExecutionError("scan expects an array name")
        return self.executor.cluster.gather_array(name)

    def _op_filter(self, node: AflNode) -> LocalArray:
        predicate = node.args[1]
        if not isinstance(predicate, Expression):
            raise ExecutionError("filter expects a boolean expression")
        return apply_filter(self._child(node), predicate)

    def _op_project(self, node: AflNode) -> LocalArray:
        array = self._child(node)
        names = [arg for arg in node.args[1:] if isinstance(arg, str)]
        missing = [n for n in names if not array.schema.has_attr(n)]
        if missing:
            raise ExecutionError(f"project: unknown attributes {missing}")
        schema = array.schema.with_attrs(
            [array.schema.attr(n) for n in names]
        )
        return LocalArray.from_cells(schema, array.cells().with_attrs(names))

    def _op_redim(self, node: AflNode) -> LocalArray:
        target = node.args[1]
        if not isinstance(target, ArraySchema):
            raise ExecutionError("redim expects a schema literal")
        name = f"_afl_redim_{next(self._temp_counter)}"
        return redimension(self._child(node), target.with_name(name))

    # rechunk shares redim's cell movement; the sortedness distinction is
    # a planner-internal cost matter, not a semantic one.
    _op_rechunk = _op_redim

    def _op_sort(self, node: AflNode) -> LocalArray:
        array = self._child(node)
        return LocalArray.from_cells(array.schema, array.cells(), sort=True)

    def _op_hash(self, node: AflNode) -> LocalArray:
        # Bucketing is a planner-internal reorganisation; as a standalone
        # operator it is the identity on the array's contents.
        return self._child(node)

    def _op_aggregate(self, node: AflNode) -> LocalArray:
        from repro.engine.aggregate import aggregate
        from repro.query.aql import AggregateItem

        child = self._child(node)
        items = [a for a in node.args[1:] if isinstance(a, AggregateItem)]
        groups = [a for a in node.args[1:] if isinstance(a, str)]
        if not items:
            raise ExecutionError(
                "aggregate expects at least one aggregate item, e.g. "
                "aggregate(A, sum(v), i)"
            )
        return aggregate(child, items, group_by=groups)

    def _op_apply(self, node: AflNode) -> LocalArray:
        from repro.engine.aggregate import apply_expression
        from repro.query.expressions import Field

        if len(node.args) != 3:
            raise ExecutionError("apply expects (array, name, expression)")
        name = node.args[1]
        if not isinstance(name, str):
            raise ExecutionError("apply: the new attribute name must be bare")
        expr = node.args[2]
        if isinstance(expr, str):
            expr = Field(expr)
        if not isinstance(expr, Expression):
            raise ExecutionError("apply: third operand must be an expression")
        return apply_expression(self._child(node), name, expr)

    def _window_bounds(self, node: AflNode, ndims: int):
        from repro.query.expressions import Const

        values = []
        for arg in node.args[1:]:
            if not isinstance(arg, Const):
                raise ExecutionError(
                    f"{node.op} expects integer bounds, got {arg!r}"
                )
            values.append(int(arg.value))
        if len(values) != 2 * ndims:
            raise ExecutionError(
                f"{node.op} over a {ndims}-D array needs {2 * ndims} bounds, "
                f"got {len(values)}"
            )
        return values[:ndims], values[ndims:]

    def _op_between(self, node: AflNode) -> LocalArray:
        from repro.engine.operators import between

        child = self._child(node)
        low, high = self._window_bounds(node, child.schema.ndims)
        return between(child, low, high)

    def _op_subarray(self, node: AflNode) -> LocalArray:
        from repro.engine.operators import subarray

        child = self._child(node)
        low, high = self._window_bounds(node, child.schema.ndims)
        return subarray(child, low, high)

    def _op_regrid(self, node: AflNode) -> LocalArray:
        from repro.engine.operators import regrid
        from repro.query.aql import AggregateItem
        from repro.query.expressions import Const

        child = self._child(node)
        blocks = [
            int(arg.value) for arg in node.args[1:] if isinstance(arg, Const)
        ]
        items = [a for a in node.args[1:] if isinstance(a, AggregateItem)]
        if not items:
            raise ExecutionError(
                "regrid expects block sizes plus at least one aggregate, "
                "e.g. regrid(A, 4, 4, avg(v))"
            )
        return regrid(child, blocks, items)

    def _op_window(self, node: AflNode) -> LocalArray:
        from repro.engine.aggregate import window
        from repro.query.aql import AggregateItem
        from repro.query.expressions import Const

        child = self._child(node)
        radii = [
            int(arg.value) for arg in node.args[1:] if isinstance(arg, Const)
        ]
        items = [a for a in node.args[1:] if isinstance(a, AggregateItem)]
        if not items:
            raise ExecutionError(
                "window expects radii plus at least one aggregate, e.g. "
                "window(A, 1, 1, avg(v))"
            )
        return window(child, radii, items)

    # ----------------------------------------------------------- join ops

    def _op_mergeJoin(self, node: AflNode) -> LocalArray:
        return self._join(node, "merge")

    def _op_hashJoin(self, node: AflNode) -> LocalArray:
        return self._join(node, "hash")

    def _op_nestedLoopJoin(self, node: AflNode) -> LocalArray:
        return self._join(node, "nested_loop")

    def _join_fields(self, arg, array: LocalArray) -> list[str]:
        """Join key fields for one side: a hash node's explicit field
        list, or the side's dimensions by default (the merge convention)."""
        if isinstance(arg, AflNode) and arg.op == "hash":
            fields = [a for a in arg.args[1:] if isinstance(a, str)]
            if fields:
                return fields
        return list(array.schema.dim_names)

    def _join(self, node: AflNode, algo: str) -> LocalArray:
        if len(node.args) != 2:
            raise ExecutionError(f"{node.op} expects exactly two operands")
        left = self._child(node, 0)
        right = self._child(node, 1)
        left_fields = self._join_fields(node.args[0], left)
        right_fields = self._join_fields(node.args[1], right)
        if len(left_fields) != len(right_fields) or not left_fields:
            raise ExecutionError(
                f"{node.op}: operands expose {len(left_fields)} and "
                f"{len(right_fields)} join fields"
            )

        cluster = self.executor.cluster
        temp_left = f"_afl_l{next(self._temp_counter)}"
        temp_right = f"_afl_r{next(self._temp_counter)}"
        cluster.load_array(
            LocalArray(left.schema.with_name(temp_left), dict(left.chunks))
        )
        cluster.load_array(
            LocalArray(right.schema.with_name(temp_right), dict(right.chunks))
        )
        try:
            predicates = " AND ".join(
                f"{temp_left}.{lf} = {temp_right}.{rf}"
                for lf, rf in zip(left_fields, right_fields)
            )
            query = (
                f"SELECT * FROM {temp_left}, {temp_right} WHERE {predicates}"
            )
            result = self.executor.execute(query, join_algo=algo)
        finally:
            cluster.drop_array(temp_left)
            cluster.drop_array(temp_right)
        return result.array

    def _op_cross(self, node: AflNode) -> LocalArray:
        """The ADM's default plan: an exhaustive Cartesian product."""
        left = self._child(node, 0)
        right = self._child(node, 1)
        n_out = left.n_cells * right.n_cells
        if n_out > MAX_CROSS_CELLS:
            raise ExecutionError(
                f"cross join would produce {n_out} cells "
                f"(guard: {MAX_CROSS_CELLS}); use an optimized join"
            )
        left_cells = left.cells()
        right_cells = right.cells()
        li = np.repeat(np.arange(left.n_cells), right.n_cells)
        ri = np.tile(np.arange(right.n_cells), left.n_cells)

        attrs: dict[str, np.ndarray] = {}
        fields: list[Attribute] = []

        def add_side(prefix, cells, schema, index):
            for axis, dim in enumerate(schema.dims):
                name = f"{prefix}_{dim.name}"
                attrs[name] = cells.dim_column(axis)[index]
                fields.append(Attribute(name, "int64"))
            for attr in schema.attrs:
                name = f"{prefix}_{attr.name}"
                attrs[name] = cells.column(attr.name)[index]
                fields.append(Attribute(name, attr.type_name))

        add_side(left.schema.name, left_cells, left.schema, li)
        add_side(right.schema.name, right_cells, right.schema, ri)
        schema = ArraySchema(
            name=f"{left.schema.name}_cross_{right.schema.name}",
            dims=(),
            attrs=tuple(fields),
        )
        return LocalArray.from_cells(
            schema, CellSet(np.empty((n_out, 0), dtype=np.int64), attrs)
        )
