"""Chained execution of ordered multi-joins.

Runs a :class:`MultiJoinPlan` as a sequence of 2-way shuffle joins:
every intermediate result is materialised as an *ephemeral* dimensionless
array whose attributes carry the qualified source fields (``A_x``), so
later predicates and the final SELECT can be rewritten against it. Each
stage goes through the full shuffle-join pipeline — logical planning,
slice mapping, physical planning, alignment, comparison — and its
report is preserved; a pipeline-level report aggregates the stages.

Three acceleration layers ride on top of the chain:

- **Parallel stages** — every stage runs through
  :meth:`ShuffleJoinExecutor.prepare` + :meth:`PreparedJoin.execute`, so
  the per-query ``n_workers`` override (and the executor's
  ``parallel_mode``/``kernel``/``split_units`` knobs) applies to every
  stage, with a ``pipeline_stage`` tracer span per stage.
- **Intermediate reuse** — intermediates attach through
  :meth:`Cluster.attach_ephemeral` (block-partitioned across nodes, one
  dimensionless chunk per node) instead of the catalog: no uid minting,
  no version bumps, no stale binary-cache entries. The ordering DP's
  per-step output estimate is handed to each stage as its selectivity
  hint, so stages skip the 20k-cell sampling pass entirely.
- **Whole-pipeline plan caching** — the pipeline is fingerprinted over
  every base array's ``uid.version.epoch@schema`` token; a hit replays
  only the final stage from its cached prepared state (the cached slice
  table already holds the materialised intermediate's unit-major
  assembly), skipping ordering, sampling, and every earlier stage.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.adm.cells import CellSet
from repro.adm.schema import ArraySchema, Attribute
from repro.core.join_schema import infer_join_schema
from repro.core.multijoin import MultiJoinPlan, MultiJoinPlanner, _pair_key
from repro.engine.estimate import estimate_selectivity
from repro.errors import PlanningError
from repro.query.aql import JoinQuery, MultiJoinQuery, SelectItem
from repro.query.expressions import BinOp, Const, Expression, Field, Neg
from repro.query.predicates import FieldRef, JoinPredicate
from repro.serve.cache import CachedPipeline, CachedStage


@dataclass
class MultiJoinResult:
    """The final join output plus per-stage execution reports.

    ``report`` is the pipeline-level :class:`ExecutionReport` aggregating
    the executed stages (plan/align/compare seconds, traffic, cache
    outcome); ``stage_results`` holds the per-stage :class:`JoinResult`
    objects — on a warm (pipeline-cached) run only the final stage
    executes, so the list has a single entry and
    ``report.meta["stages_cached"]`` records the skipped count.
    """

    array: object  # LocalArray
    plan: MultiJoinPlan
    stage_results: list = field(default_factory=list)
    report: object | None = None  # pipeline-level ExecutionReport

    @property
    def cells(self):
        return self.array.cells()

    @property
    def total_seconds(self) -> float:
        if self.report is not None:
            return self.report.total_seconds
        return sum(r.report.total_seconds for r in self.stage_results)

    def describe(self) -> str:
        lines = [self.plan.describe()]
        if self.report is not None:
            lines.append(f"pipeline: {self.report.describe()}")
        for index, stage in enumerate(self.stage_results):
            lines.append(f"stage {index}: {stage.report.describe()}")
        return "\n".join(lines)


@dataclass
class MultiJoinExplainReport:
    """EXPLAIN output for a multi-join: the DP order plus cache outcome."""

    query: str
    plan: MultiJoinPlan
    n_stages: int
    cache_status: str | None = None
    cache_fingerprint: str | None = None

    def describe(self) -> str:
        lines = [
            f"multi-join pipeline: {self.n_stages} stages",
            f"query: {self.query}",
            self.plan.describe(),
        ]
        if self.cache_status is not None:
            lines.append(
                f"pipeline plan cache: {self.cache_status} "
                f"[{self.cache_fingerprint}]"
            )
        return "\n".join(lines)


# ------------------------------------------------------------- estimation


def estimate_pair_selectivities(executor, query: MultiJoinQuery) -> dict:
    """Sampling-based selectivity for every linked array pair."""
    cluster = executor.cluster
    by_pair: dict[frozenset, list[JoinPredicate]] = {}
    for pred in query.predicates:
        by_pair.setdefault(_pair_key(pred), []).append(pred)

    selectivities: dict[frozenset, float] = {}
    for pair, preds in by_pair.items():
        left, right = sorted(pair)
        oriented = [
            p if p.left.array == left else JoinPredicate(p.right, p.left)
            for p in preds
        ]
        pair_query = JoinQuery(
            left=left, right=right, predicates=oriented, select_star=True
        )
        schema = infer_join_schema(
            pair_query, cluster.schema(left), cluster.schema(right)
        )
        selectivities[pair] = estimate_selectivity(
            cluster, left, right, schema
        )
    return selectivities


# -------------------------------------------------------------- rewriting


def _rewrite(expr: Expression, mapping: dict[str, str]) -> Expression:
    """Replace qualified field references per ``mapping`` (old → new)."""
    if isinstance(expr, Field):
        return Field(mapping.get(expr.name, expr.name))
    if isinstance(expr, BinOp):
        return BinOp(
            expr.op, _rewrite(expr.left, mapping), _rewrite(expr.right, mapping)
        )
    if isinstance(expr, Neg):
        return Neg(_rewrite(expr.operand, mapping))
    if isinstance(expr, Const):
        return expr
    raise PlanningError(f"cannot rewrite expression node {expr!r}")


def _field_type(schema: ArraySchema, name: str) -> str:
    if schema.has_dim(name):
        return "int64"
    return schema.attr(name).type_name


class _StageState:
    """Tracks the intermediate array and the qualified-name mapping."""

    def __init__(self, cluster, query: MultiJoinQuery):
        self.cluster = cluster
        self.query = query
        self.current: str | None = None  # temp array name
        #: original qualified name "A.x" -> attribute name on `current`
        self.mapping: dict[str, str] = {}
        self.placed: set[str] = set()

    def needed_fields(self) -> list[str]:
        """Qualified fields any predicate or the final SELECT touches."""
        needed: set[str] = set()
        for pred in self.query.predicates:
            needed.add(pred.left.qualified())
            needed.add(pred.right.qualified())
        if self.query.select_star:
            for name in self.query.arrays:
                schema = self.cluster.schema(name)
                needed.update(f"{name}.{f}" for f in schema.field_names)
        else:
            for item in self.query.select:
                for ref in item.expr.field_refs():
                    if "." not in ref:
                        raise PlanningError(
                            "multi-join SELECT items must be qualified, "
                            f"got {ref!r}"
                        )
                    needed.add(ref)
        return sorted(needed)

    def source_expression(self, qualified: str, right: str) -> str:
        """Where a qualified field lives at this stage."""
        array, _, fname = qualified.partition(".")
        if array == right:
            return qualified
        if array in self.placed:
            if self.current is None:
                return qualified  # first stage: still the base array
            return f"{self.current}.{self.mapping[qualified]}"
        raise PlanningError(
            f"field {qualified!r} references an array not yet joined"
        )

    def field_type(self, qualified: str) -> str:
        array, _, fname = qualified.partition(".")
        return _field_type(self.cluster.schema(array), fname)

    def rewrite_map(self, right: str) -> dict[str, str]:
        """Expression-rewrite map for fields visible at this stage."""
        rewritten = {}
        for qualified in self.needed_fields():
            array = qualified.partition(".")[0]
            if array == right or array in self.placed:
                rewritten[qualified] = self.source_expression(qualified, right)
        return rewritten

    def stage_predicates(self, step) -> list[JoinPredicate]:
        """Rewrite the step's predicates against the current intermediate."""
        predicates = []
        for pred in step.predicates:
            if self.current is None:
                predicates.append(pred)
            else:
                left_q = pred.left.qualified()
                predicates.append(
                    JoinPredicate(
                        FieldRef(self.current, self.mapping[left_q]),
                        pred.right,
                    )
                )
        return predicates


def _attach_intermediate(cluster, schema: ArraySchema, cells: CellSet) -> None:
    """Attach a stage's output as an ephemeral array, block-partitioned.

    Rows are cut into ``n_nodes`` contiguous blocks — deterministic given
    the output's row order, and the sort-based engine makes the *sorted*
    output identical across execution modes, which is the identity the
    pipeline guarantees end to end.
    """
    k = cluster.n_nodes
    counts = [len(block) for block in np.array_split(np.arange(len(cells)), k)]
    node_ids = np.repeat(np.arange(k), counts)
    cluster.attach_ephemeral(schema, cells.partition(node_ids, k))


def _pipeline_report(
    planner: str,
    plan: MultiJoinPlan,
    stage_reports: list,
    extra_plan_seconds: float,
    prepare_extra: dict,
    cache_info: dict,
    n_stages: int,
    stages_cached: int,
):
    """Aggregate per-stage reports into one pipeline ExecutionReport.

    Phase seconds, traffic, and per-node vectors are summed across the
    executed stages; ``extra_plan_seconds`` adds the pipeline-only work
    (ordering DP + pair sampling, cache lookup) to the planning total.
    The report is *not* re-recorded into the metrics registry — each
    stage's execution already was.
    """
    from repro.engine.executor import ExecutionReport

    breakdown: dict[str, float] = dict(prepare_extra)
    for report in stage_reports:
        for stage_name, seconds in report.prepare_breakdown.items():
            breakdown[stage_name] = breakdown.get(stage_name, 0.0) + seconds
    per_node_compare = None
    compare_vectors = [
        r.per_node_compare for r in stage_reports
        if r.per_node_compare is not None
    ]
    if compare_vectors:
        per_node_compare = np.sum(compare_vectors, axis=0)
    per_node_output = None
    output_vectors = [
        r.per_node_output for r in stage_reports
        if r.per_node_output is not None
    ]
    if output_vectors:
        per_node_output = np.sum(output_vectors, axis=0)
    cells_sent: dict[int, int] = {}
    cells_received: dict[int, int] = {}
    for report in stage_reports:
        for node, count in report.cells_sent.items():
            cells_sent[node] = cells_sent.get(node, 0) + count
        for node, count in report.cells_received.items():
            cells_received[node] = cells_received.get(node, 0) + count
    return ExecutionReport(
        planner=planner,
        join_algo="multiway",
        unit_kind="stage",
        n_units=sum(r.n_units for r in stage_reports),
        logical_afl="multijoin(" + " ⋈ ".join(plan.order) + ")",
        plan_seconds=extra_plan_seconds
        + sum(r.plan_seconds for r in stage_reports),
        align_seconds=sum(r.align_seconds for r in stage_reports),
        compare_seconds=sum(r.compare_seconds for r in stage_reports),
        cells_moved=sum(r.cells_moved for r in stage_reports),
        n_transfers=sum(r.n_transfers for r in stage_reports),
        output_cells=stage_reports[-1].output_cells,
        bytes_moved=sum(r.bytes_moved for r in stage_reports),
        bytes_moved_full_width=sum(
            r.bytes_moved_full_width for r in stage_reports
        ),
        per_node_compare=per_node_compare,
        cells_sent=cells_sent,
        cells_received=cells_received,
        meta={
            "stages": n_stages,
            "stages_executed": len(stage_reports),
            "stages_cached": stages_cached,
            "stage_algos": [r.join_algo for r in stage_reports],
        },
        prepare_breakdown=breakdown,
        cache=dict(cache_info),
        per_node_output=per_node_output,
    )


def _run_warm_pipeline(
    executor,
    entry: CachedPipeline,
    planner: str,
    lookup_seconds: float,
    cache_info: dict,
    n_workers: int | None = None,
    analyze: bool = False,
) -> MultiJoinResult:
    """Serve a pipeline-cache hit: replay only the final cached stage.

    The final stage's slice table already holds the materialised last
    intermediate (its unit-major assemblies bake the cells in), so the
    earlier stages need not re-run — the fingerprint match guarantees
    every base array, and therefore every intermediate, is unchanged.
    Only a schema-only ephemeral shell is re-attached so name resolution
    (traffic accounting reads the left schema) works during the replay.
    """
    cluster = executor.cluster
    final = entry.stages[-1]
    left_schema = final.join_schema.left_schema
    empty = CellSet.empty(
        left_schema.ndims, {a.name: a.dtype for a in left_schema.attrs}
    )
    cluster.attach_ephemeral(left_schema, [empty] * cluster.n_nodes)
    try:
        with executor.tracer.span(
            "pipeline_stage",
            stage=len(entry.stages) - 1,
            left=final.query.left,
            right=final.query.right,
            cached=True,
        ):
            result = executor._run_physical(
                final.query, final.join_schema, final.logical_plan,
                final.n_units, final.slice_table, planner,
                lookup_seconds, n_workers=n_workers,
                prepare_breakdown={"cache_lookup": lookup_seconds},
                physical=(final.assignment, final.physical_plan),
                cache_info=cache_info, analyze=analyze,
            )
    finally:
        cluster.detach_ephemeral(left_schema.name)
    report = _pipeline_report(
        planner, entry.plan, [result.report],
        extra_plan_seconds=0.0, prepare_extra={},
        cache_info=cache_info, n_stages=len(entry.stages),
        stages_cached=len(entry.stages),
    )
    return MultiJoinResult(
        array=result.array,
        plan=entry.plan,
        stage_results=[result],
        report=report,
    )


def execute_multi_join(
    executor,
    query: MultiJoinQuery,
    planner: str = "tabu",
    plan: MultiJoinPlan | None = None,
    n_workers: int | None = None,
    use_cache: bool | None = None,
    analyze: bool = False,
    tenant: str | None = None,
) -> MultiJoinResult:
    """Plan and run a multi-join query end to end.

    ``plan`` overrides the DP-chosen order (used by the ordering
    ablation and by callers that have already planned); an explicit plan
    bypasses the pipeline cache entirely, since the fingerprint covers
    only DP-ordered pipelines. ``n_workers`` applies to *every* stage's
    comparison phase; ``analyze=True`` captures each executed stage's
    per-node profile; ``tenant`` namespaces the pipeline cache entry
    exactly as it does binary plans.
    """
    if query.into_schema is not None and not query.into_schema.is_dimensionless():
        raise PlanningError(
            "multi-join INTO schemas must be dimensionless; redimension "
            "the result separately"
        )
    cluster = executor.cluster
    tracer = executor.tracer

    # ---- whole-pipeline cache lookup (timed) ----
    cache = (
        executor.plan_cache
        if use_cache is not False and plan is None
        else None
    )
    cache_info: dict = {}
    entry = None
    fingerprint = None
    lookup_seconds = 0.0
    if cache is not None:
        lookup_started = time.perf_counter()
        with tracer.span("cache_lookup") as lookup_span:
            with executor.profiler.phase("cache_lookup"):
                fingerprint = executor._pipeline_fingerprint(
                    query, planner, tenant
                )
                candidate = cache.get(fingerprint)
                entry = (
                    candidate
                    if isinstance(candidate, CachedPipeline)
                    else None
                )
            lookup_span.set(
                status="hit" if entry is not None else "miss",
                fingerprint=fingerprint.short,
            )
        lookup_seconds = time.perf_counter() - lookup_started
        cache_info = {
            "status": "hit" if entry is not None else "miss",
            "fingerprint": fingerprint.short,
            **cache.stats(),
        }
        if tenant is not None:
            suffix = "hits" if entry is not None else "misses"
            executor.metrics.counter(f"tenant_cache_{suffix}.{tenant}").inc()

    if entry is not None:
        return _run_warm_pipeline(
            executor, entry, planner, lookup_seconds, cache_info,
            n_workers=n_workers, analyze=analyze,
        )

    # ---- ordering (timed): DP over pair-sampled selectivities ----
    ordering_started = time.perf_counter()
    if plan is None:
        with tracer.span("pipeline_ordering"):
            with executor.profiler.phase("ordering"):
                sizes = {
                    name: cluster.array_cell_count(name)
                    for name in query.arrays
                }
                selectivities = estimate_pair_selectivities(executor, query)
                plan = MultiJoinPlanner(sizes, selectivities).plan(query)
    ordering_seconds = time.perf_counter() - ordering_started

    state = _StageState(cluster, query)
    needed = state.needed_fields()
    temp_names: list[str] = []
    stage_results = []
    cached_stages: list[CachedStage] = []
    try:
        for stage_index, step in enumerate(plan.steps):
            is_last = stage_index == len(plan.steps) - 1
            right = step.array
            state.placed = set(step.placed)
            left_name = state.current or step.placed[0]
            predicates = state.stage_predicates(step)

            if is_last:
                stage_query = _final_stage_query(
                    query, state, left_name, right, predicates
                )
                carried = None
            else:
                stage_query, carried = _intermediate_stage_query(
                    query, state, left_name, right, predicates,
                    needed, stage_index,
                )

            # Push single-array filters down to the stage that first scans
            # each base array.
            if state.current is None and step.placed[0] in query.filters:
                stage_query.filters[step.placed[0]] = query.filters[
                    step.placed[0]
                ]
            if right in query.filters:
                stage_query.filters[right] = query.filters[right]

            # The ordering DP already estimated this step's output; hand
            # it down as the stage's selectivity hint (|out| / (nα + nβ))
            # so no stage re-runs the sampling estimator. Actual input
            # counts are mode-independent, keeping stage plans
            # deterministic across serial/thread/process execution.
            input_cells = cluster.array_cell_count(
                left_name
            ) + cluster.array_cell_count(right)
            hint = max(
                step.estimated_output / max(input_cells, 1), 1e-6
            )

            with tracer.span(
                "pipeline_stage",
                stage=stage_index, left=left_name, right=right,
            ):
                prepared = executor.prepare(
                    stage_query, selectivity_hint=hint
                )
                result = prepared.execute(
                    planner, n_workers=n_workers, analyze=analyze
                )
            stage_results.append(result)

            if cache is not None:
                assignment = (
                    result.physical_plan.assignment
                    if result.physical_plan is not None
                    else np.zeros(prepared.n_units, dtype=np.int64)
                )
                cached_stages.append(CachedStage(
                    query=stage_query,
                    join_schema=prepared.join_schema,
                    logical_plan=prepared.logical_plan,
                    n_units=prepared.n_units,
                    slice_table=prepared.slice_table,
                    assignment=assignment,
                    physical_plan=result.physical_plan,
                ))

            if not is_last:
                temp_schema = stage_query.into_schema
                _attach_intermediate(
                    cluster, temp_schema, result.array.cells()
                )
                temp_names.append(temp_schema.name)
                state.current = temp_schema.name
                state.mapping = {source: alias for source, alias, _ in carried}
    finally:
        for name in temp_names:
            cluster.detach_ephemeral(name)

    if cache is not None:
        cache.put(CachedPipeline(
            plan=plan,
            stages=cached_stages,
            arrays=tuple(query.arrays),
            fingerprint=fingerprint,
            prepare_breakdown={
                "cache_lookup": lookup_seconds,
                "ordering": ordering_seconds,
            },
        ))

    prepare_extra = {"ordering": ordering_seconds}
    if cache is not None:
        prepare_extra["cache_lookup"] = lookup_seconds
    report = _pipeline_report(
        planner, plan, [r.report for r in stage_results],
        extra_plan_seconds=ordering_seconds + lookup_seconds,
        prepare_extra=prepare_extra,
        cache_info=cache_info,
        n_stages=len(plan.steps),
        stages_cached=0,
    )
    return MultiJoinResult(
        array=stage_results[-1].array,
        plan=plan,
        stage_results=stage_results,
        report=report,
    )


def explain_multi_join(
    executor,
    query: MultiJoinQuery,
    planner: str | None = None,
    text: str | None = None,
) -> MultiJoinExplainReport:
    """Plan a multi-join without executing it: the DP order per stage.

    With ``planner`` given, the pipeline cache is consulted read-only
    (mirroring two-array explain): the report shows whether an execution
    under that planner would replay a cached pipeline.
    """
    cluster = executor.cluster
    sizes = {name: cluster.array_cell_count(name) for name in query.arrays}
    selectivities = estimate_pair_selectivities(executor, query)
    plan = MultiJoinPlanner(sizes, selectivities).plan(query)
    cache_status = None
    cache_fingerprint = None
    if planner is not None and executor.plan_cache is not None:
        with executor.profiler.phase("cache_lookup"):
            fingerprint = executor._pipeline_fingerprint(query, planner, None)
            entry = executor.plan_cache.get(fingerprint)
        if not isinstance(entry, CachedPipeline):
            entry = None
        cache_status = "hit" if entry is not None else "miss"
        cache_fingerprint = fingerprint.short
    return MultiJoinExplainReport(
        query=text if text is not None else str(query),
        plan=plan,
        n_stages=len(plan.steps),
        cache_status=cache_status,
        cache_fingerprint=cache_fingerprint,
    )


def _intermediate_stage_query(
    query: MultiJoinQuery,
    state: _StageState,
    left_name: str,
    right: str,
    predicates: list[JoinPredicate],
    needed: list[str],
    stage_index: int,
):
    """Build the SELECT ... INTO temp query for a non-final stage.

    Returns the query plus the carried fields as
    ``(original qualified name, alias, type)`` triples — the mapping the
    next stage rewrites against.
    """
    visible = state.placed | {right}
    carried = []  # (qualified, source expression, alias, type)
    for qualified in needed:
        array = qualified.partition(".")[0]
        if array not in visible:
            continue
        carried.append(
            (
                qualified,
                state.source_expression(qualified, right),
                qualified.replace(".", "_"),
                state.field_type(qualified),
            )
        )
    if not carried:
        raise PlanningError("an intermediate join would carry no fields")

    temp_name = f"_mj{stage_index}_{left_name}_{right}"
    stage_query = JoinQuery(
        left=left_name,
        right=right,
        predicates=predicates,
        select=[
            SelectItem(Field(source), alias)
            for _, source, alias, _ in carried
        ],
        select_star=False,
        into_schema=ArraySchema(
            name=temp_name,
            dims=(),
            attrs=tuple(
                Attribute(alias, type_name)
                for _, _, alias, type_name in carried
            ),
        ),
    )
    mapping_triples = [
        (qualified, alias, type_name)
        for qualified, _, alias, type_name in carried
    ]
    return stage_query, mapping_triples


def _final_stage_query(
    query: MultiJoinQuery,
    state: _StageState,
    left_name: str,
    right: str,
    predicates: list[JoinPredicate],
) -> JoinQuery:
    """Build the last stage, producing the user's requested output."""
    rewrite_map = state.rewrite_map(right)
    if query.select_star:
        select_items = [
            SelectItem(Field(rewrite_map[qualified]), qualified.replace(".", "_"))
            for qualified in state.needed_fields()
        ]
    else:
        select_items = [
            SelectItem(_rewrite(item.expr, rewrite_map), item.output_name)
            for item in query.select
        ]
    into_schema = query.into_schema
    into_name = None if into_schema is not None else query.output_name
    return JoinQuery(
        left=left_name,
        right=right,
        predicates=predicates,
        select=select_items,
        select_star=False,
        into_schema=into_schema,
        into_name=into_name,
    )
