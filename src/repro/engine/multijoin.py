"""Chained execution of ordered multi-joins.

Runs a :class:`MultiJoinPlan` as a sequence of 2-way shuffle joins:
every intermediate result is materialised as a temporary dimensionless
array whose attributes carry the qualified source fields (``A_x``), so
later predicates and the final SELECT can be rewritten against it. Each
stage goes through the full shuffle-join pipeline — logical planning,
slice mapping, physical planning, alignment, comparison — and its
report is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.adm.schema import ArraySchema, Attribute
from repro.core.join_schema import infer_join_schema
from repro.core.multijoin import MultiJoinPlan, MultiJoinPlanner, _pair_key
from repro.engine.estimate import estimate_selectivity
from repro.errors import PlanningError
from repro.query.aql import JoinQuery, MultiJoinQuery, SelectItem
from repro.query.expressions import BinOp, Const, Expression, Field, Neg
from repro.query.predicates import FieldRef, JoinPredicate


@dataclass
class MultiJoinResult:
    """The final join output plus per-stage execution reports."""

    array: object  # LocalArray
    plan: MultiJoinPlan
    stage_results: list = field(default_factory=list)

    @property
    def cells(self):
        return self.array.cells()

    @property
    def total_seconds(self) -> float:
        return sum(r.report.total_seconds for r in self.stage_results)

    def describe(self) -> str:
        lines = [self.plan.describe()]
        for index, stage in enumerate(self.stage_results):
            lines.append(f"stage {index}: {stage.report.describe()}")
        return "\n".join(lines)


# ------------------------------------------------------------- estimation


def estimate_pair_selectivities(executor, query: MultiJoinQuery) -> dict:
    """Sampling-based selectivity for every linked array pair."""
    cluster = executor.cluster
    by_pair: dict[frozenset, list[JoinPredicate]] = {}
    for pred in query.predicates:
        by_pair.setdefault(_pair_key(pred), []).append(pred)

    selectivities: dict[frozenset, float] = {}
    for pair, preds in by_pair.items():
        left, right = sorted(pair)
        oriented = [
            p if p.left.array == left else JoinPredicate(p.right, p.left)
            for p in preds
        ]
        pair_query = JoinQuery(
            left=left, right=right, predicates=oriented, select_star=True
        )
        schema = infer_join_schema(
            pair_query, cluster.schema(left), cluster.schema(right)
        )
        selectivities[pair] = estimate_selectivity(
            cluster, left, right, schema
        )
    return selectivities


# -------------------------------------------------------------- rewriting


def _rewrite(expr: Expression, mapping: dict[str, str]) -> Expression:
    """Replace qualified field references per ``mapping`` (old → new)."""
    if isinstance(expr, Field):
        return Field(mapping.get(expr.name, expr.name))
    if isinstance(expr, BinOp):
        return BinOp(
            expr.op, _rewrite(expr.left, mapping), _rewrite(expr.right, mapping)
        )
    if isinstance(expr, Neg):
        return Neg(_rewrite(expr.operand, mapping))
    if isinstance(expr, Const):
        return expr
    raise PlanningError(f"cannot rewrite expression node {expr!r}")


def _field_type(schema: ArraySchema, name: str) -> str:
    if schema.has_dim(name):
        return "int64"
    return schema.attr(name).type_name


class _StageState:
    """Tracks the intermediate array and the qualified-name mapping."""

    def __init__(self, cluster, query: MultiJoinQuery):
        self.cluster = cluster
        self.query = query
        self.current: str | None = None  # temp array name
        #: original qualified name "A.x" -> attribute name on `current`
        self.mapping: dict[str, str] = {}
        self.placed: set[str] = set()

    def needed_fields(self) -> list[str]:
        """Qualified fields any predicate or the final SELECT touches."""
        needed: set[str] = set()
        for pred in self.query.predicates:
            needed.add(pred.left.qualified())
            needed.add(pred.right.qualified())
        if self.query.select_star:
            for name in self.query.arrays:
                schema = self.cluster.schema(name)
                needed.update(f"{name}.{f}" for f in schema.field_names)
        else:
            for item in self.query.select:
                for ref in item.expr.field_refs():
                    if "." not in ref:
                        raise PlanningError(
                            "multi-join SELECT items must be qualified, "
                            f"got {ref!r}"
                        )
                    needed.add(ref)
        return sorted(needed)

    def source_expression(self, qualified: str, right: str) -> str:
        """Where a qualified field lives at this stage."""
        array, _, fname = qualified.partition(".")
        if array == right:
            return qualified
        if array in self.placed:
            if self.current is None:
                return qualified  # first stage: still the base array
            return f"{self.current}.{self.mapping[qualified]}"
        raise PlanningError(
            f"field {qualified!r} references an array not yet joined"
        )

    def field_type(self, qualified: str) -> str:
        array, _, fname = qualified.partition(".")
        return _field_type(self.cluster.schema(array), fname)

    def rewrite_map(self, right: str) -> dict[str, str]:
        """Expression-rewrite map for fields visible at this stage."""
        rewritten = {}
        for qualified in self.needed_fields():
            array = qualified.partition(".")[0]
            if array == right or array in self.placed:
                rewritten[qualified] = self.source_expression(qualified, right)
        return rewritten

    def stage_predicates(self, step) -> list[JoinPredicate]:
        """Rewrite the step's predicates against the current intermediate."""
        predicates = []
        for pred in step.predicates:
            if self.current is None:
                predicates.append(pred)
            else:
                left_q = pred.left.qualified()
                predicates.append(
                    JoinPredicate(
                        FieldRef(self.current, self.mapping[left_q]),
                        pred.right,
                    )
                )
        return predicates


def execute_multi_join(
    executor,
    query: MultiJoinQuery,
    planner: str = "tabu",
    plan: MultiJoinPlan | None = None,
) -> MultiJoinResult:
    """Plan and run a multi-join query end to end.

    ``plan`` overrides the DP-chosen order (used by the ordering
    ablation and by callers that have already planned).
    """
    if query.into_schema is not None and not query.into_schema.is_dimensionless():
        raise PlanningError(
            "multi-join INTO schemas must be dimensionless; redimension "
            "the result separately"
        )
    cluster = executor.cluster
    if plan is None:
        sizes = {name: cluster.array_cell_count(name) for name in query.arrays}
        selectivities = estimate_pair_selectivities(executor, query)
        plan = MultiJoinPlanner(sizes, selectivities).plan(query)

    state = _StageState(cluster, query)
    needed = state.needed_fields()
    temp_names: list[str] = []
    stage_results = []
    try:
        for stage_index, step in enumerate(plan.steps):
            is_last = stage_index == len(plan.steps) - 1
            right = step.array
            state.placed = set(step.placed)
            left_name = state.current or step.placed[0]
            predicates = state.stage_predicates(step)

            if is_last:
                stage_query = _final_stage_query(
                    query, state, left_name, right, predicates
                )
            else:
                stage_query, carried = _intermediate_stage_query(
                    query, state, left_name, right, predicates,
                    needed, stage_index,
                )

            # Push single-array filters down to the stage that first scans
            # each base array.
            if state.current is None and step.placed[0] in query.filters:
                stage_query.filters[step.placed[0]] = query.filters[
                    step.placed[0]
                ]
            if right in query.filters:
                stage_query.filters[right] = query.filters[right]

            result = executor.execute(
                stage_query, planner=planner, store_result=not is_last
            )
            stage_results.append(result)

            if not is_last:
                temp = stage_query.into_schema.name
                temp_names.append(temp)
                state.current = temp
                state.mapping = {source: alias for source, alias, _ in carried}
    finally:
        for name in temp_names:
            if cluster.catalog.exists(name):
                cluster.drop_array(name)

    return MultiJoinResult(
        array=stage_results[-1].array,
        plan=plan,
        stage_results=stage_results,
    )


def _intermediate_stage_query(
    query: MultiJoinQuery,
    state: _StageState,
    left_name: str,
    right: str,
    predicates: list[JoinPredicate],
    needed: list[str],
    stage_index: int,
):
    """Build the SELECT ... INTO temp query for a non-final stage.

    Returns the query plus the carried fields as
    ``(original qualified name, alias, type)`` triples — the mapping the
    next stage rewrites against.
    """
    visible = state.placed | {right}
    carried = []  # (qualified, source expression, alias, type)
    for qualified in needed:
        array = qualified.partition(".")[0]
        if array not in visible:
            continue
        carried.append(
            (
                qualified,
                state.source_expression(qualified, right),
                qualified.replace(".", "_"),
                state.field_type(qualified),
            )
        )
    if not carried:
        raise PlanningError("an intermediate join would carry no fields")

    temp_name = f"_mj{stage_index}_{left_name}_{right}"
    stage_query = JoinQuery(
        left=left_name,
        right=right,
        predicates=predicates,
        select=[
            SelectItem(Field(source), alias)
            for _, source, alias, _ in carried
        ],
        select_star=False,
        into_schema=ArraySchema(
            name=temp_name,
            dims=(),
            attrs=tuple(
                Attribute(alias, type_name)
                for _, _, alias, type_name in carried
            ),
        ),
    )
    mapping_triples = [
        (qualified, alias, type_name)
        for qualified, _, alias, type_name in carried
    ]
    return stage_query, mapping_triples


def _final_stage_query(
    query: MultiJoinQuery,
    state: _StageState,
    left_name: str,
    right: str,
    predicates: list[JoinPredicate],
) -> JoinQuery:
    """Build the last stage, producing the user's requested output."""
    rewrite_map = state.rewrite_map(right)
    if query.select_star:
        select_items = [
            SelectItem(Field(rewrite_map[qualified]), qualified.replace(".", "_"))
            for qualified in state.needed_fields()
        ]
    else:
        select_items = [
            SelectItem(_rewrite(item.expr, rewrite_map), item.output_name)
            for item in query.select
        ]
    into_schema = query.into_schema
    into_name = None if into_schema is not None else query.output_name
    return JoinQuery(
        left=left_name,
        right=right,
        predicates=predicates,
        select=select_items,
        select_star=False,
        into_schema=into_schema,
        into_name=into_name,
    )
