"""Join algorithms over join units (Section 3.2).

Each algorithm consumes the two sides of one join unit as composite key
columns and returns the matching index pairs ``(left_idx, right_idx)``.
All three produce identical matches; they differ in input requirements
and asymptotic cost:

- **hash join**: builds a hash map over the smaller side, probes with the
  larger; linear, order-agnostic;
- **merge join**: advances two cursors over key-sorted inputs; linear,
  requires sorted join units;
- **nested loop join**: compares every pair in blocks; polynomial,
  order-agnostic, never profitable — included as the paper's baseline.

Keys are 1-D arrays comparing as single values: either packed ``uint64``
primitives (see :mod:`repro.adm.keycodec`, the fast path) or structured
arrays (see :func:`repro.adm.cells.composite_key`, the reference
representation when a key does not fit 64 bits). Every matcher treats
the two representations identically — only sortedness checking needs to
distinguish them, because structured dtypes lack ordering ufuncs.

Index arithmetic is pinned to ``int64`` throughout: ``np.arange`` and
``np.cumsum`` default to the platform integer (int32 on Windows), which
silently overflows once a skewed unit expands past 2^31 candidate pairs.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ExecutionError

#: Guard for the blocked nested loop: refuse absurd comparison counts.
MAX_NESTED_LOOP_COMPARISONS = 1_000_000_000


def _group_layout(keys: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Sort keys and describe their equal-value runs.

    Returns (order, unique_keys, run_starts, run_counts) where
    ``order`` sorts ``keys`` and run ``g`` spans
    ``order[run_starts[g] : run_starts[g] + run_counts[g]]``.
    """
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    if len(sorted_keys) == 0:
        empty = np.array([], dtype=np.int64)
        return order, sorted_keys, empty, empty
    new_run = np.r_[True, sorted_keys[1:] != sorted_keys[:-1]]
    run_starts = np.flatnonzero(new_run).astype(np.int64)
    run_counts = np.diff(np.r_[run_starts, len(sorted_keys)])
    return order, sorted_keys[run_starts], run_starts, run_counts


def _expand_matches(
    left_order: np.ndarray,
    left_starts: np.ndarray,
    left_counts: np.ndarray,
    right_order: np.ndarray,
    right_starts: np.ndarray,
    right_counts: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Cartesian-expand matched key groups into index pairs, vectorised."""
    pair_counts = left_counts.astype(np.int64) * right_counts
    total = int(pair_counts.sum())
    if total == 0:
        empty = np.array([], dtype=np.int64)
        return empty, empty
    group_of_pair = np.repeat(
        np.arange(len(pair_counts), dtype=np.int64), pair_counts
    )
    pair_offsets = np.arange(total, dtype=np.int64) - np.repeat(
        np.r_[0, np.cumsum(pair_counts, dtype=np.int64)[:-1]], pair_counts
    )
    nr = right_counts[group_of_pair]
    left_local = pair_offsets // nr
    right_local = pair_offsets % nr
    left_idx = left_order[left_starts[group_of_pair] + left_local]
    right_idx = right_order[right_starts[group_of_pair] + right_local]
    return left_idx, right_idx


def hash_join_match(
    left_keys: np.ndarray, right_keys: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Hash join: hash-map build over the smaller side, probe the larger.

    The map is realised as a sorted unique-key index (numpy's idiom for a
    hash table) built over the **smaller** input only; the larger input is
    probed row by row against that index and never sorted or grouped —
    the build/probe asymmetry that makes the algorithm's cost
    ``b·min(n_l, n_r) + p·max(n_l, n_r)`` rather than symmetric.
    """
    if len(left_keys) == 0 or len(right_keys) == 0:
        empty = np.array([], dtype=np.int64)
        return empty, empty
    swapped = len(right_keys) < len(left_keys)
    build_keys, probe_keys = (
        (right_keys, left_keys) if swapped else (left_keys, right_keys)
    )
    b_order, b_uniques, b_starts, b_counts = _group_layout(build_keys)
    # Probe: locate every probe row in the build index (batched lookup).
    positions = np.searchsorted(b_uniques, probe_keys)
    positions = np.clip(positions, 0, len(b_uniques) - 1)
    hit = b_uniques[positions] == probe_keys
    probe_rows = np.flatnonzero(hit)
    groups = positions[hit]
    counts = b_counts[groups]
    total = int(counts.sum())
    if total == 0:
        empty = np.array([], dtype=np.int64)
        return empty, empty
    # Each matched probe row fans out over its build group's duplicates.
    probe_idx = np.repeat(probe_rows.astype(np.int64), counts)
    offsets = np.arange(total, dtype=np.int64) - np.repeat(
        np.r_[0, np.cumsum(counts, dtype=np.int64)[:-1]], counts
    )
    build_idx = b_order[np.repeat(b_starts[groups], counts) + offsets]
    if swapped:
        return probe_idx, build_idx
    return build_idx, probe_idx


def _is_key_sorted(keys: np.ndarray) -> bool:
    """Non-decreasing check for packed or structured key arrays.

    Packed primitive keys compare with one vectorised ``<=`` pass — the
    payoff of the key codec. Structured dtypes support ``==`` but not
    ordering ufuncs, so their comparison walks the fields in
    significance order.
    """
    if len(keys) <= 1:
        return True
    if keys.dtype.names is None:
        return bool((keys[:-1] <= keys[1:]).all())
    prev, cur = keys[:-1], keys[1:]
    strictly_less = np.zeros(len(prev), dtype=bool)
    tied = np.ones(len(prev), dtype=bool)
    for name in keys.dtype.names:
        strictly_less |= tied & (prev[name] < cur[name])
        tied &= prev[name] == cur[name]
    return bool((strictly_less | tied).all())


def merge_join_match(
    left_keys: np.ndarray, right_keys: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Merge join: two cursors over key-sorted inputs.

    Raises :class:`ExecutionError` when either input is not sorted — the
    logical planner must have arranged sorted join units (scan of
    conforming chunks, or redim) before selecting this algorithm.
    """
    for side, keys in (("left", left_keys), ("right", right_keys)):
        if not _is_key_sorted(keys):
            raise ExecutionError(
                f"merge join requires sorted join units; {side} side is unsorted"
            )
    if len(left_keys) == 0 or len(right_keys) == 0:
        empty = np.array([], dtype=np.int64)
        return empty, empty
    # Runs of equal keys on each (already sorted) side.
    l_new = np.r_[True, left_keys[1:] != left_keys[:-1]]
    l_starts = np.flatnonzero(l_new).astype(np.int64)
    l_counts = np.diff(np.r_[l_starts, len(left_keys)])
    l_uniques = left_keys[l_starts]
    r_new = np.r_[True, right_keys[1:] != right_keys[:-1]]
    r_starts = np.flatnonzero(r_new).astype(np.int64)
    r_counts = np.diff(np.r_[r_starts, len(right_keys)])
    r_uniques = right_keys[r_starts]
    # Advance the "cursor" on the right for every left run (vectorised
    # two-cursor merge: searchsorted is the batched cursor increment).
    positions = np.searchsorted(r_uniques, l_uniques)
    positions = np.clip(positions, 0, len(r_uniques) - 1)
    hit = r_uniques[positions] == l_uniques
    l_groups = np.flatnonzero(hit)
    r_groups = positions[hit]
    identity_left = np.arange(len(left_keys), dtype=np.int64)
    identity_right = np.arange(len(right_keys), dtype=np.int64)
    return _expand_matches(
        identity_left, l_starts[l_groups], l_counts[l_groups],
        identity_right, r_starts[r_groups], r_counts[r_groups],
    )


def nested_loop_match(
    left_keys: np.ndarray,
    right_keys: np.ndarray,
    block_rows: int = 512,
) -> tuple[np.ndarray, np.ndarray]:
    """Nested loop join: exhaustive pairwise comparison, in blocks.

    The outer loop is blocked so memory stays bounded at
    ``block_rows × len(right)`` comparisons per step. Refuses inputs
    whose comparison count exceeds :data:`MAX_NESTED_LOOP_COMPARISONS`.
    """
    n_left, n_right = len(left_keys), len(right_keys)
    if n_left == 0 or n_right == 0:
        empty = np.array([], dtype=np.int64)
        return empty, empty
    if n_left * n_right > MAX_NESTED_LOOP_COMPARISONS:
        raise ExecutionError(
            f"nested loop join over {n_left}×{n_right} cells exceeds the "
            f"comparison guard ({MAX_NESTED_LOOP_COMPARISONS:.0e})"
        )
    left_parts: list[np.ndarray] = []
    right_parts: list[np.ndarray] = []
    for start in range(0, n_left, block_rows):
        block = left_keys[start : start + block_rows]
        hits = block[:, None] == right_keys[None, :]
        li, ri = np.nonzero(hits)
        left_parts.append(li + start)
        right_parts.append(ri)
    return (
        np.concatenate(left_parts).astype(np.int64),
        np.concatenate(right_parts).astype(np.int64),
    )


MATCHERS = {
    "hash": hash_join_match,
    "merge": merge_join_match,
    "nested_loop": nested_loop_match,
}


def match_pairs(
    algorithm: str, left_keys: np.ndarray, right_keys: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Dispatch to the matcher implementing ``algorithm``."""
    try:
        matcher = MATCHERS[algorithm]
    except KeyError:
        raise ExecutionError(f"unknown join algorithm {algorithm!r}") from None
    return matcher(left_keys, right_keys)
