"""Synthetic sky-survey catalogs (the paper's astronomy motivation).

The introduction opens with the Sloan Digital Sky Survey: telescopes
record objects that "are not uniformly distributed in the sky", so
nightly catalogs carry dense hotspots along the galactic plane. This
generator produces epoch catalogs with that structure:

- sky coordinates on a 4°-binned (ra, dec) grid;
- object density peaked along a tilted great-circle "galactic plane"
  band plus a handful of cluster hotspots;
- per-object magnitude and id attributes;
- epoch pairs share most objects (re-detections, with small magnitude
  scatter) while each epoch also has unmatched detections — the standard
  cross-match workload.
"""

from __future__ import annotations

import numpy as np

from repro.adm.array import LocalArray
from repro.adm.cells import CellSet
from repro.adm.parser import parse_schema

#: 4-degree sky bins, like the paper's geospatial chunking.
RA_BINS = 360
DEC_BINS = 180
CHUNK_DEG = 4


def _sky_weights(
    rng: np.random.Generator,
    plane_strength: float,
    n_clusters: int,
) -> np.ndarray:
    """Per-(ra, dec) cell density: galactic plane band + cluster spots."""
    ra = np.arange(RA_BINS)[:, None]
    dec = np.arange(DEC_BINS)[None, :]
    # A tilted sine band across the sky, 18° wide at half maximum.
    plane_center = DEC_BINS / 2 + (DEC_BINS / 3) * np.sin(
        2 * np.pi * ra / RA_BINS
    )
    band = np.exp(-((dec - plane_center) ** 2) / (2 * 9.0**2))
    weights = 1.0 + plane_strength * band
    for _ in range(n_clusters):
        c_ra = rng.integers(0, RA_BINS)
        c_dec = rng.integers(0, DEC_BINS)
        distance_sq = (
            np.minimum(np.abs(ra - c_ra), RA_BINS - np.abs(ra - c_ra)) ** 2
            + (dec - c_dec) ** 2
        )
        weights += plane_strength * 3.0 * np.exp(-distance_sq / (2 * 2.0**2))
    flat = weights.ravel()
    return flat / flat.sum()


def _catalog_from_positions(
    name: str,
    positions: np.ndarray,
    magnitudes: np.ndarray,
    object_ids: np.ndarray,
) -> LocalArray:
    schema = parse_schema(
        f"{name}<mag:float64, obj_id:int64>"
        f"[ra=1,{RA_BINS},{CHUNK_DEG}, dec=1,{DEC_BINS},{CHUNK_DEG}]"
    )
    cells = CellSet(positions, {"mag": magnitudes, "obj_id": object_ids})
    return LocalArray.from_cells(schema, cells)


def sky_catalog(
    name: str = "Stars",
    objects: int = 60_000,
    plane_strength: float = 8.0,
    n_clusters: int = 6,
    seed: int = 0,
) -> LocalArray:
    """One epoch catalog with galactic-plane density structure."""
    rng = np.random.default_rng(seed)
    weights = _sky_weights(rng, plane_strength, n_clusters)
    flat = rng.choice(len(weights), size=objects, p=weights, replace=False
                      ) if objects <= len(weights) else rng.choice(
        len(weights), size=objects, p=weights
    )
    positions = np.column_stack([flat // DEC_BINS + 1, flat % DEC_BINS + 1])
    magnitudes = rng.normal(18.0, 2.5, objects).clip(8.0, 24.0)
    object_ids = rng.permutation(10 * objects)[:objects]
    return _catalog_from_positions(name, positions, magnitudes, object_ids)


def epoch_pair(
    objects: int = 60_000,
    redetection_rate: float = 0.8,
    magnitude_scatter: float = 0.05,
    plane_strength: float = 8.0,
    seed: int = 0,
    names: tuple[str, str] = ("Epoch1", "Epoch2"),
) -> tuple[LocalArray, LocalArray]:
    """Two epochs of the same sky: most objects re-detected, some not.

    Re-detections keep their position and object id but get a slightly
    different magnitude (measurement scatter plus genuine variability);
    each epoch additionally has its own unmatched detections.
    """
    rng = np.random.default_rng(seed)
    weights = _sky_weights(rng, plane_strength, 6)
    n_shared = int(objects * redetection_rate)
    n_only = objects - n_shared

    def draw(count):
        flat = rng.choice(len(weights), size=count, p=weights)
        return np.column_stack([flat // DEC_BINS + 1, flat % DEC_BINS + 1])

    shared_positions = draw(n_shared)
    shared_mags = rng.normal(18.0, 2.5, n_shared).clip(8.0, 24.0)
    shared_ids = rng.permutation(10 * objects)[:n_shared]

    catalogs = []
    for index, name in enumerate(names):
        own_positions = draw(n_only)
        own_mags = rng.normal(18.0, 2.5, n_only).clip(8.0, 24.0)
        own_ids = 10 * objects + index * objects + np.arange(n_only)
        mags = shared_mags + rng.normal(0.0, magnitude_scatter, n_shared)
        catalogs.append(
            _catalog_from_positions(
                name,
                np.concatenate([shared_positions, own_positions]),
                np.concatenate([mags, own_mags]),
                np.concatenate([shared_ids, own_ids]),
            )
        )
    return catalogs[0], catalogs[1]
