"""Workload generators for the paper's experiments.

- :mod:`repro.workloads.synthetic` — the Section 6.1/6.2 synthetic
  arrays: Zipf-skewed chunk grids and selectivity-controlled A:A pairs;
- :mod:`repro.workloads.modis` — a synthetic stand-in for the NASA MODIS
  satellite imagery (near-uniform, slightly equator-dense, band-to-band
  correlated chunk sizes);
- :mod:`repro.workloads.ais` — a synthetic stand-in for the NOAA AIS ship
  tracks (port hotspots holding ~85 % of cells in ~5 % of chunks).
"""

from repro.workloads.ais import ais_tracks
from repro.workloads.modis import modis_band, modis_pair
from repro.workloads.skysurvey import epoch_pair, sky_catalog
from repro.workloads.synthetic import (
    chain_arrays,
    chain_query,
    selectivity_pair,
    skewed_hash_pair,
    skewed_merge_pair,
    star_arrays,
    star_query,
    zipf_weights,
)

__all__ = [
    "ais_tracks",
    "chain_arrays",
    "chain_query",
    "epoch_pair",
    "modis_band",
    "modis_pair",
    "selectivity_pair",
    "sky_catalog",
    "skewed_hash_pair",
    "skewed_merge_pair",
    "star_arrays",
    "star_query",
    "zipf_weights",
]
