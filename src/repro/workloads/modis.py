"""Synthetic MODIS-like satellite imagery (Section 6.3 substitute).

The paper's first real dataset is 170 GB of NASA MODIS reflectance
measurements over one week: three dimensions (time, longitude, latitude),
4°×4° spatial chunks, and only *slight* skew — the top 5 % of chunks hold
about 10 % of the data, an artifact of latitude-longitude space being
sparser near the poles. Two bands recorded by the same sensor have
chunk sizes that agree to ~1.5 % (mean difference 10 000 cells against a
mean chunk size of 665 000), which is what makes the NDVI band join an
*adversarial* skew case.

This generator reproduces those distributional facts at reduced scale:
cell density proportional to cos(latitude) plus noise (calibrated to the
top-5 % ≈ 10 % statistic), and band pairs built from the same sampling
locations with a small independent dropout so joining chunks differ
slightly in size.
"""

from __future__ import annotations

import numpy as np

from repro.adm.array import LocalArray
from repro.adm.cells import CellSet
from repro.adm.parser import parse_schema
from repro.workloads.synthetic import allocate_capped

#: 4° chunks over 360° of longitude and 180° of latitude.
LON_CHUNKS = 90
LAT_CHUNKS = 45
CHUNK_DEG = 4


def _modis_literal(name: str, days: int) -> str:
    return (
        f"{name}<reflectance:float64>"
        f"[time=1,{days},{days}, lon=1,360,{CHUNK_DEG}, lat=1,180,{CHUNK_DEG}]"
    )


def _spatial_weights(rng: np.random.Generator, density_noise: float) -> np.ndarray:
    """Per-spatial-chunk weights: cos(latitude) shading plus noise."""
    lat_centers = np.linspace(-90 + CHUNK_DEG / 2, 90 - CHUNK_DEG / 2, LAT_CHUNKS)
    lat_weight = np.cos(np.radians(lat_centers))
    weights = np.repeat(lat_weight[None, :], LON_CHUNKS, axis=0).ravel()
    weights *= rng.lognormal(0.0, density_noise, size=weights.size)
    return weights / weights.sum()


def _sample_cells(
    counts: np.ndarray,
    days: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Distinct (time, lon, lat) coordinates per spatial chunk."""
    capacity = days * CHUNK_DEG * CHUNK_DEG
    parts = []
    for spatial_id, count in enumerate(counts):
        if count <= 0:
            continue
        lon_chunk, lat_chunk = divmod(spatial_id, LAT_CHUNKS)
        flat = rng.choice(capacity, size=min(int(count), capacity), replace=False)
        time = 1 + flat // (CHUNK_DEG * CHUNK_DEG)
        rest = flat % (CHUNK_DEG * CHUNK_DEG)
        lon = 1 + lon_chunk * CHUNK_DEG + rest // CHUNK_DEG
        lat = 1 + lat_chunk * CHUNK_DEG + rest % CHUNK_DEG
        parts.append(np.column_stack([time, lon, lat]))
    if not parts:
        return np.empty((0, 3), dtype=np.int64)
    return np.concatenate(parts).astype(np.int64)


def modis_band(
    name: str = "Band1",
    cells: int = 200_000,
    days: int = 7,
    density_noise: float = 0.35,
    seed: int = 0,
) -> LocalArray:
    """One MODIS band as a 3-D (time, lon, lat) array.

    ``density_noise`` is the lognormal σ applied on top of the cosine
    latitude shading; the default lands the top-5 %-of-chunks share near
    the paper's ≈ 10 %.
    """
    rng = np.random.default_rng(seed)
    weights = _spatial_weights(rng, density_noise)
    capacity = np.full(weights.size, days * CHUNK_DEG * CHUNK_DEG, dtype=np.int64)
    counts = allocate_capped(weights, cells, capacity, rng)
    coords = _sample_cells(counts, days, rng)
    reflectance = rng.uniform(0.0, 1.0, len(coords))
    schema = parse_schema(_modis_literal(name, days))
    return LocalArray.from_cells(
        schema, CellSet(coords, {"reflectance": reflectance})
    )


def modis_pair(
    cells: int = 200_000,
    days: int = 7,
    dropout: float = 0.015,
    density_noise: float = 0.35,
    seed: int = 0,
    names: tuple[str, str] = ("Band1", "Band2"),
) -> tuple[LocalArray, LocalArray]:
    """Two bands from the same sensor sweep (the §6.3.2 NDVI inputs).

    Both bands sample the same locations; each independently drops
    ``dropout`` of its cells, so corresponding chunks differ in size by
    about ``2 × dropout`` — the paper's ~1.5 % band-to-band difference.
    """
    rng = np.random.default_rng(seed)
    weights = _spatial_weights(rng, density_noise)
    capacity = np.full(weights.size, days * CHUNK_DEG * CHUNK_DEG, dtype=np.int64)
    counts = allocate_capped(weights, cells, capacity, rng)
    coords = _sample_cells(counts, days, rng)

    bands = []
    for band_name in names:
        keep = rng.random(len(coords)) >= dropout
        band_coords = coords[keep]
        reflectance = rng.uniform(0.0, 1.0, len(band_coords))
        schema = parse_schema(_modis_literal(band_name, days))
        bands.append(
            LocalArray.from_cells(
                schema, CellSet(band_coords, {"reflectance": reflectance})
            )
        )
    return bands[0], bands[1]
