"""Synthetic workloads with controlled skew and selectivity (Section 6).

Scaled-down versions of the paper's synthetic arrays, preserving their
*shape*: the same 32×32 chunk grids (1024 join units), the same Zipfian
skew sweeps over α ∈ [0, 2], and the same engineered join selectivities.
"""

from __future__ import annotations

import numpy as np

from repro.adm.array import LocalArray
from repro.adm.cells import CellSet
from repro.adm.parser import parse_schema
from repro.errors import SchemaError


def zipf_weights(
    n: int, alpha: float, rng: np.random.Generator | int | None = None
) -> np.ndarray:
    """Normalised Zipf(α) weights over ``n`` items, randomly permuted.

    α = 0 is uniform; larger α concentrates mass in fewer items. The
    permutation detaches an item's rank from its index, so skew location
    is random rather than always hitting the first chunks. ``rng`` is an
    explicit generator or integer seed; the permutation never touches
    numpy's global RNG state, so every workload is reproducible from its
    seed alone.
    """
    if n <= 0:
        raise SchemaError(f"need a positive item count, got {n}")
    if alpha < 0:
        raise SchemaError(f"zipf alpha must be non-negative, got {alpha}")
    weights = 1.0 / np.arange(1, n + 1, dtype=np.float64) ** alpha
    weights /= weights.sum()
    if rng is not None:
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        weights = rng.permutation(weights)
    return weights


def allocate_capped(
    weights: np.ndarray,
    total: int,
    capacities: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """Deal ``total`` items into bins ∝ ``weights``, respecting capacities.

    Overflow beyond a bin's capacity is redistributed proportionally over
    bins with remaining room; if the aggregate capacity is exhausted the
    allocation is truncated (callers size capacities generously).
    """
    weights = np.asarray(weights, dtype=np.float64)
    capacities = np.asarray(capacities, dtype=np.int64)
    counts = np.zeros(len(weights), dtype=np.int64)
    remaining = int(min(total, capacities.sum()))
    live = weights.copy()
    for _ in range(64):
        if remaining <= 0:
            break
        room = capacities - counts
        live = np.where(room > 0, live, 0.0)
        mass = live.sum()
        if mass <= 0:
            break
        share = rng.multinomial(remaining, live / mass)
        take = np.minimum(share, room)
        counts += take
        remaining -= int(take.sum())
    return counts


def _chunk_coords(
    corner: tuple[int, ...],
    intervals: tuple[int, ...],
    count: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """``count`` distinct coordinates inside one chunk rectangle."""
    capacity = int(np.prod(intervals))
    chosen = rng.choice(capacity, size=min(count, capacity), replace=False)
    coords = np.empty((len(chosen), len(intervals)), dtype=np.int64)
    remaining = chosen
    for axis in range(len(intervals) - 1, -1, -1):
        coords[:, axis] = corner[axis] + remaining % intervals[axis]
        remaining = remaining // intervals[axis]
    return coords


def _grid_array(
    schema_literal: str,
    chunk_counts: np.ndarray,
    attr_sampler,
    rng: np.random.Generator,
) -> LocalArray:
    """Build an array by drawing ``chunk_counts[c]`` distinct cells in each
    chunk of the schema's grid. ``attr_sampler(n) -> {name: column}``."""
    schema = parse_schema(schema_literal)
    if len(chunk_counts) != schema.n_chunks:
        raise SchemaError(
            f"chunk_counts covers {len(chunk_counts)} chunks but schema has "
            f"{schema.n_chunks}"
        )
    intervals = tuple(d.chunk_interval for d in schema.dims)
    coord_parts = []
    for chunk_id, count in enumerate(chunk_counts):
        if count <= 0:
            continue
        corner = schema.chunk_corner(chunk_id)
        coord_parts.append(_chunk_coords(corner, intervals, int(count), rng))
    coords = (
        np.concatenate(coord_parts)
        if coord_parts
        else np.empty((0, schema.ndims), dtype=np.int64)
    )
    cells = CellSet(coords, attr_sampler(len(coords)))
    return LocalArray.from_cells(schema, cells)


# ---------------------------------------------------------- merge workloads


def skewed_merge_pair(
    alpha: float,
    cells_per_array: int = 200_000,
    grid: int = 32,
    chunk_interval: int = 200,
    seed: int = 0,
    correlated: bool = False,
    names: tuple[str, str] = ("A", "B"),
) -> tuple[LocalArray, LocalArray]:
    """Two 2-D arrays whose chunk sizes follow Zipf(α) (Sections 6.2.1, 6.4).

    The paper's arrays are ``A<v1:int64,v2:int64>[i=1,64M,2M, j=1,64M,2M]``
    — a 32×32 chunk grid; this generator keeps the grid and the skew sweep
    at laptop scale. ``correlated=True`` gives both arrays the same skew
    placement (adversarial); the default draws independent placements
    (mixed, mostly beneficial under high skew).
    """
    rng = np.random.default_rng(seed)
    extent = grid * chunk_interval
    n_chunks = grid * grid
    capacity = np.full(n_chunks, chunk_interval * chunk_interval, dtype=np.int64)

    weights_a = zipf_weights(n_chunks, alpha, rng)
    weights_b = weights_a if correlated else zipf_weights(n_chunks, alpha, rng)
    counts_a = allocate_capped(weights_a, cells_per_array, capacity, rng)
    counts_b = allocate_capped(weights_b, cells_per_array, capacity, rng)

    def sampler(n: int) -> dict:
        return {
            "v1": rng.integers(0, 1_000_000, n),
            "v2": rng.integers(0, 1_000_000, n),
        }

    literal = (
        "{name}<v1:int64, v2:int64>"
        f"[i=1,{extent},{chunk_interval}, j=1,{extent},{chunk_interval}]"
    )
    array_a = _grid_array(literal.format(name=names[0]), counts_a, sampler, rng)
    array_b = _grid_array(literal.format(name=names[1]), counts_b, sampler, rng)
    return array_a, array_b


# ----------------------------------------------------------- hash workloads


def skewed_hash_pair(
    alpha: float,
    cells_per_array: int = 200_000,
    n_keys: int = 1024,
    grid: int = 32,
    chunk_interval: int = 200,
    selectivity: float = 0.0001,
    spatial_correlation: float | None = None,
    seed: int = 0,
    names: tuple[str, str] = ("A", "B"),
) -> tuple[LocalArray, LocalArray]:
    """Two arrays whose A:A join-key frequencies follow Zipf(α) (§6.2.2).

    Key frequencies drive hash-bucket (join unit) sizes; the two sides use
    nearly disjoint key domains so the join has the paper's very low
    selectivity (~1e-4), exercising extreme size differences between the
    two sides of a join unit. ``spatial_correlation`` is the fraction of a
    key's cells placed in the key's "home" chunk — it spreads every join
    unit over all nodes while keeping per-node slice sizes uneven. By
    default it tracks α the way the paper's slice sizes do ("the join
    unit AND slice sizes follow a Zipfian distribution"): the top slice's
    share of a Zipf(α) spread over a nominal 12 locations.
    """
    rng = np.random.default_rng(seed)
    if spatial_correlation is None:
        spatial_correlation = float(np.max(zipf_weights(12, alpha)))
    extent = grid * chunk_interval
    n_chunks = grid * grid

    target_matches = selectivity * 2 * cells_per_array
    freq_a = np.maximum(
        1, np.round(zipf_weights(n_keys, alpha, rng) * cells_per_array)
    ).astype(np.int64)
    freq_b = np.maximum(
        1, np.round(zipf_weights(n_keys, alpha, rng) * cells_per_array)
    ).astype(np.int64)

    # The two sides use disjoint key domains plus one dedicated shared
    # key carrying √target cells on each side, so the join emits ≈ target
    # matches independent of the skew level.
    key_a = np.arange(n_keys, dtype=np.int64)
    key_b = np.arange(n_keys, dtype=np.int64) + n_keys
    match_cells = max(1, int(round(np.sqrt(target_matches))))
    shared_key = np.int64(3 * n_keys)
    freq_a = np.append(freq_a, match_cells)
    freq_b = np.append(freq_b, match_cells)
    key_a = np.append(key_a, shared_key)
    key_b = np.append(key_b, shared_key)

    # Each key has a "home" chunk holding ``spatial_correlation`` of its
    # cells. Homes are drawn from a Zipf(min(α, 0.6)) distribution over a
    # FIXED chunk order shared by both arrays: as α grows, the hot spatial
    # regions (and under block placement, the hot nodes) concentrate —
    # the paper's "skew both in the join unit sizes and their distribution
    # across nodes". At α = 0 homes are uniform and no node is hot.
    home_weights = zipf_weights(n_chunks, min(alpha, 0.6))

    def build(name: str, freq: np.ndarray, key_ids: np.ndarray) -> LocalArray:
        literal = (
            f"{name}<v1:int64, v2:int64>"
            f"[i=1,{extent},{chunk_interval}, j=1,{extent},{chunk_interval}]"
        )
        schema = parse_schema(literal)
        total = int(freq.sum())
        # Spatial placement: home chunk per key plus a uniform component.
        per_key_home = rng.binomial(freq, spatial_correlation)
        chunk_of_cell = np.empty(total, dtype=np.int64)
        key_of_cell = np.repeat(np.arange(len(freq)), freq)
        home = rng.choice(n_chunks, size=len(freq), p=home_weights)
        cursor = 0
        for key in range(len(freq)):
            n_home = int(per_key_home[key])
            n_total = int(freq[key])
            chunk_of_cell[cursor : cursor + n_home] = home[key]
            chunk_of_cell[cursor + n_home : cursor + n_total] = rng.integers(
                0, n_chunks, n_total - n_home
            )
            cursor += n_total
        # Coordinates: random positions inside each cell's chunk (collisions
        # in coordinate space are acceptable for A:A workloads — the join
        # ignores coordinates).
        corners = np.array(
            [schema.chunk_corner(c) for c in range(n_chunks)], dtype=np.int64
        )
        offsets = rng.integers(0, chunk_interval, size=(total, 2))
        coords = corners[chunk_of_cell] + offsets
        v1 = key_ids[key_of_cell]
        v2 = v1 * 7 + 1
        cells = CellSet(coords, {"v1": v1, "v2": v2})
        return LocalArray.from_cells(schema, cells)

    return build(names[0], freq_a, key_a), build(names[1], freq_b, key_b)


# ---------------------------------------------------- selectivity workloads


def selectivity_pair(
    selectivity: float,
    n_cells: int = 20_000,
    n_chunks: int = 32,
    seed: int = 0,
    names: tuple[str, str] = ("A", "B"),
) -> tuple[LocalArray, LocalArray]:
    """Two 1-D arrays whose A:A join emits ``selectivity × (n_α+n_β)``
    cells (the Section 6.1 logical-planning workload).

    For selectivity ≤ 0.5 a fraction of values match one-to-one; above
    that every value appears ``g = 2×selectivity`` times on each side so
    each match fans out g² ways.
    """
    rng = np.random.default_rng(seed)
    target = selectivity * 2 * n_cells
    # All values stay within [1, n_cells] so that an output dimension over
    # the value domain (the paper's C<i,j>[v]) can hold every match.
    if selectivity <= 0.5:
        matched = int(round(target))
        # Partition a shuffled value domain into matched values and two
        # disjoint unmatched pools. The shuffle interleaves all three sets
        # uniformly over [1, n], so range partitioning (rechunk) cannot
        # separate non-matching data for free.
        domain = rng.permutation(np.arange(1, n_cells + 1, dtype=np.int64))
        matched_values = domain[:matched]
        rest = n_cells - matched
        half = max(rest // 2, 1)
        pool_a = domain[matched : matched + half]
        pool_b = domain[matched + half :]
        values_a = np.concatenate([matched_values, np.resize(pool_a, rest)])[
            :n_cells
        ]
        values_b = np.concatenate(
            [matched_values, np.resize(pool_b if len(pool_b) else pool_a, rest)]
        )[:n_cells]
    else:
        group = max(int(round(2 * selectivity)), 1)
        n_groups = max(n_cells // group, 1)
        # Spread the group values uniformly over [1, n] so that range
        # partitioning sees balanced chunks at every selectivity.
        domain = rng.permutation(np.arange(1, n_cells + 1, dtype=np.int64))
        group_values = domain[:n_groups]
        values_a = np.repeat(group_values, group)[:n_cells]
        values_b = values_a.copy()
        short = n_cells - len(values_a)
        if short > 0:
            # Disjoint filler values drawn from outside the group set.
            filler_a = domain[n_groups % len(domain)] if n_groups < len(domain) else 1
            filler_b = (
                domain[(n_groups + 1) % len(domain)]
                if n_groups + 1 < len(domain)
                else 2
            )
            values_a = np.concatenate(
                [values_a, np.full(short, filler_a, dtype=np.int64)]
            )
            values_b = np.concatenate(
                [values_b, np.full(short, filler_b, dtype=np.int64)]
            )
    rng.shuffle(values_a)
    rng.shuffle(values_b)

    interval = max(n_cells // n_chunks, 1)
    coords = np.arange(1, n_cells + 1, dtype=np.int64).reshape(-1, 1)
    schema_a = parse_schema(f"{names[0]}<v:int64>[i=1,{n_cells},{interval}]")
    schema_b = parse_schema(f"{names[1]}<w:int64>[j=1,{n_cells},{interval}]")
    array_a = LocalArray.from_cells(schema_a, CellSet(coords, {"v": values_a}))
    array_b = LocalArray.from_cells(schema_b, CellSet(coords, {"w": values_b}))
    return array_a, array_b


# ------------------------------------------------------ multiway workloads


def _as_rng(rng: np.random.Generator | int) -> np.random.Generator:
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def _keyed_array(
    name: str, attrs: dict[str, np.ndarray], n_chunks: int
) -> LocalArray:
    """1-D array over a regular grid carrying the given key columns."""
    n_cells = len(next(iter(attrs.values())))
    interval = max(n_cells // n_chunks, 1)
    decl = ", ".join(f"{attr}:int64" for attr in attrs)
    schema = parse_schema(f"{name}<{decl}>[i=1,{n_cells},{interval}]")
    coords = np.arange(1, n_cells + 1, dtype=np.int64).reshape(-1, 1)
    return LocalArray.from_cells(schema, CellSet(coords, attrs))


def _own_keys(
    n_cells: int, fanout: int, rng: np.random.Generator
) -> np.ndarray:
    """A uniform key column where every domain value appears exactly
    ``fanout`` times (shuffled): the referenced side of a bounded join."""
    domain = max(n_cells // fanout, 1)
    keys = np.resize(np.arange(domain, dtype=np.int64), n_cells)
    rng.shuffle(keys)
    return keys


def _foreign_keys(
    n_cells: int,
    referenced_cells: int,
    fanout: int,
    alpha: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """A Zipf(α)-skewed key column drawn from the referenced side's key
    domain. Skew concentrates *which* keys are hot (uneven join units)
    without changing the per-cell match count (always ``fanout``)."""
    domain = max(referenced_cells // fanout, 1)
    weights = zipf_weights(domain, alpha, rng)
    return rng.choice(domain, size=n_cells, p=weights).astype(np.int64)


def chain_arrays(
    n_arrays: int,
    alpha: float,
    cells_per_array: int = 4_000,
    fanout: int = 2,
    n_chunks: int = 16,
    rng: np.random.Generator | int = 0,
    names: tuple[str, ...] | None = None,
) -> list[LocalArray]:
    """A chain-schema pipeline workload: T0 ⋈ T1 ⋈ … ⋈ T(M-1).

    Array ``Tm`` carries a uniform *own* key ``k{m}`` (every value appears
    exactly ``fanout`` times) and a Zipf(α) *foreign* key ``k{m+1}`` drawn
    from the next array's own-key domain; the join predicate is
    ``Tm.k{m+1} = T{m+1}.k{m+1}``. Every foreign-key occurrence matches
    exactly ``fanout`` cells, so an M-array chain emits
    ``cells_per_array × fanout^(M-1)`` cells at *every* α — skew moves
    which join units are heavy, never the output size. The last array
    additionally carries a ``payload`` column. ``rng`` is an explicit
    generator or integer seed (global RNG state is never touched).
    """
    if n_arrays < 3:
        raise SchemaError(f"a chain needs at least 3 arrays, got {n_arrays}")
    if names is None:
        names = tuple(f"T{m}" for m in range(n_arrays))
    if len(names) != n_arrays:
        raise SchemaError(
            f"got {len(names)} names for {n_arrays} chain arrays"
        )
    rng = _as_rng(rng)
    arrays = []
    for m, name in enumerate(names):
        attrs = {f"k{m}": _own_keys(cells_per_array, fanout, rng)}
        if m + 1 < n_arrays:
            attrs[f"k{m + 1}"] = _foreign_keys(
                cells_per_array, cells_per_array, fanout, alpha, rng
            )
        else:
            attrs["payload"] = rng.integers(0, 1_000_000, cells_per_array)
        arrays.append(_keyed_array(name, attrs, n_chunks))
    return arrays


def chain_query(
    n_arrays: int, names: tuple[str, ...] | None = None
) -> str:
    """The multi-join statement matching :func:`chain_arrays`."""
    if names is None:
        names = tuple(f"T{m}" for m in range(n_arrays))
    predicates = " AND ".join(
        f"{names[m]}.k{m + 1} = {names[m + 1]}.k{m + 1}"
        for m in range(n_arrays - 1)
    )
    return (
        f"SELECT {names[0]}.k0, {names[-1]}.payload "
        f"FROM {', '.join(names)} WHERE {predicates}"
    )


def star_arrays(
    n_dims: int,
    alpha: float,
    fact_cells: int = 4_000,
    dim_cells: int = 1_000,
    fanout: int = 2,
    n_chunks: int = 16,
    rng: np.random.Generator | int = 0,
    names: tuple[str, ...] | None = None,
) -> list[LocalArray]:
    """A star-schema pipeline workload: fact ⋈ D0 ⋈ … ⋈ D(K-1).

    The fact array ``F`` carries one Zipf(α) foreign key ``d{i}`` per
    dimension plus a ``measure`` column; dimension ``Di`` carries a
    uniform own key ``d{i}`` (each value exactly ``fanout`` times) and a
    payload ``p{i}``. Joining all K dimensions emits
    ``fact_cells × fanout^K`` cells independent of α. The first returned
    array is the fact. ``rng`` is an explicit generator or integer seed.
    """
    if n_dims < 2:
        raise SchemaError(f"a star needs at least 2 dimensions, got {n_dims}")
    if names is None:
        names = ("F",) + tuple(f"D{i}" for i in range(n_dims))
    if len(names) != n_dims + 1:
        raise SchemaError(
            f"got {len(names)} names for a fact plus {n_dims} dimensions"
        )
    rng = _as_rng(rng)
    fact_attrs = {
        f"d{i}": _foreign_keys(fact_cells, dim_cells, fanout, alpha, rng)
        for i in range(n_dims)
    }
    fact_attrs["measure"] = rng.integers(0, 1_000_000, fact_cells)
    arrays = [_keyed_array(names[0], fact_attrs, n_chunks)]
    for i in range(n_dims):
        arrays.append(
            _keyed_array(
                names[i + 1],
                {
                    f"d{i}": _own_keys(dim_cells, fanout, rng),
                    f"p{i}": rng.integers(0, 1_000_000, dim_cells),
                },
                n_chunks,
            )
        )
    return arrays


def star_query(n_dims: int, names: tuple[str, ...] | None = None) -> str:
    """The multi-join statement matching :func:`star_arrays`."""
    if names is None:
        names = ("F",) + tuple(f"D{i}" for i in range(n_dims))
    fact = names[0]
    predicates = " AND ".join(
        f"{fact}.d{i} = {names[i + 1]}.d{i}" for i in range(n_dims)
    )
    selected = ", ".join(
        [f"{fact}.measure"] + [f"{names[i + 1]}.p{i}" for i in range(n_dims)]
    )
    return f"SELECT {selected} FROM {', '.join(names)} WHERE {predicates}"
