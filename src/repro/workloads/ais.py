"""Synthetic AIS ship-track data (Section 6.3 substitute).

The paper's second real dataset is 110 GB of NOAA AIS location broadcasts
covering one year of marine traffic in US coastal waters. Its defining
property is severe, *beneficial* skew: vessels cluster around major ports
and shipping lanes, so nearly 85 % of the data sits in just 5 % of the
4°×4° chunks. Attributes are the ship identifier, course, speed, and
rate of turn.

This generator reproduces that skew statistic with a port-hotspot
mixture: a simulated coastline of chunks, of which a handful are ports
holding the lion's share of broadcasts (Zipf-distributed among ports),
with the remainder spread thinly along the rest of the coast.
"""

from __future__ import annotations

import numpy as np

from repro.adm.array import LocalArray
from repro.adm.cells import CellSet
from repro.adm.parser import parse_schema
from repro.workloads.modis import CHUNK_DEG, LAT_CHUNKS, LON_CHUNKS
from repro.workloads.synthetic import zipf_weights


def _coastline(rng: np.random.Generator, n_chunks: int) -> np.ndarray:
    """Spatial chunk ids forming a meandering simulated coastline."""
    path = []
    lon = int(rng.integers(0, LON_CHUNKS))
    lat = int(rng.integers(LAT_CHUNKS // 4, 3 * LAT_CHUNKS // 4))
    for _ in range(n_chunks):
        path.append(lon * LAT_CHUNKS + lat)
        lon = (lon + 1) % LON_CHUNKS
        lat = int(np.clip(lat + rng.integers(-1, 2), 0, LAT_CHUNKS - 1))
    return np.unique(np.array(path, dtype=np.int64))


def ais_tracks(
    name: str = "Broadcast",
    cells: int = 200_000,
    days: int = 365,
    coast_chunks: int = 400,
    port_fraction: float = 0.05,
    port_share: float = 0.85,
    port_alpha: float = 1.0,
    seed: int = 0,
) -> LocalArray:
    """One year of simulated AIS broadcasts as a (time, lon, lat) array.

    ``port_fraction`` of the coastal chunks are ports that together hold
    ``port_share`` of all cells (the paper's 5 % / 85 % statistic), with a
    Zipf(``port_alpha``) split among the ports themselves — New York gets
    more traffic than Anchorage.
    """
    rng = np.random.default_rng(seed)
    coast = _coastline(rng, coast_chunks)
    n_ports = max(1, int(round(port_fraction * len(coast))))
    port_ids = rng.choice(coast, size=n_ports, replace=False)
    other_ids = np.setdiff1d(coast, port_ids)

    n_spatial = LON_CHUNKS * LAT_CHUNKS
    weights = np.zeros(n_spatial, dtype=np.float64)
    weights[port_ids] = zipf_weights(n_ports, port_alpha, rng) * port_share
    weights[other_ids] = (1.0 - port_share) / max(len(other_ids), 1)

    counts = rng.multinomial(cells, weights)

    # Broadcasts collide in (time, position) space in the real data too
    # (SciDB dedupes them with a synthetic dimension), so cells are drawn
    # with replacement and hot port chunks are not capacity-capped.
    parts = []
    chunk_capacity = days * CHUNK_DEG * CHUNK_DEG
    for spatial_id in np.flatnonzero(counts):
        count = int(counts[spatial_id])
        lon_chunk, lat_chunk = divmod(int(spatial_id), LAT_CHUNKS)
        flat = rng.choice(chunk_capacity, size=count, replace=True)
        time = 1 + flat // (CHUNK_DEG * CHUNK_DEG)
        rest = flat % (CHUNK_DEG * CHUNK_DEG)
        lon = 1 + lon_chunk * CHUNK_DEG + rest // CHUNK_DEG
        lat = 1 + lat_chunk * CHUNK_DEG + rest % CHUNK_DEG
        parts.append(np.column_stack([time, lon, lat]))
    coords = (
        np.concatenate(parts).astype(np.int64)
        if parts
        else np.empty((0, 3), dtype=np.int64)
    )

    n = len(coords)
    cells_set = CellSet(
        coords,
        {
            "ship_id": rng.integers(10_000, 99_999, n),
            "course": rng.uniform(0.0, 360.0, n),
            "speed": rng.gamma(2.0, 4.0, n),
            "rate_of_turn": rng.normal(0.0, 5.0, n),
        },
    )
    schema = parse_schema(
        f"{name}<ship_id:int64, course:float64, speed:float64, "
        f"rate_of_turn:float64>"
        f"[time=1,{days},{days}, lon=1,360,{CHUNK_DEG}, lat=1,180,{CHUNK_DEG}]"
    )
    return LocalArray.from_cells(schema, cells_set)
