"""Skew-aware shuffle join optimization for array databases.

A from-scratch reproduction of "Skew-Aware Join Optimization for Array
Databases" (Duggan, Papaemmanouil, Battle, Stonebraker — SIGMOD 2015):
the SciDB-style Array Data Model, a shared-nothing cluster simulator, the
AQL/AFL query layer, the logical dynamic-programming join planner
(Algorithm 1), the analytical physical cost model (Equations 4-8), five
physical planners (Baseline, MBH, Tabu, ILP, Coarse ILP), and the
shuffle execution engine with the greedy write-lock transfer schedule.

Quickstart::

    import numpy as np
    from repro import CellSet, Cluster, ShuffleJoinExecutor

    cluster = Cluster(n_nodes=4)
    coords = np.array([[1, 1], [2, 3], [5, 6]])
    cluster.create_array(
        "A<v:int64>[i=1,8,4, j=1,8,4]",
        CellSet(coords, {"v": np.array([10, 20, 30])}),
    )
    cluster.create_array(
        "B<w:int64>[i=1,8,4, j=1,8,4]",
        CellSet(coords, {"w": np.array([1, 2, 3])}),
    )
    executor = ShuffleJoinExecutor(cluster)
    result = executor.execute(
        "SELECT A.v, B.w FROM A JOIN B WHERE A.i = B.i AND A.j = B.j",
        planner="tabu",
    )
    print(result.report.describe())
"""

from repro.adm import (
    ArraySchema,
    Attribute,
    CellSet,
    Chunk,
    Dimension,
    LocalArray,
    parse_schema,
)
from repro.cluster import Cluster, NetworkParams
from repro.core import (
    AnalyticalCostModel,
    CostParams,
    LogicalPlan,
    LogicalPlanner,
    PLANNER_NAMES,
    SliceStats,
    get_planner,
    infer_join_schema,
)
from repro.engine import (
    ExecutionReport,
    ExplainReport,
    redimension,
    JoinResult,
    PreparedJoin,
    ShuffleJoinExecutor,
    SimulationParams,
)
from repro.errors import (
    CatalogError,
    ExecutionError,
    ParseError,
    PlanningError,
    ReproError,
    SchemaError,
    SolverError,
)
from repro.query import parse_aql
from repro.session import Session

__version__ = "1.0.0"

__all__ = [
    "AnalyticalCostModel",
    "ArraySchema",
    "Attribute",
    "CatalogError",
    "CellSet",
    "Chunk",
    "Cluster",
    "CostParams",
    "Dimension",
    "ExecutionError",
    "ExecutionReport",
    "ExplainReport",
    "JoinResult",
    "LocalArray",
    "LogicalPlan",
    "LogicalPlanner",
    "NetworkParams",
    "PLANNER_NAMES",
    "ParseError",
    "PlanningError",
    "PreparedJoin",
    "ReproError",
    "SchemaError",
    "Session",
    "ShuffleJoinExecutor",
    "SimulationParams",
    "SliceStats",
    "SolverError",
    "get_planner",
    "infer_join_schema",
    "parse_aql",
    "redimension",
    "parse_schema",
]
