"""A time-budgeted branch-and-bound mixed-integer linear program solver.

Solves::

    minimize    c · x
    subject to  A_ub x ≤ b_ub
                A_eq x = b_eq
                lb ≤ x ≤ ub
                x_i integral for i in `integrality`

by depth-first branch and bound over LP relaxations (scipy HiGHS). The
solver is *anytime*: it keeps the best integral incumbent found and
returns it when the time budget expires, reporting whether optimality was
proven. Callers can supply a ``rounding_hook`` that converts a fractional
LP solution into a feasible integral one — for assignment-structured
problems this produces good incumbents immediately, mirroring how MIP
solvers' primal heuristics behave.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from repro.errors import SolverError


class SolveStatus(enum.Enum):
    OPTIMAL = "optimal"
    FEASIBLE = "feasible"  # budget expired with an incumbent in hand
    INFEASIBLE = "infeasible"
    NO_SOLUTION = "no_solution"  # budget expired before any incumbent


@dataclass
class MilpProblem:
    """One MILP instance in inequality standard form."""

    c: np.ndarray
    a_ub: sparse.spmatrix | None = None
    b_ub: np.ndarray | None = None
    a_eq: sparse.spmatrix | None = None
    b_eq: np.ndarray | None = None
    lb: np.ndarray | None = None
    ub: np.ndarray | None = None
    #: indices of variables required to be integral
    integrality: np.ndarray = field(default_factory=lambda: np.array([], dtype=int))

    @property
    def n_vars(self) -> int:
        return len(self.c)

    def bounds(self) -> list[tuple[float, float]]:
        lb = self.lb if self.lb is not None else np.zeros(self.n_vars)
        ub = self.ub if self.ub is not None else np.full(self.n_vars, np.inf)
        return list(zip(lb, ub))

    def check_feasible(self, x: np.ndarray, tol: float = 1e-6) -> bool:
        """Verify a candidate against all constraints and integrality."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.n_vars,):
            return False
        if self.a_ub is not None and (self.a_ub @ x > self.b_ub + tol).any():
            return False
        if self.a_eq is not None and (
            np.abs(self.a_eq @ x - self.b_eq) > tol
        ).any():
            return False
        for low, high in [(self.lb, None), (None, self.ub)]:
            if low is not None and (x < low - tol).any():
                return False
            if high is not None and (x > high + tol).any():
                return False
        frac = np.abs(x[self.integrality] - np.round(x[self.integrality]))
        return bool((frac <= tol).all())


@dataclass
class MilpResult:
    """Outcome of one solve: incumbent, bound, and bookkeeping."""

    status: SolveStatus
    x: np.ndarray | None
    objective: float
    lower_bound: float
    nodes_explored: int
    elapsed_s: float

    @property
    def gap(self) -> float:
        """Relative optimality gap of the incumbent (inf when unbounded)."""
        if self.x is None or not np.isfinite(self.lower_bound):
            return float("inf")
        denom = max(abs(self.objective), 1e-12)
        return (self.objective - self.lower_bound) / denom


@dataclass
class _BnbNode:
    """One branch-and-bound subproblem: extra variable bound tightenings."""

    fixed_lb: dict[int, float]
    fixed_ub: dict[int, float]
    parent_bound: float


class BranchAndBoundSolver:
    """Depth-first branch and bound with best-bound node preference."""

    def __init__(
        self,
        time_budget_s: float = 5.0,
        integrality_tol: float = 1e-6,
        gap_tol: float = 1e-6,
        rounding_hook: Callable[[np.ndarray], np.ndarray | None] | None = None,
    ):
        if time_budget_s <= 0:
            raise SolverError(f"time budget must be positive, got {time_budget_s}")
        self.time_budget_s = time_budget_s
        self.integrality_tol = integrality_tol
        self.gap_tol = gap_tol
        self.rounding_hook = rounding_hook

    def solve(self, problem: MilpProblem) -> MilpResult:
        start = time.monotonic()
        incumbent: np.ndarray | None = None
        incumbent_obj = float("inf")
        root_bound = -float("inf")
        nodes_explored = 0

        stack: list[_BnbNode] = [
            _BnbNode(fixed_lb={}, fixed_ub={}, parent_bound=-float("inf"))
        ]
        base_bounds = problem.bounds()

        while stack:
            if time.monotonic() - start > self.time_budget_s:
                break
            # Prefer the most promising (lowest parent bound) open node.
            best_idx = min(
                range(len(stack)), key=lambda idx: stack[idx].parent_bound
            )
            node = stack.pop(best_idx)
            if node.parent_bound >= incumbent_obj - self.gap_tol:
                continue  # pruned by bound

            relaxation = self._solve_relaxation(problem, base_bounds, node)
            nodes_explored += 1
            if relaxation is None:
                continue  # infeasible subproblem
            bound, x_relaxed = relaxation
            if nodes_explored == 1:
                root_bound = bound
            if bound >= incumbent_obj - self.gap_tol:
                continue

            fractional = self._most_fractional(problem, x_relaxed)
            if fractional is None:
                # Integral LP optimum: a new incumbent.
                if bound < incumbent_obj:
                    incumbent, incumbent_obj = x_relaxed, bound
                continue

            if self.rounding_hook is not None:
                rounded = self.rounding_hook(x_relaxed)
                if rounded is not None and problem.check_feasible(rounded):
                    rounded_obj = float(problem.c @ rounded)
                    if rounded_obj < incumbent_obj:
                        incumbent, incumbent_obj = rounded, rounded_obj

            var, value = fractional
            down = _BnbNode(
                fixed_lb=dict(node.fixed_lb),
                fixed_ub={**node.fixed_ub, var: np.floor(value)},
                parent_bound=bound,
            )
            up = _BnbNode(
                fixed_lb={**node.fixed_lb, var: np.ceil(value)},
                fixed_ub=dict(node.fixed_ub),
                parent_bound=bound,
            )
            stack.extend([down, up])

        elapsed = time.monotonic() - start
        open_bounds = [n.parent_bound for n in stack]
        lower_bound = min(open_bounds) if open_bounds else incumbent_obj
        lower_bound = max(lower_bound, root_bound) if np.isfinite(root_bound) else lower_bound

        if incumbent is None:
            status = (
                SolveStatus.INFEASIBLE
                if not stack and nodes_explored > 0
                else SolveStatus.NO_SOLUTION
            )
            return MilpResult(
                status=status,
                x=None,
                objective=float("inf"),
                lower_bound=lower_bound,
                nodes_explored=nodes_explored,
                elapsed_s=elapsed,
            )
        status = (
            SolveStatus.OPTIMAL
            if not stack or lower_bound >= incumbent_obj - self.gap_tol
            else SolveStatus.FEASIBLE
        )
        return MilpResult(
            status=status,
            x=incumbent,
            objective=incumbent_obj,
            lower_bound=min(lower_bound, incumbent_obj),
            nodes_explored=nodes_explored,
            elapsed_s=elapsed,
        )

    # ------------------------------------------------------------- internals

    def _solve_relaxation(
        self,
        problem: MilpProblem,
        base_bounds: list[tuple[float, float]],
        node: _BnbNode,
    ) -> tuple[float, np.ndarray] | None:
        bounds = list(base_bounds)
        for var, low in node.fixed_lb.items():
            bounds[var] = (max(bounds[var][0], low), bounds[var][1])
        for var, high in node.fixed_ub.items():
            bounds[var] = (bounds[var][0], min(bounds[var][1], high))
        if any(low > high for low, high in bounds):
            return None
        result = linprog(
            problem.c,
            A_ub=problem.a_ub,
            b_ub=problem.b_ub,
            A_eq=problem.a_eq,
            b_eq=problem.b_eq,
            bounds=bounds,
            method="highs",
        )
        if not result.success:
            return None
        return float(result.fun), np.asarray(result.x)

    def _most_fractional(
        self, problem: MilpProblem, x: np.ndarray
    ) -> tuple[int, float] | None:
        """The integer variable farthest from integrality, if any."""
        if len(problem.integrality) == 0:
            return None
        values = x[problem.integrality]
        distance = np.abs(values - np.round(values))
        worst = int(np.argmax(distance))
        if distance[worst] <= self.integrality_tol:
            return None
        return int(problem.integrality[worst]), float(values[worst])
