"""MILP solver substrate.

The paper uses the SCIP constraint-integer-program solver for its ILP
physical planner. This subpackage provides the in-repo replacement: a
time-budgeted branch-and-bound solver over LP relaxations (scipy's HiGHS
backend), with incumbent tracking and an optional rounding hook so the
solver exhibits the same *anytime* behaviour the paper relies on — it
returns the best feasible plan found when the budget expires, and its
solution quality degrades gracefully on flat cost landscapes.
"""

from repro.solver.milp import (
    BranchAndBoundSolver,
    MilpProblem,
    MilpResult,
    SolveStatus,
)

__all__ = [
    "BranchAndBoundSolver",
    "MilpProblem",
    "MilpResult",
    "SolveStatus",
]
