"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``demo`` — a self-contained end-to-end walkthrough on a small cluster;
- ``experiments [ids...]`` — print the paper-figure tables (all by
  default; see ``repro.bench.report.EXPERIMENT_RUNNERS`` for ids);
- ``report --out FILE [ids...]`` — regenerate a markdown results report;
- ``query`` — run ad-hoc statements against a fresh session seeded with
  two demo arrays (reads statements from the arguments);
- ``explain`` — plan a join against the demo session; ``--analyze``
  additionally executes it and prints the per-node predicted-vs-actual
  cost table (Equations 5-8 vs observed);
- ``bench`` — wall-clock serial-vs-parallel benchmark of the join
  engine (see :mod:`repro.bench.wallclock`);
- ``monitor URL`` — snapshot (or ``--watch``) a running
  :class:`repro.serve.server.JoinServer` monitor endpoint: condensed
  ``/statz`` serving stats with rolling-window latency, or the raw
  Prometheus ``/metrics`` exposition with ``--metrics``.

``demo`` and ``query`` accept ``--workers N`` to execute joins on a
worker pool (N > 1) instead of the serial per-unit path, and
``--trace FILE`` to record execution spans as Chrome trace-event JSON
(load the file in Perfetto / ``chrome://tracing``).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.adm.cells import CellSet
from repro.session import Session


def _demo_session(
    n_nodes: int = 4, seed: int = 0, n_workers: int | None = None
) -> Session:
    """A session pre-loaded with two joinable demo arrays A and B."""
    rng = np.random.default_rng(seed)
    session = Session(n_nodes=n_nodes, n_workers=n_workers)
    for name in ("A", "B"):
        coords = np.unique(rng.integers(1, 65, size=(2500, 2)), axis=0)
        session.create_and_load(
            f"{name}<v:int64, w:float64>[i=1,64,8, j=1,64,8]",
            CellSet(
                coords,
                {
                    "v": rng.integers(0, 50, len(coords)),
                    "w": rng.uniform(0, 1, len(coords)),
                },
            ),
        )
    return session


def cmd_demo(args: argparse.Namespace) -> int:
    session = _demo_session(n_nodes=args.nodes, n_workers=args.workers)
    query = "SELECT A.v, B.v FROM A JOIN B ON A.i = B.i AND A.j = B.j"
    print("arrays:", ", ".join(session.arrays()))
    print()
    print(session.explain(query, planner="tabu").describe())
    print()
    result = session.execute(query, planner="tabu", trace=args.trace)
    print(result.report.describe())
    print(f"output: {result.array.n_cells} joined cells")
    if args.trace:
        print(f"trace: {len(result.trace)} spans -> {args.trace}")
    return 0


def cmd_experiments(args: argparse.Namespace) -> int:
    from repro.bench.report import EXPERIMENT_RUNNERS

    names = args.ids or list(EXPERIMENT_RUNNERS)
    for name in names:
        if name not in EXPERIMENT_RUNNERS:
            print(f"unknown experiment {name!r}; choose from "
                  f"{sorted(EXPERIMENT_RUNNERS)}", file=sys.stderr)
            return 2
        runner, kwargs = EXPERIMENT_RUNNERS[name]
        result = runner(**kwargs)
        print(result.table())
        if result.summary:
            print("summary:", result.summary)
        print()
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.bench.report import generate_report

    report = generate_report(args.ids or None, stream=sys.stderr)
    if args.out == "-":
        print(report)
    else:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(report)
        print(f"wrote {args.out}", file=sys.stderr)
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    from repro.query.aql import JoinQuery, MultiJoinQuery
    from repro.query.ddl import parse_statement

    session = _demo_session(n_nodes=args.nodes, n_workers=args.workers)
    for statement in args.statements:
        print(f">>> {statement}")
        # --planner applies to join statements only; Session rejects
        # options on statements that cannot honour them.
        is_join = isinstance(
            parse_statement(statement), (JoinQuery, MultiJoinQuery)
        )
        options = {"planner": args.planner} if is_join else {}
        if is_join and args.trace:
            options["trace"] = args.trace
        result = session.execute(statement, **options)
        if result is None:
            print("ok")
        elif hasattr(result, "report"):
            print(result.report.describe())
            print(f"output cells: {result.array.n_cells}")
            if getattr(result, "trace", None) is not None:
                print(f"trace: {len(result.trace)} spans -> {args.trace}")
        elif hasattr(result, "n_cells"):
            print(f"{result.n_cells} cells")
        else:
            print(result)
        print()
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    session = _demo_session(n_nodes=args.nodes, n_workers=args.workers)
    if args.analyze:
        report = session.explain_analyze(
            args.statement, planner=args.planner, trace=args.trace or None
        )
        print(report.describe())
        if args.trace:
            print(f"trace: {len(report.result.trace)} spans -> {args.trace}")
    else:
        print(session.explain(args.statement, planner=args.planner).describe())
    return 0


def cmd_monitor(args: argparse.Namespace) -> int:
    """Watch (or snapshot) a running JoinServer's monitor endpoint."""
    import time

    from repro.serve.monitor import scrape, scrape_statz

    def show_once() -> None:
        if args.metrics:
            sys.stdout.write(scrape(args.url))
            return
        statz = scrape_statz(args.url)
        window = statz.get("window", {})
        print(
            f"in_flight={statz.get('in_flight', 0)} "
            f"queued={statz.get('queued', 0)} "
            f"running={statz.get('running', 0)} | "
            f"admitted={statz.get('admitted', 0)} "
            f"completed={statz.get('completed', 0)} "
            f"failed={statz.get('failed', 0)} "
            f"shed={statz.get('shed', 0)} "
            f"coalesced={statz.get('coalesced', 0)} | "
            f"window[{window.get('seconds', 0):g}s] "
            f"n={window.get('count', 0)} "
            f"p50={window.get('p50', 0) * 1000:.1f}ms "
            f"p95={window.get('p95', 0) * 1000:.1f}ms "
            f"p99={window.get('p99', 0) * 1000:.1f}ms"
        )
        for tenant, entry in sorted(window.get("tenants", {}).items()):
            print(
                f"  {tenant}: n={entry.get('count', 0)} "
                f"p50={entry.get('p50', 0) * 1000:.1f}ms "
                f"p99={entry.get('p99', 0) * 1000:.1f}ms"
            )

    remaining = args.count if args.count > 0 else (1 if not args.watch else 0)
    while True:
        show_once()
        if remaining:
            remaining -= 1
            if not remaining:
                return 0
        time.sleep(args.watch)


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench.wallclock import main as wallclock_main

    forwarded: list[str] = []
    for workload in args.workload or []:
        forwarded += ["--workload", workload]
    forwarded += [
        "--planner", args.planner,
        "--workers", str(args.workers),
        "--cells", str(args.cells),
        "--nodes", str(args.nodes),
        "--alpha", str(args.alpha),
        "--repeats", str(args.repeats),
        "--seed", str(args.seed),
        "--stress-units", str(args.stress_units),
        "--stress-nodes", str(args.stress_nodes),
        "--stress-alpha", str(args.stress_alpha),
        "--serving-repeats", str(args.serving_repeats),
        "--serving-planner", args.serving_planner,
        "--cache-capacity", str(args.cache_capacity),
        "--multicore-planner", args.multicore_planner,
        "--skew-workers", str(args.skew_workers),
        "--load-requests", str(args.load_requests),
        "--load-tenants", str(args.load_tenants),
        "--load-tenant-alpha", str(args.load_tenant_alpha),
        "--load-statement-alpha", str(args.load_statement_alpha),
        "--load-inflight", str(args.load_inflight),
        "--load-queue-depth", str(args.load_queue_depth),
        "--load-open-rate", str(args.load_open_rate),
        "--load-open-requests", str(args.load_open_requests),
        "--multiway-workers", str(args.multiway_workers),
        "--multiway-cells", str(args.multiway_cells),
        "--multiway-planner", args.multiway_planner,
    ]
    forwarded += ["--multiway-shapes"] + list(args.multiway_shapes)
    forwarded += ["--multiway-arrays"] + [
        str(count) for count in args.multiway_arrays
    ]
    forwarded += ["--multiway-alphas"] + [
        str(alpha) for alpha in args.multiway_alphas
    ]
    forwarded += ["--load-clients"] + [
        str(count) for count in args.load_clients
    ]
    forwarded += ["--multicore-workers"] + [
        str(count) for count in args.multicore_workers
    ]
    forwarded += ["--skew-alphas"] + [
        str(alpha) for alpha in args.skew_alphas
    ]
    if args.out:
        forwarded += ["--out", args.out]
    if args.trace_dir:
        forwarded += ["--trace-dir", args.trace_dir]
    if args.skip_exec:
        forwarded.append("--skip-exec")
    if args.prepare:
        forwarded.append("--prepare")
    if args.stress:
        forwarded.append("--stress")
    if args.keys:
        forwarded.append("--keys")
    if args.serving:
        forwarded.append("--serving")
    if args.multicore:
        forwarded.append("--multicore")
    if args.skew:
        forwarded.append("--skew")
    if args.serving_load:
        forwarded.append("--serving-load")
    if args.load_no_coalesce:
        forwarded.append("--load-no-coalesce")
    if args.multiway:
        forwarded.append("--multiway")
    if args.telemetry:
        forwarded.append("--telemetry")
    forwarded += [
        "--telemetry-clients", str(args.telemetry_clients),
        "--telemetry-requests", str(args.telemetry_requests),
        "--telemetry-repeats", str(args.telemetry_repeats),
        "--telemetry-sample", str(args.telemetry_sample),
    ]
    if args.telemetry_dir:
        forwarded += ["--telemetry-dir", args.telemetry_dir]
    return wallclock_main(forwarded)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Skew-aware shuffle join framework (SIGMOD 2015 repro)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="end-to-end walkthrough")
    demo.add_argument("--nodes", type=int, default=4)
    demo.add_argument(
        "--workers", type=int, default=None,
        help="worker-pool size for join execution (>1 enables batching)",
    )
    demo.add_argument(
        "--trace", default=None, metavar="FILE",
        help="write the join's execution spans as Chrome trace JSON",
    )
    demo.set_defaults(func=cmd_demo)

    experiments = sub.add_parser(
        "experiments", help="print paper-figure tables"
    )
    experiments.add_argument("ids", nargs="*")
    experiments.set_defaults(func=cmd_experiments)

    report = sub.add_parser("report", help="write a markdown results report")
    report.add_argument("--out", default="-")
    report.add_argument("ids", nargs="*")
    report.set_defaults(func=cmd_report)

    query = sub.add_parser(
        "query", help="run statements against a demo session"
    )
    query.add_argument("statements", nargs="+")
    query.add_argument("--nodes", type=int, default=4)
    query.add_argument("--planner", default="tabu")
    query.add_argument(
        "--workers", type=int, default=None,
        help="worker-pool size for join execution (>1 enables batching)",
    )
    query.add_argument(
        "--trace", default=None, metavar="FILE",
        help="write each join's execution spans as Chrome trace JSON",
    )
    query.set_defaults(func=cmd_query)

    explain = sub.add_parser(
        "explain", help="plan (and with --analyze, profile) a join query"
    )
    explain.add_argument("statement")
    explain.add_argument("--nodes", type=int, default=4)
    explain.add_argument("--planner", default="tabu")
    explain.add_argument(
        "--workers", type=int, default=None,
        help="worker-pool size when --analyze executes the join",
    )
    explain.add_argument(
        "--analyze", action="store_true",
        help="execute the query and print per-node predicted-vs-actual "
        "costs (Eqs 5-8) with skew statistics",
    )
    explain.add_argument(
        "--trace", default=None, metavar="FILE",
        help="with --analyze: also write the Chrome trace JSON",
    )
    explain.set_defaults(func=cmd_explain)

    bench = sub.add_parser(
        "bench", help="wall-clock serial-vs-parallel join benchmark"
    )
    bench.add_argument(
        "--workload", action="append", default=None,
        help="workload to run, repeatable (default: both skew workloads)",
    )
    bench.add_argument("--planner", default="baseline")
    bench.add_argument("--workers", type=int, default=4)
    bench.add_argument("--cells", type=int, default=150_000)
    bench.add_argument("--nodes", type=int, default=12)
    bench.add_argument("--alpha", type=float, default=1.0)
    bench.add_argument("--repeats", type=int, default=5)
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument("--out", default=None, help="write JSON here")
    bench.add_argument(
        "--trace-dir", default=None, metavar="DIR",
        help="also run each workload traced: write Chrome trace JSON per "
        "workload into DIR and record the instrumentation overhead",
    )
    bench.add_argument(
        "--skip-exec", action="store_true",
        help="skip the serial-vs-parallel execution comparison",
    )
    bench.add_argument(
        "--prepare", action="store_true",
        help="also time the prepare pipeline, vectorized vs reference",
    )
    bench.add_argument(
        "--stress", action="store_true",
        help="also race vectorized vs reference Tabu on a large instance",
    )
    bench.add_argument("--stress-units", type=int, default=8192)
    bench.add_argument("--stress-nodes", type=int, default=16)
    bench.add_argument("--stress-alpha", type=float, default=1.1)
    bench.add_argument(
        "--keys", action="store_true",
        help="compare packed vs structured composite keys per workload",
    )
    bench.add_argument(
        "--serving", action="store_true",
        help="repeated-query serving mode: cold vs warm (plan-cached) latency",
    )
    bench.add_argument("--serving-repeats", type=int, default=15)
    bench.add_argument("--serving-planner", default="tabu")
    bench.add_argument("--cache-capacity", type=int, default=32)
    bench.add_argument(
        "--multicore", action="store_true",
        help="sweep worker counts x parallel modes x kernels per workload "
        "(thread pool vs shared-memory process workers)",
    )
    bench.add_argument(
        "--multicore-workers", type=int, nargs="+", default=[1, 2, 4, 8],
    )
    bench.add_argument("--multicore-planner", default="tabu")
    bench.add_argument(
        "--skew", action="store_true",
        help="alpha sweep x split_units modes (off/static/adaptive) on the "
        "shared-memory process path",
    )
    bench.add_argument(
        "--skew-alphas", type=float, nargs="+", default=[0.5, 1.0, 1.5, 2.0],
    )
    bench.add_argument("--skew-workers", type=int, default=8)
    bench.add_argument(
        "--serving-load", action="store_true",
        help="concurrent serving-load harness: closed-loop client sweep "
        "plus a fixed-rate open-loop run through a JoinServer",
    )
    bench.add_argument(
        "--load-clients", type=int, nargs="+", default=[1, 2, 4, 8],
        help="closed-loop client counts for the --serving-load sweep",
    )
    bench.add_argument("--load-requests", type=int, default=25)
    bench.add_argument("--load-tenants", type=int, default=4)
    bench.add_argument("--load-tenant-alpha", type=float, default=1.2)
    bench.add_argument("--load-statement-alpha", type=float, default=2.5)
    bench.add_argument(
        "--load-inflight", type=int, default=0,
        help="JoinServer max_in_flight (0 = auto from cpu count)",
    )
    bench.add_argument("--load-queue-depth", type=int, default=8)
    bench.add_argument("--load-no-coalesce", action="store_true")
    bench.add_argument(
        "--load-open-rate", type=float, default=0.0,
        help="open-loop arrival rate in q/s (0 = 1.5x best closed-loop q/s)",
    )
    bench.add_argument(
        "--load-open-requests", type=int, default=40,
        help="open-loop request count (0 skips the open-loop run)",
    )
    bench.add_argument(
        "--multiway", action="store_true",
        help="N-way pipeline mode: parallel stages vs serial and warm "
        "(pipeline-cached) vs cold, per shape x stage count x alpha",
    )
    bench.add_argument(
        "--multiway-shapes", choices=("chain", "star"), nargs="+",
        default=["chain"],
    )
    bench.add_argument("--multiway-arrays", type=int, nargs="+", default=[4])
    bench.add_argument(
        "--multiway-alphas", type=float, nargs="+", default=[0.0, 1.0],
    )
    bench.add_argument("--multiway-workers", type=int, default=4)
    bench.add_argument("--multiway-cells", type=int, default=4_000)
    bench.add_argument("--multiway-planner", default="tabu")
    bench.add_argument(
        "--telemetry", action="store_true",
        help="telemetry-overhead mode: warm serving throughput bare vs "
        "fully instrumented (monitor + query log + sampled tracing)",
    )
    bench.add_argument("--telemetry-clients", type=int, default=4)
    bench.add_argument("--telemetry-requests", type=int, default=25)
    bench.add_argument("--telemetry-repeats", type=int, default=3)
    bench.add_argument("--telemetry-sample", type=int, default=100)
    bench.add_argument(
        "--telemetry-dir", default=None, metavar="DIR",
        help="write the --telemetry query log and scraped exposition here",
    )
    bench.set_defaults(func=cmd_bench)

    monitor = sub.add_parser(
        "monitor",
        help="watch a running JoinServer's /statz (or dump /metrics)",
    )
    monitor.add_argument(
        "url", help="monitor base URL, e.g. http://127.0.0.1:9464"
    )
    monitor.add_argument(
        "--watch", type=float, default=0.0, metavar="SECONDS",
        help="refresh every SECONDS (default: one snapshot and exit)",
    )
    monitor.add_argument(
        "--count", type=int, default=0, metavar="N",
        help="stop after N snapshots (default: 1, or unbounded with --watch)",
    )
    monitor.add_argument(
        "--metrics", action="store_true",
        help="print the raw Prometheus /metrics exposition instead",
    )
    monitor.set_defaults(func=cmd_monitor)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
