"""The centralised system catalog.

The coordinator node hosts shared state describing the cluster: array
schemas and the chunk-to-node placement of every stored array
(Section 2.1). Planners consult the catalog for slice statistics; the
executor updates it when shuffles move data.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.adm.schema import ArraySchema
from repro.adm.stats import Histogram
from repro.errors import CatalogError


@dataclass
class ArrayStatistics:
    """ANALYZE output cached in the catalog.

    ``version`` records the entry's data version at analysis time;
    statistics are stale (and recomputed on demand) once loads bump it.
    """

    version: int
    cell_count: int
    histograms: dict[str, Histogram] = field(default_factory=dict)
    top_share: float = 0.0
    max_chunk_cells: int = 0


@dataclass
class ArrayEntry:
    """Catalog record for one distributed array."""

    schema: ArraySchema
    #: chunk_id -> node_id of the node storing that chunk. A chunk lives on
    #: exactly one node in the base storage layout; join-time slices are a
    #: temporary reorganisation and are not recorded here.
    chunk_locations: dict[int, int] = field(default_factory=dict)
    #: bumped on every data load; invalidates cached statistics and, via
    #: the plan fingerprint, cached query plans
    version: int = 0
    #: catalog-unique incarnation id, fresh per CREATE — so dropping and
    #: recreating an array under the same name can never alias the old
    #: incarnation's (name, version) in a plan fingerprint
    uid: int = 0
    statistics: ArrayStatistics | None = None

    @property
    def n_chunks(self) -> int:
        return len(self.chunk_locations)

    def nodes_used(self) -> set[int]:
        return set(self.chunk_locations.values())

    def bump_version(self) -> None:
        self.version += 1

    @property
    def statistics_fresh(self) -> bool:
        return (
            self.statistics is not None
            and self.statistics.version == self.version
        )


class SystemCatalog:
    """Schema and placement registry shared by all nodes."""

    def __init__(self) -> None:
        self._arrays: dict[str, ArrayEntry] = {}
        self._uid_clock = 0

    def register(self, schema: ArraySchema) -> ArrayEntry:
        if schema.name in self._arrays:
            raise CatalogError(f"array {schema.name!r} already exists")
        self._uid_clock += 1
        entry = ArrayEntry(schema=schema, uid=self._uid_clock)
        self._arrays[schema.name] = entry
        return entry

    def drop(self, name: str) -> None:
        if name not in self._arrays:
            raise CatalogError(f"array {name!r} does not exist")
        del self._arrays[name]

    def entry(self, name: str) -> ArrayEntry:
        try:
            return self._arrays[name]
        except KeyError:
            raise CatalogError(f"array {name!r} does not exist") from None

    def schema(self, name: str) -> ArraySchema:
        return self.entry(name).schema

    def exists(self, name: str) -> bool:
        return name in self._arrays

    def array_names(self) -> list[str]:
        return sorted(self._arrays)

    def version_token(self, name: str) -> tuple[int, int]:
        """One array's (incarnation uid, data version) pair.

        The pair changes whenever the array's contents could have: loads,
        rebalances, and restores bump ``version``; DROP + CREATE starts a
        new incarnation with a fresh ``uid``. Plan fingerprints embed it.
        """
        entry = self.entry(name)
        return (entry.uid, entry.version)

    def record_chunk(self, array_name: str, chunk_id: int, node_id: int) -> None:
        self.entry(array_name).chunk_locations[chunk_id] = node_id

    def chunk_location(self, array_name: str, chunk_id: int) -> int:
        locations = self.entry(array_name).chunk_locations
        try:
            return locations[chunk_id]
        except KeyError:
            raise CatalogError(
                f"array {array_name!r} has no stored chunk {chunk_id}"
            ) from None
