"""A single database instance with its local data partition."""

from __future__ import annotations

from repro.adm.array import LocalArray
from repro.adm.chunk import Chunk
from repro.adm.schema import ArraySchema
from repro.errors import CatalogError


class Node:
    """One cluster node: an id plus per-array local chunk stores."""

    def __init__(self, node_id: int):
        self.node_id = node_id
        self._stores: dict[str, LocalArray] = {}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Node({self.node_id}, arrays={sorted(self._stores)})"

    # --------------------------------------------------------------- storage

    def create_store(self, schema: ArraySchema) -> LocalArray:
        """Create (or reset) the local partition for an array."""
        store = LocalArray.empty(schema)
        self._stores[schema.name] = store
        return store

    def has_array(self, name: str) -> bool:
        return name in self._stores

    def store(self, name: str) -> LocalArray:
        try:
            return self._stores[name]
        except KeyError:
            raise CatalogError(
                f"node {self.node_id} holds no partition of array {name!r}"
            ) from None

    def put_chunk(self, array_name: str, chunk: Chunk) -> None:
        self.store(array_name).put_chunk(chunk)

    def drop_array(self, name: str) -> None:
        self._stores.pop(name, None)

    # ------------------------------------------------------------ statistics

    def local_cell_count(self, array_name: str) -> int:
        """Occupied cells of one array stored on this node."""
        if not self.has_array(array_name):
            return 0
        return self.store(array_name).n_cells

    def local_mutation_count(self, array_name: str) -> int:
        """Storage-level write counter of this node's partition (0 if none)."""
        if not self.has_array(array_name):
            return 0
        return self.store(array_name).mutation_count

    def local_chunk_sizes(self, array_name: str) -> dict[int, int]:
        """Chunk-id → cell-count map for this node's partition."""
        if not self.has_array(array_name):
            return {}
        return self.store(array_name).chunk_sizes()
