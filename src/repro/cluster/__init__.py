"""Shared-nothing cluster simulator.

The paper's execution environment (Section 2.1) is a shared-nothing
cluster: every node hosts a database instance with a local data partition,
a coordinator node manages a centralised system catalog, and all data moves
over a fully switched network. This subpackage simulates that environment
deterministically: chunk placement, the catalog, and a discrete-event model
of the greedy write-lock shuffle schedule of Section 3.4.
"""

from repro.cluster.catalog import ArrayEntry, SystemCatalog
from repro.cluster.cluster import Cluster, ClusterParams
from repro.cluster.network import NetworkParams, ShuffleSchedule, Transfer, schedule_shuffle
from repro.cluster.node import Node

__all__ = [
    "ArrayEntry",
    "Cluster",
    "ClusterParams",
    "NetworkParams",
    "Node",
    "ShuffleSchedule",
    "SystemCatalog",
    "Transfer",
    "schedule_shuffle",
]
