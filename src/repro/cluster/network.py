"""Discrete-event model of the shuffle's network schedule.

Section 3.4: hosts exchange slices over a fully switched network. Each
destination has a coordinator-managed *write lock* so only one node writes
to it at a time; a sender that cannot acquire the lock for the next slice
greedily tries its other queued slices, and polls when it runs out of
startable destinations. A node sends at most one slice at a time, and can
send and receive simultaneously.

This module simulates that protocol exactly, yielding the data-alignment
phase duration plus per-node traffic totals. The simulation is
deterministic: ties break by ascending sender id and queue order.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field


@dataclass(frozen=True)
class NetworkParams:
    """Link characteristics of the switched network.

    ``bandwidth_cells_per_s`` is the per-link throughput expressed in array
    cells (the engine's unit of transfer accounting); ``latency_s`` is the
    fixed per-slice setup cost (connection + lock acquisition round trip).
    """

    bandwidth_cells_per_s: float = 200_000.0
    latency_s: float = 0.00002

    def transfer_time(self, n_cells: int) -> float:
        """Wall time to move one slice of ``n_cells`` over one link."""
        return self.latency_s + n_cells / self.bandwidth_cells_per_s


@dataclass(frozen=True)
class Transfer:
    """One slice movement: ``n_cells`` from node ``src`` to node ``dst``."""

    src: int
    dst: int
    n_cells: int
    tag: object = None

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError("local slice assembly is not a network transfer")
        if self.n_cells < 0:
            raise ValueError(f"negative transfer size {self.n_cells}")


@dataclass(frozen=True)
class TransferEvent:
    """A scheduled transfer with its simulated start and end times."""

    transfer: Transfer
    start: float
    end: float


@dataclass
class ShuffleSchedule:
    """The simulated outcome of one data-alignment phase."""

    total_time: float
    events: list[TransferEvent] = field(default_factory=list)
    cells_sent: dict[int, int] = field(default_factory=dict)
    cells_received: dict[int, int] = field(default_factory=dict)
    #: Memoised derived views (busy times, exportable spans): schedules
    #: are immutable once built and get re-read on every traced or
    #: analyzed execution of a cached alignment.
    _busy_cache: "tuple[dict, dict] | None" = field(
        default=None, repr=False, compare=False
    )
    _span_cache: "list | None" = field(
        default=None, repr=False, compare=False
    )
    _total_cells_cache: "int | None" = field(
        default=None, repr=False, compare=False
    )

    @property
    def n_transfers(self) -> int:
        return len(self.events)

    @property
    def total_cells_moved(self) -> int:
        # Memoised like busy_seconds: schedules are immutable once
        # built, re-read at least twice per execution (span attrs and
        # the report), and can hold thousands of events.
        if self._total_cells_cache is None:
            self._total_cells_cache = sum(
                e.transfer.n_cells for e in self.events
            )
        return self._total_cells_cache

    def busy_seconds(self) -> tuple[dict[int, float], dict[int, float]]:
        """Per-node (send, receive) busy time summed over the events.

        Busy time excludes lock waiting by construction — it is the
        quantity Equations 5-6 predict (cells × t), so explain-analyze
        compares it against the model; the schedule's ``total_time``
        additionally contains the waiting the model ignores.
        """
        if self._busy_cache is not None:
            return self._busy_cache
        send_busy: dict[int, float] = {}
        recv_busy: dict[int, float] = {}
        for event in self.events:
            elapsed = event.end - event.start
            src, dst = event.transfer.src, event.transfer.dst
            send_busy[src] = send_busy.get(src, 0.0) + elapsed
            recv_busy[dst] = recv_busy.get(dst, 0.0) + elapsed
        self._busy_cache = (send_busy, recv_busy)
        return self._busy_cache

    def export_spans(self, tracer, offset: float = 0.0) -> int:
        """Emit every transfer event as a span on per-destination lanes.

        The schedule's timestamps are *simulated* seconds starting at 0;
        ``offset`` (typically ``tracer.now()`` when the alignment phase
        ran) re-bases them onto the tracer's wall-clock timeline so the
        network lanes sit alongside the measured spans. One lane per
        destination keeps the write-lock invariant visible: spans on a
        ``net:recv nK`` lane never overlap.

        The span objects are built once per schedule and handed to the
        tracer by reference with a deferred offset
        (:meth:`repro.obs.trace.Tracer.extend_rebased`), so a traced
        execution pays O(1) here rather than one allocation per event —
        the schedules are cached across repeated executions and can hold
        thousands of transfers.
        """
        if not getattr(tracer, "enabled", False) or not self.events:
            return 0
        if self._span_cache is None:
            from repro.obs.trace import Span

            self._span_cache = [
                Span(
                    name=f"xfer n{e.transfer.src}->n{e.transfer.dst}",
                    start=e.start,
                    end=e.end,
                    path=(
                        f"data_alignment/xfer "
                        f"n{e.transfer.src}->n{e.transfer.dst}"
                    ),
                    lane=f"net:recv n{e.transfer.dst}",
                    attrs={
                        "src": e.transfer.src,
                        "dst": e.transfer.dst,
                        "cells": e.transfer.n_cells,
                        "unit": e.transfer.tag,
                        "simulated": True,
                    },
                )
                for e in self.events
            ]
        tracer.extend_rebased(self._span_cache, offset)
        return len(self._span_cache)


#: Shuffle scheduling policies, for the Section-3.4 ablation:
#: - ``greedy_lock`` — the paper's protocol: per-destination write locks
#:   with the greedy skip-and-poll rule;
#: - ``head_of_line`` — write locks but no skipping: a sender waits for
#:   its queue head's destination (head-of-line blocking);
#: - ``uncoordinated`` — no locks: every receiver accepts concurrent
#:   streams which fair-share its ingress link (congestion).
SCHEDULE_POLICIES = ("greedy_lock", "head_of_line", "uncoordinated")


def schedule_shuffle(
    transfers: list[Transfer],
    params: NetworkParams,
    policy: str = "greedy_lock",
) -> ShuffleSchedule:
    """Simulate a data-alignment shuffle under the chosen policy.

    Invariants enforced by construction (and asserted in tests) for the
    lock-based policies:

    - a sender has at most one outgoing transfer in flight;
    - a destination has at most one incoming transfer in flight
      (the write lock);
    - under ``greedy_lock``, transfers from one sender start in an order
      consistent with the greedy skip-and-poll rule.
    """
    if policy == "uncoordinated":
        return _schedule_uncoordinated(transfers, params)
    if policy not in ("greedy_lock", "head_of_line"):
        raise ValueError(
            f"unknown shuffle policy {policy!r}; expected one of "
            f"{SCHEDULE_POLICIES}"
        )
    greedy = policy == "greedy_lock"

    # Each sender's queue, bucketed by destination: the greedy scan picks
    # the earliest-queued slice whose destination lock is free, which only
    # needs the head of each destination bucket — O(destinations) per
    # start instead of O(queued slices). Queue positions preserve the
    # original arrival order so ties and the skip-and-poll rule resolve
    # exactly as the straight queue walk did.
    by_src: dict[int, dict[int, deque[tuple[int, Transfer]]]] = {}
    pending: dict[int, int] = {}
    for position, transfer in enumerate(transfers):
        buckets = by_src.setdefault(transfer.src, {})
        buckets.setdefault(transfer.dst, deque()).append((position, transfer))
        pending[transfer.src] = pending.get(transfer.src, 0) + 1
    senders = sorted(by_src)

    sender_free: dict[int, float] = {src: 0.0 for src in by_src}
    lock_free: dict[int, float] = {}
    events: list[TransferEvent] = []
    cells_sent: dict[int, int] = {}
    cells_received: dict[int, int] = {}

    now = 0.0
    remaining = sum(pending.values())
    #: min-heap of times a sender or a destination lock frees up — the
    #: only instants at which a blocked transfer can become startable.
    wakeups: list[float] = []
    while remaining:
        # Repeat ascending-sender passes at this instant until quiescent.
        # With positive per-slice latency every started transfer ends
        # strictly later than ``now``, so one pass suffices; a re-pass is
        # only needed when a zero-length transfer frees its sender (and
        # destination lock) at the same instant.
        progressed = True
        while progressed and remaining:
            progressed = False
            for src in senders:
                if not pending[src] or sender_free[src] > now:
                    continue
                buckets = by_src[src]
                head = None  # overall queue head: (position, dst)
                best = None  # earliest queued slice with a free lock
                for dst, bucket in buckets.items():
                    if not bucket:
                        continue
                    position = bucket[0][0]
                    if head is None or position < head[0]:
                        head = (position, dst)
                    if lock_free.get(dst, 0.0) <= now and (
                        best is None or position < best[0]
                    ):
                        best = (position, dst)
                if not greedy:
                    # Head-of-line: only the queue head is eligible.
                    best = best if best is not None and best == head else None
                if best is None:
                    continue
                _, dst = best
                _, transfer = buckets[dst].popleft()
                pending[src] -= 1
                end = now + params.transfer_time(transfer.n_cells)
                sender_free[src] = end
                lock_free[dst] = end
                heapq.heappush(wakeups, end)
                events.append(TransferEvent(transfer, start=now, end=end))
                cells_sent[src] = cells_sent.get(src, 0) + transfer.n_cells
                cells_received[dst] = (
                    cells_received.get(dst, 0) + transfer.n_cells
                )
                remaining -= 1
                if end <= now:
                    progressed = True
        if remaining:
            # Every ready sender is blocked on write locks (or busy):
            # advance to the next moment a sender or a lock frees up.
            while wakeups and wakeups[0] <= now:
                heapq.heappop(wakeups)
            if not wakeups:  # pragma: no cover - defensive
                raise RuntimeError("shuffle schedule deadlocked")
            now = heapq.heappop(wakeups)

    total = max((e.end for e in events), default=0.0)
    return ShuffleSchedule(
        total_time=total,
        events=events,
        cells_sent=cells_sent,
        cells_received=cells_received,
    )


def _schedule_uncoordinated(
    transfers: list[Transfer],
    params: NetworkParams,
) -> ShuffleSchedule:
    """Fluid simulation of lock-free shuffling.

    Senders still serialise their own outgoing slices (one NIC), but
    receivers accept every incoming stream at once; concurrent streams
    into one receiver fair-share its ingress bandwidth. Transfer rates
    are piecewise constant between events, recomputed whenever a
    transfer completes — the congestion picture the write lock exists to
    avoid (Section 3.4).
    """
    queues: dict[int, deque[Transfer]] = {}
    for transfer in transfers:
        queues.setdefault(transfer.src, deque()).append(transfer)

    active: list[list] = []  # [transfer, remaining_cells, start]
    events: list[TransferEvent] = []
    cells_sent: dict[int, int] = {}
    cells_received: dict[int, int] = {}
    now = 0.0

    def launch_ready() -> None:
        for src in sorted(queues):
            queue = queues[src]
            busy = any(entry[0].src == src for entry in active)
            if queue and not busy:
                transfer = queue.popleft()
                active.append(
                    [transfer, float(transfer.n_cells), now + params.latency_s]
                )

    launch_ready()
    while active or any(queues.values()):
        if not active:  # pragma: no cover - defensive
            launch_ready()
            continue
        # Fair-share rates per receiver.
        fan_in: dict[int, int] = {}
        for transfer, _, _ in active:
            fan_in[transfer.dst] = fan_in.get(transfer.dst, 0) + 1
        rates = [
            params.bandwidth_cells_per_s / fan_in[transfer.dst]
            for transfer, _, _ in active
        ]
        # Next completion time (latency counts as zero-rate lead-in).
        completions = []
        for (transfer, remaining, start), rate in zip(active, rates):
            lead_in = max(start - now, 0.0)
            completions.append(lead_in + remaining / rate)
        step = min(completions)
        now += step
        still_active = []
        for index, ((transfer, remaining, start), rate) in enumerate(
            zip(active, rates)
        ):
            lead_in = max(start - (now - step), 0.0)
            effective = max(step - lead_in, 0.0)
            remaining -= effective * rate
            if remaining <= 1e-9:
                events.append(
                    TransferEvent(transfer, start=start, end=now)
                )
                cells_sent[transfer.src] = (
                    cells_sent.get(transfer.src, 0) + transfer.n_cells
                )
                cells_received[transfer.dst] = (
                    cells_received.get(transfer.dst, 0) + transfer.n_cells
                )
            else:
                still_active.append([transfer, remaining, start])
        active[:] = still_active
        launch_ready()

    total = max((e.end for e in events), default=0.0)
    return ShuffleSchedule(
        total_time=total,
        events=events,
        cells_sent=cells_sent,
        cells_received=cells_received,
    )
