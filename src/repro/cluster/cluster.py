"""The cluster facade: nodes, catalog, placement, and data access."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence, Union

import numpy as np

from repro.adm.array import LocalArray
from repro.adm.cells import CellSet
from repro.adm.chunk import build_chunks
from repro.adm.parser import parse_schema
from repro.adm.schema import ArraySchema
from repro.cluster.catalog import ArrayEntry, SystemCatalog
from repro.cluster.network import NetworkParams
from repro.cluster.node import Node
from repro.errors import CatalogError, SchemaError

#: A placement policy maps a sorted list of stored chunk ids to node ids.
PlacementPolicy = Union[str, Mapping[int, int], Callable[[Sequence[int], int], list[int]]]


@dataclass(frozen=True)
class ClusterParams:
    """Cluster-wide configuration."""

    n_nodes: int = 4
    network: NetworkParams = NetworkParams()

    def __post_init__(self) -> None:
        if self.n_nodes <= 0:
            raise ValueError(f"cluster needs at least one node, got {self.n_nodes}")


class Cluster:
    """A simulated shared-nothing array database cluster.

    >>> cluster = Cluster(n_nodes=4)
    >>> arr = cluster.create_array("A<v:int64>[i=1,100,10]", cells)
    """

    def __init__(self, n_nodes: int = 4, network: NetworkParams | None = None):
        self.params = ClusterParams(
            n_nodes=n_nodes, network=network or NetworkParams()
        )
        self.nodes = [Node(node_id) for node_id in range(n_nodes)]
        self.catalog = SystemCatalog()
        #: ephemeral (pipeline-intermediate) arrays: resolved before the
        #: catalog by ``catalog_entry`` but invisible to ``array_names``,
        #: version counters, and plan fingerprints
        self._ephemeral: dict[str, ArrayEntry] = {}

    @property
    def n_nodes(self) -> int:
        return self.params.n_nodes

    @property
    def network(self) -> NetworkParams:
        return self.params.network

    def node(self, node_id: int) -> Node:
        if not 0 <= node_id < self.n_nodes:
            raise CatalogError(f"no node {node_id} in a {self.n_nodes}-node cluster")
        return self.nodes[node_id]

    # -------------------------------------------------------------- creation

    def create_array(
        self,
        schema: ArraySchema | str,
        cells: CellSet,
        placement: PlacementPolicy = "round_robin",
    ) -> ArraySchema:
        """Register an array and scatter its chunks across the cluster.

        ``placement`` selects the base storage layout:

        - ``"round_robin"`` (default, mimicking SciDB's hashed chunk
          distribution): the i-th stored chunk goes to node ``i mod k``;
        - ``"block"``: contiguous runs of chunks per node;
        - a ``{chunk_id: node_id}`` mapping, or a callable
          ``(chunk_ids, n_nodes) -> [node_id, ...]`` for custom layouts.
        """
        if isinstance(schema, str):
            schema = parse_schema(schema)
        local = LocalArray.from_cells(schema, cells)
        return self.load_array(local, placement=placement)

    def load_array(
        self,
        array: LocalArray,
        placement: PlacementPolicy = "round_robin",
    ) -> ArraySchema:
        """Register a pre-chunked array and scatter it across the cluster."""
        schema = array.schema
        self.catalog.register(schema)
        for node in self.nodes:
            node.create_store(schema)
        chunk_ids = sorted(array.chunks)
        if placement == "balanced":
            targets = self._balanced_placement(array, chunk_ids)
        else:
            targets = self._resolve_placement(chunk_ids, placement)
        for chunk_id, node_id in zip(chunk_ids, targets):
            self.nodes[node_id].put_chunk(schema.name, array.chunks[chunk_id])
            self.catalog.record_chunk(schema.name, chunk_id, node_id)
        self.catalog.entry(schema.name).bump_version()
        return schema

    def _balanced_placement(
        self, array: LocalArray, chunk_ids: Sequence[int]
    ) -> list[int]:
        """Greedy size-balanced layout: largest chunk to least-loaded node.

        Models a loader that levels storage across instances; under skew
        this spreads the hot chunks so no node starts the query
        overloaded.
        """
        loads = [0] * self.n_nodes
        targets = {}
        by_size = sorted(
            chunk_ids, key=lambda cid: (-array.chunks[cid].n_cells, cid)
        )
        for chunk_id in by_size:
            node_id = min(range(self.n_nodes), key=lambda j: (loads[j], j))
            targets[chunk_id] = node_id
            loads[node_id] += array.chunks[chunk_id].n_cells
        return [targets[cid] for cid in chunk_ids]

    def _resolve_placement(
        self,
        chunk_ids: Sequence[int],
        placement: PlacementPolicy,
    ) -> list[int]:
        if callable(placement):
            targets = list(placement(chunk_ids, self.n_nodes))
        elif isinstance(placement, Mapping):
            missing = [cid for cid in chunk_ids if cid not in placement]
            if missing:
                raise SchemaError(f"placement mapping misses chunks {missing[:5]}")
            targets = [placement[cid] for cid in chunk_ids]
        elif placement == "round_robin":
            targets = [rank % self.n_nodes for rank in range(len(chunk_ids))]
        elif placement == "block":
            per_node = -(-len(chunk_ids) // self.n_nodes)
            targets = [min(rank // per_node, self.n_nodes - 1) for rank in range(len(chunk_ids))]
        else:
            raise SchemaError(f"unknown placement policy {placement!r}")
        bad = [t for t in targets if not 0 <= t < self.n_nodes]
        if bad:
            raise SchemaError(f"placement produced invalid node ids {bad[:5]}")
        return targets

    def create_empty_array(self, schema: ArraySchema | str) -> ArraySchema:
        """Register an array with no cells (the CREATE ARRAY semantics)."""
        if isinstance(schema, str):
            schema = parse_schema(schema)
        self.catalog.register(schema)
        for node in self.nodes:
            node.create_store(schema)
        return schema

    def insert_cells(
        self,
        name: str,
        cells: CellSet,
        placement: PlacementPolicy = "round_robin",
    ) -> int:
        """Load cells into an existing array.

        Chunks that already have a home receive the new cells there;
        chunks new to the array are placed by ``placement`` (offset by
        the number of chunks already stored, so successive round-robin
        loads keep spreading). Returns the number of cells inserted.
        """
        schema = self.catalog.schema(name)
        from repro.adm.chunk import build_chunks as _build

        chunks = _build(schema, cells)
        entry = self.catalog.entry(name)
        new_ids = sorted(
            cid for cid in chunks if cid not in entry.chunk_locations
        )
        if new_ids:
            offset = entry.n_chunks
            if placement == "round_robin":
                targets = [
                    (offset + rank) % self.n_nodes
                    for rank in range(len(new_ids))
                ]
            else:
                targets = self._resolve_placement(new_ids, placement)
            for chunk_id, node_id in zip(new_ids, targets):
                self.catalog.record_chunk(name, chunk_id, node_id)
        inserted = 0
        for chunk_id, chunk in chunks.items():
            node_id = entry.chunk_locations[chunk_id]
            self.nodes[node_id].put_chunk(name, chunk)
            inserted += chunk.n_cells
        entry.bump_version()
        return inserted

    def drop_array(self, name: str) -> None:
        self.catalog.drop(name)
        for node in self.nodes:
            node.drop_array(name)

    # ------------------------------------------- ephemeral (pipeline) arrays

    def attach_ephemeral(
        self, schema: ArraySchema, node_cells: Sequence[CellSet]
    ) -> ArrayEntry:
        """Attach a pipeline-intermediate array already partitioned per node.

        Ephemeral arrays back materialised multi-join intermediates: each
        node receives its piece as one dimensionless chunk, and the entry
        lives in a side registry rather than the system catalog — so
        attaching/detaching intermediates never mints catalog uids, never
        bumps version counters, and can never invalidate cached plans over
        unrelated arrays. ``node_cells`` must have one CellSet per node
        (empty pieces allowed).
        """
        from repro.adm.chunk import Chunk

        name = schema.name
        if name in self._ephemeral or self.catalog.exists(name):
            raise CatalogError(f"array {name!r} already exists")
        if len(node_cells) != self.n_nodes:
            raise SchemaError(
                f"ephemeral array {name!r} needs one cell piece per node "
                f"({self.n_nodes}), got {len(node_cells)}"
            )
        chunk_locations: dict[int, int] = {}
        for node, piece in zip(self.nodes, node_cells):
            node.create_store(schema)
            if len(piece):
                node.put_chunk(
                    name, Chunk(chunk_id=node.node_id, corner=(), cells=piece)
                )
                chunk_locations[node.node_id] = node.node_id
        entry = ArrayEntry(schema=schema, chunk_locations=chunk_locations)
        self._ephemeral[name] = entry
        return entry

    def detach_ephemeral(self, name: str) -> None:
        """Drop an ephemeral array's entry and node partitions (idempotent)."""
        if self._ephemeral.pop(name, None) is not None:
            for node in self.nodes:
                node.drop_array(name)

    def catalog_entry(self, name: str) -> ArrayEntry:
        """Resolve an array entry: ephemeral registry first, then catalog."""
        entry = self._ephemeral.get(name)
        if entry is not None:
            return entry
        return self.catalog.entry(name)

    # ------------------------------------------------------------ inspection

    def schema(self, name: str) -> ArraySchema:
        return self.catalog_entry(name).schema

    def array_cells(self, name: str) -> CellSet:
        """Gather every cell of an array from all nodes (for tests/results)."""
        schema = self.catalog_entry(name).schema
        parts = [
            node.store(name).cells()
            for node in self.nodes
            if node.has_array(name) and node.store(name).n_cells
        ]
        if not parts:
            return CellSet.empty(
                schema.ndims, {a.name: a.dtype for a in schema.attrs}
            )
        return CellSet.concat(parts)

    def gather_array(self, name: str) -> LocalArray:
        """Materialise a distributed array as a single LocalArray."""
        schema = self.catalog_entry(name).schema
        return LocalArray(schema, build_chunks(schema, self.array_cells(name)))

    def array_cell_count(self, name: str) -> int:
        return sum(node.local_cell_count(name) for node in self.nodes)

    def array_version(self, name: str) -> tuple[int, int]:
        """The catalog's (incarnation uid, data version) for one array."""
        return self.catalog.version_token(name)

    def storage_epoch(self, name: str) -> int:
        """Summed storage-level write counters across all node partitions.

        Complements the catalog version: a write that reaches a node's
        local store without going through the catalog (direct
        ``node.put_chunk`` in tests or tooling) still advances the
        epoch, so plan fingerprints embedding it can never serve a
        cached plan over silently mutated storage.
        """
        return sum(node.local_mutation_count(name) for node in self.nodes)

    def node_cell_counts(self, name: str) -> np.ndarray:
        """Cells of one array per node, as a length-k vector."""
        return np.array(
            [node.local_cell_count(name) for node in self.nodes], dtype=np.int64
        )

    def rebalance(self, name: str) -> "ShuffleSchedule":
        """Re-level one array's storage (largest chunk → least-loaded node).

        Moves chunks, updates the catalog, bumps the data version, and
        returns the simulated transfer schedule — so operators can see
        what the rebalance would cost on the wire.
        """
        from repro.cluster.network import Transfer, schedule_shuffle

        entry = self.catalog.entry(name)
        chunks: dict[int, tuple[int, object]] = {}
        for node in self.nodes:
            if not node.has_array(name):
                continue
            for chunk_id, chunk in node.store(name).chunks.items():
                chunks[chunk_id] = (node.node_id, chunk)

        loads = [0] * self.n_nodes
        targets: dict[int, int] = {}
        for chunk_id in sorted(
            chunks, key=lambda cid: (-chunks[cid][1].n_cells, cid)
        ):
            node_id = min(range(self.n_nodes), key=lambda j: (loads[j], j))
            targets[chunk_id] = node_id
            loads[node_id] += chunks[chunk_id][1].n_cells

        transfers = []
        for chunk_id, (source, chunk) in chunks.items():
            destination = targets[chunk_id]
            if destination == source:
                continue
            transfers.append(
                Transfer(source, destination, chunk.n_cells, tag=chunk_id)
            )
            self.nodes[source].store(name).chunks.pop(chunk_id)
            self.nodes[destination].put_chunk(name, chunk)
            self.catalog.record_chunk(name, chunk_id, destination)
        entry.bump_version()
        return schedule_shuffle(transfers, self.network)

    def validate_integrity(self, name: str) -> list[str]:
        """Cross-check one array's catalog record against node storage.

        Returns a list of human-readable problems (empty = healthy):
        catalog entries pointing at the wrong node, chunks stored without
        a catalog record, cells outside their chunk's rectangle.
        """
        problems: list[str] = []
        entry = self.catalog.entry(name)
        stored: dict[int, int] = {}
        for node in self.nodes:
            if not node.has_array(name):
                continue
            for chunk_id, chunk in node.store(name).chunks.items():
                if chunk_id in stored:
                    problems.append(
                        f"chunk {chunk_id} stored on both node "
                        f"{stored[chunk_id]} and node {node.node_id}"
                    )
                stored[chunk_id] = node.node_id
                try:
                    chunk.validate_against(entry.schema)
                except SchemaError as error:
                    problems.append(str(error))
        for chunk_id, node_id in entry.chunk_locations.items():
            actual = stored.get(chunk_id)
            if actual is None:
                problems.append(
                    f"catalog places chunk {chunk_id} on node {node_id} "
                    f"but no node stores it"
                )
            elif actual != node_id:
                problems.append(
                    f"catalog places chunk {chunk_id} on node {node_id} "
                    f"but node {actual} stores it"
                )
        for chunk_id in stored:
            if chunk_id not in entry.chunk_locations:
                problems.append(
                    f"chunk {chunk_id} stored on node {stored[chunk_id]} "
                    f"without a catalog record"
                )
        return problems

    def analyze(self, name: str) -> "ArrayStatistics":
        """Compute and cache statistics for one array (the ANALYZE verb).

        Histograms are built per node and merged — the distributed
        statistics-collection pattern of Section 4 — and cached in the
        catalog until the next load invalidates them.
        """
        from repro.adm.stats import Histogram
        from repro.cluster.catalog import ArrayStatistics

        entry = self.catalog_entry(name)
        schema = entry.schema
        histograms: dict[str, Histogram] = {}
        for attr in schema.attrs:
            merged: Histogram | None = None
            for node in self.nodes:
                if not node.has_array(name):
                    continue
                cells = node.store(name).cells()
                if not len(cells):
                    continue
                local = Histogram.from_values(cells.column(attr.name))
                merged = local if merged is None else merged.merge(local)
            if merged is not None:
                histograms[attr.name] = merged

        sizes = sorted(
            (
                size
                for node in self.nodes
                for size in node.local_chunk_sizes(name).values()
            ),
            reverse=True,
        )
        total = sum(sizes)
        top_n = max(1, int(round(0.05 * len(sizes)))) if sizes else 0
        stats = ArrayStatistics(
            version=entry.version,
            cell_count=total,
            histograms=histograms,
            top_share=(sum(sizes[:top_n]) / total) if total else 0.0,
            max_chunk_cells=sizes[0] if sizes else 0,
        )
        entry.statistics = stats
        return stats

    def statistics(self, name: str) -> "ArrayStatistics":
        """Fresh statistics for an array, analyzing on demand."""
        entry = self.catalog_entry(name)
        if entry.statistics_fresh:
            return entry.statistics
        return self.analyze(name)

    def chunk_node_matrix(self, name: str) -> np.ndarray:
        """Per-chunk, per-node cell counts: an (n_logical_chunks, k) matrix.

        This is the slice-statistics input for chunk-grained join units: in
        the base storage layout each chunk lives wholly on one node, so each
        row has a single non-zero entry.
        """
        schema = self.catalog.schema(name)
        matrix = np.zeros((schema.n_chunks, self.n_nodes), dtype=np.int64)
        for node in self.nodes:
            for chunk_id, size in node.local_chunk_sizes(name).items():
                matrix[chunk_id, node.node_id] += size
        return matrix
