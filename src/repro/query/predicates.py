"""Join predicates and their D:D / A:A / A:D taxonomy (Section 2.2).

An equi-join predicate is a conjunction of ``(l_i, r_i)`` pairs where each
side names a dimension or attribute of its source array. The pair's *kind*
(Dimension:Dimension, Attribute:Attribute, Attribute:Dimension) drives the
logical planner: D:D joins can reuse the arrays' spatial organisation,
while A:A and A:D joins force a schema reorganisation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.adm.schema import ArraySchema
from repro.errors import SchemaError


class PredicateKind(enum.Enum):
    """Taxonomy of one predicate pair."""

    DIM_DIM = "D:D"
    ATTR_ATTR = "A:A"
    ATTR_DIM = "A:D"
    DIM_ATTR = "D:A"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class FieldRef:
    """A reference to a dimension or attribute of a named array."""

    array: str | None
    field: str

    @classmethod
    def parse(cls, text: str) -> "FieldRef":
        parts = text.split(".")
        if len(parts) == 1:
            return cls(array=None, field=parts[0])
        if len(parts) == 2:
            return cls(array=parts[0], field=parts[1])
        raise SchemaError(f"malformed field reference {text!r}")

    def qualified(self) -> str:
        return f"{self.array}.{self.field}" if self.array else self.field

    def resolve_kind(self, schema: ArraySchema) -> str:
        """``"dimension"`` or ``"attribute"`` within ``schema``."""
        return schema.field_kind(self.field)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.qualified()


@dataclass(frozen=True)
class JoinPredicate:
    """One equi-join pair: ``left`` from the left array, ``right`` from the right."""

    left: FieldRef
    right: FieldRef

    def kind(self, left_schema: ArraySchema, right_schema: ArraySchema) -> PredicateKind:
        lkind = self.left.resolve_kind(left_schema)
        rkind = self.right.resolve_kind(right_schema)
        if lkind == "dimension" and rkind == "dimension":
            return PredicateKind.DIM_DIM
        if lkind == "attribute" and rkind == "attribute":
            return PredicateKind.ATTR_ATTR
        if lkind == "attribute":
            return PredicateKind.ATTR_DIM
        return PredicateKind.DIM_ATTR

    def oriented(self, left_schema: ArraySchema, right_schema: ArraySchema) -> "JoinPredicate":
        """Return this predicate with sides bound to the given schemas.

        Validates that each side resolves in its schema; raises otherwise.
        """
        self.left.resolve_kind(left_schema)
        self.right.resolve_kind(right_schema)
        return self

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.left} = {self.right}"


def classify_predicates(
    predicates: list[JoinPredicate],
    left_schema: ArraySchema,
    right_schema: ArraySchema,
) -> dict[JoinPredicate, PredicateKind]:
    """Classify each predicate pair against the source schemas."""
    if not predicates:
        raise SchemaError("a join requires at least one predicate")
    return {
        pred: pred.kind(left_schema, right_schema) for pred in predicates
    }


def dominant_kind(kinds: dict[JoinPredicate, PredicateKind]) -> PredicateKind:
    """The join's overall character, used to headline plans.

    A join is D:D only if *every* pair is D:D (then the spatial layout can
    be reused outright); any attribute comparison forces reorganisation, so
    A:A dominates A:D which dominates D:D.
    """
    values = set(kinds.values())
    if values == {PredicateKind.DIM_DIM}:
        return PredicateKind.DIM_DIM
    if PredicateKind.ATTR_ATTR in values:
        return PredicateKind.ATTR_ATTR
    return PredicateKind.ATTR_DIM
