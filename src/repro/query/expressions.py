"""Scalar expressions over array fields.

Supports the arithmetic and comparison expressions that appear in the
paper's queries, e.g. the NDVI computation of Section 6.3.2::

    (Band2.reflectance - Band1.reflectance)
        / (Band2.reflectance + Band1.reflectance)

Expressions evaluate vectorised over a column environment mapping
qualified field names (``"Band1.reflectance"``) and bare names to numpy
columns.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.errors import ParseError


class Expression:
    """Base class for expression AST nodes."""

    def evaluate(self, env: Mapping[str, np.ndarray]) -> np.ndarray:
        raise NotImplementedError

    def field_refs(self) -> list[str]:
        """All field names referenced, qualified where written qualified."""
        raise NotImplementedError

    def render(self) -> str:
        raise NotImplementedError

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()


@dataclass(frozen=True)
class Field(Expression):
    """A (possibly qualified) field reference like ``A.v`` or ``v``."""

    name: str

    def evaluate(self, env: Mapping[str, np.ndarray]) -> np.ndarray:
        if self.name in env:
            return env[self.name]
        # Fall back to the unqualified suffix: `A.v` resolves to `v` when
        # the environment was built from a single array's columns.
        suffix = self.name.rsplit(".", 1)[-1]
        if suffix in env:
            return env[suffix]
        raise ParseError(f"unknown field {self.name!r} in expression")

    def field_refs(self) -> list[str]:
        return [self.name]

    def render(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const(Expression):
    """A numeric literal."""

    value: float

    def evaluate(self, env: Mapping[str, np.ndarray]) -> np.ndarray:
        return np.asarray(self.value)

    def field_refs(self) -> list[str]:
        return []

    def render(self) -> str:
        if float(self.value).is_integer():
            return str(int(self.value))
        return repr(self.value)


_BINARY_OPS = {
    "+": np.add,
    "-": np.subtract,
    "*": np.multiply,
    "/": np.divide,
    "=": np.equal,
    "!=": np.not_equal,
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
    "AND": np.logical_and,
    "OR": np.logical_or,
}


@dataclass(frozen=True)
class BinOp(Expression):
    """A binary arithmetic, comparison, or boolean operation."""

    op: str
    left: Expression
    right: Expression

    def evaluate(self, env: Mapping[str, np.ndarray]) -> np.ndarray:
        func = _BINARY_OPS[self.op]
        left = self.left.evaluate(env)
        right = self.right.evaluate(env)
        if self.op == "/":
            left = np.asarray(left, dtype=np.float64)
        return func(left, right)

    def field_refs(self) -> list[str]:
        return self.left.field_refs() + self.right.field_refs()

    def render(self) -> str:
        return f"({self.left.render()} {self.op} {self.right.render()})"


@dataclass(frozen=True)
class Neg(Expression):
    """Unary negation."""

    operand: Expression

    def evaluate(self, env: Mapping[str, np.ndarray]) -> np.ndarray:
        return np.negative(self.operand.evaluate(env))

    def field_refs(self) -> list[str]:
        return self.operand.field_refs()

    def render(self) -> str:
        return f"(-{self.operand.render()})"


_TOKEN_RE = re.compile(
    r"\s*(?:"
    r"(?P<number>\d+\.\d*|\.\d+|\d+)"
    r"|(?P<name>[A-Za-z_][A-Za-z0-9_]*(?:\.[A-Za-z_][A-Za-z0-9_]*)*)"
    r"|(?P<op><=|>=|!=|<>|[-+*/=<>()])"
    r")"
)


def tokenize(text: str) -> list[str]:
    """Split an expression into tokens; raises on junk."""
    tokens: list[str] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if not match or match.end() == pos:
            remainder = text[pos:].strip()
            if not remainder:
                break
            raise ParseError(f"cannot tokenize expression at: {remainder!r}")
        token = match.group("number") or match.group("name") or match.group("op")
        if token == "<>":
            token = "!="
        tokens.append(token)
        pos = match.end()
    return tokens


class _Parser:
    """Recursive-descent parser with conventional precedence:
    OR < AND < comparison < additive < multiplicative < unary.
    """

    def __init__(self, tokens: list[str]):
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> str | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of expression")
        self.pos += 1
        return token

    def expect(self, token: str) -> None:
        got = self.next()
        if got != token:
            raise ParseError(f"expected {token!r}, got {got!r}")

    def parse(self) -> Expression:
        expr = self.parse_or()
        if self.peek() is not None:
            raise ParseError(f"trailing tokens after expression: {self.tokens[self.pos:]}")
        return expr

    def parse_or(self) -> Expression:
        expr = self.parse_and()
        while self.peek() is not None and self.peek().upper() == "OR":
            self.next()
            expr = BinOp("OR", expr, self.parse_and())
        return expr

    def parse_and(self) -> Expression:
        expr = self.parse_comparison()
        while self.peek() is not None and self.peek().upper() == "AND":
            self.next()
            expr = BinOp("AND", expr, self.parse_comparison())
        return expr

    def parse_comparison(self) -> Expression:
        expr = self.parse_additive()
        if self.peek() in ("=", "!=", "<", "<=", ">", ">="):
            op = self.next()
            expr = BinOp(op, expr, self.parse_additive())
        return expr

    def parse_additive(self) -> Expression:
        expr = self.parse_multiplicative()
        while self.peek() in ("+", "-"):
            op = self.next()
            expr = BinOp(op, expr, self.parse_multiplicative())
        return expr

    def parse_multiplicative(self) -> Expression:
        expr = self.parse_unary()
        while self.peek() in ("*", "/"):
            op = self.next()
            expr = BinOp(op, expr, self.parse_unary())
        return expr

    def parse_unary(self) -> Expression:
        if self.peek() == "-":
            self.next()
            return Neg(self.parse_unary())
        return self.parse_atom()

    def parse_atom(self) -> Expression:
        token = self.next()
        if token == "(":
            inner = self.parse_or()
            self.expect(")")
            return inner
        if re.fullmatch(r"\d+\.\d*|\.\d+|\d+", token):
            return Const(float(token))
        if re.fullmatch(r"[A-Za-z_][A-Za-z0-9_.]*", token):
            if token.upper() in ("AND", "OR"):
                raise ParseError(f"unexpected keyword {token!r}")
            return Field(token)
        raise ParseError(f"unexpected token {token!r}")


def parse_expression(text: str) -> Expression:
    """Parse a scalar expression string into an AST.

    >>> parse_expression("(a - b) / (a + b)").field_refs()
    ['a', 'b', 'a', 'b']
    """
    tokens = tokenize(text)
    if not tokens:
        raise ParseError("empty expression")
    return _Parser(tokens).parse()
