"""AQL parser for the query shapes used throughout the paper.

Supported grammar::

    SELECT <item> [, <item>]*          -- item := * | expr [AS name]
    [INTO <schema-literal> | <name>]
    FROM <array> [JOIN <array> | , <array>]
    [ON <equi-preds> | WHERE <equi-preds or filter-expr>]

Two-array queries become :class:`JoinQuery` with conjunctive equi-join
predicates; single-array queries become :class:`FilterQuery` with an
arbitrary boolean filter expression.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.adm.parser import parse_schema
from repro.adm.schema import ArraySchema
from repro.errors import ParseError
from repro.query.expressions import BinOp, Expression, Field, parse_expression
from repro.query.predicates import FieldRef, JoinPredicate


#: Aggregate functions accepted in SELECT lists and AFL ``aggregate``.
AGGREGATE_FUNCTIONS = ("sum", "count", "avg", "min", "max")


@dataclass(frozen=True)
class AggregateItem:
    """One aggregate output: ``fn(expr) AS alias`` (``expr`` None = ``*``)."""

    fn: str
    expr: Expression | None
    alias: str

    def __post_init__(self) -> None:
        if self.fn not in AGGREGATE_FUNCTIONS:
            raise ParseError(
                f"unknown aggregate {self.fn!r}; expected one of "
                f"{AGGREGATE_FUNCTIONS}"
            )
        if self.expr is None and self.fn != "count":
            raise ParseError(f"{self.fn}(*) is not defined; use count(*)")

    @property
    def output_name(self) -> str:
        return self.alias

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        inner = "*" if self.expr is None else self.expr.render()
        return f"{self.fn}({inner}) AS {self.alias}"


@dataclass(frozen=True)
class SelectItem:
    """One projected output: an expression plus an optional alias."""

    expr: Expression
    alias: str | None = None

    @property
    def output_name(self) -> str:
        if self.alias:
            return self.alias
        if isinstance(self.expr, Field):
            return self.expr.name.rsplit(".", 1)[-1]
        return "expr"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        rendered = self.expr.render()
        return f"{rendered} AS {self.alias}" if self.alias else rendered


@dataclass
class JoinQuery:
    """A parsed two-array equi-join query.

    ``filters`` holds single-array conjuncts split off the WHERE clause
    (e.g. ``A.v > 5``), keyed by array name — the executor pushes them
    below the join, filtering each node's local cells before slice
    mapping (classic predicate pushdown).
    """

    left: str
    right: str
    predicates: list[JoinPredicate]
    select: list[SelectItem] = field(default_factory=list)
    select_star: bool = False
    into_schema: ArraySchema | None = None
    into_name: str | None = None
    filters: dict[str, Expression] = field(default_factory=dict)

    @property
    def output_name(self) -> str:
        if self.into_schema is not None:
            return self.into_schema.name
        return self.into_name or f"{self.left}_join_{self.right}"


@dataclass
class FilterQuery:
    """A parsed single-array scan/filter query."""

    array: str
    predicate: Expression | None
    select: list = field(default_factory=list)  # SelectItem | AggregateItem
    select_star: bool = False
    into_schema: ArraySchema | None = None
    into_name: str | None = None
    group_by: list[str] = field(default_factory=list)

    @property
    def has_aggregates(self) -> bool:
        return any(isinstance(item, AggregateItem) for item in self.select)


@dataclass
class MultiJoinQuery:
    """A parsed equi-join over three or more arrays.

    Every predicate side must be qualified (``B.j``, not ``j``) so each
    pair can be attributed to its arrays; the multi-join planner
    (:mod:`repro.core.multijoin`) orders the 2-way joins.
    """

    arrays: list[str]
    predicates: list[JoinPredicate]
    select: list[SelectItem] = field(default_factory=list)
    select_star: bool = False
    into_schema: ArraySchema | None = None
    into_name: str | None = None
    filters: dict[str, Expression] = field(default_factory=dict)

    @property
    def output_name(self) -> str:
        if self.into_schema is not None:
            return self.into_schema.name
        return self.into_name or "_".join(self.arrays) + "_join"


_CLAUSE_RE = re.compile(
    r"^\s*SELECT\s+(?P<select>.+?)"
    r"(?:\s+INTO\s+(?P<into>.+?))?"
    r"\s+FROM\s+(?P<from>.+?)"
    r"(?:\s+(?:ON|WHERE)\s+(?P<pred>.+?))?"
    r"(?:\s+GROUP\s+BY\s+(?P<group>.+?))?"
    r"\s*;?\s*$",
    re.IGNORECASE | re.DOTALL,
)

_AGGREGATE_RE = re.compile(
    r"^(?P<fn>sum|count|avg|min|max)\s*\((?P<arg>.+?|\*)\)"
    r"(?:\s+AS\s+(?P<alias>[A-Za-z_][A-Za-z0-9_]*))?$",
    re.IGNORECASE | re.DOTALL,
)

_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


def _split_commas(text: str) -> list[str]:
    """Split on commas that are not nested inside (), <>, or []."""
    parts: list[str] = []
    depth = 0
    current: list[str] = []
    for char in text:
        if char in "(<[":
            depth += 1
        elif char in ")>]":
            depth -= 1
        if char == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(char)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return [p for p in parts if p]


def parse_aggregate_item(text: str) -> AggregateItem | None:
    """Parse ``fn(expr) [AS alias]`` if ``text`` is an aggregate call."""
    match = _AGGREGATE_RE.match(text.strip())
    if not match:
        return None
    fn = match.group("fn").lower()
    arg = match.group("arg").strip()
    expr = None if arg == "*" else parse_expression(arg)
    alias = match.group("alias")
    if alias is None:
        suffix = "all" if expr is None else arg.replace(".", "_")
        alias = re.sub(r"[^A-Za-z0-9_]", "", f"{fn}_{suffix}") or fn
    return AggregateItem(fn=fn, expr=expr, alias=alias)


def _parse_select(text: str) -> tuple[list, bool]:
    text = text.strip()
    if text in ("*", "%"):  # the paper writes `SELECT %` in one query
        return [], True
    items: list = []
    for part in _split_commas(text):
        aggregate_item = parse_aggregate_item(part)
        if aggregate_item is not None:
            items.append(aggregate_item)
            continue
        match = re.match(r"^(?P<expr>.+?)\s+AS\s+(?P<alias>[A-Za-z_][A-Za-z0-9_]*)$",
                         part, re.IGNORECASE)
        if match:
            items.append(
                SelectItem(parse_expression(match.group("expr")), match.group("alias"))
            )
        else:
            items.append(SelectItem(parse_expression(part)))
    if not items:
        raise ParseError(f"empty SELECT list in {text!r}")
    return items, False


def _parse_into(text: str) -> tuple[ArraySchema | None, str | None]:
    text = text.strip()
    if "<" in text:
        return parse_schema(text), None
    if not _NAME_RE.match(text):
        raise ParseError(f"malformed INTO target {text!r}")
    return None, text


def _parse_from(text: str) -> list[str]:
    join_split = re.split(r"\s+JOIN\s+", text.strip(), flags=re.IGNORECASE)
    if len(join_split) > 1:
        names = [part.strip() for part in join_split]
    else:
        names = _split_commas(text)
    if not names:
        raise ParseError(f"empty FROM clause: {text!r}")
    for name in names:
        if not _NAME_RE.match(name):
            raise ParseError(f"malformed array name {name!r} in FROM clause")
    if len(set(names)) != len(names):
        raise ParseError(f"FROM clause repeats an array name: {text!r}")
    return names


def _flatten_and(expr: Expression) -> list[Expression]:
    if isinstance(expr, BinOp) and expr.op == "AND":
        return _flatten_and(expr.left) + _flatten_and(expr.right)
    return [expr]


def _array_of_ref(ref: str, names: list[str]) -> str | None:
    """The FROM array a field reference belongs to (None if bare)."""
    prefix = ref.split(".", 1)[0] if "." in ref else None
    if prefix is not None and prefix not in names:
        raise ParseError(
            f"field reference {ref!r} names {prefix!r}, which is not in "
            f"the FROM clause"
        )
    return prefix


def _partition_where(
    expr: Expression, names: list[str]
) -> tuple[list[JoinPredicate], dict[str, Expression]]:
    """Split a WHERE conjunction into join predicates and pushdown filters.

    Field = field across two arrays → join predicate; a conjunct whose
    references all belong to one array → that array's pushdown filter
    (combined with AND); anything else is rejected.
    """
    predicates: list[JoinPredicate] = []
    filters: dict[str, Expression] = {}
    for conjunct in _flatten_and(expr):
        ref_arrays = {
            _array_of_ref(ref, names) for ref in conjunct.field_refs()
        }
        is_field_equality = (
            isinstance(conjunct, BinOp)
            and conjunct.op == "="
            and isinstance(conjunct.left, Field)
            and isinstance(conjunct.right, Field)
        )
        if is_field_equality:
            left_array = _array_of_ref(conjunct.left.name, names)
            right_array = _array_of_ref(conjunct.right.name, names)
            if left_array != right_array or (
                left_array is None and right_array is None
            ):
                predicates.append(
                    JoinPredicate(
                        FieldRef.parse(conjunct.left.name),
                        FieldRef.parse(conjunct.right.name),
                    )
                )
                continue
            # Same-array equality: a pushdown filter.
        if None in ref_arrays:
            raise ParseError(
                f"cannot attribute {conjunct.render()} to one array; "
                f"qualify its field references"
            )
        if len(ref_arrays) != 1:
            raise ParseError(
                f"conjunct {conjunct.render()} spans multiple arrays but "
                f"is not an equi-join pair"
            )
        (array_name,) = ref_arrays
        existing = filters.get(array_name)
        filters[array_name] = (
            conjunct if existing is None else BinOp("AND", existing, conjunct)
        )
    if not predicates:
        raise ParseError(
            "join queries require at least one field = field join predicate"
        )
    return predicates, filters


def parse_aql(text: str) -> "JoinQuery | FilterQuery | MultiJoinQuery":
    """Parse an AQL query string.

    One array in FROM yields a :class:`FilterQuery`, two a
    :class:`JoinQuery`, three or more a :class:`MultiJoinQuery`.

    >>> q = parse_aql("SELECT * FROM A JOIN B WHERE A.i = B.j")
    >>> (q.left, q.right, str(q.predicates[0]))
    ('A', 'B', 'A.i = B.j')
    """
    match = _CLAUSE_RE.match(text)
    if not match:
        raise ParseError(f"malformed AQL query: {text!r}")
    select_items, star = _parse_select(match.group("select"))
    into_schema, into_name = (None, None)
    if match.group("into"):
        into_schema, into_name = _parse_into(match.group("into"))
    names = _parse_from(match.group("from"))

    group_by: list[str] = []
    if match.group("group"):
        group_by = _split_commas(match.group("group"))
        for name in group_by:
            if not _NAME_RE.match(name):
                raise ParseError(f"malformed GROUP BY field {name!r}")

    if len(names) == 1:
        predicate = (
            parse_expression(match.group("pred")) if match.group("pred") else None
        )
        has_aggregates = any(
            isinstance(item, AggregateItem) for item in select_items
        )
        if select_items and has_aggregates and not all(
            isinstance(item, AggregateItem) for item in select_items
        ):
            raise ParseError(
                "aggregated SELECT lists may contain only aggregate items; "
                "grouping fields belong in GROUP BY"
            )
        if group_by and not has_aggregates:
            raise ParseError("GROUP BY requires aggregate SELECT items")
        return FilterQuery(
            array=names[0],
            predicate=predicate,
            select=select_items,
            select_star=star,
            into_schema=into_schema,
            into_name=into_name,
            group_by=group_by,
        )

    if group_by:
        raise ParseError(
            "GROUP BY is supported on single-array queries; aggregate the "
            "join's result separately"
        )
    if any(isinstance(item, AggregateItem) for item in select_items):
        raise ParseError(
            "aggregates are supported on single-array queries; aggregate "
            "the join's result separately"
        )
    if not match.group("pred"):
        raise ParseError("join queries require an ON or WHERE predicate clause")
    predicates, filters = _partition_where(
        parse_expression(match.group("pred")), names
    )
    if len(names) == 2:
        return JoinQuery(
            left=names[0],
            right=names[1],
            predicates=predicates,
            select=select_items,
            select_star=star,
            into_schema=into_schema,
            into_name=into_name,
            filters=filters,
        )

    for pred in predicates:
        for side in (pred.left, pred.right):
            if side.array is None:
                raise ParseError(
                    f"multi-join predicates must be fully qualified, "
                    f"got bare field {side.field!r}"
                )
            if side.array not in names:
                raise ParseError(
                    f"predicate references {side.array!r}, which is not in "
                    f"the FROM clause"
                )
    return MultiJoinQuery(
        arrays=names,
        predicates=predicates,
        select=select_items,
        select_star=star,
        into_schema=into_schema,
        into_name=into_name,
        filters=filters,
    )
