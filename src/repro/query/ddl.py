"""DDL statements: CREATE ARRAY and DROP ARRAY.

SciDB arrays are declared before loading; :func:`parse_statement`
dispatches between DDL and the AQL query forms so a session can accept
any statement string.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.adm.parser import parse_schema
from repro.adm.schema import ArraySchema
from repro.errors import ParseError
from repro.query.aql import FilterQuery, JoinQuery, parse_aql

_CREATE_RE = re.compile(r"^\s*CREATE\s+ARRAY\s+(?P<schema>.+?)\s*;?\s*$",
                        re.IGNORECASE | re.DOTALL)
_DROP_RE = re.compile(
    r"^\s*DROP\s+ARRAY\s+(?P<name>[A-Za-z_][A-Za-z0-9_]*)\s*;?\s*$",
    re.IGNORECASE,
)
_ANALYZE_RE = re.compile(
    r"^\s*ANALYZE\s+(?P<name>[A-Za-z_][A-Za-z0-9_]*)\s*;?\s*$",
    re.IGNORECASE,
)


@dataclass(frozen=True)
class CreateArray:
    """``CREATE ARRAY A<v:int64>[i=1,6,3]``"""

    schema: ArraySchema


@dataclass(frozen=True)
class DropArray:
    """``DROP ARRAY A``"""

    name: str


@dataclass(frozen=True)
class AnalyzeArray:
    """``ANALYZE A`` — refresh the catalog's statistics for one array."""

    name: str


Statement = "CreateArray | DropArray | JoinQuery | FilterQuery"


def parse_statement(text: str):
    """Parse any supported statement: DDL or an AQL query."""
    match = _CREATE_RE.match(text)
    if match:
        return CreateArray(schema=parse_schema(match.group("schema")))
    match = _DROP_RE.match(text)
    if match:
        return DropArray(name=match.group("name"))
    match = _ANALYZE_RE.match(text)
    if match:
        return AnalyzeArray(name=match.group("name"))
    stripped = text.strip()
    if re.match(r"^(CREATE|DROP|ANALYZE)\b", stripped, re.IGNORECASE):
        raise ParseError(f"malformed DDL statement: {text!r}")
    return parse_aql(text)
