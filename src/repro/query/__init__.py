"""Query front end: AQL parsing, predicates, expressions, and AFL plans.

AQL (Array Query Language) is the declarative, SQL-like surface of the
Array Data Model; AFL (Array Functional Language) is the operator algebra
that execution plans are written in (Section 2.2). The library parses AQL
join and filter queries, classifies their predicates, and renders chosen
plans as AFL expressions.
"""

from repro.query.aql import FilterQuery, JoinQuery, parse_aql
from repro.query.expressions import Expression, parse_expression
from repro.query.predicates import FieldRef, JoinPredicate, PredicateKind, classify_predicates

__all__ = [
    "Expression",
    "FieldRef",
    "FilterQuery",
    "JoinPredicate",
    "JoinQuery",
    "PredicateKind",
    "classify_predicates",
    "parse_aql",
    "parse_expression",
]
