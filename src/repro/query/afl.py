"""AFL (Array Functional Language) operator trees.

Execution plans are written in AFL, the composable operator algebra of the
ADM (Section 2.2): ``merge(A, redim(B, <v1:int64>[i=1,6,3]))``. The logical
planner builds these trees and renders them so users can inspect the chosen
plan; a small evaluator covers the single-array operators (scan/filter/
project) used by filter queries and the examples.
"""

from __future__ import annotations

from dataclasses import dataclass
import re

import numpy as np

from repro.adm.array import LocalArray
from repro.adm.schema import ArraySchema
from repro.errors import ParseError
from repro.query.expressions import Expression


@dataclass(frozen=True)
class AflNode:
    """One AFL operator application; args are child nodes or literals."""

    op: str
    args: tuple = ()

    def render(self) -> str:
        parts = []
        for arg in self.args:
            if isinstance(arg, AflNode):
                parts.append(arg.render())
            elif isinstance(arg, ArraySchema):
                attrs = ", ".join(a.to_literal() for a in arg.attrs)
                dims = ", ".join(d.to_literal() for d in arg.dims)
                parts.append(f"<{attrs}>[{dims}]")
            elif isinstance(arg, Expression):
                parts.append(arg.render())
            else:
                parts.append(str(arg))
        return f"{self.op}({', '.join(parts)})"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()


# ------------------------------------------------------------- constructors


def scan(array_name: str) -> AflNode:
    return AflNode("scan", (array_name,))


def redim(child: AflNode | str, schema: ArraySchema) -> AflNode:
    return AflNode("redim", (_as_node(child), schema))


def rechunk(child: AflNode | str, schema: ArraySchema) -> AflNode:
    return AflNode("rechunk", (_as_node(child), schema))


def hash_(child: AflNode | str, predicate_fields: str) -> AflNode:
    return AflNode("hash", (_as_node(child), predicate_fields))


def sort(child: AflNode | str) -> AflNode:
    return AflNode("sort", (_as_node(child),))


def filter_(child: AflNode | str, predicate: Expression) -> AflNode:
    return AflNode("filter", (_as_node(child), predicate))


def merge_join(left: AflNode, right: AflNode) -> AflNode:
    return AflNode("mergeJoin", (left, right))


def hash_join(left: AflNode, right: AflNode) -> AflNode:
    return AflNode("hashJoin", (left, right))


def nested_loop_join(left: AflNode, right: AflNode) -> AflNode:
    return AflNode("nestedLoopJoin", (left, right))


def cross(left: AflNode | str, right: AflNode | str) -> AflNode:
    return AflNode("cross", (_as_node(left), _as_node(right)))


def _as_node(value: AflNode | str) -> AflNode:
    return value if isinstance(value, AflNode) else scan(value)


# ----------------------------------------------------------------- parsing

_CALL_RE = re.compile(r"^\s*(?P<name>[A-Za-z_][A-Za-z0-9_]*)\s*\(")
_NAME_ONLY_RE = re.compile(r"^\s*(?P<name>[A-Za-z_][A-Za-z0-9_]*)\s*$")

#: Operators the parser recognises, mapped to their canonical names.
KNOWN_OPERATORS = {
    "scan": "scan",
    "filter": "filter",
    "redim": "redim",
    "redimension": "redim",
    "rechunk": "rechunk",
    "hash": "hash",
    "sort": "sort",
    "project": "project",
    "merge": "mergeJoin",
    "mergejoin": "mergeJoin",
    "hashjoin": "hashJoin",
    "nestedloopjoin": "nestedLoopJoin",
    "cross": "cross",
    "aggregate": "aggregate",
    "apply": "apply",
    "between": "between",
    "subarray": "subarray",
    "regrid": "regrid",
    "window": "window",
}


#: A schema literal region: ``<attrs>[dims]`` (dims possibly empty).
_SCHEMA_REGION_RE = re.compile(r"<[^<>]*>\s*\[[^\[\]]*\]")


def _mask_schemas(text: str) -> str:
    """Blank out schema-literal regions so structural scanning is not
    confused by the ``<``/``>``/``,`` characters inside them (comparison
    operators in filter expressions share those characters)."""
    return _SCHEMA_REGION_RE.sub(lambda m: "#" * len(m.group(0)), text)


def _split_args(text: str) -> list[str]:
    """Split an argument list on top-level commas (parenthesis-aware,
    schema literals treated as opaque)."""
    masked = _mask_schemas(text)
    parts: list[str] = []
    depth = 0
    start = 0
    for index, char in enumerate(masked):
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
        elif char == "," and depth == 0:
            part = text[start:index].strip()
            if part:
                parts.append(part)
            start = index + 1
    tail = text[start:].strip()
    if tail:
        parts.append(tail)
    return parts


def _parse_argument(text: str):
    """Classify one AFL argument: nested call, aggregate call, schema
    literal, bare array name, or scalar expression."""
    text = text.strip()
    if text.startswith("<"):
        # Anonymous schema literal: give it a placeholder name.
        from repro.adm.parser import parse_schema

        return parse_schema(f"__afl{text}")
    from repro.query.aql import parse_aggregate_item

    aggregate_item = parse_aggregate_item(text)
    if aggregate_item is not None:
        return aggregate_item
    if _CALL_RE.match(text):
        return parse_afl(text)
    if _NAME_ONLY_RE.match(text):
        return text
    from repro.query.expressions import parse_expression

    return parse_expression(text)


def parse_afl(text: str) -> AflNode:
    """Parse an AFL expression like ``merge(A, redim(B, <v:int64>[i=1,6,3]))``.

    Bare names become ``scan`` operands of their parent; operator names
    are case-insensitive and ``merge``/``redimension`` aliases resolve to
    their canonical forms.
    """
    text = text.strip().rstrip(";")
    match = _CALL_RE.match(text)
    if not match:
        name_match = _NAME_ONLY_RE.match(text)
        if name_match:
            return scan(name_match.group("name"))
        raise ParseError(f"malformed AFL expression: {text!r}")
    name = match.group("name")
    canonical = KNOWN_OPERATORS.get(name.lower())
    if canonical is None:
        raise ParseError(f"unknown AFL operator {name!r}")
    body = text[match.end():]
    if not body.endswith(")"):
        raise ParseError(f"unbalanced parentheses in AFL expression: {text!r}")
    inner = body[:-1]
    depth = 0
    for char in _mask_schemas(inner):  # the trailing ')' must close *this* call
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
        if depth < 0:
            raise ParseError(f"unbalanced parentheses in AFL expression: {text!r}")
    if depth != 0:
        raise ParseError(f"unbalanced parentheses in AFL expression: {text!r}")
    args = tuple(_parse_argument(part) for part in _split_args(inner))
    return AflNode(canonical, args)


# ----------------------------------------------------- single-array evaluator


def cells_environment(schema: ArraySchema, cells) -> dict[str, np.ndarray]:
    """Column environment (qualified and bare names) over raw cells."""
    env: dict[str, np.ndarray] = {}
    for axis, dim in enumerate(schema.dims):
        env[dim.name] = cells.dim_column(axis)
        env[f"{schema.name}.{dim.name}"] = cells.dim_column(axis)
    for attr in schema.attrs:
        if attr.name in cells.attrs:
            env[attr.name] = cells.column(attr.name)
            env[f"{schema.name}.{attr.name}"] = cells.column(attr.name)
    return env


def environment_for(array: LocalArray) -> dict[str, np.ndarray]:
    """Column environment for expression evaluation over one array."""
    return cells_environment(array.schema, array.cells())


def apply_filter(array: LocalArray, predicate: Expression) -> LocalArray:
    """Evaluate ``filter(array, predicate)``, keeping the array's schema."""
    cells = array.cells()
    if not len(cells):
        return LocalArray.empty(array.schema)
    mask = np.asarray(predicate.evaluate(environment_for(array)), dtype=bool)
    if mask.shape != (len(cells),):
        raise ParseError(
            f"filter predicate {predicate.render()} did not produce a "
            f"boolean column over {len(cells)} cells"
        )
    return LocalArray.from_cells(array.schema, cells.take(mask))
