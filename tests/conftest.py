"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.adm import CellSet, LocalArray, parse_schema
from repro.cluster import Cluster


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_schema():
    return parse_schema("A<v1:int64, v2:float64>[i=1,6,3, j=1,6,3]")


@pytest.fixture
def figure1_array(small_schema) -> LocalArray:
    """The paper's Figure 1 example array."""
    coords = np.array(
        [[1, 1], [1, 2], [2, 1], [2, 2], [3, 1], [3, 2], [3, 3],
         [4, 4], [4, 5], [5, 4], [5, 5], [5, 6], [6, 4], [6, 5], [6, 6]]
    )
    values_1 = np.array([5, 1, 1, 7, 1, 0, 0, 6, 3, 3, 3, 6, 9, 5, 5])
    values_2 = np.array(
        [0.3, 0.47, 0.02, 0.13, 0.19, 0.04, 0.75, 1.4, 6.9, 0.8, 1.4,
         9.1, 2.7, 7.9, 8.7]
    )
    cells = CellSet(coords, {"v1": values_1, "v2": values_2})
    return LocalArray.from_cells(small_schema, cells)


def make_dd_pair(
    n_cells: int = 2000,
    extent: int = 64,
    interval: int = 8,
    seed: int = 0,
    value_range: int = 50,
):
    """Two same-shape 2-D arrays for D:D joins, plus their raw cell sets."""
    gen = np.random.default_rng(seed)
    arrays = []
    for name in ("A", "B"):
        coords = np.unique(gen.integers(1, extent + 1, size=(n_cells, 2)), axis=0)
        cells = CellSet(
            coords,
            {
                "v1": gen.integers(0, value_range, len(coords)),
                "v2": gen.integers(0, value_range, len(coords)),
            },
        )
        schema = parse_schema(
            f"{name}<v1:int64, v2:int64>"
            f"[i=1,{extent},{interval}, j=1,{extent},{interval}]"
        )
        arrays.append(LocalArray.from_cells(schema, cells))
    return arrays[0], arrays[1]


@pytest.fixture
def dd_pair():
    return make_dd_pair()


@pytest.fixture
def small_cluster(dd_pair) -> Cluster:
    """A 4-node cluster with the D:D pair loaded (shifted placements)."""
    cluster = Cluster(n_nodes=4)
    array_a, array_b = dd_pair
    cluster.load_array(array_a, placement="round_robin")
    cluster.load_array(
        array_b,
        placement=lambda ids, k: [(rank + 1) % k for rank in range(len(ids))],
    )
    return cluster
