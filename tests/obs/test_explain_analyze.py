"""Unit tests for explain-analyze delta arithmetic and rendering."""

import math
from types import SimpleNamespace

import pytest

from repro.errors import ExecutionError
from repro.obs.explain_analyze import ExplainAnalyzeReport, NodeDelta, _pct


class TestPct:
    def test_relative_to_prediction(self):
        assert _pct(0.5, 2.0) == pytest.approx(25.0)
        assert _pct(-1.0, 4.0) == pytest.approx(-25.0)

    def test_zero_prediction_edge_cases(self):
        assert _pct(0.0, 0.0) == 0.0
        assert _pct(1.0, 0.0) == math.inf
        assert _pct(-1.0, 0.0) == -math.inf


class TestNodeDelta:
    def test_delta_and_error_arithmetic(self):
        node = NodeDelta(
            node=0,
            pred_send_cells=100,
            pred_recv_cells=200,
            pred_align_seconds=0.010,
            pred_compare_seconds=0.040,
            actual_sent_cells=100,
            actual_recv_cells=180,
            actual_align_seconds=0.012,
            actual_compare_seconds=0.030,
            output_cells=50,
        )
        assert node.align_delta_seconds == pytest.approx(0.002)
        assert node.compare_delta_seconds == pytest.approx(-0.010)
        assert node.align_error_pct == pytest.approx(20.0)
        assert node.compare_error_pct == pytest.approx(-25.0)


def _fake_result(node_profile, analytic_cost=None, align=0.02, compare=0.05):
    """A minimal stand-in for JoinResult with the fields from_result reads."""
    report = SimpleNamespace(
        node_profile=node_profile,
        analytic_cost=analytic_cost,
        planner="tabu",
        join_algo="hash",
        n_units=8,
        align_seconds=align,
        compare_seconds=compare,
        logical_afl="join(A, B)",
    )
    return SimpleNamespace(report=report)


def _two_node_profile():
    return {
        "pred_send_cells": [100, 300],
        "pred_recv_cells": [200, 100],
        "pred_align_seconds": [0.004, 0.006],
        "pred_compare_seconds": [0.020, 0.030],
        "actual_sent_cells": [110, 290],
        "actual_recv_cells": [210, 90],
        "actual_align_seconds": [0.005, 0.006],
        "actual_compare_seconds": [0.022, 0.024],
        "output_cells": [40, 60],
    }


class TestFromResult:
    def test_raises_without_profile(self):
        with pytest.raises(ExecutionError):
            ExplainAnalyzeReport.from_result(_fake_result(None))

    def test_builds_per_node_deltas(self):
        report = ExplainAnalyzeReport.from_result(
            _fake_result(_two_node_profile()), query="SELECT ..."
        )
        assert report.query == "SELECT ..."
        assert report.n_nodes == 2
        n0, n1 = report.nodes
        assert (n0.pred_send_cells, n0.actual_sent_cells) == (100, 110)
        assert n0.align_error_pct == pytest.approx(25.0)
        assert n1.compare_error_pct == pytest.approx(-20.0)
        assert report.actual_total_seconds == pytest.approx(0.07)
        # No analytic cost attached: falls back to the bottleneck node's
        # predicted align + compare (Eq 8 is a max over nodes).
        assert report.predicted_total_seconds == pytest.approx(0.036)
        assert report.total_error_pct == pytest.approx(
            100.0 * (0.07 - 0.036) / 0.036
        )

    def test_prefers_model_total_when_present(self):
        cost = SimpleNamespace(total_seconds=0.05)
        report = ExplainAnalyzeReport.from_result(
            _fake_result(_two_node_profile(), analytic_cost=cost)
        )
        assert report.predicted_total_seconds == pytest.approx(0.05)
        assert report.query == "join(A, B)"

    def test_skew_summaries_from_actual_vectors(self):
        report = ExplainAnalyzeReport.from_result(
            _fake_result(_two_node_profile())
        )
        # compare actuals [0.022, 0.024] → imbalance = max/mean
        assert report.compare_skew["imbalance"] == pytest.approx(
            0.024 / 0.023
        )
        # shuffle recv actuals [210, 90]
        assert report.shuffle_skew["imbalance"] == pytest.approx(210 / 150)

    def test_describe_renders_every_node_and_totals(self):
        report = ExplainAnalyzeReport.from_result(
            _fake_result(_two_node_profile()), query="Q"
        )
        text = report.describe()
        assert "EXPLAIN ANALYZE [tabu/hash] 8 units over 2 nodes" in text
        assert "query: Q" in text
        lines = text.splitlines()
        assert sum(line.strip().startswith(("0 ", "1 ")) for line in lines) == 2
        assert "observed skew:" in text
        assert "totals: predicted=0.0360s observed=0.0700s" in text
        # Schedule wait residual: phase duration 0.02 minus the busiest
        # node's align time 0.006.
        assert "~0.0140s schedule wait" in text
