"""Exposition rendering/parsing and the structured query log.

The renderer and the parser are tested against each other — everything
the renderer emits must parse with zero errors — and the parser is
additionally fed hand-broken expositions to prove it actually rejects
what a real scraper would reject.
"""

import json

import pytest

from repro.obs.metrics import LATENCY_BUCKETS, MetricsRegistry
from repro.obs.telemetry import (
    OVERFLOW_LABEL,
    QueryLog,
    escape_label_value,
    main as telemetry_main,
    parse_exposition,
    render_prometheus,
    sanitize_metric_name,
    split_labeled_name,
    validate_exposition,
)


class TestNameHandling:
    def test_sanitize_replaces_invalid_chars(self):
        assert sanitize_metric_name("serve latency.ms") == "serve_latency_ms"
        assert sanitize_metric_name("9lives") == "_9lives"
        assert sanitize_metric_name("") == "_"
        # Idempotent and identity on valid names.
        assert sanitize_metric_name("a_valid:name") == "a_valid:name"
        assert sanitize_metric_name(
            sanitize_metric_name("weird-name!")
        ) == sanitize_metric_name("weird-name!")

    def test_dotted_tenant_suffix_becomes_label(self):
        name, labels = split_labeled_name("tenant_cache_hits.acme")
        assert name == "tenant_cache_hits"
        assert labels == {"tenant": "acme"}

    def test_unruled_dotted_name_is_sanitised_whole(self):
        name, labels = split_labeled_name("some.other.metric")
        assert name == "some_other_metric"
        assert labels == {}

    def test_escape_label_value(self):
        assert escape_label_value('a"b\\c\nd') == 'a\\"b\\\\c\\nd'


class TestRenderer:
    def test_empty_registry_renders_empty_and_validates(self):
        text = render_prometheus(MetricsRegistry())
        assert text == ""
        assert validate_exposition(text) == []

    def test_counters_gauges_histograms_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("queries_executed").inc(3)
        registry.gauge("serve_in_flight").set(2)
        registry.histogram(
            "serve_latency_seconds", LATENCY_BUCKETS
        ).observe(0.01)
        registry.rolling_histogram(
            "serve_latency_window", LATENCY_BUCKETS
        ).observe(0.01)
        text = render_prometheus(registry)
        families, errors = parse_exposition(text)
        assert errors == []
        assert families["repro_queries_executed_total"]["type"] == "counter"
        assert families["repro_serve_in_flight"]["type"] == "gauge"
        assert families["repro_serve_latency_seconds"]["type"] == "histogram"
        assert families["repro_serve_latency_window"]["type"] == "summary"

    def test_tenant_suffix_rendered_as_label(self):
        registry = MetricsRegistry()
        registry.counter("tenant_cache_hits.acme").inc(5)
        registry.counter('tenant_cache_hits.we"ird\\t').inc(1)
        text = render_prometheus(registry)
        assert 'repro_tenant_cache_hits_total{tenant="acme"} 5' in text
        families, errors = parse_exposition(text)
        assert errors == []
        labels = sorted(
            labels["tenant"]
            for _, labels, _ in families["repro_tenant_cache_hits_total"][
                "samples"
            ]
        )
        # The escaped value survives a parse round-trip intact.
        assert labels == ["acme", 'we"ird\\t']

    def test_zero_observation_histogram_is_valid(self):
        registry = MetricsRegistry()
        registry.histogram("empty_hist", bounds=(1.0, 2.0))
        registry.rolling_histogram("empty_window", bounds=(1.0, 2.0))
        text = render_prometheus(registry)
        assert validate_exposition(text) == []
        assert "repro_empty_hist_count 0" in text
        assert "repro_empty_hist_sum 0" in text

    def test_cardinality_cap_spills_into_overflow(self):
        registry = MetricsRegistry()
        for index in range(10):
            registry.counter(f"tenant_cache_hits.t{index}").inc(index + 1)
        text = render_prometheus(registry, max_series=4)
        families, errors = parse_exposition(text)
        assert errors == []
        samples = families["repro_tenant_cache_hits_total"]["samples"]
        assert len(samples) == 5  # 4 kept + 1 overflow
        by_tenant = {labels["tenant"]: value for _, labels, value in samples}
        # The heaviest series survive; the tail is aggregated, not lost.
        assert by_tenant["t9"] == 10
        assert by_tenant[OVERFLOW_LABEL] == sum(range(1, 7))  # t0..t5
        assert sum(by_tenant.values()) == sum(range(1, 11))

    def test_cap_never_spills_the_unlabelled_series(self):
        # serve_latency_window (global) shares its family with the
        # per-tenant windows; the guard must cap only the labelled ones.
        registry = MetricsRegistry()
        registry.rolling_histogram("serve_latency_window").observe(0.5)
        for index in range(6):
            registry.rolling_histogram(
                f"serve_latency_window.t{index}"
            ).observe(0.5)
        text = render_prometheus(registry, max_series=2)
        families, errors = parse_exposition(text)
        assert errors == []
        counts = [
            (labels.get("tenant"), value)
            for name, labels, value in families["repro_serve_latency_window"][
                "samples"
            ]
            if name == "repro_serve_latency_window_count"
        ]
        tenants = {tenant for tenant, _ in counts}
        assert None in tenants  # the global window survived
        assert OVERFLOW_LABEL in tenants
        assert len(tenants) == 4  # global + 2 kept + overflow

    def test_output_is_deterministic(self):
        def build():
            registry = MetricsRegistry()
            registry.counter("b_counter").inc(2)
            registry.counter("a_counter").inc(1)
            registry.gauge("z_gauge").set(9)
            registry.histogram("m_hist", bounds=(1.0,)).observe(0.5)
            return render_prometheus(registry)

        assert build() == build()
        # TYPE lines appear in sorted family order.
        families = [
            line.split()[2]
            for line in build().splitlines()
            if line.startswith("# TYPE")
        ]
        assert families == sorted(families)

    def test_accepts_plain_snapshot_dict(self):
        snapshot = {"counters": {"c": 1}, "gauges": {}, "histograms": {}}
        text = render_prometheus(snapshot, namespace="")
        assert "c_total 1" in text

    def test_rejects_nonpositive_cap(self):
        with pytest.raises(ValueError):
            render_prometheus(MetricsRegistry(), max_series=0)


class TestParserRejections:
    def test_sample_without_type_declaration(self):
        errors = validate_exposition("orphan_metric 1\n")
        assert any("no TYPE" in error for error in errors)

    def test_malformed_type_and_unknown_kind(self):
        errors = validate_exposition("# TYPE broken\n")
        assert any("malformed TYPE" in error for error in errors)
        errors = validate_exposition("# TYPE m wibble\nm 1\n")
        assert any("unknown TYPE" in error for error in errors)

    def test_duplicate_series_rejected(self):
        text = '# TYPE m counter\nm{t="a"} 1\nm{t="a"} 2\n'
        errors = validate_exposition(text)
        assert any("duplicate series" in error for error in errors)

    def test_bad_label_quoting_rejected(self):
        errors = validate_exposition('# TYPE m counter\nm{t=unquoted} 1\n')
        assert any("bad label" in error for error in errors)
        errors = validate_exposition('# TYPE m counter\nm{t="open} 1\n')
        assert errors

    def test_non_cumulative_histogram_rejected(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 5\n'
            'h_bucket{le="2"} 3\n'
            'h_bucket{le="+Inf"} 5\n'
            "h_sum 4\n"
            "h_count 5\n"
        )
        errors = validate_exposition(text)
        assert any("not cumulative" in error for error in errors)

    def test_missing_inf_bucket_rejected(self):
        text = '# TYPE h histogram\nh_bucket{le="1"} 1\nh_count 1\n'
        errors = validate_exposition(text)
        assert any("+Inf" in error for error in errors)

    def test_inf_bucket_count_mismatch_rejected(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 3\n'
            "h_count 4\n"
        )
        errors = validate_exposition(text)
        assert any("_count" in error for error in errors)

    def test_help_comments_and_blank_lines_are_legal(self):
        text = "# HELP m something\n\n# TYPE m counter\nm 1\n"
        assert validate_exposition(text) == []


class TestQueryLog:
    def test_appends_sorted_json_lines(self, tmp_path):
        path = tmp_path / "queries.jsonl"
        with QueryLog(path) as log:
            log.log({"b": 2, "a": 1})
            log.log({"tenant": None, "latency": 0.5})
        lines = path.read_text().splitlines()
        assert lines[0] == '{"a": 1, "b": 2}'
        assert json.loads(lines[1]) == {"tenant": None, "latency": 0.5}
        assert log.records == 2

    def test_rotation_bounds_disk_use(self, tmp_path):
        path = tmp_path / "q.jsonl"
        record = {"pad": "x" * 40}
        line_bytes = len(json.dumps(record, sort_keys=True)) + 1
        with QueryLog(path, max_bytes=3 * line_bytes, max_files=3) as log:
            for _ in range(10):
                log.log(record)
        assert log.rotations > 0
        files = sorted(p.name for p in tmp_path.iterdir())
        assert files == ["q.jsonl", "q.jsonl.1", "q.jsonl.2"]
        # Every surviving line is intact JSON (rotation never tears one).
        for name in files:
            for line in (tmp_path / name).read_text().splitlines():
                assert json.loads(line) == record

    def test_closed_log_refuses_records(self, tmp_path):
        log = QueryLog(tmp_path / "q.jsonl")
        log.close()
        with pytest.raises(ValueError):
            log.log({"a": 1})
        log.close()  # idempotent

    def test_rejects_bad_limits(self, tmp_path):
        with pytest.raises(ValueError):
            QueryLog(tmp_path / "q", max_bytes=0)
        with pytest.raises(ValueError):
            QueryLog(tmp_path / "q", max_files=0)


class TestModuleCli:
    def test_valid_file_passes(self, tmp_path, capsys):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        path = tmp_path / "metrics.prom"
        path.write_text(render_prometheus(registry))
        assert telemetry_main([str(path)]) == 0
        assert "ok" in capsys.readouterr().out

    def test_invalid_file_fails(self, tmp_path, capsys):
        path = tmp_path / "metrics.prom"
        path.write_text("orphan 1\n")
        assert telemetry_main([str(path)]) == 1
        assert "no TYPE" in capsys.readouterr().out
