"""Unit tests for CounterSet merge/add semantics."""

from repro.obs.counters import CounterSet


def test_increment_and_value():
    counters = CounterSet()
    counters.increment("hits")
    counters.increment("hits", 2)
    assert counters.value("hits") == 3
    assert counters.value("missing") == 0


def test_add_is_increment():
    counters = CounterSet()
    counters.add("rows", 5)
    counters.increment("rows", 1)
    assert counters.snapshot() == {"rows": 6}


def test_merge_sums_shared_names():
    left, right = CounterSet(), CounterSet()
    left.add("cells_compared", 10)
    left.add("matched_pairs", 2)
    right.add("cells_compared", 7)
    right.add("batches", 1)
    result = left.merge(right)
    assert result is left
    assert left.snapshot() == {
        "cells_compared": 17,
        "matched_pairs": 2,
        "batches": 1,
    }
    # The merged-in set is untouched.
    assert right.snapshot() == {"cells_compared": 7, "batches": 1}


def test_merge_chain_matches_sum():
    total = CounterSet()
    for i in range(4):
        worker = CounterSet()
        worker.add("cells_emitted", i + 1)
        total.merge(worker)
    assert total.value("cells_emitted") == 10


def test_reset_and_describe():
    counters = CounterSet()
    assert counters.describe() == "(no events recorded)"
    counters.add("misses", 1)
    counters.add("hits", 3)
    assert counters.describe() == "hits=3 misses=1"
    counters.reset()
    assert counters.snapshot() == {}
