"""Unit tests for the metrics registry and skew statistics."""

import numpy as np
import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    gini,
    skew_summary,
)


class TestCounterGauge:
    def test_counter_accumulates(self):
        counter = Counter()
        counter.inc()
        counter.inc(41)
        assert counter.value == 42

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_gauge_last_write_wins(self):
        gauge = Gauge()
        gauge.set(3)
        gauge.set(1.5)
        assert gauge.value == 1.5


class TestHistogram:
    def test_bucket_edges_are_inclusive_upper_bounds(self):
        hist = Histogram(bounds=(1.0, 10.0))
        # Exactly on an edge lands in that bucket (Prometheus "le").
        hist.observe(1.0)
        hist.observe(10.0)
        # Strictly above the last edge overflows.
        hist.observe(10.0000001)
        hist.observe(0.5)
        assert hist.counts == [2, 1, 1]
        assert hist.count == 4
        assert hist.total == pytest.approx(21.5000001)

    def test_default_buckets_span_decades(self):
        hist = Histogram()
        assert hist.bounds == DEFAULT_BUCKETS
        hist.observe(0.0005)
        hist.observe(0.05)
        hist.observe(500.0)
        assert hist.counts[0] == 1
        assert hist.counts[2] == 1
        assert hist.counts[-1] == 1

    def test_observe_many_and_mean(self):
        hist = Histogram(bounds=(1.0,))
        hist.observe_many(np.array([0.5, 1.5, 2.0]))
        assert hist.counts == [1, 2]
        assert hist.mean == pytest.approx(4.0 / 3.0)

    def test_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(1.0, 0.5))
        with pytest.raises(ValueError):
            Histogram(bounds=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(bounds=())


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_merge_adds_counters_and_histograms(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.counter("cells").inc(10)
        right.counter("cells").inc(5)
        right.counter("only_right").inc(1)
        left.gauge("imbalance").set(2.0)
        right.gauge("imbalance").set(3.0)
        left.histogram("busy", bounds=(1.0,)).observe(0.5)
        right.histogram("busy", bounds=(1.0,)).observe(2.0)
        left.merge(right)
        snap = left.snapshot()
        assert snap["counters"] == {"cells": 15, "only_right": 1}
        # Gauges: the merged-in value wins.
        assert snap["gauges"]["imbalance"] == 3.0
        assert snap["histograms"]["busy"]["counts"] == [1, 1]
        assert snap["histograms"]["busy"]["sum"] == pytest.approx(2.5)

    def test_merge_rejects_mismatched_bounds(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.histogram("busy", bounds=(1.0,)).observe(0.5)
        right.histogram("busy", bounds=(2.0,)).observe(0.5)
        with pytest.raises(ValueError):
            left.merge(right)

    def test_describe_mentions_every_metric(self):
        registry = MetricsRegistry()
        registry.counter("cells").inc(7)
        registry.gauge("imbalance").set(1.25)
        registry.histogram("busy").observe(0.5)
        text = registry.describe()
        assert "cells=7" in text
        assert "imbalance=1.25" in text
        assert "busy: n=1" in text
        assert MetricsRegistry().describe() == "(no metrics recorded)"


class TestSkewStatistics:
    def test_gini_hand_computed_four_node_load(self):
        # loads sorted ascending: [1, 2, 3, 10], total 16, n = 4.
        # G = 2*(1*1 + 2*2 + 3*3 + 4*10) / (4*16) - 5/4
        #   = 2*54/64 - 1.25 = 1.6875 - 1.25 = 0.4375
        assert gini([10, 2, 1, 3]) == pytest.approx(0.4375)

    def test_gini_balanced_and_degenerate(self):
        assert gini([5, 5, 5, 5]) == pytest.approx(0.0)
        assert gini([]) == 0.0
        assert gini([0, 0]) == 0.0
        # One node carries everything: G = (n-1)/n = 0.75 for n = 4.
        assert gini([0, 0, 0, 8]) == pytest.approx(0.75)

    def test_gini_rejects_negative(self):
        with pytest.raises(ValueError):
            gini([1, -1])

    def test_skew_summary_four_node_load(self):
        summary = skew_summary([10, 2, 1, 3])
        assert summary["max"] == 10.0
        assert summary["mean"] == 4.0
        assert summary["imbalance"] == pytest.approx(2.5)
        assert summary["gini"] == pytest.approx(0.4375)
        assert summary["cv"] == pytest.approx(np.std([10, 2, 1, 3]) / 4.0)

    def test_skew_summary_neutral_on_empty_and_zero(self):
        for loads in ([], [0, 0, 0]):
            summary = skew_summary(loads)
            assert summary["imbalance"] == 1.0
            assert summary["gini"] == 0.0
            assert summary["cv"] == 0.0
