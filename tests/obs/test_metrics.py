"""Unit tests for the metrics registry and skew statistics."""

import pickle

import numpy as np
import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    RollingHistogram,
    gini,
    skew_summary,
)


class FakeClock:
    """A manually-advanced monotonic clock for rolling-window tests."""

    def __init__(self, start: float = 0.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestCounterGauge:
    def test_counter_accumulates(self):
        counter = Counter()
        counter.inc()
        counter.inc(41)
        assert counter.value == 42

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_gauge_last_write_wins(self):
        gauge = Gauge()
        gauge.set(3)
        gauge.set(1.5)
        assert gauge.value == 1.5

    def test_gauge_inc_dec(self):
        gauge = Gauge()
        gauge.inc()
        gauge.inc(2.5)
        gauge.dec()
        assert gauge.value == pytest.approx(2.5)
        gauge.dec(2.5)
        assert gauge.value == pytest.approx(0.0)

    def test_gauge_pickles_like_counter(self):
        # Both carry a lock; pickling must drop it and restore a working
        # instrument (process-mode workers ship registries back whole).
        gauge = Gauge()
        gauge.set(4.0)
        revived = pickle.loads(pickle.dumps(gauge))
        assert revived.value == 4.0
        revived.inc()  # the restored lock must actually work
        assert revived.value == 5.0
        counter = Counter()
        counter.inc(3)
        assert pickle.loads(pickle.dumps(counter)).value == 3


class TestRollingHistogram:
    def test_window_forgets_old_observations(self):
        clock = FakeClock()
        ring = RollingHistogram(
            bounds=(1.0, 10.0), window_seconds=60.0, slots=6, clock=clock
        )
        ring.observe(0.5)
        ring.observe(5.0)
        assert ring.count == 2
        # Still inside the window after 30s...
        clock.advance(30.0)
        ring.observe(0.5)
        assert ring.count == 3
        # ...but the first slot expires once the window has passed it.
        clock.advance(40.0)
        assert ring.count == 1
        clock.advance(120.0)
        assert ring.count == 0

    def test_quantile_reflects_recent_traffic_only(self):
        clock = FakeClock()
        ring = RollingHistogram(
            bounds=(0.001, 0.01, 0.1, 1.0), window_seconds=10.0,
            slots=5, clock=clock,
        )
        for _ in range(100):
            ring.observe(0.5)  # a slow burst...
        clock.advance(11.0)  # ...that ages out entirely
        for _ in range(10):
            ring.observe(0.005)
        assert ring.quantile(0.99) <= 0.01

    def test_slot_recycled_in_place_on_wraparound(self):
        clock = FakeClock()
        ring = RollingHistogram(
            bounds=(1.0,), window_seconds=2.0, slots=2, clock=clock
        )
        ring.observe(0.5)
        clock.advance(2.0)  # same slot index, new epoch
        ring.observe(0.5)
        assert ring.count == 1

    def test_pickle_roundtrip(self):
        # Uses the real monotonic clock: unpickling restores it, and
        # CLOCK_MONOTONIC is process-independent, so slot epochs stay
        # meaningful across the process boundary.
        ring = RollingHistogram(bounds=(1.0,), window_seconds=3600.0)
        ring.observe(0.5)
        revived = pickle.loads(pickle.dumps(ring))
        assert revived.snapshot()["count"] == 1
        revived.observe(0.7)  # lock restored
        assert revived.count == 2

    def test_registry_merge_folds_other_window_into_current(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.rolling_histogram("lat", bounds=(1.0,)).observe(0.5)
        right.rolling_histogram("lat", bounds=(1.0,)).observe(2.0)
        right.rolling_histogram("lat", bounds=(1.0,)).observe(0.25)
        left.merge(right)
        snap = left.snapshot()["rolling"]["lat"]
        assert snap["count"] == 3
        assert snap["sum"] == pytest.approx(2.75)


class TestHistogram:
    def test_bucket_edges_are_inclusive_upper_bounds(self):
        hist = Histogram(bounds=(1.0, 10.0))
        # Exactly on an edge lands in that bucket (Prometheus "le").
        hist.observe(1.0)
        hist.observe(10.0)
        # Strictly above the last edge overflows.
        hist.observe(10.0000001)
        hist.observe(0.5)
        assert hist.counts == [2, 1, 1]
        assert hist.count == 4
        assert hist.total == pytest.approx(21.5000001)

    def test_default_buckets_span_decades(self):
        hist = Histogram()
        assert hist.bounds == DEFAULT_BUCKETS
        hist.observe(0.0005)
        hist.observe(0.05)
        hist.observe(500.0)
        assert hist.counts[0] == 1
        assert hist.counts[2] == 1
        assert hist.counts[-1] == 1

    def test_observe_many_and_mean(self):
        hist = Histogram(bounds=(1.0,))
        hist.observe_many(np.array([0.5, 1.5, 2.0]))
        assert hist.counts == [1, 2]
        assert hist.mean == pytest.approx(4.0 / 3.0)

    def test_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(1.0, 0.5))
        with pytest.raises(ValueError):
            Histogram(bounds=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(bounds=())


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_merge_adds_counters_and_histograms(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.counter("cells").inc(10)
        right.counter("cells").inc(5)
        right.counter("only_right").inc(1)
        left.gauge("imbalance").set(2.0)
        right.gauge("imbalance").set(3.0)
        left.histogram("busy", bounds=(1.0,)).observe(0.5)
        right.histogram("busy", bounds=(1.0,)).observe(2.0)
        left.merge(right)
        snap = left.snapshot()
        assert snap["counters"] == {"cells": 15, "only_right": 1}
        # Gauges: the merged-in value wins.
        assert snap["gauges"]["imbalance"] == 3.0
        assert snap["histograms"]["busy"]["counts"] == [1, 1]
        assert snap["histograms"]["busy"]["sum"] == pytest.approx(2.5)

    def test_merge_rejects_mismatched_bounds(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.histogram("busy", bounds=(1.0,)).observe(0.5)
        right.histogram("busy", bounds=(2.0,)).observe(0.5)
        with pytest.raises(ValueError):
            left.merge(right)

    def test_snapshot_sections_are_sorted(self):
        # CI diffs snapshot artifacts; insertion order must not leak
        # into the serialisation.
        registry = MetricsRegistry()
        for name in ("zeta", "alpha", "mid"):
            registry.counter(name).inc()
            registry.gauge(name).set(1.0)
            registry.histogram(name, bounds=(1.0,)).observe(0.5)
            registry.rolling_histogram(name, bounds=(1.0,)).observe(0.5)
        snap = registry.snapshot()
        for section in ("counters", "gauges", "histograms", "rolling"):
            assert list(snap[section]) == ["alpha", "mid", "zeta"]

    def test_describe_mentions_every_metric(self):
        registry = MetricsRegistry()
        registry.counter("cells").inc(7)
        registry.gauge("imbalance").set(1.25)
        registry.histogram("busy").observe(0.5)
        text = registry.describe()
        assert "cells=7" in text
        assert "imbalance=1.25" in text
        assert "busy: n=1" in text
        assert MetricsRegistry().describe() == "(no metrics recorded)"


class TestSkewStatistics:
    def test_gini_hand_computed_four_node_load(self):
        # loads sorted ascending: [1, 2, 3, 10], total 16, n = 4.
        # G = 2*(1*1 + 2*2 + 3*3 + 4*10) / (4*16) - 5/4
        #   = 2*54/64 - 1.25 = 1.6875 - 1.25 = 0.4375
        assert gini([10, 2, 1, 3]) == pytest.approx(0.4375)

    def test_gini_balanced_and_degenerate(self):
        assert gini([5, 5, 5, 5]) == pytest.approx(0.0)
        assert gini([]) == 0.0
        assert gini([0, 0]) == 0.0
        # One node carries everything: G = (n-1)/n = 0.75 for n = 4.
        assert gini([0, 0, 0, 8]) == pytest.approx(0.75)

    def test_gini_rejects_negative(self):
        with pytest.raises(ValueError):
            gini([1, -1])

    def test_skew_summary_four_node_load(self):
        summary = skew_summary([10, 2, 1, 3])
        assert summary["max"] == 10.0
        assert summary["mean"] == 4.0
        assert summary["imbalance"] == pytest.approx(2.5)
        assert summary["gini"] == pytest.approx(0.4375)
        assert summary["cv"] == pytest.approx(np.std([10, 2, 1, 3]) / 4.0)

    def test_skew_summary_neutral_on_empty_and_zero(self):
        for loads in ([], [0, 0, 0]):
            summary = skew_summary(loads)
            assert summary["imbalance"] == 1.0
            assert summary["gini"] == 0.0
            assert summary["cv"] == 0.0
